//! Property-based tests of the measurement model's algebra.

use limba::model::{Measurements, MeasurementsBuilder, RegionId, STANDARD_ACTIVITIES};
use proptest::prelude::*;

fn measurements_strategy() -> impl Strategy<Value = Measurements> {
    (1usize..5, 1usize..7).prop_flat_map(|(regions, procs)| {
        proptest::collection::vec(0.0f64..50.0, regions * 4 * procs).prop_map(move |data| {
            let mut b = MeasurementsBuilder::new(procs);
            let mut it = data.into_iter();
            for r in 0..regions {
                let id = b.add_region(format!("r{r}"));
                for kind in STANDARD_ACTIVITIES {
                    for p in 0..procs {
                        b.record(id, kind, p, it.next().expect("sized")).unwrap();
                    }
                }
            }
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn marginal_identities_hold(m in measurements_strategy()) {
        // T == Σ_i t_i == Σ_j T_j.
        let by_regions: f64 = m.region_ids().map(|r| m.region_time(r)).sum();
        let by_activities: f64 = m.activities().iter().map(|k| m.activity_time(k)).sum();
        prop_assert!((m.total_time() - by_regions).abs() < 1e-9);
        prop_assert!((m.total_time() - by_activities).abs() < 1e-9);
        // Per-processor totals sum to P times the (mean-convention) total.
        let per_proc: f64 = m.processor_ids().map(|p| m.processor_time(p)).sum();
        prop_assert!((per_proc - m.total_time() * m.processors() as f64).abs() < 1e-6);
    }

    #[test]
    fn merging_k_copies_equals_scaling_by_k(m in measurements_strategy(), k in 1usize..5) {
        let copies: Vec<&Measurements> = std::iter::repeat_n(&m, k).collect();
        let merged = Measurements::merged(&copies).unwrap();
        let scaled = m.scaled(k as f64).unwrap();
        prop_assert!(merged.same_shape(&scaled));
        for r in m.region_ids() {
            for kind in m.activities().iter() {
                for p in m.processor_ids() {
                    let a = merged.time(r, kind, p);
                    let b = scaled.time(r, kind, p);
                    prop_assert!((a - b).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn restriction_to_all_regions_is_identity(m in measurements_strategy()) {
        let all: Vec<RegionId> = m.region_ids().collect();
        let r = m.restricted(&all).unwrap();
        prop_assert_eq!(&r, &m);
    }

    #[test]
    fn restriction_partitions_total_time(m in measurements_strategy()) {
        prop_assume!(m.regions() >= 2);
        let all: Vec<RegionId> = m.region_ids().collect();
        let (left, right) = all.split_at(m.regions() / 2);
        let a = m.restricted(left).unwrap();
        let b = m.restricted(right).unwrap();
        prop_assert!((a.total_time() + b.total_time() - m.total_time()).abs() < 1e-9);
    }

    #[test]
    fn text_io_round_trips(m in measurements_strategy()) {
        let text = limba::model::io::to_string(&m);
        let back = limba::model::io::from_str(&text).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn scaling_composes(m in measurements_strategy(), a in 0.1f64..10.0, b in 0.1f64..10.0) {
        let ab = m.scaled(a).unwrap().scaled(b).unwrap();
        let ba = m.scaled(a * b).unwrap();
        for r in m.region_ids() {
            for kind in m.activities().iter() {
                for p in m.processor_ids() {
                    prop_assert!((ab.time(r, kind, p) - ba.time(r, kind, p)).abs() < 1e-9);
                }
            }
        }
    }
}
