//! End-to-end pipeline tests across crates: every workload simulates,
//! traces validate, reductions conserve time, and analyses recover the
//! injected imbalance.

use limba::analysis::Analyzer;
use limba::model::{ActivityKind, Measurements, ProcessorId};
use limba::mpisim::{MachineConfig, Program, SimOutput, Simulator};
use limba::workloads::{
    cfd::CfdConfig, irregular::IrregularConfig, master_worker::MasterWorkerConfig,
    pipeline::PipelineConfig, stencil::StencilConfig, Imbalance,
};

fn simulate(program: &Program, ranks: usize) -> SimOutput {
    Simulator::new(MachineConfig::new(ranks))
        .run(program)
        .unwrap()
}

fn all_programs(imbalance: Imbalance) -> Vec<(&'static str, Program, usize)> {
    vec![
        (
            "cfd",
            CfdConfig::new(8)
                .with_iterations(2)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
            8,
        ),
        (
            "stencil",
            StencilConfig::new(4, 2)
                .with_iterations(4)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
            8,
        ),
        (
            "master-worker",
            MasterWorkerConfig::new(8)
                .with_tasks(21)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
            8,
        ),
        (
            "pipeline",
            PipelineConfig::new(8)
                .with_items(10)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
            8,
        ),
        (
            "irregular",
            IrregularConfig::new(8)
                .with_steps(3)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
            8,
        ),
    ]
}

#[test]
fn every_workload_traces_validate_and_analyze() {
    for (name, program, ranks) in all_programs(Imbalance::RandomJitter { amplitude: 0.2 }) {
        let out = simulate(&program, ranks);
        out.trace
            .validate()
            .unwrap_or_else(|e| panic!("{name}: invalid trace: {e}"));
        let reduced = out
            .reduce()
            .unwrap_or_else(|e| panic!("{name}: reduce failed: {e}"));
        let report = Analyzer::new()
            .with_cluster_k(0)
            .analyze(&reduced.measurements)
            .unwrap_or_else(|e| panic!("{name}: analysis failed: {e}"));
        assert!(report.coarse.total_seconds > 0.0, "{name}: empty profile");
        assert!(
            !report.findings.tuning_candidates.is_empty(),
            "{name}: no tuning candidate"
        );
    }
}

#[test]
fn event_par_engine_runs_the_whole_pipeline_end_to_end() {
    // The parallel event engine through the same full pipeline the
    // sequential engines get: simulate → validate → reduce → analyze,
    // at multiple worker counts, bit-identical to the sequential run.
    for (name, program, ranks) in all_programs(Imbalance::RandomJitter { amplitude: 0.2 }) {
        let sim = Simulator::new(MachineConfig::new(ranks));
        let seq = sim.run(&program).unwrap();
        for jobs in [2usize, 4] {
            let par = sim
                .run_event_parallel(&program, jobs)
                .unwrap_or_else(|e| panic!("{name}: event-par({jobs}) failed: {e}"));
            par.trace
                .validate()
                .unwrap_or_else(|e| panic!("{name}: event-par({jobs}) invalid trace: {e}"));
            assert_eq!(
                par.trace, seq.trace,
                "{name}: event-par({jobs}) trace diverges"
            );
            assert_eq!(
                par.stats, seq.stats,
                "{name}: event-par({jobs}) stats diverge"
            );
            let reduced = par
                .reduce()
                .unwrap_or_else(|e| panic!("{name}: event-par({jobs}) reduce failed: {e}"));
            let report = Analyzer::new()
                .with_cluster_k(0)
                .analyze(&reduced.measurements)
                .unwrap_or_else(|e| panic!("{name}: event-par({jobs}) analysis failed: {e}"));
            assert!(
                report.coarse.total_seconds > 0.0,
                "{name}: event-par({jobs}) empty profile"
            );
            assert!(
                !report.findings.tuning_candidates.is_empty(),
                "{name}: event-par({jobs}) no tuning candidate"
            );
        }
    }
}

#[test]
fn per_processor_time_is_bounded_by_makespan() {
    for (name, program, ranks) in all_programs(Imbalance::LinearSkew { spread: 0.5 }) {
        let out = simulate(&program, ranks);
        let m = out.reduce().unwrap().measurements;
        for p in m.processor_ids() {
            let t = m.processor_time(p);
            assert!(
                t <= out.stats.makespan + 1e-9,
                "{name}: {p} accumulated {t} > makespan {}",
                out.stats.makespan
            );
        }
    }
}

#[test]
fn reduction_conserves_rank_end_times() {
    // A processor's total attributed time equals its end time when it is
    // never idle outside regions — true for cfd, whose ranks enter a
    // region immediately and only idle inside blocking ops.
    let program = CfdConfig::new(4).build_program().unwrap();
    let out = simulate(&program, 4);
    let m = out.reduce().unwrap().measurements;
    for (p, &end) in out.stats.rank_end_times.iter().enumerate() {
        let attributed = m.processor_time(ProcessorId::new(p));
        assert!(
            (attributed - end).abs() < 1e-9,
            "rank {p}: attributed {attributed} vs end {end}"
        );
    }
}

fn computation_slice(m: &Measurements) -> &[f64] {
    m.processor_slice(limba::model::RegionId::new(0), ActivityKind::Computation)
        .expect("region 0 computes")
}

#[test]
fn injected_imbalance_raises_every_index() {
    use limba::stats::dispersion::{DispersionIndex, DispersionKind};
    let balanced = CfdConfig::new(8).build_program().unwrap();
    let skewed = CfdConfig::new(8)
        .with_imbalance(Imbalance::BlockSkew {
            heavy: 2,
            factor: 3.0,
        })
        .build_program()
        .unwrap();
    let mb = simulate(&balanced, 8).reduce().unwrap().measurements;
    let ms = simulate(&skewed, 8).reduce().unwrap().measurements;
    for kind in DispersionKind::ALL {
        let b = kind.index(computation_slice(&mb)).unwrap();
        let s = kind.index(computation_slice(&ms)).unwrap();
        assert!(s > b, "{kind}: skewed {s} not above balanced {b}");
    }
}

#[test]
fn analysis_recovers_the_hotspot_rank() {
    // A hotspot subdomain should make its processor the one with the
    // largest computation time, and the region containing the compute
    // the top tuning candidate.
    let program = StencilConfig::new(3, 3)
        .with_iterations(4)
        .with_imbalance(Imbalance::Hotspot {
            rank: 4,
            factor: 4.0,
        })
        .build_program()
        .unwrap();
    let out = simulate(&program, 9);
    let m = out.reduce().unwrap().measurements;
    let report = Analyzer::new().with_cluster_k(0).analyze(&m).unwrap();
    let compute_region = limba::model::RegionId::new(1); // "stencil update"
    let slice = m
        .processor_slice(compute_region, ActivityKind::Computation)
        .unwrap();
    let hottest = slice
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0;
    assert_eq!(hottest, 4);
    assert_eq!(report.findings.tuning_candidates[0].name, "stencil update");
}

#[test]
fn deeper_runs_scale_but_preserve_relative_shape() {
    let short = simulate(
        &CfdConfig::new(4)
            .with_iterations(1)
            .build_program()
            .unwrap(),
        4,
    );
    let long = simulate(
        &CfdConfig::new(4)
            .with_iterations(4)
            .build_program()
            .unwrap(),
        4,
    );
    let ms = short.reduce().unwrap().measurements;
    let ml = long.reduce().unwrap().measurements;
    let rs = Analyzer::new().with_cluster_k(0).analyze(&ms).unwrap();
    let rl = Analyzer::new().with_cluster_k(0).analyze(&ml).unwrap();
    // Same heaviest region and dominant activity at any depth.
    assert_eq!(
        rs.coarse.heaviest_region_name,
        rl.coarse.heaviest_region_name
    );
    assert_eq!(rs.coarse.dominant_activity, rl.coarse.dominant_activity);
    // Time scales ~linearly with iterations.
    assert!(rl.coarse.total_seconds > 3.5 * rs.coarse.total_seconds);
}
