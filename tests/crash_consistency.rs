//! The crash-consistency harness: every power-cut point and injected
//! disk fault across serve ingest, checkpointed sweeps, and streamed
//! trace output must leave the system in one of exactly two states —
//! a byte-identical resumed result or a named, resumable partial —
//! never a panic, a corrupt report, or a wedged tenant.
//!
//! The harness runs the real server on a loopback socket but points
//! its durable layer at [`MemVfs`], the in-memory pessimistic POSIX
//! crash model: file content survives a crash only up to its last
//! `sync`, and a file *name* survives only if its directory was
//! synced. [`FaultVfs`] layers deterministic ENOSPC / EIO /
//! short-write / failed-rename / power-cut faults on top. Reference
//! reports come from the offline materialized path, which the
//! stream- and serve-equivalence harnesses already lock.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use limba::analysis::Analyzer;
use limba::guard::Checkpoint;
use limba::mpisim::{MachineConfig, Simulator};
use limba::serve::client::{self, PushStatus};
use limba::serve::{replay, PushSession, ServeConfig, Server};
use limba::stats::dispersion::DispersionKind;
use limba::stats::rank::RankingCriterion;
use limba::trace::{DurableSink, SealScanner, TraceSink, WriteSink};
use limba::vfs::{FaultKind, FaultPlan, FaultVfs, MemVfs, Vfs};
use limba::workloads::{
    cfd::CfdConfig, master_worker::MasterWorkerConfig, stencil::StencilConfig, Imbalance,
};

/// A scratch directory for the *client-side* tracefiles (the pushed
/// inputs live on the real filesystem; everything durable the server
/// writes lives in a `MemVfs`).
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("limba-crash-{}-{label}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Encodes a simulated run as chunked-v3 bytes.
fn trace_bytes(workload: u8, ranks: usize, imbalance: Imbalance) -> Vec<u8> {
    let program = match workload {
        0 => CfdConfig::new(ranks)
            .with_iterations(1)
            .with_imbalance(imbalance)
            .build_program(),
        1 => {
            let cols = if ranks.is_multiple_of(2) { 2 } else { 1 };
            StencilConfig::new(ranks / cols, cols)
                .with_imbalance(imbalance)
                .build_program()
        }
        _ => MasterWorkerConfig::new(ranks)
            .with_tasks(ranks * 4)
            .with_imbalance(imbalance)
            .build_program(),
    }
    .expect("generated workloads build");
    let output = Simulator::new(MachineConfig::new(ranks))
        .run_configured(&program, None, None, None)
        .expect("simulation runs");
    let mut bytes = Vec::new();
    let mut sink = WriteSink::new(&mut bytes);
    sink.begin(output.trace.processors(), output.trace.region_names())
        .expect("begin");
    sink.events(output.trace.events()).expect("events");
    sink.finish().expect("finish");
    bytes
}

/// Re-encodes trace bytes with events framed in batches of `batch`,
/// so the container has many sealed chunk boundaries to truncate at.
fn chunked(bytes: &[u8], batch: usize) -> Vec<u8> {
    let trace = limba::trace::binary::from_bytes(bytes).expect("decode");
    let mut out = Vec::new();
    let mut sink = WriteSink::new(&mut out);
    sink.begin(trace.processors(), trace.region_names())
        .expect("begin");
    for frame in trace.events().chunks(batch.max(1)) {
        sink.events(frame).expect("events");
    }
    sink.finish().expect("finish");
    out
}

/// The offline reference report, through the materialized path with
/// the analyzer defaults the server pins.
fn offline_report(bytes: &[u8]) -> String {
    let trace = limba::trace::binary::from_bytes(bytes).expect("bytes decode");
    let salvaged = limba::trace::reduce_checked(&trace).expect("reduce");
    let report = Analyzer::new()
        .with_dispersion(DispersionKind::Euclidean)
        .with_criterion(RankingCriterion::Maximum)
        .with_cluster_k(2)
        .analyze_with_counts(&salvaged.reduced.measurements, &salvaged.reduced.counts)
        .expect("analyze");
    limba::viz::report::render_with_coverage(&report, &salvaged.coverage)
}

/// Writes `bytes` to a real file under `dir` and returns the path.
fn spool_to(dir: &Path, name: &str, bytes: &[u8]) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, bytes).expect("write trace bytes");
    path
}

/// A `ServeConfig` whose durable layer is `vfs`, checkpointing under
/// a virtual `state/` directory inside it.
fn mem_config(vfs: Arc<dyn Vfs>) -> ServeConfig {
    ServeConfig {
        checkpoint_dir: Some(PathBuf::from("state")),
        vfs,
        ..ServeConfig::default()
    }
}

/// `--stream-out` durability: a power cut at *every* operation index
/// of the durable sink's life leaves either no stream file at all or
/// — only when `finish` returned Ok — a complete, byte-identical one.
/// Never a half-durable torn file that scans as complete.
#[test]
fn stream_out_power_cut_at_every_op_is_never_half_durable() {
    let reference = trace_bytes(0, 3, Imbalance::LinearSkew { spread: 0.5 });
    let trace = limba::trace::binary::from_bytes(&reference).expect("decode");
    let path = Path::new("streams/out.trc");

    let mut clean_run = false;
    for k in 0..10_000 {
        let mem = MemVfs::new();
        let fault = Arc::new(FaultVfs::new(
            Arc::new(mem.clone()),
            FaultPlan::new(FaultKind::PowerCut).at_op(k),
        ));
        let vfs: Arc<dyn Vfs> = fault.clone();
        let write = || -> Result<(), limba::trace::TraceError> {
            let mut sink = DurableSink::create(vfs.clone(), path)?;
            sink.begin(trace.processors(), trace.region_names())?;
            sink.events(trace.events())?;
            sink.finish()?;
            Ok(())
        };
        let outcome = write();
        mem.crash();
        match outcome {
            Ok(()) => {
                // The sink only reports success after syncing the file
                // and its directory entry: the bytes must survive.
                let survived = mem
                    .contents(path)
                    .expect("a finished stream file survives the power cut");
                assert_eq!(survived, reference, "survived stream diverges (op {k})");
                assert!(SealScanner::scan(&survived).complete);
            }
            Err(_) => {
                // Interrupted before the directory sync: the crash
                // must show no file at all — never a torn one whose
                // name is durable but whose bytes are not.
                assert!(
                    mem.contents(path).is_none(),
                    "power cut at op {k} left a half-durable stream file"
                );
            }
        }
        if !fault.is_dead() {
            // The cut point lies beyond the sink's whole operation
            // sequence: the run was clean, the sweep is exhaustive.
            assert!(outcome.is_ok());
            clean_run = true;
            break;
        }
    }
    assert!(clean_run, "power-cut sweep never reached a clean run");
}

/// A power cut between server lifetimes: completed runs survive
/// byte-identically, a cleanly-salvaged partial survives to its
/// synced offset exactly, and resuming it converges on the same
/// report an uninterrupted run would have produced.
#[test]
fn crash_restart_preserves_completed_runs_and_synced_partials() {
    let dir = scratch("crash-restart");
    let mem = MemVfs::new();
    let steady = trace_bytes(0, 4, Imbalance::LinearSkew { spread: 0.4 });
    let unlucky = trace_bytes(2, 5, Imbalance::RandomJitter { amplitude: 0.2 });
    let cut = unlucky.len() / 2;

    // First lifetime: one complete run, one salvaged partial.
    let first =
        Server::start("127.0.0.1:0", mem_config(Arc::new(mem.clone()))).expect("first server");
    let addr = first.addr().to_string();
    let steady_path = spool_to(&dir, "steady.trc", &steady);
    let outcome = PushSession::connect(&addr, "steady", "run")
        .expect("connect")
        .push_file(&steady_path)
        .expect("push");
    assert_eq!(outcome.status, PushStatus::Complete);
    assert_eq!(outcome.report, offline_report(&steady));
    let prefix_path = spool_to(&dir, "unlucky-prefix.trc", &unlucky[..cut]);
    let outcome = PushSession::connect(&addr, "unlucky", "run")
        .expect("connect")
        .push_file(&prefix_path)
        .expect("push prefix");
    assert_eq!(outcome.status, PushStatus::Salvaged);
    first.shutdown().expect("first shutdown");

    // The power cut: everything unsynced is gone.
    mem.crash();

    // Second lifetime over the same disk.
    let second =
        Server::start("127.0.0.1:0", mem_config(Arc::new(mem.clone()))).expect("second server");
    let addr = second.addr().to_string();
    let report = client::query(&addr, "REPORT steady run").expect("query after crash");
    assert_eq!(
        report,
        offline_report(&steady),
        "completed run diverges after the power cut"
    );

    let session = PushSession::connect(&addr, "unlucky", "run").expect("reconnect");
    assert_eq!(
        session.offset(),
        cut as u64,
        "the salvaged partial must survive the crash byte-exactly"
    );
    let full_path = spool_to(&dir, "unlucky-full.trc", &unlucky);
    let outcome = session.push_file(&full_path).expect("finish run");
    assert_eq!(outcome.status, PushStatus::Complete);
    assert_eq!(outcome.report, offline_report(&unlucky));
    second.shutdown().expect("second shutdown");
}

/// Graceful degradation: a disk fault scoped to one tenant's spool
/// turns that run into a named, resumable partial (the salvage
/// verdict names the disk), while a tenant pushed *after* the fault
/// fired still completes byte-identically to the offline analysis.
/// Restarting over the same disk with the fault cleared resumes the
/// degraded run and converges on the uninterrupted report.
#[test]
fn disk_faults_degrade_one_tenant_and_spare_the_rest() {
    let cases: [(&str, FaultPlan); 3] = [
        (
            "enospc",
            FaultPlan::new(FaultKind::Enospc)
                .after_bytes(256)
                .matching("unlucky"),
        ),
        ("eio", FaultPlan::new(FaultKind::Eio).at_op(1).matching("unlucky")),
        (
            "short-write",
            FaultPlan::new(FaultKind::ShortWrite)
                .at_op(1)
                .seeded(7)
                .matching("unlucky"),
        ),
    ];
    for (label, plan) in cases {
        let dir = scratch(&format!("faults-{label}"));
        let mem = MemVfs::new();
        let steady = trace_bytes(1, 4, Imbalance::LinearSkew { spread: 0.3 });
        let unlucky = trace_bytes(0, 4, Imbalance::RandomJitter { amplitude: 0.25 });

        let faulty: Arc<dyn Vfs> = Arc::new(FaultVfs::new(Arc::new(mem.clone()), plan));
        let server = Server::start("127.0.0.1:0", mem_config(faulty)).expect("server");
        let addr = server.addr().to_string();

        // The faulted tenant degrades to a salvaged partial whose
        // verdict names the disk — never an error or a hang.
        let unlucky_path = spool_to(&dir, "unlucky.trc", &unlucky);
        let outcome = PushSession::connect(&addr, "unlucky", "run")
            .expect("connect")
            .push_file(&unlucky_path)
            .expect("push survives the fault");
        assert_eq!(outcome.status, PushStatus::Salvaged, "{label}");
        assert!(
            outcome.report.contains("disk:"),
            "{label}: salvage verdict should name the disk fault: {}",
            outcome.report
        );

        // A tenant pushed after the fault fired is untouched.
        let steady_path = spool_to(&dir, "steady.trc", &steady);
        let outcome = PushSession::connect(&addr, "steady", "run")
            .expect("connect")
            .push_file(&steady_path)
            .expect("push");
        assert_eq!(outcome.status, PushStatus::Complete, "{label}");
        assert_eq!(outcome.report, offline_report(&steady), "{label}");

        // The degraded run still answers queries: no wedged tenant.
        let status = client::query(&addr, "STATUS").expect("status");
        assert!(status.contains("limba-serve"), "{label}: {status}");
        let runs = client::query(&addr, "RUNS unlucky").expect("runs");
        assert!(runs.contains("partial"), "{label}: {runs}");
        server.shutdown().expect("shutdown");

        // Fault cleared (new lifetime, plain MemVfs): the run resumes
        // from the durable prefix and converges byte-identically.
        let clean =
            Server::start("127.0.0.1:0", mem_config(Arc::new(mem.clone()))).expect("clean server");
        let addr = clean.addr().to_string();
        let session = PushSession::connect(&addr, "unlucky", "run").expect("reconnect");
        assert!(
            (session.offset() as usize) < unlucky.len(),
            "{label}: degraded run must stay resumable"
        );
        let full = spool_to(&dir, "unlucky-full.trc", &unlucky);
        let outcome = session.push_file(&full).expect("resume");
        assert_eq!(outcome.status, PushStatus::Complete, "{label}");
        assert_eq!(outcome.report, offline_report(&unlucky), "{label}");
        clean.shutdown().expect("clean shutdown");
    }
}

/// The recovery-scrub contract, exhaustively: truncate a valid spool
/// at **every byte offset** across its final chunk and trailer.
/// A clean truncation is not damage — the prefix stays resumable at
/// its raw length and its salvage replay still reports. With garbage
/// appended past the cut, the scanner never seals anything but a true
/// chunk boundary, and truncating back to that boundary always yields
/// a cleanly decodable, reportable prefix.
#[test]
fn every_truncation_of_the_final_chunk_stays_resumable() {
    let bytes = chunked(&trace_bytes(0, 3, Imbalance::LinearSkew { spread: 0.5 }), 32);
    let total = bytes.len();
    // The stream's sealed boundaries: cuts that decode to themselves.
    let boundaries: Vec<u64> = (1..=total)
        .filter(|&cut| SealScanner::scan(&bytes[..cut]).sealed == cut as u64)
        .map(|cut| cut as u64)
        .collect();
    assert!(
        boundaries.len() >= 5,
        "need several chunk boundaries to sweep, got {boundaries:?}"
    );
    // Sweep from the boundary that opens the final event chunk
    // through the trailer — every strict-prefix byte offset.
    let start = boundaries[boundaries.len() - 3] as usize;
    let mem = MemVfs::new();
    let vfs: &dyn Vfs = &mem;
    let spool = Path::new("sweep.trc");
    let mut damaged_cuts = 0usize;

    for cut in start + 1..total {
        // A clean truncation: torn, but not damaged — resumable at
        // its exact raw length, exactly where a reconnecting client
        // would be told to resume.
        let scan = SealScanner::scan(&bytes[..cut]);
        assert!(!scan.damaged, "clean prefix misread as damaged at {cut}");
        assert!(!scan.complete, "strict prefix cannot scan complete at {cut}");
        assert_eq!(scan.total, cut as u64);
        assert!(scan.sealed <= cut as u64);
        assert!(
            boundaries.binary_search(&scan.sealed).is_ok(),
            "sealed offset {} at cut {cut} is not a chunk boundary",
            scan.sealed
        );
        let mut file = vfs.create(spool).expect("create");
        file.append(&bytes[..cut]).expect("append");
        drop(file);
        replay::partial_report(vfs, spool)
            .unwrap_or_else(|e| panic!("clean prefix at {cut} lost its salvage replay: {e}"));

        // The same prefix with a garbage tail. Chunk payloads are
        // only checksummed at the trailer, so garbage that happens to
        // parse as event records may seal a boundary *past* the cut
        // (the trailer checksum catches it at end-of-stream). The
        // invariant the scrub relies on is the fixed point: sealed is
        // always a boundary the bytes on disk decode cleanly up to.
        let mut corrupt = bytes[..cut].to_vec();
        corrupt.extend_from_slice(&[0xEE; 96]);
        let scan = SealScanner::scan(&corrupt);
        if scan.sealed <= cut as u64 {
            assert!(
                boundaries.binary_search(&scan.sealed).is_ok(),
                "garbage tail at cut {cut} sealed at non-boundary {}",
                scan.sealed
            );
        }
        if scan.damaged {
            damaged_cuts += 1;
            let healed = &corrupt[..scan.sealed as usize];
            let rescan = SealScanner::scan(healed);
            assert!(!rescan.damaged, "scrubbed spool still damaged at {cut}");
            assert_eq!(rescan.sealed, scan.sealed);
            let mut file = vfs.create(spool).expect("create");
            file.append(healed).expect("append");
            drop(file);
            replay::partial_report(vfs, spool)
                .unwrap_or_else(|e| panic!("scrubbed spool at {cut} fails to report: {e}"));
        }
    }
    assert!(
        damaged_cuts > 0,
        "the garbage sweep never produced a detectable torn tail"
    );
}

/// Checkpoint ratchet under power cuts: cut the power at every
/// operation index across a three-save sequence. After the crash the
/// loadable checkpoint is always one of the saved versions, never
/// older than the last save that reported success, and never a
/// half-written hybrid.
#[test]
fn checkpoint_power_cut_sweep_never_loses_a_completed_save() {
    let path = Path::new("guard/state.ckpt");
    let versions: Vec<Checkpoint> = (0u64..3)
        .map(|v| {
            let mut ckpt = Checkpoint::new("ratchet", 42);
            for id in 0..=v {
                ckpt.insert(id, vec![u8::try_from(v).unwrap_or(0) + 1; 8 + id as usize]);
            }
            ckpt
        })
        .collect();
    let images: Vec<Vec<u8>> = versions.iter().map(Checkpoint::to_bytes).collect();

    let mut clean_run = false;
    for k in 0..10_000 {
        let mem = MemVfs::new();
        let fault = Arc::new(FaultVfs::new(
            Arc::new(mem.clone()),
            FaultPlan::new(FaultKind::PowerCut).at_op(k),
        ));
        let mut last_ok: Option<usize> = None;
        for (i, version) in versions.iter().enumerate() {
            match version.save_atomic_vfs(fault.as_ref(), path) {
                Ok(()) => last_ok = Some(i),
                Err(_) => break,
            }
        }
        mem.crash();
        match Checkpoint::load_vfs(&mem, path, "ratchet", 42) {
            Ok(loaded) => {
                let image = loaded.to_bytes();
                let got = images
                    .iter()
                    .position(|v| *v == image)
                    .unwrap_or_else(|| panic!("crash at op {k} exposed a hybrid checkpoint"));
                if let Some(done) = last_ok {
                    assert!(
                        got >= done,
                        "crash at op {k} rolled back past completed save {done} to {got}"
                    );
                }
            }
            Err(_) => {
                assert!(
                    last_ok.is_none(),
                    "crash at op {k} lost completed save {last_ok:?}"
                );
            }
        }
        if !fault.is_dead() {
            assert_eq!(last_ok, Some(versions.len() - 1));
            clean_run = true;
            break;
        }
    }
    assert!(clean_run, "power-cut sweep never reached a clean run");
}

/// A failed rename mid-save leaves the *previous* checkpoint intact
/// and loadable after a crash — the atomic-replace contract.
#[test]
fn failed_rename_keeps_the_previous_checkpoint_loadable() {
    let path = Path::new("guard/state.ckpt");
    let mem = MemVfs::new();
    let mut old = Checkpoint::new("ratchet", 42);
    old.insert(1, b"stable".to_vec());
    old.save_atomic_vfs(&mem, path).expect("clean save");

    let mut new = Checkpoint::new("ratchet", 42);
    new.insert(1, b"doomed".to_vec());
    let fault = FaultVfs::new(
        Arc::new(mem.clone()),
        FaultPlan::new(FaultKind::RenameFail),
    );
    new.save_atomic_vfs(&fault, path)
        .expect_err("the rename fault must surface");

    mem.crash();
    let loaded = Checkpoint::load_vfs(&mem, path, "ratchet", 42)
        .expect("previous checkpoint survives the failed replace");
    assert_eq!(loaded.get(1), Some(b"stable".as_slice()));
}
