//! Property-based tests of the tracefile layer: codecs round-trip
//! arbitrary well-formed traces, the streaming container decodes
//! identically however its bytes are split, and reduction conserves
//! time exactly.

use limba::model::ActivityKind;
use limba::trace::stream;
use limba::trace::{
    binary, reduce, reduce_windows, text, Event, MaterializeSink, ReducedTrace, ScanSink,
    StreamDecoder, Trace, TraceBuilder, TraceError, TraceSink, WindowSink,
};
use proptest::prelude::*;

/// Strategy: a well-formed random trace. Each processor performs a
/// random number of region visits, each with an optional activity
/// interval and message events.
fn trace_strategy() -> impl Strategy<Value = Trace> {
    let procs = 1usize..5;
    let regions = 1usize..4;
    let visits = proptest::collection::vec(
        (
            0usize..4,                       // region index (mod regions)
            0.0f64..10.0,                    // start offset
            0.01f64..5.0,                    // duration
            proptest::option::of(0usize..4), // activity kind index
            proptest::bool::ANY,             // emit a message?
        ),
        0..12,
    );
    (procs, regions, proptest::collection::vec(visits, 1..5)).prop_map(
        |(procs, regions, per_proc)| {
            let mut b = TraceBuilder::new(procs);
            for r in 0..regions {
                b.add_region(format!("region {r}"));
            }
            for (p, visits) in per_proc.iter().enumerate().take(procs) {
                let mut clock = 0.0f64;
                for &(r, offset, duration, activity, msg) in visits {
                    let region = limba::model::RegionId::new(r % regions);
                    let start = clock + offset;
                    let end = start + duration;
                    b.push(Event::enter(start, p as u32, region));
                    if let Some(a) = activity {
                        let kind = ActivityKind::from_index(a).expect("kind in range");
                        let a0 = start + duration * 0.25;
                        let a1 = start + duration * 0.75;
                        b.push(Event::begin_activity(a0, p as u32, kind));
                        b.push(Event::end_activity(a1, p as u32, kind));
                    }
                    if msg && procs > 1 {
                        let peer = ((p + 1) % procs) as u32;
                        b.push(Event::message_send(
                            start + duration * 0.5,
                            p as u32,
                            peer,
                            64,
                        ));
                    }
                    b.push(Event::leave(end, p as u32, region));
                    clock = end;
                }
            }
            b.build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_traces_are_well_formed(trace in trace_strategy()) {
        trace.validate().unwrap();
    }

    #[test]
    fn binary_codec_round_trips(trace in trace_strategy()) {
        let bytes = binary::to_bytes(&trace);
        let back = binary::from_bytes(&bytes).unwrap();
        prop_assert_eq!(trace, back);
    }

    #[test]
    fn text_codec_round_trips(trace in trace_strategy()) {
        let s = text::to_string(&trace);
        let back = text::from_str(&s).unwrap();
        // Times survive to full precision via Rust's shortest-round-trip
        // float formatting.
        prop_assert_eq!(trace, back);
    }

    #[test]
    fn reduction_conserves_total_region_time(trace in trace_strategy()) {
        // For non-nested visits, the sum over activities of a processor's
        // time in a region equals the sum of its visit durations.
        let reduced = reduce(&trace).unwrap();
        let m = &reduced.measurements;
        for p in 0..trace.processors() as u32 {
            let mut per_region = vec![0.0f64; m.regions()];
            let mut stack: Vec<(usize, f64)> = Vec::new();
            for e in trace.events_by_processor(p) {
                match e.payload {
                    limba::trace::EventPayload::EnterRegion { region } => {
                        stack.push((region, e.time));
                    }
                    limba::trace::EventPayload::LeaveRegion { region } => {
                        let (r, t0) = stack.pop().expect("balanced");
                        assert_eq!(r, region);
                        per_region[region] += e.time - t0;
                    }
                    _ => {}
                }
            }
            for (r, &expected) in per_region.iter().enumerate() {
                let attributed: f64 = m
                    .activities()
                    .iter()
                    .map(|k| m.time(limba::model::RegionId::new(r), k, limba::model::ProcessorId::new(p as usize)))
                    .sum();
                prop_assert!(
                    (attributed - expected).abs() < 1e-9,
                    "proc {} region {}: {} vs {}",
                    p, r, attributed, expected
                );
            }
        }
    }

    #[test]
    fn reduction_counts_messages_exactly(trace in trace_strategy()) {
        let reduced = reduce(&trace).unwrap();
        let sent_events = trace
            .events()
            .iter()
            .filter(|e| matches!(e.payload, limba::trace::EventPayload::MessageSend { .. }))
            .count();
        let counted: f64 = reduced
            .counts
            .cells()
            .filter(|(_, kind, _)| *kind == limba::model::CountKind::MessagesSent)
            .map(|(_, _, s)| s.iter().sum::<f64>())
            .sum();
        prop_assert_eq!(sent_events as f64, counted);
    }

    // -----------------------------------------------------------------
    // Truncated-trace robustness: `reduce_checked` must survive any
    // prefix of a well-formed trace (a crashed or interrupted recording
    // stops mid-stream) and any corrupt event, without panicking.

    #[test]
    fn reduce_checked_salvages_arbitrary_truncation(
        (trace, cut) in trace_strategy().prop_flat_map(|t| {
            let n = t.events().len();
            (Just(t), 0usize..n + 1)
        })
    ) {
        let truncated = rebuild(&trace, cut, None);
        // A prefix of a well-formed recording is always salvageable:
        // ranks cut mid-structure come back flagged, never as an error.
        let salvaged = limba::trace::reduce_checked(&truncated)
            .expect("truncation damage is salvageable");
        prop_assert_eq!(salvaged.coverage.len(), truncated.processors());
        if cut == trace.events().len() {
            prop_assert!(salvaged.is_complete());
        }
        for c in &salvaged.coverage {
            prop_assert!(c.complete || c.open_regions > 0 || c.open_activity);
        }
        // Salvage closes streams at their last event; it never invents
        // time past the recording.
        let horizon = truncated
            .events()
            .iter()
            .fold(0.0f64, |acc, e| acc.max(e.time));
        for p in 0..truncated.processors() {
            let t = salvaged
                .reduced
                .measurements
                .processor_time(limba::model::ProcessorId::new(p));
            prop_assert!(t <= horizon + 1e-9);
        }
    }

    // -----------------------------------------------------------------
    // Frame-boundary fuzz: the chunked stream container must decode
    // identically however its bytes are split across feeds — frame and
    // chunk boundaries carry no meaning — and any truncation must
    // surface as a named error, never a panic.

    #[test]
    fn stream_chunking_is_invisible_to_the_decoder(
        (trace, frame_events, chunk) in trace_strategy().prop_flat_map(|t| {
            (Just(t), 1usize..9, 1usize..257)
        })
    ) {
        let v3 = stream::to_stream_bytes(&trace, frame_events).unwrap().to_vec();
        prop_assert_eq!(decode_chunks(&v3, chunk).unwrap(), trace.clone());
        prop_assert_eq!(decode_chunks(&v3, 1).unwrap(), trace.clone());
        // The legacy whole-file container decodes through the same
        // chunked path, split just as arbitrarily.
        let v2 = binary::to_bytes(&trace);
        prop_assert_eq!(decode_chunks(&v2, chunk).unwrap(), trace.clone());
        prop_assert_eq!(decode_chunks(&v2, 1).unwrap(), trace);
    }

    #[test]
    fn truncated_streams_surface_named_errors(
        (trace, frame_events, cut_seed, chunk) in trace_strategy().prop_flat_map(|t| {
            (Just(t), 1usize..9, 0usize..4096, 1usize..64)
        })
    ) {
        let bytes = stream::to_stream_bytes(&trace, frame_events).unwrap().to_vec();
        let cut = cut_seed % bytes.len();
        let mut sink = MaterializeSink::new();
        let mut dec = StreamDecoder::new();
        let mut outcome = Ok(());
        for c in bytes[..cut].chunks(chunk) {
            outcome = dec.feed(c, &mut sink);
            if outcome.is_err() {
                break;
            }
        }
        let finished = outcome.and_then(|()| dec.finish(&mut sink));
        match finished {
            Err(e) => prop_assert!(!e.to_string().is_empty(), "unnamed error at cut {}", cut),
            Ok(()) => {
                return Err(proptest::test_runner::TestCaseError::Fail(
                    format!("truncation at byte {cut} of {} was accepted", bytes.len()),
                ));
            }
        }
    }

    // -----------------------------------------------------------------
    // Windowed reduction: the streaming fold must agree with the batch
    // `reduce_windows` on every well-formed trace — including traces
    // that window degenerately (no span, empty windows, one rank).

    #[test]
    fn windowed_reduction_matches_on_both_paths(
        (trace, windows) in trace_strategy().prop_flat_map(|t| (Just(t), 1usize..6))
    ) {
        match (reduce_windows(&trace, windows), stream_windows(&trace, windows)) {
            (Ok(batch), Ok(streamed)) => assert_windows_match(&batch, &streamed),
            (Err(b), Err(s)) => prop_assert_eq!(b.to_string(), s.to_string()),
            (b, s) => {
                return Err(proptest::test_runner::TestCaseError::Fail(
                    format!("paths disagree: batch {b:?} vs streamed {s:?}"),
                ));
            }
        }
    }

    #[test]
    fn reduce_checked_names_the_corrupt_event(
        (trace, cut, evil) in trace_strategy().prop_flat_map(|t| {
            let n = t.events().len();
            (Just(t), 0usize..n + 1, 0usize..n.max(1))
        })
    ) {
        prop_assume!(!trace.events().is_empty());
        // Corrupt one event (send it to a processor that does not
        // exist), truncate anywhere after it, and the reduction must
        // come back as a structured error naming that exact event.
        let evil = evil.min(cut.max(1) - 1).min(trace.events().len() - 1);
        prop_assume!(evil < cut);
        let truncated = rebuild(&trace, cut, Some(evil));
        match limba::trace::reduce_checked(&truncated) {
            Err(limba::trace::TraceError::MalformedEvent { proc, index, detail }) => {
                prop_assert_eq!(index, evil);
                prop_assert!(proc >= truncated.processors() as u32);
                prop_assert!(!detail.is_empty());
            }
            other => {
                return Err(proptest::test_runner::TestCaseError::Fail(format!(
                    "expected MalformedEvent for event #{evil}, got {other:?}"
                )));
            }
        }
    }
}

/// Decodes a byte stream through [`StreamDecoder`] in `chunk`-sized
/// feeds, materializing the result.
fn decode_chunks(bytes: &[u8], chunk: usize) -> Result<Trace, TraceError> {
    let mut sink = MaterializeSink::new();
    let mut dec = StreamDecoder::new();
    for c in bytes.chunks(chunk.max(1)) {
        dec.feed(c, &mut sink)?;
    }
    dec.finish(&mut sink)?;
    Ok(sink.into_trace().expect("finished stream materializes"))
}

/// Replays a materialized trace into a sink through the `TraceSink`
/// contract, in small batches so batch boundaries get exercised. Events
/// go out in global time order (stable, like a live recording), so each
/// rank's subsequence matches the batch pipeline's per-processor sort.
fn replay(trace: &Trace, sink: &mut dyn TraceSink) -> Result<(), TraceError> {
    let mut events = trace.events().to_vec();
    events.sort_by(|a, b| a.time.total_cmp(&b.time));
    sink.begin(trace.processors(), trace.region_names())?;
    for batch in events.chunks(3) {
        sink.events(batch)?;
    }
    sink.finish()
}

/// The streamed counterpart of [`reduce_windows`]: scan pass for the
/// makespan and activity set, then a windowed fold.
fn stream_windows(trace: &Trace, windows: usize) -> Result<Vec<ReducedTrace>, TraceError> {
    let mut scan = ScanSink::new();
    replay(trace, &mut scan)?;
    let scan = scan.into_scan().expect("scan finished");
    let mut sink = WindowSink::new(windows, scan.makespan, scan.activities.clone())?;
    replay(trace, &mut sink)?;
    Ok(sink.into_windows().expect("windowed fold finished"))
}

fn assert_windows_match(batch: &[ReducedTrace], streamed: &[ReducedTrace]) {
    assert_eq!(batch.len(), streamed.len(), "window counts differ");
    for (w, (b, s)) in batch.iter().zip(streamed).enumerate() {
        assert_eq!(
            b.measurements, s.measurements,
            "window {w} measurements differ"
        );
        assert_eq!(b.counts, s.counts, "window {w} counts differ");
    }
}

/// Two ranks whose region visits land exactly on the boundaries of a
/// four-window split over a four-second run: busy over [0, 2] and
/// [3, 4], idle over (2, 3).
fn boundary_trace() -> Trace {
    let region = limba::model::RegionId::new(0);
    let mut b = TraceBuilder::new(2);
    b.add_region("work");
    for p in 0..2u32 {
        for (t0, t1) in [(0.0, 1.0), (1.0, 2.0), (3.0, 4.0)] {
            b.push(Event::enter(t0, p, region));
            b.push(Event::leave(t1, p, region));
        }
    }
    b.build()
}

#[test]
fn every_split_point_of_the_container_decodes_identically() {
    let trace = boundary_trace();
    for frame_events in [1usize, 3, 1000] {
        let bytes = stream::to_stream_bytes(&trace, frame_events)
            .unwrap()
            .to_vec();
        for cut in 0..=bytes.len() {
            let mut sink = MaterializeSink::new();
            let mut dec = StreamDecoder::new();
            dec.feed(&bytes[..cut], &mut sink).unwrap();
            dec.feed(&bytes[cut..], &mut sink).unwrap();
            dec.finish(&mut sink).unwrap();
            assert_eq!(
                sink.into_trace().unwrap(),
                trace,
                "frames of {frame_events}, split at byte {cut}"
            );
        }
    }
}

#[test]
fn window_boundaries_on_event_edges_conserve_time_exactly() {
    let trace = boundary_trace();
    let batch = reduce_windows(&trace, 4).unwrap();
    let streamed = stream_windows(&trace, 4).unwrap();
    assert_windows_match(&batch, &streamed);
    // Intervals ending exactly on a boundary land in the window they
    // fill; the idle window stays empty; nothing is double-counted.
    for p in 0..2 {
        let pid = limba::model::ProcessorId::new(p);
        let times: Vec<f64> = batch
            .iter()
            .map(|w| w.measurements.processor_time(pid))
            .collect();
        for (w, (&got, want)) in times.iter().zip([1.0, 1.0, 0.0, 1.0]).enumerate() {
            assert!(
                (got - want).abs() < 1e-9,
                "rank {p} window {w}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn more_windows_than_the_run_can_fill_yield_empty_tails_identically() {
    let trace = boundary_trace();
    let batch = reduce_windows(&trace, 50).unwrap();
    let streamed = stream_windows(&trace, 50).unwrap();
    assert_windows_match(&batch, &streamed);
    assert_eq!(batch.len(), 50);
    // Total busy time is conserved across however many slices.
    let total: f64 = batch
        .iter()
        .flat_map(|w| {
            (0..2).map(|p| {
                w.measurements
                    .processor_time(limba::model::ProcessorId::new(p))
            })
        })
        .sum();
    assert!((total - 6.0).abs() < 1e-9, "conserved {total} vs 6.0");
}

#[test]
fn single_rank_traces_window_identically() {
    let region = limba::model::RegionId::new(0);
    let mut b = TraceBuilder::new(1);
    b.add_region("solo");
    b.push(Event::enter(0.0, 0, region));
    b.push(Event::begin_activity(0.5, 0, ActivityKind::Computation));
    b.push(Event::end_activity(2.5, 0, ActivityKind::Computation));
    b.push(Event::leave(3.0, 0, region));
    let trace = b.build();
    let batch = reduce_windows(&trace, 3).unwrap();
    let streamed = stream_windows(&trace, 3).unwrap();
    assert_windows_match(&batch, &streamed);
    let total: f64 = batch
        .iter()
        .map(|w| {
            w.measurements
                .processor_time(limba::model::ProcessorId::new(0))
        })
        .sum();
    assert!((total - 3.0).abs() < 1e-9, "conserved {total} vs 3.0");
}

#[test]
fn degenerate_window_requests_fail_identically_on_both_paths() {
    let trace = boundary_trace();
    // Zero windows.
    let b = reduce_windows(&trace, 0).expect_err("zero windows accepted");
    let s = stream_windows(&trace, 0).expect_err("zero windows accepted");
    assert_eq!(b.to_string(), s.to_string());
    // A run spanning no time.
    let region = limba::model::RegionId::new(0);
    let mut tb = TraceBuilder::new(1);
    tb.add_region("instant");
    tb.push(Event::enter(0.0, 0, region));
    tb.push(Event::leave(0.0, 0, region));
    let flat = tb.build();
    let b = reduce_windows(&flat, 2).expect_err("zero-span run windowed");
    let s = stream_windows(&flat, 2).expect_err("zero-span run windowed");
    assert_eq!(b.to_string(), s.to_string());
}

#[test]
fn truncation_on_a_window_boundary_is_rejected_identically() {
    // Rank 1's recording stops at t = 2.0 — exactly a boundary of the
    // four-window split — with a region still open. Both the batch
    // validator and the streaming fold must reject it, with the same
    // error.
    let region = limba::model::RegionId::new(0);
    let mut b = TraceBuilder::new(2);
    b.add_region("work");
    for (t0, t1) in [(0.0, 1.0), (1.0, 2.0), (3.0, 4.0)] {
        b.push(Event::enter(t0, 0, region));
        b.push(Event::leave(t1, 0, region));
    }
    b.push(Event::enter(0.0, 1, region));
    b.push(Event::leave(1.0, 1, region));
    b.push(Event::enter(2.0, 1, region));
    let trace = b.build();
    let be = reduce_windows(&trace, 4).expect_err("truncated trace windowed");
    let se = stream_windows(&trace, 4).expect_err("truncated stream windowed");
    assert_eq!(be.to_string(), se.to_string());
    // The lenient path still salvages it, flagging the cut rank.
    let salvaged = limba::trace::reduce_checked(&trace).unwrap();
    assert!(!salvaged.is_complete());
    assert_eq!(salvaged.incomplete_ranks(), vec![1]);
}

/// Rebuilds `trace` keeping only its first `cut` events; when `corrupt`
/// names an index, that event is retargeted at an out-of-range
/// processor.
fn rebuild(trace: &Trace, cut: usize, corrupt: Option<usize>) -> Trace {
    let mut b = TraceBuilder::new(trace.processors());
    for name in trace.region_names() {
        b.add_region(name.clone());
    }
    for (i, event) in trace.events().iter().take(cut).enumerate() {
        let mut event = *event;
        if corrupt == Some(i) {
            event.proc = trace.processors() as u32 + 7;
        }
        b.push(event);
    }
    b.build()
}
