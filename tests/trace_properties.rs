//! Property-based tests of the tracefile layer: codecs round-trip
//! arbitrary well-formed traces, and reduction conserves time exactly.

use limba::model::ActivityKind;
use limba::trace::{binary, reduce, text, Event, Trace, TraceBuilder};
use proptest::prelude::*;

/// Strategy: a well-formed random trace. Each processor performs a
/// random number of region visits, each with an optional activity
/// interval and message events.
fn trace_strategy() -> impl Strategy<Value = Trace> {
    let procs = 1usize..5;
    let regions = 1usize..4;
    let visits = proptest::collection::vec(
        (
            0usize..4,                       // region index (mod regions)
            0.0f64..10.0,                    // start offset
            0.01f64..5.0,                    // duration
            proptest::option::of(0usize..4), // activity kind index
            proptest::bool::ANY,             // emit a message?
        ),
        0..12,
    );
    (procs, regions, proptest::collection::vec(visits, 1..5)).prop_map(
        |(procs, regions, per_proc)| {
            let mut b = TraceBuilder::new(procs);
            for r in 0..regions {
                b.add_region(format!("region {r}"));
            }
            for (p, visits) in per_proc.iter().enumerate().take(procs) {
                let mut clock = 0.0f64;
                for &(r, offset, duration, activity, msg) in visits {
                    let region = limba::model::RegionId::new(r % regions);
                    let start = clock + offset;
                    let end = start + duration;
                    b.push(Event::enter(start, p as u32, region));
                    if let Some(a) = activity {
                        let kind = ActivityKind::from_index(a).expect("kind in range");
                        let a0 = start + duration * 0.25;
                        let a1 = start + duration * 0.75;
                        b.push(Event::begin_activity(a0, p as u32, kind));
                        b.push(Event::end_activity(a1, p as u32, kind));
                    }
                    if msg && procs > 1 {
                        let peer = ((p + 1) % procs) as u32;
                        b.push(Event::message_send(
                            start + duration * 0.5,
                            p as u32,
                            peer,
                            64,
                        ));
                    }
                    b.push(Event::leave(end, p as u32, region));
                    clock = end;
                }
            }
            b.build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_traces_are_well_formed(trace in trace_strategy()) {
        trace.validate().unwrap();
    }

    #[test]
    fn binary_codec_round_trips(trace in trace_strategy()) {
        let bytes = binary::to_bytes(&trace);
        let back = binary::from_bytes(&bytes).unwrap();
        prop_assert_eq!(trace, back);
    }

    #[test]
    fn text_codec_round_trips(trace in trace_strategy()) {
        let s = text::to_string(&trace);
        let back = text::from_str(&s).unwrap();
        // Times survive to full precision via Rust's shortest-round-trip
        // float formatting.
        prop_assert_eq!(trace, back);
    }

    #[test]
    fn reduction_conserves_total_region_time(trace in trace_strategy()) {
        // For non-nested visits, the sum over activities of a processor's
        // time in a region equals the sum of its visit durations.
        let reduced = reduce(&trace).unwrap();
        let m = &reduced.measurements;
        for p in 0..trace.processors() as u32 {
            let mut per_region = vec![0.0f64; m.regions()];
            let mut stack: Vec<(usize, f64)> = Vec::new();
            for e in trace.events_by_processor(p) {
                match e.payload {
                    limba::trace::EventPayload::EnterRegion { region } => {
                        stack.push((region, e.time));
                    }
                    limba::trace::EventPayload::LeaveRegion { region } => {
                        let (r, t0) = stack.pop().expect("balanced");
                        assert_eq!(r, region);
                        per_region[region] += e.time - t0;
                    }
                    _ => {}
                }
            }
            for (r, &expected) in per_region.iter().enumerate() {
                let attributed: f64 = m
                    .activities()
                    .iter()
                    .map(|k| m.time(limba::model::RegionId::new(r), k, limba::model::ProcessorId::new(p as usize)))
                    .sum();
                prop_assert!(
                    (attributed - expected).abs() < 1e-9,
                    "proc {} region {}: {} vs {}",
                    p, r, attributed, expected
                );
            }
        }
    }

    #[test]
    fn reduction_counts_messages_exactly(trace in trace_strategy()) {
        let reduced = reduce(&trace).unwrap();
        let sent_events = trace
            .events()
            .iter()
            .filter(|e| matches!(e.payload, limba::trace::EventPayload::MessageSend { .. }))
            .count();
        let counted: f64 = reduced
            .counts
            .cells()
            .filter(|(_, kind, _)| *kind == limba::model::CountKind::MessagesSent)
            .map(|(_, _, s)| s.iter().sum::<f64>())
            .sum();
        prop_assert_eq!(sent_events as f64, counted);
    }

    // -----------------------------------------------------------------
    // Truncated-trace robustness: `reduce_checked` must survive any
    // prefix of a well-formed trace (a crashed or interrupted recording
    // stops mid-stream) and any corrupt event, without panicking.

    #[test]
    fn reduce_checked_salvages_arbitrary_truncation(
        (trace, cut) in trace_strategy().prop_flat_map(|t| {
            let n = t.events().len();
            (Just(t), 0usize..n + 1)
        })
    ) {
        let truncated = rebuild(&trace, cut, None);
        // A prefix of a well-formed recording is always salvageable:
        // ranks cut mid-structure come back flagged, never as an error.
        let salvaged = limba::trace::reduce_checked(&truncated)
            .expect("truncation damage is salvageable");
        prop_assert_eq!(salvaged.coverage.len(), truncated.processors());
        if cut == trace.events().len() {
            prop_assert!(salvaged.is_complete());
        }
        for c in &salvaged.coverage {
            prop_assert!(c.complete || c.open_regions > 0 || c.open_activity);
        }
        // Salvage closes streams at their last event; it never invents
        // time past the recording.
        let horizon = truncated
            .events()
            .iter()
            .fold(0.0f64, |acc, e| acc.max(e.time));
        for p in 0..truncated.processors() {
            let t = salvaged
                .reduced
                .measurements
                .processor_time(limba::model::ProcessorId::new(p));
            prop_assert!(t <= horizon + 1e-9);
        }
    }

    #[test]
    fn reduce_checked_names_the_corrupt_event(
        (trace, cut, evil) in trace_strategy().prop_flat_map(|t| {
            let n = t.events().len();
            (Just(t), 0usize..n + 1, 0usize..n.max(1))
        })
    ) {
        prop_assume!(!trace.events().is_empty());
        // Corrupt one event (send it to a processor that does not
        // exist), truncate anywhere after it, and the reduction must
        // come back as a structured error naming that exact event.
        let evil = evil.min(cut.max(1) - 1).min(trace.events().len() - 1);
        prop_assume!(evil < cut);
        let truncated = rebuild(&trace, cut, Some(evil));
        match limba::trace::reduce_checked(&truncated) {
            Err(limba::trace::TraceError::MalformedEvent { proc, index, detail }) => {
                prop_assert_eq!(index, evil);
                prop_assert!(proc >= truncated.processors() as u32);
                prop_assert!(!detail.is_empty());
            }
            other => {
                return Err(proptest::test_runner::TestCaseError::Fail(format!(
                    "expected MalformedEvent for event #{evil}, got {other:?}"
                )));
            }
        }
    }
}

/// Rebuilds `trace` keeping only its first `cut` events; when `corrupt`
/// names an index, that event is retargeted at an out-of-range
/// processor.
fn rebuild(trace: &Trace, cut: usize, corrupt: Option<usize>) -> Trace {
    let mut b = TraceBuilder::new(trace.processors());
    for name in trace.region_names() {
        b.add_region(name.clone());
    }
    for (i, event) in trace.events().iter().take(cut).enumerate() {
        let mut event = *event;
        if corrupt == Some(i) {
            event.proc = trace.processors() as u32 + 7;
        }
        b.push(event);
    }
    b.build()
}
