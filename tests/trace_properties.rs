//! Property-based tests of the tracefile layer: codecs round-trip
//! arbitrary well-formed traces, and reduction conserves time exactly.

use limba::model::ActivityKind;
use limba::trace::{binary, reduce, text, Event, Trace, TraceBuilder};
use proptest::prelude::*;

/// Strategy: a well-formed random trace. Each processor performs a
/// random number of region visits, each with an optional activity
/// interval and message events.
fn trace_strategy() -> impl Strategy<Value = Trace> {
    let procs = 1usize..5;
    let regions = 1usize..4;
    let visits = proptest::collection::vec(
        (
            0usize..4,                       // region index (mod regions)
            0.0f64..10.0,                    // start offset
            0.01f64..5.0,                    // duration
            proptest::option::of(0usize..4), // activity kind index
            proptest::bool::ANY,             // emit a message?
        ),
        0..12,
    );
    (procs, regions, proptest::collection::vec(visits, 1..5)).prop_map(
        |(procs, regions, per_proc)| {
            let mut b = TraceBuilder::new(procs);
            for r in 0..regions {
                b.add_region(format!("region {r}"));
            }
            for (p, visits) in per_proc.iter().enumerate().take(procs) {
                let mut clock = 0.0f64;
                for &(r, offset, duration, activity, msg) in visits {
                    let region = limba::model::RegionId::new(r % regions);
                    let start = clock + offset;
                    let end = start + duration;
                    b.push(Event::enter(start, p as u32, region));
                    if let Some(a) = activity {
                        let kind = ActivityKind::from_index(a).expect("kind in range");
                        let a0 = start + duration * 0.25;
                        let a1 = start + duration * 0.75;
                        b.push(Event::begin_activity(a0, p as u32, kind));
                        b.push(Event::end_activity(a1, p as u32, kind));
                    }
                    if msg && procs > 1 {
                        let peer = ((p + 1) % procs) as u32;
                        b.push(Event::message_send(
                            start + duration * 0.5,
                            p as u32,
                            peer,
                            64,
                        ));
                    }
                    b.push(Event::leave(end, p as u32, region));
                    clock = end;
                }
            }
            b.build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_traces_are_well_formed(trace in trace_strategy()) {
        trace.validate().unwrap();
    }

    #[test]
    fn binary_codec_round_trips(trace in trace_strategy()) {
        let bytes = binary::to_bytes(&trace);
        let back = binary::from_bytes(&bytes).unwrap();
        prop_assert_eq!(trace, back);
    }

    #[test]
    fn text_codec_round_trips(trace in trace_strategy()) {
        let s = text::to_string(&trace);
        let back = text::from_str(&s).unwrap();
        // Times survive to full precision via Rust's shortest-round-trip
        // float formatting.
        prop_assert_eq!(trace, back);
    }

    #[test]
    fn reduction_conserves_total_region_time(trace in trace_strategy()) {
        // For non-nested visits, the sum over activities of a processor's
        // time in a region equals the sum of its visit durations.
        let reduced = reduce(&trace).unwrap();
        let m = &reduced.measurements;
        for p in 0..trace.processors() as u32 {
            let mut per_region = vec![0.0f64; m.regions()];
            let mut stack: Vec<(usize, f64)> = Vec::new();
            for e in trace.events_by_processor(p) {
                match e.payload {
                    limba::trace::EventPayload::EnterRegion { region } => {
                        stack.push((region, e.time));
                    }
                    limba::trace::EventPayload::LeaveRegion { region } => {
                        let (r, t0) = stack.pop().expect("balanced");
                        assert_eq!(r, region);
                        per_region[region] += e.time - t0;
                    }
                    _ => {}
                }
            }
            for (r, &expected) in per_region.iter().enumerate() {
                let attributed: f64 = m
                    .activities()
                    .iter()
                    .map(|k| m.time(limba::model::RegionId::new(r), k, limba::model::ProcessorId::new(p as usize)))
                    .sum();
                prop_assert!(
                    (attributed - expected).abs() < 1e-9,
                    "proc {} region {}: {} vs {}",
                    p, r, attributed, expected
                );
            }
        }
    }

    #[test]
    fn reduction_counts_messages_exactly(trace in trace_strategy()) {
        let reduced = reduce(&trace).unwrap();
        let sent_events = trace
            .events()
            .iter()
            .filter(|e| matches!(e.payload, limba::trace::EventPayload::MessageSend { .. }))
            .count();
        let counted: f64 = reduced
            .counts
            .cells()
            .filter(|(_, kind, _)| *kind == limba::model::CountKind::MessagesSent)
            .map(|(_, _, s)| s.iter().sum::<f64>())
            .sum();
        prop_assert_eq!(sent_events as f64, counted);
    }
}
