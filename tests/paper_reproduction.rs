//! End-to-end reproduction of the paper's evaluation (Section 4).
//!
//! These tests run the analysis methodology on the calibrated
//! reconstruction of the case study and assert every number the paper
//! reports: Tables 1–4, the Figure 1 bin counts, the k-means grouping,
//! and the processor-view findings.

use limba::analysis::Analyzer;
use limba::calibrate::paper::{
    self, claims, paper_measurements, paper_measurements_with_tail, LOOPS, TABLE1, TABLE1_OVERALL,
    TABLE2, TABLE3, TABLE4,
};
use limba::model::{ActivityKind, ProcessorId, RegionId, STANDARD_ACTIVITIES};

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

#[test]
fn table1_profile_reproduces() {
    let m = paper_measurements().unwrap();
    let report = Analyzer::new().analyze(&m).unwrap();
    for (i, row) in report.profile.regions.iter().enumerate() {
        assert!(close(row.seconds, TABLE1_OVERALL[i], 1e-9));
        for (j, &kind) in STANDARD_ACTIVITIES.iter().enumerate() {
            assert!(close(row.activity_seconds(kind), TABLE1[i][j], 1e-9));
        }
    }
    // "the heaviest loop, that is, loop 1, accounts for about 27% of the
    // overall wall clock time" (27% of the loop total; 19.051/69.93 of
    // the whole program).
    assert_eq!(report.coarse.heaviest_region_name, "loop 1");
    assert!(close(
        report.coarse.heaviest_region_fraction,
        19.051 / 64.754,
        1e-6
    ));
    assert_eq!(report.coarse.dominant_activity, ActivityKind::Computation);
    // Loop 1 also has the longest time in the dominant activity.
    assert_eq!(report.coarse.heaviest_in_dominant, RegionId::new(0));
    // "The loop which spends the longest time in point-to-point
    // communications is loop 3."
    let p2p = report
        .coarse
        .extremes
        .iter()
        .find(|e| e.kind == ActivityKind::PointToPoint)
        .unwrap();
    assert_eq!(p2p.worst.1, "loop 3");
}

#[test]
fn table2_dispersion_matrix_reproduces() {
    let m = paper_measurements().unwrap();
    let report = Analyzer::new().analyze(&m).unwrap();
    for i in 0..LOOPS {
        for (j, _) in STANDARD_ACTIVITIES.iter().enumerate() {
            let got = report.activity_view.id[i][j];
            if TABLE1[i][j] <= 0.0 {
                assert_eq!(got, None, "loop {} col {j} should be '-'", i + 1);
            } else {
                assert!(
                    close(got.unwrap(), TABLE2[i][j], 1e-7),
                    "loop {} col {j}: {got:?} vs {}",
                    i + 1,
                    TABLE2[i][j]
                );
            }
        }
    }
}

#[test]
fn table3_activity_view_reproduces() {
    // The paper weights ID_A over the measured loops but scales SID by
    // the *whole-program* total, so ID_A is checked on the loops-only
    // reconstruction and SID_A on the one with the unmeasured remainder.
    let loops_only = Analyzer::new()
        .analyze(&paper_measurements().unwrap())
        .unwrap();
    let with_tail = Analyzer::new()
        .analyze(&paper_measurements_with_tail().unwrap())
        .unwrap();
    for &(kind, id_a, sid_a) in &TABLE3 {
        let s = loops_only
            .activity_view
            .summaries
            .iter()
            .find(|s| s.kind == kind)
            .unwrap();
        assert!(
            close(s.id, id_a, 5e-4),
            "{kind}: ID_A {} vs paper {id_a}",
            s.id
        );
        let s = with_tail
            .activity_view
            .summaries
            .iter()
            .find(|s| s.kind == kind)
            .unwrap();
        assert!(
            close(s.sid, sid_a, 5e-5),
            "{kind}: SID_A {} vs paper {sid_a}",
            s.sid
        );
    }
    let report = loops_only;
    // "the synchronization is the most imbalanced activity" by raw ID_A …
    assert_eq!(
        report.findings.most_imbalanced_activity.unwrap().0,
        ActivityKind::Synchronization
    );
    // … but computation leads once scaled by the time share.
    assert_eq!(
        report.findings.most_imbalanced_activity_scaled.unwrap().0,
        ActivityKind::Computation
    );
}

#[test]
fn table4_region_view_reproduces() {
    let m = paper_measurements_with_tail().unwrap();
    let report = Analyzer::new().analyze(&m).unwrap();
    for (i, &(id_c, sid_c)) in TABLE4.iter().enumerate() {
        let s = report.region_view.summary_of(RegionId::new(i)).unwrap();
        assert!(
            close(s.id, id_c, 5e-4),
            "loop {}: ID_C {} vs paper {id_c}",
            i + 1,
            s.id
        );
        assert!(
            close(s.sid, sid_c, 5e-5),
            "loop {}: SID_C {} vs paper {sid_c}",
            i + 1,
            s.sid
        );
    }
    // "loop 6 is the most imbalanced" by raw index, among the loops.
    let loops_only = paper_measurements().unwrap();
    let report = Analyzer::new().analyze(&loops_only).unwrap();
    assert_eq!(
        report.findings.most_imbalanced_region.unwrap().0,
        RegionId::new(5)
    );
    // Loop 1 has the largest scaled index — the paper's tuning candidate.
    assert_eq!(
        report.region_view.most_imbalanced_scaled().unwrap().region,
        RegionId::new(0)
    );
    let top = &report.findings.tuning_candidates[0];
    assert_eq!(top.name, "loop 1");
    assert!(top.is_heaviest);
}

#[test]
fn clustering_separates_loops_1_and_2() {
    // "Clustering yields a partition of the loops into two groups. The
    // heaviest loops of the program, that is, loops 1 and 2, belong to
    // one group, whereas the remaining loops belong to the second."
    let m = paper_measurements().unwrap();
    let report = Analyzer::new().analyze(&m).unwrap();
    let c = report.clustering.unwrap();
    assert_eq!(c.k, 2);
    assert_eq!(c.assignments[0], 0);
    assert_eq!(c.assignments[1], 0);
    for i in 2..LOOPS {
        assert_eq!(
            c.assignments[i],
            1,
            "loop {} should be in the light group",
            i + 1
        );
    }
}

#[test]
fn processor_view_findings_reproduce() {
    let m = paper_measurements().unwrap();
    let report = Analyzer::new().analyze(&m).unwrap();
    let f = &report.findings.processors;
    // "processor 1 is the most frequently imbalanced as it is
    // characterized by the largest values of the index of dispersion on
    // two loops, namely, loops 3 and 7."
    let (proc, count) = f.most_frequently_imbalanced.unwrap();
    assert_eq!(proc, ProcessorId::new(claims::MOST_FREQUENT_PROC));
    assert_eq!(count, 2);
    let regions = &f.regions_per_processor[claims::MOST_FREQUENT_PROC];
    assert_eq!(
        regions.iter().map(|r| r.index()).collect::<Vec<_>>(),
        claims::MOST_FREQUENT_LOOPS.to_vec()
    );
    // "Processor 2 is imbalanced for the longest time … on one loop only,
    // namely, loop 1."
    let (proc, _) = f.longest_imbalanced.unwrap();
    assert_eq!(proc, ProcessorId::new(claims::LONGEST_PROC));
    let regions = &f.regions_per_processor[claims::LONGEST_PROC];
    assert_eq!(
        regions.iter().map(|r| r.index()).collect::<Vec<_>>(),
        vec![claims::LONGEST_LOOP]
    );
    // The reconstruction is qualitative here: the paper's ID 0.25754 and
    // 15.93 s are not uniquely determined by Tables 1–2, so only the
    // order of magnitude is pinned down.
    let id = report
        .processor_view
        .id_of(RegionId::new(0), ProcessorId::new(claims::LONGEST_PROC))
        .unwrap();
    assert!(id > 0.05 && id < 0.45, "ID_P = {id}");
}

#[test]
fn figure1_and_figure2_patterns_reproduce() {
    let m = paper_measurements().unwrap();
    let report = Analyzer::new().analyze(&m).unwrap();
    // Figure 1 (computation): all seven loops compute.
    let fig1 = report.pattern_for(ActivityKind::Computation).unwrap();
    assert_eq!(fig1.rows.len(), 7);
    let loop4 = &fig1.rows[3];
    assert_eq!(loop4.upper_tail_count(), claims::FIG1_LOOP4_UPPER);
    let loop6 = &fig1.rows[5];
    assert_eq!(loop6.lower_tail_count(), claims::FIG1_LOOP6_LOWER);
    // Figure 2 (point-to-point): only loops 3, 4, 5, 6 appear.
    let fig2 = report.pattern_for(ActivityKind::PointToPoint).unwrap();
    let names: Vec<&str> = fig2.rows.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, vec!["loop 3", "loop 4", "loop 5", "loop 6"]);
}

#[test]
fn program_total_inference_is_self_consistent() {
    // Re-derive T from every published (ID, SID) pair; the median should
    // match the constant used by the reconstruction.
    let mut estimates = Vec::new();
    for &(kind, id_a, sid_a) in &TABLE3 {
        let t_j: f64 = (0..LOOPS)
            .map(|i| TABLE1[i][STANDARD_ACTIVITIES.iter().position(|&k| k == kind).unwrap()])
            .sum();
        estimates.push(t_j * id_a / sid_a);
    }
    for (i, &(id_c, sid_c)) in TABLE4.iter().enumerate() {
        estimates.push(TABLE1_OVERALL[i] * id_c / sid_c);
    }
    estimates.sort_by(f64::total_cmp);
    let median = estimates[estimates.len() / 2];
    assert!(
        close(median, paper::PROGRAM_TOTAL, 0.25),
        "median T estimate {median} vs {}",
        paper::PROGRAM_TOTAL
    );
}
