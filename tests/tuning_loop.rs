//! The paper's full tuning loop as one integration test: identify →
//! localize → repair → verify, across the whole crate stack.

use limba::analysis::compare::{compare_runs, Verdict};
use limba::analysis::hierarchy::{drilldown, RegionTree};
use limba::analysis::Analyzer;
use limba::calibrate::SyntheticCase;
use limba::model::{io as measurements_io, ActivityKind, Measurements};
use limba::mpisim::{MachineConfig, Simulator};
use limba::stats::dispersion::DispersionKind;
use limba::trace::region_parents;
use limba::workloads::{amr::AmrConfig, Imbalance};

fn measure(refinement: Imbalance) -> (Measurements, RegionTree) {
    let program = AmrConfig::new(8)
        .with_steps(2)
        .with_refinement(refinement)
        .build_program()
        .unwrap();
    let out = Simulator::new(MachineConfig::new(8)).run(&program).unwrap();
    let tree = RegionTree::from_parents(region_parents(&out.trace).unwrap()).unwrap();
    (out.reduce().unwrap().measurements, tree)
}

#[test]
fn identify_localize_repair_verify() {
    // 1. Identify: the skewed run's analysis flags imbalance.
    let (before, tree) = measure(Imbalance::Hotspot {
        rank: 2,
        factor: 5.0,
    });
    let report = Analyzer::new().with_cluster_k(0).analyze(&before).unwrap();
    let candidate = &report.findings.tuning_candidates[0];
    assert!(candidate.sid > 0.01, "imbalance must be flagged");

    // 2. Localize: drill-down descends to the flux kernel.
    let dd = drilldown(&before, &tree, DispersionKind::Euclidean, 0.5).unwrap();
    assert_eq!(dd.culprit().unwrap().name, "flux");

    // 3. Repair: rebalance the refinement.
    let (after, _) = measure(Imbalance::None);

    // 4. Verify: every region improved or held; nothing regressed.
    let cmp = compare_runs(&before, &after, DispersionKind::Euclidean, 0.02).unwrap();
    assert!(cmp.total_speedup > 1.2, "speedup {}", cmp.total_speedup);
    assert!(cmp.regressions().is_empty());
    let flux = cmp.regions.iter().find(|d| d.name == "flux").unwrap();
    assert_eq!(flux.verdict, Verdict::Improved);
    assert!(flux.after_id < flux.before_id);
}

#[test]
fn measurements_persist_across_the_loop() {
    // Matrices can be saved and reloaded without changing any analysis
    // result — the post-mortem archive workflow.
    let (before, _) = measure(Imbalance::Hotspot {
        rank: 1,
        factor: 3.0,
    });
    let text = measurements_io::to_string(&before);
    let reloaded = measurements_io::from_str(&text).unwrap();
    assert_eq!(before, reloaded);
    let a = Analyzer::new().with_cluster_k(0).analyze(&before).unwrap();
    let b = Analyzer::new()
        .with_cluster_k(0)
        .analyze(&reloaded)
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn synthetic_case_feeds_the_same_loop() {
    // A what-if scenario built from summary statistics alone goes through
    // the identical pipeline: specify → analyze → "repair" → verify.
    let mut skewed = SyntheticCase::new(8);
    let core = skewed.add_region("core");
    let io = skewed.add_region("io");
    skewed
        .set(core, ActivityKind::Computation, 10.0, 0.2)
        .unwrap();
    skewed.set(io, ActivityKind::Collective, 1.0, 0.01).unwrap();
    let before = skewed.build().unwrap();

    let mut fixed = SyntheticCase::new(8);
    let core2 = fixed.add_region("core");
    let io2 = fixed.add_region("io");
    fixed
        .set(core2, ActivityKind::Computation, 8.0, 0.005)
        .unwrap();
    fixed.set(io2, ActivityKind::Collective, 1.0, 0.01).unwrap();
    let after = fixed.build().unwrap();

    let report = Analyzer::new().with_cluster_k(0).analyze(&before).unwrap();
    assert_eq!(report.findings.tuning_candidates[0].name, "core");

    let cmp = compare_runs(&before, &after, DispersionKind::Euclidean, 0.02).unwrap();
    let core_delta = &cmp.regions[0];
    assert_eq!(core_delta.verdict, Verdict::Improved);
    assert!((core_delta.before_id - 0.2).abs() < 1e-6);
    assert!((core_delta.after_id - 0.005).abs() < 1e-6);
    assert_eq!(cmp.regions[1].verdict, Verdict::Unchanged);
}
