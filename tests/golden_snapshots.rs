//! Golden snapshots of the paper reproduction: the fully rendered report
//! of the calibrated case study — Tables 1–4, the Figure 1/2 pattern
//! diagrams, and the findings — locked byte-for-byte against files under
//! `tests/golden/`.
//!
//! These snapshots are the backstop behind the determinism guarantees:
//! any change to analysis numerics, report structure, or text rendering
//! shows up as a byte diff here. To intentionally update them, run
//! `UPDATE_GOLDEN=1 cargo test --test golden_snapshots` and review the
//! diff like any other code change.

use std::path::PathBuf;

use limba::analysis::snapshot::{canonical, CANONICAL_VERSION};
use limba::analysis::Analyzer;
use limba::calibrate::paper::{paper_measurements, paper_measurements_with_tail};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {}: {e}; generate it with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden snapshot; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn paper_report_matches_golden() {
    let report = Analyzer::new()
        .analyze(&paper_measurements().unwrap())
        .unwrap();
    check_golden("paper_report.txt", &limba::viz::report::render(&report));
}

#[test]
fn paper_report_with_tail_matches_golden() {
    let report = Analyzer::new()
        .analyze(&paper_measurements_with_tail().unwrap())
        .unwrap();
    check_golden(
        "paper_report_with_tail.txt",
        &limba::viz::report::render(&report),
    );
}

#[test]
fn paper_canonical_form_matches_golden() {
    // The byte-level canonical serialization the determinism tests
    // compare — locked so the format itself cannot drift silently.
    let report = Analyzer::new()
        .analyze(&paper_measurements().unwrap())
        .unwrap();
    assert_eq!(CANONICAL_VERSION, 1);
    check_golden("paper_report_canonical.txt", &canonical(&report));
}

#[test]
fn faulted_cfd_report_matches_golden() {
    // One committed chaos scenario, locked byte-for-byte: the CFD proxy
    // with the middle rank slowed 2× through the first quarter of the
    // run and the last rank crashing near the end, truncating its
    // trace (and interrupting everyone at the next collective). The
    // snapshot covers the whole degraded path — fault injection,
    // trace salvage, coverage annotation — and doubles as an
    // engine-identity check for a committed fault plan.
    use limba::mpisim::{FaultPlan, MachineConfig, Simulator};
    use limba::workloads::cfd::CfdConfig;

    let ranks = 16;
    let program = CfdConfig::new(ranks)
        .with_iterations(3)
        .build_program()
        .unwrap();
    let sim = Simulator::new(MachineConfig::new(ranks));
    let horizon = sim.run(&program).unwrap().stats.makespan;
    let plan = FaultPlan::new(2003)
        .with_slowdown(ranks / 2, 0.0, horizon * 0.25, 2.0)
        .with_crash(ranks - 1, horizon * 0.85);

    let out = sim.run_with_faults(&program, &plan).unwrap();
    let polling = sim.run_polling_with_faults(&program, &plan).unwrap();
    assert_eq!(
        out.trace, polling.trace,
        "engines diverge on the golden plan"
    );
    assert_eq!(out.stats, polling.stats);
    assert_eq!(out.faults, polling.faults);
    assert_eq!(out.faults.crashes.len(), 1);

    let salvaged = out.reduce_checked().unwrap();
    assert!(salvaged.incomplete_ranks().contains(&((ranks - 1) as u32)));
    let report = Analyzer::new()
        .analyze_with_counts(&salvaged.reduced.measurements, &salvaged.reduced.counts)
        .unwrap();
    check_golden("faulted_cfd_canonical.txt", &canonical(&report));
    check_golden(
        "faulted_cfd_report.txt",
        &limba::viz::report::render_with_coverage(&report, &salvaged.coverage),
    );
}

#[test]
fn balanced_reports_match_golden() {
    // Balanced-run reports, locked byte-for-byte for every committed
    // policy preset on three workloads: the calibrated paper proxy, the
    // linearly skewed CFD proxy, and the jittered irregular-mesh proxy.
    // Each snapshot exercises the full path — policy execution on both
    // engines (asserted identical), trace salvage, analysis, and the
    // "rebalancing actions" report section with its migration ledger.
    use limba::advisor::Scenario;
    use limba::mpisim::{MachineConfig, Program, Simulator};
    use limba::workloads::balance::{preset, PRESETS};
    use limba::workloads::cfd::CfdConfig;
    use limba::workloads::irregular::IrregularConfig;
    use limba::workloads::Imbalance;

    let paper = Scenario::from_measurements(&paper_measurements().unwrap()).unwrap();
    let cases: [(&str, Program, MachineConfig); 3] = [
        ("paper", paper.program, paper.config),
        (
            "cfd",
            CfdConfig::new(8)
                .with_iterations(3)
                .with_imbalance(Imbalance::LinearSkew { spread: 0.5 })
                .build_program()
                .unwrap(),
            MachineConfig::new(8),
        ),
        (
            "irregular",
            IrregularConfig::new(8)
                .with_imbalance(Imbalance::RandomJitter { amplitude: 0.4 })
                .with_seed(7)
                .build_program()
                .unwrap(),
            MachineConfig::new(8),
        ),
    ];

    for (name, program, config) in &cases {
        let sim = Simulator::new(config.clone());
        let base = sim.run(program).unwrap().stats.makespan;
        for &policy in PRESETS {
            let plan = preset(policy).unwrap();
            let out = sim.run_with_balance(program, &plan).unwrap();
            let polling = sim
                .run_polling_configured(program, None, Some(&plan), None)
                .unwrap();
            assert_eq!(
                out.trace, polling.trace,
                "engines diverge on {name}/{policy}"
            );
            assert_eq!(out.balance, polling.balance);
            assert!(
                out.stats.makespan <= base + 1e-9,
                "{policy} worsened {name}"
            );

            let salvaged = out.reduce_checked().unwrap();
            let report = Analyzer::new()
                .analyze_with_counts(&salvaged.reduced.measurements, &salvaged.reduced.counts)
                .unwrap();
            check_golden(
                &format!("balanced_{name}_{policy}.txt"),
                &limba::viz::report::render_with_balance(&report, &out.balance, &salvaged.coverage),
            );
        }
    }
}

#[test]
fn paper_advice_matches_golden() {
    // Advise on the calibrated paper case: the proxy scenario rebuilt
    // from the published measurement marginals. The paper identifies
    // loop 1 as the heaviest region, so the top recommendation must
    // target it — and the rendered advice is locked byte-for-byte.
    use limba::advisor::{Advisor, Scenario};

    let scenario = Scenario::from_measurements(&paper_measurements().unwrap()).unwrap();
    let advice = Advisor::new().with_top_k(3).advise(&scenario).unwrap();

    let top = advice.candidates.first().expect("no recommendation");
    assert!(
        top.labels.iter().any(|l| l.contains("loop 1")),
        "top recommendation does not target the paper's heaviest region: {:?}",
        top.labels
    );
    let verified = top.verification.as_ref().expect("top candidate unverified");
    assert!(verified.measured_gain > 0.0, "no simulated improvement");
    assert!(verified.within_bounds);

    check_golden(
        "paper_advice.txt",
        &limba::viz::advice::render_advice(&advice),
    );
}

#[test]
fn paper_advice_is_jobs_invariant() {
    use limba::advisor::{Advisor, Scenario};

    let scenario = Scenario::from_measurements(&paper_measurements().unwrap()).unwrap();
    for jobs in [2, 8] {
        let advice = Advisor::new()
            .with_top_k(3)
            .with_jobs(jobs)
            .advise(&scenario)
            .unwrap();
        check_golden(
            "paper_advice.txt",
            &limba::viz::advice::render_advice(&advice),
        );
    }
}

#[test]
fn golden_snapshots_are_jobs_invariant() {
    // The snapshot files double as the fixed point of the --jobs sweep:
    // parallel analysis must reproduce the identical golden bytes.
    let m = paper_measurements().unwrap();
    for jobs in [2, 8] {
        let report = Analyzer::new().with_jobs(jobs).analyze(&m).unwrap();
        check_golden("paper_report.txt", &limba::viz::report::render(&report));
        check_golden("paper_report_canonical.txt", &canonical(&report));
    }
}
