//! Golden snapshots of the paper reproduction: the fully rendered report
//! of the calibrated case study — Tables 1–4, the Figure 1/2 pattern
//! diagrams, and the findings — locked byte-for-byte against files under
//! `tests/golden/`.
//!
//! These snapshots are the backstop behind the determinism guarantees:
//! any change to analysis numerics, report structure, or text rendering
//! shows up as a byte diff here. To intentionally update them, run
//! `UPDATE_GOLDEN=1 cargo test --test golden_snapshots` and review the
//! diff like any other code change.

use std::path::PathBuf;

use limba::analysis::snapshot::{canonical, CANONICAL_VERSION};
use limba::analysis::Analyzer;
use limba::calibrate::paper::{paper_measurements, paper_measurements_with_tail};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {}: {e}; generate it with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden snapshot; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn paper_report_matches_golden() {
    let report = Analyzer::new()
        .analyze(&paper_measurements().unwrap())
        .unwrap();
    check_golden("paper_report.txt", &limba::viz::report::render(&report));
}

#[test]
fn paper_report_with_tail_matches_golden() {
    let report = Analyzer::new()
        .analyze(&paper_measurements_with_tail().unwrap())
        .unwrap();
    check_golden(
        "paper_report_with_tail.txt",
        &limba::viz::report::render(&report),
    );
}

#[test]
fn paper_canonical_form_matches_golden() {
    // The byte-level canonical serialization the determinism tests
    // compare — locked so the format itself cannot drift silently.
    let report = Analyzer::new()
        .analyze(&paper_measurements().unwrap())
        .unwrap();
    assert_eq!(CANONICAL_VERSION, 1);
    check_golden("paper_report_canonical.txt", &canonical(&report));
}

#[test]
fn golden_snapshots_are_jobs_invariant() {
    // The snapshot files double as the fixed point of the --jobs sweep:
    // parallel analysis must reproduce the identical golden bytes.
    let m = paper_measurements().unwrap();
    for jobs in [2, 8] {
        let report = Analyzer::new().with_jobs(jobs).analyze(&m).unwrap();
        check_golden("paper_report.txt", &limba::viz::report::render(&report));
        check_golden("paper_report_canonical.txt", &canonical(&report));
    }
}
