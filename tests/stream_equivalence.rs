//! The streaming-dataflow differential harness: the zero-copy pipeline
//! (simulate → byte frames → streaming folds) must be byte-identical to
//! the materializing reference path (simulate → trace → batch reduce)
//! across randomized programs, fault plans, balance plans, frame sizes,
//! and worker counts — reductions, windowed reductions, salvage
//! coverage, and rendered analysis reports alike. Crash-truncated runs
//! and budget/cancellation interruptions must fail (or salvage)
//! identically on both paths, never hang, and never panic.

use limba::analysis::snapshot::canonical;
use limba::analysis::Analyzer;
use limba::mpisim::{
    BalancePlan, FaultPlan, MachineConfig, Program, ProgramBuilder, RunBudget, Simulator,
};
use limba::par::CancelToken;
use limba::stream::{stream_reduce, StreamConfig, StreamError};
use limba::trace::{reduce_checked, reduce_windows};
use limba::workloads::{cfd::CfdConfig, Imbalance};
use proptest::prelude::*;

/// One phase of a generated program; every variant is globally
/// coordinated, so any sequence of phases is deadlock-free. Mirrors the
/// generator in `simulator_properties.rs`.
#[derive(Debug, Clone)]
enum Phase {
    Compute(Vec<u16>),
    Exchange(u32),
    Collective(u8, u32),
    RingShift(u32),
}

fn phase_strategy(ranks: usize) -> impl Strategy<Value = Phase> {
    prop_oneof![
        proptest::collection::vec(0u16..200, ranks).prop_map(Phase::Compute),
        (1u32..200_000).prop_map(Phase::Exchange),
        (0u8..8, 1u32..100_000).prop_map(|(k, b)| Phase::Collective(k, b)),
        (1u32..200_000).prop_map(Phase::RingShift),
    ]
}

fn program_strategy() -> impl Strategy<Value = (Program, usize)> {
    (2usize..7)
        .prop_flat_map(|ranks| {
            (
                proptest::collection::vec(phase_strategy(ranks), 1..8),
                Just(ranks),
            )
        })
        .prop_map(|(phases, ranks)| {
            let mut pb = ProgramBuilder::new(ranks);
            let region = pb.add_region("phase region");
            for (pi, phase) in phases.iter().enumerate() {
                pb.spmd(|rank, mut ops| {
                    ops.enter(region);
                    match phase {
                        Phase::Compute(amounts) => {
                            ops.compute(amounts[rank] as f64 * 1e-3);
                        }
                        Phase::Exchange(bytes) => {
                            for parity in 0..2usize {
                                if rank % 2 == parity {
                                    if rank + 1 < ranks {
                                        ops.send(rank + 1, *bytes as u64).recv(rank + 1);
                                    }
                                } else if rank >= 1 {
                                    ops.recv(rank - 1).send(rank - 1, *bytes as u64);
                                }
                            }
                        }
                        Phase::Collective(kind, bytes) => {
                            let b = *bytes as u64;
                            match kind % 8 {
                                0 => ops.reduce(b),
                                1 => ops.allreduce(b),
                                2 => ops.broadcast(b),
                                3 => ops.alltoall(b),
                                4 => ops.barrier(),
                                5 => ops.gather(b),
                                6 => ops.scatter(b),
                                _ => ops.allgather(b),
                            };
                        }
                        Phase::RingShift(bytes) => {
                            let right = (rank + 1) % ranks;
                            let left = (rank + ranks - 1) % ranks;
                            let h = (pi as u32) * 2;
                            ops.isend(right, *bytes as u64, h)
                                .irecv(left, h + 1)
                                .compute(0.001)
                                .wait(h)
                                .wait(h + 1);
                        }
                    }
                    ops.leave(region);
                });
            }
            (pb.build().expect("generated programs are valid"), ranks)
        })
}

/// An arbitrary — but always valid — fault plan; mirrors the generator
/// in `simulator_properties.rs` (disjoint slowdown windows, unique
/// crashes, a few degraded links, optional message loss).
fn fault_plan_strategy(ranks: usize) -> impl Strategy<Value = FaultPlan> {
    let slowdowns = proptest::collection::vec(
        proptest::option::of((0u16..800, 1u16..800, 15u8..50)),
        ranks,
    );
    let links = proptest::collection::vec(
        (0..ranks, 1..ranks, 0u16..500, 1u16..500, 1u8..10, 1u8..10),
        0..3,
    );
    let loss = proptest::option::of((0u8..60, 0u8..4, 1u16..50, 10u8..30));
    let crashes = proptest::collection::vec(proptest::option::of(1u16..1500), ranks);
    (1u64..1_000_000, slowdowns, links, loss, crashes).prop_map(
        move |(seed, slowdowns, links, loss, crashes)| {
            let mut plan = FaultPlan::new(seed);
            for (rank, s) in slowdowns.into_iter().enumerate() {
                if let Some((start, len, factor)) = s {
                    plan = plan.with_slowdown(
                        rank,
                        start as f64 * 1e-3,
                        (start + len) as f64 * 1e-3,
                        factor as f64 * 0.1,
                    );
                }
            }
            for (src, dst_offset, start, len, lat, bw) in links {
                plan = plan.with_link_fault(
                    src,
                    (src + dst_offset) % ranks,
                    start as f64 * 1e-3,
                    (start + len) as f64 * 1e-3,
                    lat as f64,
                    bw as f64 * 0.5,
                );
            }
            if let Some((rate, retries, timeout, backoff)) = loss {
                plan = plan.with_message_loss(
                    rate as f64 * 0.01,
                    retries as u32,
                    timeout as f64 * 1e-4,
                    backoff as f64 * 0.1,
                );
            }
            for (rank, c) in crashes.into_iter().enumerate() {
                if let Some(time) = c {
                    plan = plan.with_crash(rank, time as f64 * 1e-3);
                }
            }
            plan
        },
    )
}

fn faulted_program_strategy() -> impl Strategy<Value = (Program, usize, FaultPlan)> {
    program_strategy()
        .prop_flat_map(|(program, ranks)| (Just(program), Just(ranks), fault_plan_strategy(ranks)))
}

/// An arbitrary balance plan spanning all three policy families.
fn balance_plan_strategy() -> impl Strategy<Value = BalancePlan> {
    (1u64..1_000_000, 0u8..3, 1u16..100).prop_map(|(seed, kind, p)| match kind {
        0 => BalancePlan::stealing(seed, 1.0 + p as f64 * 0.01),
        1 => BalancePlan::diffusion(seed, p as f64 * 0.01),
        _ => BalancePlan::anticipatory(seed, 2 + (p as usize % 8), p as f64 * 0.005),
    })
}

fn chaos_balanced_strategy() -> impl Strategy<Value = (Program, usize, FaultPlan, BalancePlan)> {
    faulted_program_strategy().prop_flat_map(|(program, ranks, faults)| {
        (
            Just(program),
            Just(ranks),
            Just(faults),
            balance_plan_strategy(),
        )
    })
}

/// Runs one scenario down both paths and asserts every observable is
/// identical: simulation stats, fault/balance reports, the salvaged
/// reduction (measurements, counts, per-rank coverage), the rendered
/// analysis report, and — when requested — every windowed reduction.
/// When the run itself fails (message loss exhausting retries, budget
/// interruption), both paths must report the same error.
fn check_case(
    program: &Program,
    ranks: usize,
    faults: Option<&FaultPlan>,
    balance: Option<&BalancePlan>,
    frame_events: usize,
    jobs: usize,
    windows: usize,
) {
    let sim = Simulator::new(MachineConfig::new(ranks));
    let reference = sim.run_configured(program, faults, balance, None);
    // Windowing a zero-span run is a degenerate request both paths
    // reject; the window comparison only makes sense when it's valid.
    let windows = match &reference {
        Ok(o) if o.stats.makespan > 0.0 => windows,
        _ => 0,
    };
    let cfg = StreamConfig {
        frame_events,
        jobs,
        windows: (windows > 0).then_some(windows),
        ..StreamConfig::default()
    };
    let streamed = stream_reduce(&sim, program, faults, balance, None, &cfg);
    let (output, streamed) = match (reference, streamed) {
        (Ok(o), Ok(s)) => (o, s),
        (Err(e), Err(StreamError::Sim(se))) => {
            assert_eq!(
                se.to_string(),
                e.to_string(),
                "paths disagree on the failure"
            );
            return;
        }
        // The windowed fold rejected the stream (e.g. crash truncation
        // left a region open): batch windowing of the materialized
        // trace must reject it with the identical diagnostic.
        (Ok(o), Err(StreamError::Trace(te))) if windows > 0 => {
            let be = reduce_windows(&o.trace, windows)
                .expect_err("streamed windowing failed but batch accepted the trace");
            assert_eq!(te.to_string(), be.to_string(), "rejections diverge");
            return;
        }
        (r, s) => panic!(
            "paths disagree on outcome: materialized ok={}, streamed ok={}",
            r.is_ok(),
            s.is_ok()
        ),
    };

    assert_eq!(streamed.output.stats, output.stats, "stats diverge");
    assert_eq!(
        streamed.output.faults, output.faults,
        "fault reports diverge"
    );
    assert_eq!(
        streamed.output.balance, output.balance,
        "balance reports diverge"
    );
    assert_eq!(
        streamed.scan.events as usize,
        output.trace.events().len(),
        "scan event count diverges from the materialized trace"
    );

    let batch = reduce_checked(&output.trace).expect("simulator traces reduce");
    assert_eq!(
        streamed.salvaged.reduced.measurements, batch.reduced.measurements,
        "measurements diverge"
    );
    assert_eq!(
        streamed.salvaged.reduced.counts, batch.reduced.counts,
        "count matrices diverge"
    );
    assert_eq!(
        streamed.salvaged.coverage, batch.coverage,
        "salvage coverage diverges"
    );

    // The rendered analysis report, canonically serialized: identical
    // inputs must stay identical through the whole reporting stack.
    let batch_report =
        Analyzer::new().analyze_with_counts(&batch.reduced.measurements, &batch.reduced.counts);
    let stream_report = Analyzer::new().analyze_with_counts(
        &streamed.salvaged.reduced.measurements,
        &streamed.salvaged.reduced.counts,
    );
    match (batch_report, stream_report) {
        (Ok(b), Ok(s)) => assert_eq!(canonical(&b), canonical(&s), "reports diverge"),
        (Err(b), Err(s)) => assert_eq!(b.to_string(), s.to_string()),
        _ => panic!("analysis outcomes diverge between the paths"),
    }

    if windows > 0 {
        let batch_windows =
            reduce_windows(&output.trace, windows).expect("windowing a positive-span run");
        let stream_windows = streamed.windows.expect("streamed windows were requested");
        assert_eq!(batch_windows.len(), stream_windows.len());
        for (i, (b, s)) in batch_windows.iter().zip(&stream_windows).enumerate() {
            assert_eq!(b.measurements, s.measurements, "window {i} measurements");
            assert_eq!(b.counts, s.counts, "window {i} counts");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn clean_runs_stream_identically(
        (program, ranks) in program_strategy(),
        frame_events in prop_oneof![Just(1usize), Just(3), Just(64), Just(4096)],
        jobs in prop_oneof![Just(1usize), Just(4)],
        windows in 0usize..5,
    ) {
        check_case(&program, ranks, None, None, frame_events, jobs, windows);
    }

    #[test]
    fn crash_truncated_runs_stream_identically(
        (program, ranks, faults) in faulted_program_strategy(),
        frame_events in prop_oneof![Just(1usize), Just(7), Just(4096)],
    ) {
        faults.validate(ranks).expect("generated plans are valid");
        check_case(&program, ranks, Some(&faults), None, frame_events, 1, 3);
    }

    #[test]
    fn chaos_balanced_runs_stream_identically(
        (program, ranks, faults, balance) in chaos_balanced_strategy(),
        frame_events in prop_oneof![Just(2usize), Just(64)],
        jobs in prop_oneof![Just(1usize), Just(3)],
    ) {
        faults.validate(ranks).expect("generated plans are valid");
        check_case(&program, ranks, Some(&faults), Some(&balance), frame_events, jobs, 2);
    }
}

fn cfd_program(ranks: usize, iterations: usize) -> Program {
    CfdConfig::new(ranks)
        .with_iterations(iterations)
        .with_imbalance(Imbalance::LinearSkew { spread: 0.4 })
        .build_program()
        .unwrap()
}

/// The frame size is a pure transport knob: every size — down to one
/// event per frame — must produce the same reduction to the bit.
#[test]
fn frame_size_is_invisible_in_the_results() {
    let ranks = 8;
    let program = cfd_program(ranks, 2);
    let sim = Simulator::new(MachineConfig::new(ranks));
    let run = |frame_events: usize| {
        let cfg = StreamConfig {
            frame_events,
            windows: Some(4),
            ..StreamConfig::default()
        };
        stream_reduce(&sim, &program, None, None, None, &cfg).unwrap()
    };
    let baseline = run(4096);
    for frame_events in [1, 2, 7, 64, 1000] {
        let other = run(frame_events);
        assert_eq!(
            baseline.salvaged.reduced.measurements, other.salvaged.reduced.measurements,
            "frame size {frame_events} perturbed the measurements"
        );
        assert_eq!(
            baseline.salvaged.reduced.counts, other.salvaged.reduced.counts,
            "frame size {frame_events} perturbed the counts"
        );
        assert_eq!(baseline.output.stats, other.output.stats);
        let bw = baseline.windows.as_ref().unwrap();
        let ow = other.windows.as_ref().unwrap();
        assert_eq!(bw.len(), ow.len());
        for (b, o) in bw.iter().zip(ow) {
            assert_eq!(b.measurements, o.measurements);
        }
    }
}

/// A limba-guard cancellation token tripped before the run starts: the
/// pipeline must fail with the same clean interruption the materialized
/// path reports — no hang, no partial result dressed up as complete.
#[test]
fn pre_tripped_cancellation_is_a_clean_error() {
    let ranks = 8;
    let program = cfd_program(ranks, 2);
    let sim = Simulator::new(MachineConfig::new(ranks));
    let token = CancelToken::new();
    token.cancel();
    let budget = RunBudget {
        cancel: Some(token),
        ..RunBudget::unlimited()
    };
    let reference = sim
        .run_configured(&program, None, None, Some(&budget))
        .unwrap_err();
    let streamed = stream_reduce(
        &sim,
        &program,
        None,
        None,
        Some(&budget),
        &StreamConfig::default(),
    )
    .unwrap_err();
    match streamed {
        StreamError::Sim(e) => assert_eq!(e.to_string(), reference.to_string()),
        other => panic!("expected a simulation interruption, got {other}"),
    }
}

/// An op budget that fires mid-run — a cancellation point while frames
/// are in flight. Both paths must stop with the identical diagnostic.
#[test]
fn mid_stream_budget_interruption_matches_the_materialized_path() {
    let ranks = 8;
    let program = cfd_program(ranks, 4);
    let sim = Simulator::new(MachineConfig::new(ranks));
    let budget = RunBudget {
        max_ops: Some(37),
        ..RunBudget::unlimited()
    };
    let reference = sim
        .run_configured(&program, None, None, Some(&budget))
        .unwrap_err();
    // One event per frame maximizes the frames in flight at the cut.
    let cfg = StreamConfig {
        frame_events: 1,
        ..StreamConfig::default()
    };
    let streamed = stream_reduce(&sim, &program, None, None, Some(&budget), &cfg).unwrap_err();
    match streamed {
        StreamError::Sim(e) => assert_eq!(e.to_string(), reference.to_string()),
        other => panic!("expected a simulation interruption, got {other}"),
    }
}
