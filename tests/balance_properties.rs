//! Property-based tests of the in-loop dynamic balancing policies:
//! random programs × machines × balance plans, executed on both
//! engines.
//!
//! These lock the tentpole guarantees of the balance subsystem:
//!
//! * **engine bit-identity** — the event-driven and polling engines
//!   produce byte-identical traces, statistics, and balance reports for
//!   every policy (the policies are pure functions of the shared load
//!   view, so the engines cannot diverge);
//! * **never worse** — the executor's profitability guard only accepts
//!   migrations that strictly improve the donor's op completion, so a
//!   balanced run's makespan never exceeds the unbalanced run's;
//! * **conservation** — migrated work is accounted exactly: donated ==
//!   received == moved, and each rank's local + donated work equals its
//!   program's compute spec;
//! * **jobs invariance** — replication sweeps under a balance plan are
//!   byte-identical at every worker count;
//! * **no-op identity** — a policy that can never trigger leaves the
//!   run byte-identical to no plan at all.

use limba::mpisim::{BalancePlan, MachineConfig, Program, ProgramBuilder, Simulator};
use proptest::prelude::*;

/// One globally coordinated phase; any sequence is deadlock-free.
#[derive(Debug, Clone)]
enum Phase {
    /// Per-rank compute amounts (milliseconds) — the skew balance acts on.
    Compute(Vec<u16>),
    /// Phased neighbor exchange along the chain with this payload.
    Exchange(u32),
    /// A collective of the given discriminant and payload.
    Collective(u8, u32),
}

fn phase_strategy(ranks: usize) -> impl Strategy<Value = Phase> {
    prop_oneof![
        proptest::collection::vec(0u16..300, ranks).prop_map(Phase::Compute),
        proptest::collection::vec(0u16..300, ranks).prop_map(Phase::Compute),
        (1u32..100_000).prop_map(Phase::Exchange),
        (0u8..8, 1u32..50_000).prop_map(|(k, b)| Phase::Collective(k, b)),
    ]
}

fn build(ranks: usize, phases: &[Phase]) -> Program {
    let mut pb = ProgramBuilder::new(ranks);
    let region = pb.add_region("phase region");
    for phase in phases {
        pb.spmd(|rank, mut ops| {
            ops.enter(region);
            match phase {
                Phase::Compute(amounts) => {
                    ops.compute(amounts[rank] as f64 * 1e-3);
                }
                Phase::Exchange(bytes) => {
                    for parity in 0..2usize {
                        if rank % 2 == parity {
                            if rank + 1 < ranks {
                                ops.send(rank + 1, *bytes as u64).recv(rank + 1);
                            }
                        } else if rank >= 1 {
                            ops.recv(rank - 1).send(rank - 1, *bytes as u64);
                        }
                    }
                }
                Phase::Collective(kind, bytes) => {
                    let b = *bytes as u64;
                    match kind % 8 {
                        0 => ops.reduce(b),
                        1 => ops.allreduce(b),
                        2 => ops.broadcast(b),
                        3 => ops.alltoall(b),
                        4 => ops.barrier(),
                        5 => ops.gather(b),
                        6 => ops.scatter(b),
                        _ => ops.allgather(b),
                    };
                }
            }
            ops.leave(region);
        });
    }
    pb.build().expect("generated programs are valid")
}

fn program_strategy() -> impl Strategy<Value = (Program, usize)> {
    (2usize..7)
        .prop_flat_map(|ranks| {
            (
                proptest::collection::vec(phase_strategy(ranks), 1..8),
                Just(ranks),
            )
        })
        .prop_map(|(phases, ranks)| (build(ranks, &phases), ranks))
}

/// An arbitrary machine: uniform or per-rank CPU speeds, and sometimes
/// link overrides (which become the diffusion policy's topology).
fn machine_strategy(ranks: usize) -> impl Strategy<Value = MachineConfig> {
    let speeds = proptest::option::of(proptest::collection::vec(5u8..30, ranks));
    let links = proptest::collection::vec((0..ranks, 1..ranks, 1u8..10, 1u8..20), 0..3);
    (speeds, links).prop_map(move |(speeds, links)| {
        let mut config = MachineConfig::new(ranks);
        if let Some(speeds) = speeds {
            config = config.with_cpu_speeds(speeds.into_iter().map(|s| s as f64 * 0.1).collect());
        }
        for (src, dst_offset, lat, bw) in links {
            let dst = (src + dst_offset) % ranks;
            config = config.with_link(src, dst, lat as f64 * 1e-5, bw as f64 * 1e7);
        }
        config
    })
}

/// An arbitrary — but always valid — [`BalancePlan`]: every policy
/// family, the full parameter ranges, and a random migration cap.
fn balance_plan_strategy() -> impl Strategy<Value = BalancePlan> {
    let policy = prop_oneof![
        (100u16..200).prop_map(|t| ("stealing", t)),
        (5u16..100).prop_map(|r| ("diffusion", r)),
        (2u16..10).prop_map(|w| ("anticipatory", w)),
    ];
    (1u64..1_000_000, policy, 1u8..10, 0u8..4).prop_map(
        |(seed, (name, param), max_fraction, sensitivity)| {
            let plan = match name {
                "stealing" => BalancePlan::stealing(seed, param as f64 * 0.01),
                "diffusion" => BalancePlan::diffusion(seed, param as f64 * 0.01),
                _ => BalancePlan::anticipatory(seed, param as usize, sensitivity as f64 * 0.25),
            };
            plan.with_max_fraction(max_fraction as f64 * 0.1)
        },
    )
}

fn balanced_strategy() -> impl Strategy<Value = (Program, MachineConfig, BalancePlan)> {
    program_strategy().prop_flat_map(|(program, ranks)| {
        (
            Just(program),
            machine_strategy(ranks),
            balance_plan_strategy(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn balance_differential_engines_agree((program, config, plan) in balanced_strategy()) {
        plan.validate().expect("generated plans are valid");
        let sim = Simulator::new(config);
        let event = sim.run_with_balance(&program, &plan).unwrap();
        let polling = sim.run_polling_configured(&program, None, Some(&plan), None).unwrap();
        prop_assert_eq!(
            limba::trace::binary::to_bytes(&event.trace),
            limba::trace::binary::to_bytes(&polling.trace)
        );
        prop_assert_eq!(&event.stats, &polling.stats);
        prop_assert_eq!(&event.balance, &polling.balance);
    }

    #[test]
    fn balanced_runs_never_worse((program, config, plan) in balanced_strategy()) {
        // The profitability guard: every accepted migration strictly
        // improves the donor's op completion, so the balanced makespan
        // never exceeds the unbalanced one — for any policy, machine,
        // and program.
        let sim = Simulator::new(config);
        let base = sim.run(&program).unwrap();
        let balanced = sim.run_with_balance(&program, &plan).unwrap();
        prop_assert!(
            balanced.stats.makespan <= base.stats.makespan + 1e-9,
            "balanced {} > unbalanced {} under {}",
            balanced.stats.makespan,
            base.stats.makespan,
            plan.signature()
        );
    }

    #[test]
    fn migration_accounting_conserves_work((program, config, plan) in balanced_strategy()) {
        let sim = Simulator::new(config);
        let out = sim.run_with_balance(&program, &plan).unwrap();
        let report = &out.balance;
        let donated: f64 = report.donated_seconds.iter().sum();
        let received: f64 = report.received_seconds.iter().sum();
        let tol = 1e-9 * donated.abs().max(1.0);
        prop_assert!((donated - report.moved_seconds).abs() <= tol);
        prop_assert!((received - report.moved_seconds).abs() <= tol);
        if report.migrations == 0 {
            prop_assert_eq!(report.moved_seconds, 0.0);
        }
        // Each rank's executed work is split exactly between "kept
        // local" and "donated away": the sum is its program spec.
        for rank in 0..program.ranks() {
            let spec: f64 = program
                .ops(rank)
                .iter()
                .filter_map(|op| match op {
                    limba::mpisim::Op::Compute { seconds } => Some(*seconds),
                    _ => None,
                })
                .sum();
            let accounted = report.local_seconds[rank] + report.donated_seconds[rank];
            prop_assert!(
                (accounted - spec).abs() <= 1e-9 * spec.max(1.0),
                "rank {}: local {} + donated {} != spec {}",
                rank,
                report.local_seconds[rank],
                report.donated_seconds[rank],
                spec
            );
        }
    }

    #[test]
    fn balanced_sweeps_are_jobs_invariant(
        (program, config, plan) in balanced_strategy(),
        root_seed in 1u64..100_000,
    ) {
        // Replication sweeps derive a per-replication balance seed from
        // the plan's root seed; the derivation — and therefore every
        // byte of every replication — is independent of the worker
        // count.
        let sim = Simulator::new(config);
        let reference: Vec<_> = sim
            .run_replications_configured(4, root_seed, 1, None, Some(&plan), |_, _| {
                Ok(program.clone())
            })
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        prop_assert_eq!(reference.len(), 4);
        for jobs in [2, 4] {
            let runs: Vec<_> = sim
                .run_replications_configured(4, root_seed, jobs, None, Some(&plan), |_, _| {
                    Ok(program.clone())
                })
                .into_iter()
                .map(|r| r.unwrap())
                .collect();
            for (a, b) in reference.iter().zip(&runs) {
                prop_assert_eq!(a.index, b.index);
                prop_assert_eq!(a.seed, b.seed);
                prop_assert_eq!(
                    limba::trace::binary::to_bytes(&a.output.trace),
                    limba::trace::binary::to_bytes(&b.output.trace)
                );
                prop_assert_eq!(&a.output.stats, &b.output.stats);
                prop_assert_eq!(&a.output.balance, &b.output.balance);
            }
        }
    }

    #[test]
    fn never_triggering_policy_matches_unbalanced_run(
        (program, ranks) in program_strategy(),
        seed in 1u64..1000,
    ) {
        // A stealing threshold no finite load can exceed: the policy
        // runs (warmup, load tracking, decisions) but every decision is
        // empty — the run must be byte-identical to no plan at all, on
        // both engines, and report zero migrations.
        let sim = Simulator::new(MachineConfig::new(ranks));
        let inert = BalancePlan::stealing(seed, 1e12);
        let base = sim.run(&program).unwrap();
        let balanced = sim.run_with_balance(&program, &inert).unwrap();
        prop_assert_eq!(&base.trace, &balanced.trace);
        prop_assert_eq!(&base.stats, &balanced.stats);
        prop_assert_eq!(balanced.balance.migrations, 0);
        prop_assert_eq!(balanced.balance.moved_seconds, 0.0);
        let polling = sim.run_polling_configured(&program, None, Some(&inert), None).unwrap();
        prop_assert_eq!(&base.trace, &polling.trace);
    }
}

/// The committed imbalanced presets must actually help: every policy
/// preset improves (or at least never worsens) the skewed CFD and
/// irregular-mesh proxies, and the workhorse stealing preset must
/// migrate real work on both.
#[test]
fn presets_never_worsen_imbalanced_workloads() {
    use limba::workloads::balance::{preset, PRESETS};
    use limba::workloads::cfd::CfdConfig;
    use limba::workloads::irregular::IrregularConfig;
    use limba::workloads::Imbalance;

    let ranks = 8;
    let programs = [
        (
            "cfd",
            CfdConfig::new(ranks)
                .with_iterations(3)
                .with_imbalance(Imbalance::LinearSkew { spread: 0.5 })
                .build_program()
                .unwrap(),
        ),
        (
            "irregular",
            IrregularConfig::new(ranks)
                .with_imbalance(Imbalance::RandomJitter { amplitude: 0.4 })
                .with_seed(7)
                .build_program()
                .unwrap(),
        ),
    ];
    let sim = Simulator::new(MachineConfig::new(ranks));
    for (name, program) in &programs {
        let base = sim.run(program).unwrap();
        for &policy in PRESETS {
            let plan = preset(policy).unwrap();
            let balanced = sim.run_with_balance(program, &plan).unwrap();
            assert!(
                balanced.stats.makespan <= base.stats.makespan + 1e-9,
                "{policy} worsened {name}: {} > {}",
                balanced.stats.makespan,
                base.stats.makespan
            );
            if policy == "stealing" {
                assert!(
                    balanced.balance.migrations > 0,
                    "stealing never fired on {name}"
                );
            }
        }
    }
}
