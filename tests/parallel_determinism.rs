//! Determinism lock of the parallel analysis layer: the same input
//! analyzed with any job count must serialize to the same bytes.
//!
//! These properties are what makes `--jobs` safe to expose at all — a
//! thread count is a performance knob, never a result knob.

use limba::analysis::snapshot::canonical;
use limba::analysis::{Analyzer, BatchAnalyzer};
use limba::model::{Measurements, MeasurementsBuilder, STANDARD_ACTIVITIES};
use proptest::prelude::*;

/// Random measurements: `regions × 4 × procs` with nonneg times and at
/// least one strictly positive cell.
fn measurements_strategy() -> impl Strategy<Value = Measurements> {
    (2usize..6, 2usize..9).prop_flat_map(|(regions, procs)| {
        proptest::collection::vec(0.0f64..100.0, regions * 4 * procs)
            .prop_filter("some time", |v| v.iter().sum::<f64>() > 1.0)
            .prop_map(move |data| {
                let mut b = MeasurementsBuilder::new(procs);
                let mut it = data.into_iter();
                for r in 0..regions {
                    let id = b.add_region(format!("r{r}"));
                    for kind in STANDARD_ACTIVITIES {
                        for p in 0..procs {
                            b.record(id, kind, p, it.next().expect("sized")).unwrap();
                        }
                    }
                }
                b.build().unwrap()
            })
    })
}

/// Canonical bytes of every batch slot: report bytes for `Ok`, the error
/// rendering for `Err` — so error slots are determinism-checked too.
fn batch_bytes(batch: &BatchAnalyzer, items: &[Measurements]) -> Vec<String> {
    batch
        .analyze_batch(items)
        .iter()
        .map(|r| match r {
            Ok(report) => canonical(report),
            Err(e) => format!("error: {e}"),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batch_reports_are_byte_identical_across_job_counts(
        items in proptest::collection::vec(measurements_strategy(), 1..5)
    ) {
        let reference = batch_bytes(
            &BatchAnalyzer::new(Analyzer::new()).with_jobs(1),
            &items,
        );
        let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        for jobs in [4, cpus] {
            let parallel = batch_bytes(
                &BatchAnalyzer::new(Analyzer::new()).with_jobs(jobs),
                &items,
            );
            prop_assert_eq!(&parallel, &reference, "jobs={}", jobs);
        }
    }

    #[test]
    fn parallel_analyze_equals_sequential(m in measurements_strategy()) {
        let sequential = Analyzer::new().analyze(&m).unwrap();
        for jobs in [2, 4, 0] {
            let parallel = Analyzer::new().with_jobs(jobs).analyze(&m).unwrap();
            prop_assert_eq!(&parallel, &sequential, "jobs={}", jobs);
            prop_assert_eq!(canonical(&parallel), canonical(&sequential));
        }
    }
}

#[test]
fn paper_case_study_is_jobs_invariant() {
    let m = limba::calibrate::paper::paper_measurements().unwrap();
    let reference = canonical(&Analyzer::new().analyze(&m).unwrap());
    for jobs in [2, 8] {
        let report = Analyzer::new().with_jobs(jobs).analyze(&m).unwrap();
        assert_eq!(canonical(&report), reference, "jobs={jobs}");
    }
}

#[test]
fn shared_cache_does_not_change_batch_results() {
    use limba::analysis::ReportCache;
    let m = limba::calibrate::paper::paper_measurements().unwrap();
    let items = vec![m.clone(), m.clone(), m];
    let plain = batch_bytes(&BatchAnalyzer::new(Analyzer::new()).with_jobs(4), &items);
    let cache = ReportCache::new();
    let cached_batch = BatchAnalyzer::new(Analyzer::new())
        .with_jobs(4)
        .with_cache(cache.clone());
    // Twice: the second pass is all cache hits.
    assert_eq!(batch_bytes(&cached_batch, &items), plain);
    assert_eq!(batch_bytes(&cached_batch, &items), plain);
    // Three identical inputs memoize as one entry.
    assert_eq!(cache.len(), 1);
}
