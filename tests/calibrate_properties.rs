//! Property-based tests of the inverse-synthesis solver.

use limba::calibrate::{max_dispersion, solve_weights, Placement, Shape, SyntheticCase};
use limba::model::ActivityKind;
use limba::stats::dispersion::{DispersionIndex, EuclideanFromMean};
use proptest::prelude::*;

fn shapes() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::Ramp),
        (1usize..15).prop_map(|high| Shape::Bimodal { high }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solved_weights_hit_the_target_exactly(
        shape in shapes(),
        n in 2usize..64,
        frac in 0.0f64..0.95,
    ) {
        // Clamp the target to what the shape can reach for this n.
        let shape = match shape {
            Shape::Bimodal { high } if high >= n => Shape::Bimodal { high: n - 1 },
            other => other,
        };
        let max = max_dispersion(&shape, n).unwrap();
        let target = frac * max;
        let w = solve_weights(&shape, n, target).unwrap();
        prop_assert_eq!(w.len(), n);
        // Mean exactly one.
        let mean = w.iter().sum::<f64>() / n as f64;
        prop_assert!((mean - 1.0).abs() < 1e-9, "mean {}", mean);
        // Non-negative.
        prop_assert!(w.iter().all(|&x| x >= 0.0));
        // Dispersion matches.
        if target > 0.0 {
            let got = EuclideanFromMean.index(&w).unwrap();
            prop_assert!((got - target).abs() < 1e-7, "{} vs {}", got, target);
        }
    }

    #[test]
    fn weights_are_monotone_in_position(
        n in 2usize..32,
        frac in 0.01f64..0.9,
    ) {
        let max = max_dispersion(&Shape::Ramp, n).unwrap();
        let w = solve_weights(&Shape::Ramp, n, frac * max).unwrap();
        for pair in w.windows(2) {
            prop_assert!(pair[1] >= pair[0] - 1e-12);
        }
    }

    #[test]
    fn targets_above_the_maximum_are_rejected(
        shape in shapes(),
        n in 2usize..32,
        excess in 1.01f64..5.0,
    ) {
        let shape = match shape {
            Shape::Bimodal { high } if high >= n => Shape::Bimodal { high: n - 1 },
            other => other,
        };
        let max = max_dispersion(&shape, n).unwrap();
        prop_assert!(solve_weights(&shape, n, max * excess + 1e-6).is_err());
    }

    #[test]
    fn placements_permute_without_changing_the_dispersion(
        n in 2usize..24,
        frac in 0.0f64..0.9,
        offset in 0usize..24,
        outlier in 0usize..24,
    ) {
        let max = max_dispersion(&Shape::Ramp, n).unwrap();
        let w = solve_weights(&Shape::Ramp, n, frac * max).unwrap();
        let base = EuclideanFromMean.index(&w).unwrap();
        for placement in [
            Placement::identity(n),
            Placement::rotated(n, offset % n),
            Placement::outlier_low(n, outlier % n),
            Placement::outlier_high(n, outlier % n),
        ] {
            let placed = placement.apply(&w);
            // A permutation: same multiset.
            let mut a = w.clone();
            let mut b = placed.clone();
            a.sort_by(f64::total_cmp);
            b.sort_by(f64::total_cmp);
            prop_assert_eq!(a, b);
            let id = EuclideanFromMean.index(&placed).unwrap();
            prop_assert!((id - base).abs() < 1e-12);
        }
    }

    #[test]
    fn synthetic_cases_round_trip_through_analysis(
        totals in proptest::collection::vec(0.1f64..50.0, 1..5),
        fracs in proptest::collection::vec(0.0f64..0.8, 1..5),
    ) {
        let n = 8usize;
        let max = max_dispersion(&Shape::Ramp, n).unwrap();
        let mut case = SyntheticCase::new(n);
        let mut specs = Vec::new();
        for (i, (&total, &frac)) in totals.iter().zip(&fracs).enumerate() {
            let region = case.add_region(format!("r{i}"));
            let target = frac * max;
            case.set(region, ActivityKind::Computation, total, target).unwrap();
            specs.push((region, total, target));
        }
        let m = case.build().unwrap();
        for (region, total, target) in specs {
            prop_assert!((m.region_activity_time(region, ActivityKind::Computation) - total).abs() < 1e-9);
            let slice = m.processor_slice(region, ActivityKind::Computation).unwrap();
            let id = EuclideanFromMean.index(slice).unwrap();
            prop_assert!((id - target).abs() < 1e-7);
        }
    }
}
