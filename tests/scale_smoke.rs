//! Scale smoke test: the simulator's hot state is arena-backed and its
//! channel routing is sparse, so memory must grow sub-quadratically in
//! the rank count, and the engine triple must stay bit-identical at
//! thousands of ranks — not just at the 8–64 ranks the rest of the
//! suite exercises.
//!
//! The peak-footprint check uses a counting `GlobalAlloc` shim over the
//! system allocator. Everything runs inside one `#[test]` so the
//! bookkeeping is never interleaved with unrelated allocations from a
//! concurrent test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use limba::analysis::snapshot::canonical;
use limba::analysis::Analyzer;
use limba::mpisim::{MachineConfig, SimOutput, Simulator};
use limba::workloads::{cfd::CfdConfig, Imbalance};

/// Tracks live bytes and the high-water mark across every allocation in
/// the test binary. `realloc`/`alloc_zeroed` use the default trait
/// implementations, which route through `alloc`/`dealloc`, so they are
/// tracked too.
struct CountingAlloc;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            let live = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` and returns its result plus the peak number of bytes live
/// at any point during the call, net of what was already live before.
fn with_peak<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let before = CURRENT.load(Ordering::Relaxed);
    PEAK.store(before, Ordering::Relaxed);
    let result = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (result, peak.saturating_sub(before))
}

fn cfd_event_run(ranks: usize) -> SimOutput {
    let program = CfdConfig::new(ranks)
        .with_imbalance(Imbalance::RandomJitter { amplitude: 0.2 })
        .with_seed(2003)
        .build_program()
        .expect("cfd builds");
    Simulator::new(MachineConfig::new(ranks))
        .run(&program)
        .expect("event run")
}

fn canonical_digest(output: &SimOutput) -> String {
    let reduced = output.reduce().expect("reduce");
    let report = Analyzer::new()
        .analyze(&reduced.measurements)
        .expect("analyze");
    canonical(&report)
}

#[test]
fn thousands_of_ranks_stay_sub_quadratic_and_engine_identical() {
    // Memory scaling: quadruple the ranks and require the peak
    // footprint to grow by strictly less than 8x. Linear structures
    // (rank arenas, per-rank ops, trace events) grow ~4x; any dense
    // rank-pair table — the old channel index or fault sequence-number
    // matrix — would grow 16x and trip this immediately.
    let (out_1k, peak_1k) = with_peak(|| cfd_event_run(1024));
    drop(out_1k);
    let (out_4k, peak_4k) = with_peak(|| cfd_event_run(4096));
    assert!(peak_1k > 0, "allocator shim is not counting");
    let growth = peak_4k as f64 / peak_1k as f64;
    assert!(
        growth < 8.0,
        "peak footprint grew {growth:.1}x from 1k to 4k ranks \
         (peak_1k = {peak_1k} B, peak_4k = {peak_4k} B); \
         hot state is no longer sub-quadratic in the rank count"
    );

    // Engine triple at 4k ranks: event, polling, and parallel event
    // must agree byte for byte, down to the canonical analysis digest.
    let ranks = 4096usize;
    let program = CfdConfig::new(ranks)
        .with_imbalance(Imbalance::RandomJitter { amplitude: 0.2 })
        .with_seed(2003)
        .build_program()
        .expect("cfd builds");
    let sim = Simulator::new(MachineConfig::new(ranks));
    let polling = sim.run_polling(&program).expect("polling run");
    assert_eq!(out_4k.trace, polling.trace, "4k: polling trace diverges");
    assert_eq!(out_4k.stats, polling.stats, "4k: polling stats diverge");
    let par = sim
        .run_event_parallel(&program, 4)
        .expect("parallel event run");
    assert_eq!(out_4k.trace, par.trace, "4k: event-par trace diverges");
    assert_eq!(out_4k.stats, par.stats, "4k: event-par stats diverge");
    assert_eq!(
        canonical_digest(&out_4k),
        canonical_digest(&polling),
        "4k: canonical snapshot digest diverges between engines"
    );
}
