//! Property-based tests of the discrete-event simulator on randomly
//! generated, deadlock-free-by-construction programs.

use limba::model::{ActivityKind, ProcessorId};
use limba::mpisim::{BalancePlan, FaultPlan, MachineConfig, Program, ProgramBuilder, Simulator};
use proptest::prelude::*;

/// One phase of a generated program; every variant is globally
/// coordinated, so any sequence of phases is deadlock-free.
#[derive(Debug, Clone)]
enum Phase {
    /// Per-rank compute amounts (milliseconds).
    Compute(Vec<u16>),
    /// Phased neighbor exchange along the chain with this payload.
    Exchange(u32),
    /// A collective of the given discriminant and payload.
    Collective(u8, u32),
    /// Nonblocking ring shift: every rank isends right, irecvs left,
    /// computes a little, then waits both.
    RingShift(u32),
}

fn phase_strategy(ranks: usize) -> impl Strategy<Value = Phase> {
    prop_oneof![
        proptest::collection::vec(0u16..200, ranks).prop_map(Phase::Compute),
        (1u32..200_000).prop_map(Phase::Exchange),
        (0u8..8, 1u32..100_000).prop_map(|(k, b)| Phase::Collective(k, b)),
        (1u32..200_000).prop_map(Phase::RingShift),
    ]
}

fn program_strategy() -> impl Strategy<Value = (Program, usize)> {
    (2usize..7)
        .prop_flat_map(|ranks| {
            (
                proptest::collection::vec(phase_strategy(ranks), 1..8),
                Just(ranks),
            )
        })
        .prop_map(|(phases, ranks)| {
            let mut pb = ProgramBuilder::new(ranks);
            let region = pb.add_region("phase region");
            for (pi, phase) in phases.iter().enumerate() {
                pb.spmd(|rank, mut ops| {
                    ops.enter(region);
                    match phase {
                        Phase::Compute(amounts) => {
                            ops.compute(amounts[rank] as f64 * 1e-3);
                        }
                        Phase::Exchange(bytes) => {
                            // The two-phase pairing used by the workloads.
                            for parity in 0..2usize {
                                if rank % 2 == parity {
                                    if rank + 1 < ranks {
                                        ops.send(rank + 1, *bytes as u64).recv(rank + 1);
                                    }
                                } else if rank >= 1 {
                                    ops.recv(rank - 1).send(rank - 1, *bytes as u64);
                                }
                            }
                        }
                        Phase::Collective(kind, bytes) => {
                            let b = *bytes as u64;
                            match kind % 8 {
                                0 => ops.reduce(b),
                                1 => ops.allreduce(b),
                                2 => ops.broadcast(b),
                                3 => ops.alltoall(b),
                                4 => ops.barrier(),
                                5 => ops.gather(b),
                                6 => ops.scatter(b),
                                _ => ops.allgather(b),
                            };
                        }
                        Phase::RingShift(bytes) => {
                            let right = (rank + 1) % ranks;
                            let left = (rank + ranks - 1) % ranks;
                            let h = (pi as u32) * 2;
                            ops.isend(right, *bytes as u64, h)
                                .irecv(left, h + 1)
                                .compute(0.001)
                                .wait(h)
                                .wait(h + 1);
                        }
                    }
                    ops.leave(region);
                });
            }
            (pb.build().expect("generated programs are valid"), ranks)
        })
}

/// An arbitrary — but always valid — [`FaultPlan`] for a machine of
/// `ranks` ranks: at most one slowdown window and one crash per rank
/// (keeping windows disjoint and crashes unique by construction), a few
/// degraded links, and an optional lossy-network clause.
fn fault_plan_strategy(ranks: usize) -> impl Strategy<Value = FaultPlan> {
    let slowdowns = proptest::collection::vec(
        proptest::option::of((0u16..800, 1u16..800, 15u8..50)),
        ranks,
    );
    let links = proptest::collection::vec(
        (0..ranks, 1..ranks, 0u16..500, 1u16..500, 1u8..10, 1u8..10),
        0..3,
    );
    let loss = proptest::option::of((0u8..60, 0u8..4, 1u16..50, 10u8..30));
    let crashes = proptest::collection::vec(proptest::option::of(1u16..1500), ranks);
    (1u64..1_000_000, slowdowns, links, loss, crashes).prop_map(
        move |(seed, slowdowns, links, loss, crashes)| {
            let mut plan = FaultPlan::new(seed);
            for (rank, s) in slowdowns.into_iter().enumerate() {
                if let Some((start, len, factor)) = s {
                    plan = plan.with_slowdown(
                        rank,
                        start as f64 * 1e-3,
                        (start + len) as f64 * 1e-3,
                        factor as f64 * 0.1,
                    );
                }
            }
            for (src, dst_offset, start, len, lat, bw) in links {
                plan = plan.with_link_fault(
                    src,
                    (src + dst_offset) % ranks,
                    start as f64 * 1e-3,
                    (start + len) as f64 * 1e-3,
                    lat as f64,
                    bw as f64 * 0.5,
                );
            }
            if let Some((rate, retries, timeout, backoff)) = loss {
                plan = plan.with_message_loss(
                    rate as f64 * 0.01,
                    retries as u32,
                    timeout as f64 * 1e-4,
                    backoff as f64 * 0.1,
                );
            }
            for (rank, c) in crashes.into_iter().enumerate() {
                if let Some(time) = c {
                    plan = plan.with_crash(rank, time as f64 * 1e-3);
                }
            }
            plan
        },
    )
}

fn faulted_program_strategy() -> impl Strategy<Value = (Program, usize, FaultPlan)> {
    program_strategy()
        .prop_flat_map(|(program, ranks)| (Just(program), Just(ranks), fault_plan_strategy(ranks)))
}

/// An arbitrary balance plan spanning all three policy families.
fn balance_plan_strategy() -> impl Strategy<Value = BalancePlan> {
    (1u64..1_000_000, 0u8..3, 1u16..100).prop_map(|(seed, kind, p)| match kind {
        0 => BalancePlan::stealing(seed, 1.0 + p as f64 * 0.01),
        1 => BalancePlan::diffusion(seed, p as f64 * 0.01),
        _ => BalancePlan::anticipatory(seed, 2 + (p as usize % 8), p as f64 * 0.005),
    })
}

fn chaos_balanced_strategy() -> impl Strategy<Value = (Program, usize, FaultPlan, BalancePlan)> {
    faulted_program_strategy().prop_flat_map(|(program, ranks, faults)| {
        (
            Just(program),
            Just(ranks),
            Just(faults),
            balance_plan_strategy(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_programs_never_deadlock((program, ranks) in program_strategy()) {
        let sim = Simulator::new(MachineConfig::new(ranks));
        let out = sim.run(&program).expect("deadlock-free by construction");
        prop_assert!(out.stats.makespan.is_finite());
        prop_assert!(out.stats.makespan >= 0.0);
    }

    #[test]
    fn simulation_is_deterministic((program, ranks) in program_strategy()) {
        let sim = Simulator::new(MachineConfig::new(ranks));
        let a = sim.run(&program).unwrap();
        let b = sim.run(&program).unwrap();
        prop_assert_eq!(a.trace, b.trace);
        prop_assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn traces_validate_and_reduce((program, ranks) in program_strategy()) {
        let out = Simulator::new(MachineConfig::new(ranks)).run(&program).unwrap();
        out.trace.validate().expect("simulator traces are well-formed");
        let reduced = out.reduce().unwrap();
        // Every rank's attributed time is bounded by the makespan.
        for p in 0..ranks {
            let t = reduced.measurements.processor_time(ProcessorId::new(p));
            prop_assert!(t <= out.stats.makespan + 1e-9);
        }
    }

    #[test]
    fn makespan_is_at_least_the_heaviest_rank((program, ranks) in program_strategy()) {
        let out = Simulator::new(MachineConfig::new(ranks)).run(&program).unwrap();
        // Lower bound: the largest pure-compute sum over ranks.
        let mut heaviest = 0.0f64;
        for rank in 0..ranks {
            let compute: f64 = program
                .ops(rank)
                .iter()
                .filter_map(|op| match op {
                    limba::mpisim::Op::Compute { seconds } => Some(*seconds),
                    _ => None,
                })
                .sum();
            heaviest = heaviest.max(compute);
        }
        prop_assert!(out.stats.makespan >= heaviest - 1e-9);
    }

    #[test]
    fn slowing_one_cpu_never_reduces_makespan((program, ranks) in program_strategy(), slow in 0usize..7) {
        let slow = slow % ranks;
        let base = Simulator::new(MachineConfig::new(ranks)).run(&program).unwrap();
        let degraded = Simulator::new(MachineConfig::new(ranks).with_cpu_speed(slow, 0.5))
            .run(&program)
            .unwrap();
        prop_assert!(degraded.stats.makespan >= base.stats.makespan - 1e-9);
    }

    #[test]
    fn sent_and_received_counts_agree((program, ranks) in program_strategy()) {
        let out = Simulator::new(MachineConfig::new(ranks)).run(&program).unwrap();
        let reduced = out.reduce().unwrap();
        use limba::model::CountKind;
        let total = |kind: CountKind| -> f64 {
            reduced
                .counts
                .cells()
                .filter(|(_, k, _)| *k == kind)
                .map(|(_, _, s)| s.iter().sum::<f64>())
                .sum()
        };
        prop_assert_eq!(total(CountKind::MessagesSent), total(CountKind::MessagesReceived));
        prop_assert_eq!(total(CountKind::BytesSent), total(CountKind::BytesReceived));
    }

    #[test]
    fn compute_time_matches_program_spec((program, ranks) in program_strategy()) {
        // With homogeneous CPUs, each rank's attributed computation time
        // equals its program's compute sum exactly (waits go to other
        // activities).
        let out = Simulator::new(MachineConfig::new(ranks)).run(&program).unwrap();
        let m = out.reduce().unwrap().measurements;
        for rank in 0..ranks {
            let spec: f64 = program
                .ops(rank)
                .iter()
                .filter_map(|op| match op {
                    limba::mpisim::Op::Compute { seconds } => Some(*seconds),
                    _ => None,
                })
                .sum();
            let measured: f64 = m
                .region_ids()
                .map(|r| m.time(r, ActivityKind::Computation, ProcessorId::new(rank)))
                .sum();
            prop_assert!(
                (measured - spec).abs() < 1e-9,
                "rank {}: measured {} vs spec {}",
                rank, measured, spec
            );
        }
    }

    // -----------------------------------------------------------------
    // Chaos differential: random programs × random fault plans.

    #[test]
    fn chaos_differential_engines_agree((program, ranks, plan) in faulted_program_strategy()) {
        plan.validate(ranks).expect("generated plans are valid");
        let sim = Simulator::new(MachineConfig::new(ranks));
        match (
            sim.run_with_faults(&program, &plan),
            sim.run_polling_with_faults(&program, &plan),
        ) {
            (Ok(event), Ok(polling)) => {
                // Bit-identical traces (compared as serialized bytes),
                // statistics, and fault diagnostics — across the whole
                // engine triple, including the parallel scheduler.
                prop_assert_eq!(
                    limba::trace::binary::to_bytes(&event.trace),
                    limba::trace::binary::to_bytes(&polling.trace)
                );
                prop_assert_eq!(&event.stats, &polling.stats);
                prop_assert_eq!(&event.faults, &polling.faults);
                let par = sim
                    .run_parallel_configured(&program, Some(&plan), None, None, 4)
                    .expect("event-par agrees with event on outcome");
                prop_assert_eq!(&event.trace, &par.trace);
                prop_assert_eq!(&event.stats, &par.stats);
                prop_assert_eq!(&event.faults, &par.faults);
            }
            (Err(event), Err(polling)) => {
                prop_assert_eq!(event.to_string(), polling.to_string());
                let par = sim
                    .run_parallel_configured(&program, Some(&plan), None, None, 4)
                    .unwrap_err();
                prop_assert_eq!(event.to_string(), par.to_string());
            }
            (event, polling) => {
                return Err(proptest::test_runner::TestCaseError::Fail(format!(
                    "engines disagree on outcome: event {event:?} vs polling {polling:?}"
                )));
            }
        }
    }

    #[test]
    fn faulted_runs_are_deterministic((program, ranks, plan) in faulted_program_strategy()) {
        let sim = Simulator::new(MachineConfig::new(ranks));
        let a = sim.run_with_faults(&program, &plan).unwrap();
        let b = sim.run_with_faults(&program, &plan).unwrap();
        prop_assert_eq!(&a.trace, &b.trace);
        prop_assert_eq!(&a.stats, &b.stats);
        prop_assert_eq!(&a.faults, &b.faults);
    }

    #[test]
    fn faulted_traces_always_salvage((program, ranks, plan) in faulted_program_strategy()) {
        // Whatever the fault plan truncates, the analysis layer accepts
        // the trace: `reduce_checked` salvages it, and every rank it
        // flags as incomplete is one the fault report can explain.
        let out = Simulator::new(MachineConfig::new(ranks))
            .run_with_faults(&program, &plan)
            .unwrap();
        let salvaged = limba::trace::reduce_checked(&out.trace)
            .expect("simulator traces always salvage");
        prop_assert_eq!(salvaged.coverage.len(), ranks);
        let explained: Vec<usize> = out.faults.incomplete_ranks();
        for proc in salvaged.incomplete_ranks() {
            prop_assert!(
                explained.contains(&(proc as usize)),
                "rank {} truncated without a crash or interruption (faults: {:?})",
                proc, out.faults
            );
        }
        // Salvaged per-rank time never exceeds the makespan.
        for p in 0..ranks {
            let t = salvaged.reduced.measurements.processor_time(ProcessorId::new(p));
            prop_assert!(t <= out.stats.makespan + 1e-9);
        }
    }

    #[test]
    fn clean_plan_matches_unfaulted_run((program, ranks) in program_strategy(), seed in 1u64..1000) {
        // A fault plan that injects nothing must be byte-identical to no
        // plan at all, on both engines.
        let sim = Simulator::new(MachineConfig::new(ranks));
        let empty = FaultPlan::new(seed);
        let base = sim.run(&program).unwrap();
        let faulted = sim.run_with_faults(&program, &empty).unwrap();
        prop_assert_eq!(&base.trace, &faulted.trace);
        prop_assert_eq!(&base.stats, &faulted.stats);
        prop_assert!(faulted.faults.is_clean());
        let polling = sim.run_polling_with_faults(&program, &empty).unwrap();
        prop_assert_eq!(&base.trace, &polling.trace);
    }

    #[test]
    fn balanced_chaos_differential_engines_agree(
        (program, ranks, faults, balance) in chaos_balanced_strategy(),
    ) {
        // Faults and dynamic balancing compose: with both active, the
        // event and polling engines still agree byte-for-byte — on the
        // trace, statistics, fault diagnostics, AND the migration
        // ledger.
        faults.validate(ranks).expect("generated fault plans are valid");
        balance.validate().expect("generated balance plans are valid");
        let sim = Simulator::new(MachineConfig::new(ranks));
        match (
            sim.run_configured(&program, Some(&faults), Some(&balance), None),
            sim.run_polling_configured(&program, Some(&faults), Some(&balance), None),
        ) {
            (Ok(event), Ok(polling)) => {
                prop_assert_eq!(
                    limba::trace::binary::to_bytes(&event.trace),
                    limba::trace::binary::to_bytes(&polling.trace)
                );
                prop_assert_eq!(&event.stats, &polling.stats);
                prop_assert_eq!(&event.faults, &polling.faults);
                prop_assert_eq!(&event.balance, &polling.balance);
                let par = sim
                    .run_parallel_configured(&program, Some(&faults), Some(&balance), None, 4)
                    .expect("event-par agrees with event on outcome");
                prop_assert_eq!(&event.trace, &par.trace);
                prop_assert_eq!(&event.stats, &par.stats);
                prop_assert_eq!(&event.faults, &par.faults);
                prop_assert_eq!(&event.balance, &par.balance);
            }
            (Err(event), Err(polling)) => {
                prop_assert_eq!(event.to_string(), polling.to_string());
            }
            (event, polling) => {
                return Err(proptest::test_runner::TestCaseError::Fail(format!(
                    "engines disagree on outcome: event {event:?} vs polling {polling:?}"
                )));
            }
        }
    }

    #[test]
    fn crashed_ranks_stolen_work_stays_accounted(
        (program, ranks, faults, balance) in chaos_balanced_strategy(),
    ) {
        // A crash truncates execution; it must never corrupt the
        // migration ledger. Conservation still holds exactly (donated ==
        // moved == received), and no rank's accounted work exceeds its
        // program spec — stolen work of a crashed rank is not
        // resurrected elsewhere.
        let sim = Simulator::new(MachineConfig::new(ranks));
        let Ok(out) = sim.run_configured(&program, Some(&faults), Some(&balance), None) else {
            return Ok(()); // total-crash outcomes are covered above
        };
        let report = &out.balance;
        let donated: f64 = report.donated_seconds.iter().sum();
        let received: f64 = report.received_seconds.iter().sum();
        let tol = 1e-9 * donated.abs().max(1.0);
        prop_assert!((donated - report.moved_seconds).abs() <= tol);
        prop_assert!((received - report.moved_seconds).abs() <= tol);
        for rank in 0..ranks {
            let spec: f64 = program
                .ops(rank)
                .iter()
                .filter_map(|op| match op {
                    limba::mpisim::Op::Compute { seconds } => Some(*seconds),
                    _ => None,
                })
                .sum();
            prop_assert!(
                report.local_seconds[rank] + report.donated_seconds[rank] <= spec + 1e-9,
                "rank {} accounted for more work than its spec under faults",
                rank
            );
        }
    }
}
