//! Rendering integration tests: the text report and SVG figures of the
//! paper's case study contain the published numbers and are well formed.

use limba::analysis::Analyzer;
use limba::calibrate::paper::paper_measurements;
use limba::model::ActivityKind;

fn paper_report() -> limba::analysis::Report {
    Analyzer::new()
        .analyze(&paper_measurements().unwrap())
        .unwrap()
}

#[test]
fn text_report_contains_published_values() {
    let report = paper_report();
    let text = limba::viz::report::render(&report);
    // Table 1 values (three decimals in the profile table).
    for needle in [
        "19.051", "14.220", "10.900", "10.540", "9.041", "0.692", "0.310",
    ] {
        assert!(text.contains(needle), "missing overall {needle}");
    }
    // Table 2 values (five decimals in the dispersion table).
    for needle in ["0.03674", "0.30571", "0.23200", "0.12870"] {
        assert!(text.contains(needle), "missing ID {needle}");
    }
    // The clustering section names the paper's groups.
    assert!(text.contains("group 0: loop 1, loop 2"));
    // Findings.
    assert!(text.contains("most imbalanced activity: synchronization"));
    assert!(text.contains("tuning candidate: loop 1"));
}

#[test]
fn profile_csv_round_trips_table1() {
    let report = paper_report();
    let csv = limba::viz::csv::profile_csv(&report);
    let mut lines = csv.lines();
    let header = lines.next().unwrap();
    assert_eq!(
        header,
        "region,overall,computation,point-to-point,collective,synchronization"
    );
    let loop1 = lines.next().unwrap();
    let fields: Vec<&str> = loop1.split(',').collect();
    assert_eq!(fields[0], "loop 1");
    assert!((fields[1].parse::<f64>().unwrap() - 19.051).abs() < 1e-9);
    assert!((fields[2].parse::<f64>().unwrap() - 12.24).abs() < 1e-9);
    assert_eq!(fields[3], ""); // no point-to-point in loop 1
}

#[test]
fn paper_svgs_are_well_formed() {
    let report = paper_report();
    let fig1 = report.pattern_for(ActivityKind::Computation).unwrap();
    let svg = limba::viz::svg::pattern_svg(fig1);
    assert!(svg.starts_with("<svg"));
    assert!(svg.ends_with("</svg>\n"));
    // 7 loops × 16 processors of cells.
    assert_eq!(svg.matches("<rect").count(), 7 * 16);

    let heat = limba::viz::svg::processor_heatmap_svg(&report);
    assert!(heat.contains("ID_P heatmap"));
    assert_eq!(heat.matches("<rect").count(), 7 * 16);
}

#[test]
fn ascii_patterns_have_one_glyph_per_processor() {
    let report = paper_report();
    let fig2 = report.pattern_for(ActivityKind::PointToPoint).unwrap();
    let text = limba::viz::pattern::render(fig2);
    // Rows: "loop 3", "loop 4", "loop 5", "loop 6" with 16 glyphs each.
    for line in text.lines().skip(2) {
        let glyphs: String = line.split_whitespace().last().unwrap().to_string();
        assert_eq!(glyphs.chars().count(), 16, "row {line:?}");
    }
}

#[test]
fn timeline_of_a_simulated_run_marks_all_activities() {
    use limba::mpisim::{MachineConfig, Simulator};
    use limba::workloads::cfd::CfdConfig;
    let program = CfdConfig::new(4).build_program().unwrap();
    let out = Simulator::new(MachineConfig::new(4)).run(&program).unwrap();
    let svg = limba::viz::timeline::timeline_svg(&out.trace, 1000).unwrap();
    // All four legend entries and at least one lane per rank.
    for label in [">comp<", ">p2p<", ">coll<", ">sync<"] {
        assert!(svg.contains(label), "missing legend {label}");
    }
    for p in 0..4 {
        assert!(svg.contains(&format!(">p{p}<")));
    }
}
