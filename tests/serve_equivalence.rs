//! The serving differential harness: reports served by the live
//! ingestion server must be byte-identical to the offline analysis of
//! the same trace bytes — across concurrent tenants, workloads, fault
//! plans, mid-stream disconnects, reconnect-resume, and server
//! kill-and-restart from a checkpoint directory. The server is run
//! in-process on a loopback socket with an ephemeral port; every
//! reference report is computed through the *materialized* path
//! (decode → salvaging reduce → analyzer → renderer), which the
//! stream-equivalence harness already locks against the streaming
//! folds the server actually runs.

use std::io::Read;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use limba::analysis::Analyzer;
use limba::mpisim::{FaultPlan, MachineConfig, Simulator};
use limba::serve::client::{self, PushStatus};
use limba::serve::{PushSession, ServeConfig, Server};
use limba::stats::dispersion::DispersionKind;
use limba::stats::rank::RankingCriterion;
use limba::trace::{Event, TraceSink, WriteSink};
use limba::workloads::{
    cfd::CfdConfig, master_worker::MasterWorkerConfig, stencil::StencilConfig, Imbalance,
};
use proptest::prelude::*;

/// A scratch directory unique to this test binary's process.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("limba-serve-eq-{}-{label}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// One generated tenant workload: its name and its full trace bytes.
#[derive(Debug, Clone)]
struct Tenant {
    name: String,
    bytes: Vec<u8>,
}

/// Encodes a simulated run as chunked-v3 bytes — the exact container
/// `limba push` streams.
fn trace_bytes(
    workload: u8,
    ranks: usize,
    imbalance: Imbalance,
    faults: Option<&FaultPlan>,
) -> Vec<u8> {
    let program = match workload {
        0 => CfdConfig::new(ranks)
            .with_iterations(1)
            .with_imbalance(imbalance)
            .build_program(),
        1 => {
            let cols = if ranks.is_multiple_of(2) { 2 } else { 1 };
            StencilConfig::new(ranks / cols, cols)
                .with_imbalance(imbalance)
                .build_program()
        }
        _ => MasterWorkerConfig::new(ranks)
            .with_tasks(ranks * 4)
            .with_imbalance(imbalance)
            .build_program(),
    }
    .expect("generated workloads build");
    let output = Simulator::new(MachineConfig::new(ranks))
        .run_configured(&program, faults, None, None)
        .expect("simulation runs");
    let mut bytes = Vec::new();
    let mut sink = WriteSink::new(&mut bytes);
    sink.begin(output.trace.processors(), output.trace.region_names())
        .expect("begin");
    sink.events(output.trace.events()).expect("events");
    sink.finish().expect("finish");
    bytes
}

/// The offline reference report for complete trace bytes, through the
/// materialized path with the analyzer defaults the server pins.
fn offline_report(bytes: &[u8]) -> String {
    let trace = limba::trace::binary::from_bytes(bytes).expect("bytes decode");
    let salvaged = limba::trace::reduce_checked(&trace).expect("reduce");
    let report = Analyzer::new()
        .with_dispersion(DispersionKind::Euclidean)
        .with_criterion(RankingCriterion::Maximum)
        .with_cluster_k(2)
        .analyze_with_counts(&salvaged.reduced.measurements, &salvaged.reduced.counts)
        .expect("analyze");
    limba::viz::report::render_with_coverage(&report, &salvaged.coverage)
}

/// Writes `bytes` to a file under `dir` and returns the path.
fn spool_to(dir: &Path, name: &str, bytes: &[u8]) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, bytes).expect("write trace bytes");
    path
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// N tenants push concurrently; every push returns Complete, the
    /// returned report is byte-identical to the offline analysis of
    /// the same bytes, and the query protocol serves the same bytes
    /// again afterwards.
    #[test]
    fn concurrent_pushes_match_offline_analysis(
        specs in proptest::collection::vec(
            (
                0u8..3,                         // workload family
                2usize..6,                      // ranks
                prop_oneof![
                    Just(Imbalance::None),
                    (0.1f64..0.8).prop_map(|s| Imbalance::LinearSkew { spread: s }),
                    (0.05f64..0.4).prop_map(|a| Imbalance::RandomJitter { amplitude: a }),
                ],
            ),
            2..5,
        ),
    ) {
        let dir = scratch("concurrent");
        let server = Server::start("127.0.0.1:0", ServeConfig::default())
            .expect("server starts");
        let addr = server.addr().to_string();

        let tenants: Vec<Tenant> = specs
            .iter()
            .enumerate()
            .map(|(i, (w, ranks, imb))| Tenant {
                name: format!("tenant{i}"),
                bytes: trace_bytes(*w, *ranks, *imb, None),
            })
            .collect();

        // All clients push at once, one thread each.
        let outcomes: Vec<(String, String, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> = tenants
                .iter()
                .map(|tenant| {
                    let addr = addr.clone();
                    let dir = dir.clone();
                    scope.spawn(move || {
                        let path = spool_to(
                            &dir,
                            &format!("{}.trc", tenant.name),
                            &tenant.bytes,
                        );
                        let session = PushSession::connect(&addr, &tenant.name, "run")
                            .expect("connect");
                        let outcome = session.push_file(&path).expect("push");
                        assert_eq!(outcome.status, PushStatus::Complete);
                        (
                            tenant.name.clone(),
                            outcome.report,
                            offline_report(&tenant.bytes),
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });

        for (name, served, offline) in &outcomes {
            prop_assert_eq!(served, offline, "push report diverges for {}", name);
            let queried = client::query(&addr, &format!("REPORT {name} run"))
                .expect("query");
            prop_assert_eq!(&queried, offline, "queried report diverges for {}", name);
        }
        server.shutdown().expect("shutdown");
    }

    /// A client that disconnects mid-stream gets a salvage-grade
    /// partial report; reconnecting resumes at the spooled offset and
    /// the completed run's report is byte-identical to an
    /// uninterrupted offline analysis.
    #[test]
    fn disconnect_salvages_then_resume_completes(
        workload in 0u8..3,
        ranks in 3usize..6,
        spread in 0.1f64..0.7,
        cut_num in 1usize..8,
    ) {
        let dir = scratch("resume");
        let bytes = trace_bytes(
            workload,
            ranks,
            Imbalance::LinearSkew { spread },
            None,
        );
        // Cut somewhere strictly inside the byte stream, past the
        // header so there is something to salvage.
        let cut = (bytes.len() * cut_num / 8).clamp(64, bytes.len() - 1);
        let server = Server::start("127.0.0.1:0", ServeConfig::default())
            .expect("server starts");
        let addr = server.addr().to_string();

        let partial_path = spool_to(&dir, "partial.trc", &bytes[..cut]);
        let session = PushSession::connect(&addr, "acme", "job").expect("connect");
        prop_assert_eq!(session.offset(), 0);
        let outcome = session.push_file(&partial_path).expect("push partial");
        prop_assert_eq!(outcome.status, PushStatus::Salvaged);

        // Reconnect: the server asks for exactly the missing suffix.
        let full_path = spool_to(&dir, "full.trc", &bytes);
        let session = PushSession::connect(&addr, "acme", "job").expect("reconnect");
        prop_assert_eq!(session.offset(), cut as u64);
        let outcome = session.push_file(&full_path).expect("push rest");
        prop_assert_eq!(outcome.status, PushStatus::Complete);
        prop_assert_eq!(outcome.report, offline_report(&bytes));
        server.shutdown().expect("shutdown");
    }
}

/// Kill the server (shutdown with live state checkpointed), restart it
/// over the same directory, and finish the interrupted run: the final
/// report must be byte-identical to the uninterrupted offline analysis,
/// and completed runs must survive the restart verbatim.
#[test]
fn restart_from_checkpoint_resumes_byte_identically() {
    let dir = scratch("restart");
    let ckpt = dir.join("state");
    let done_bytes = trace_bytes(0, 4, Imbalance::LinearSkew { spread: 0.4 }, None);
    let cut_bytes = trace_bytes(2, 5, Imbalance::RandomJitter { amplitude: 0.2 }, None);
    let cut = cut_bytes.len() / 2;

    let cfg = || ServeConfig {
        checkpoint_dir: Some(ckpt.clone()),
        ..ServeConfig::default()
    };

    // First server lifetime: one complete run, one interrupted run.
    let first = Server::start("127.0.0.1:0", cfg()).expect("first server");
    let addr = first.addr().to_string();
    let done_path = spool_to(&dir, "done.trc", &done_bytes);
    let outcome = PushSession::connect(&addr, "t0", "done")
        .expect("connect")
        .push_file(&done_path)
        .expect("push");
    assert_eq!(outcome.status, PushStatus::Complete);
    let partial_path = spool_to(&dir, "cut.trc", &cut_bytes[..cut]);
    let outcome = PushSession::connect(&addr, "t1", "cut")
        .expect("connect")
        .push_file(&partial_path)
        .expect("push");
    assert_eq!(outcome.status, PushStatus::Salvaged);
    first.shutdown().expect("first shutdown");

    // Second lifetime: both runs recovered, the partial one resumable.
    let second = Server::start("127.0.0.1:0", cfg()).expect("second server");
    let addr = second.addr().to_string();
    let report = client::query(&addr, "REPORT t0 done").expect("query survives restart");
    assert_eq!(report, offline_report(&done_bytes));

    let full_path = spool_to(&dir, "cut-full.trc", &cut_bytes);
    let session = PushSession::connect(&addr, "t1", "cut").expect("reconnect after restart");
    assert_eq!(session.offset(), cut as u64);
    let outcome = session.push_file(&full_path).expect("finish run");
    assert_eq!(outcome.status, PushStatus::Complete);
    assert_eq!(outcome.report, offline_report(&cut_bytes));

    // Completed runs refuse re-ingestion.
    let err = PushSession::connect(&addr, "t1", "cut").unwrap_err();
    assert!(err.to_string().contains("complete"), "{err}");
    second.shutdown().expect("second shutdown");
}

/// A session that feeds garbage is failed and isolated: the connection
/// gets an error verdict, and the same server keeps serving other
/// tenants normally afterwards.
#[test]
fn poisoned_stream_is_isolated() {
    let dir = scratch("poison");
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("server");
    let addr = server.addr().to_string();

    // A syntactically valid header followed by a corrupt chunk.
    let mut garbage = Vec::new();
    {
        let mut sink = WriteSink::new(&mut garbage);
        sink.begin(2, &["work".into()]).expect("begin");
        sink.events(&[
            Event::enter(0.0, 0, 0.into()),
            Event::leave(1.0, 0, 0.into()),
        ])
        .expect("events");
        sink.finish().expect("finish");
    }
    let pivot = garbage.len() / 2;
    for b in &mut garbage[pivot..] {
        *b = !*b;
    }
    let garbage_path = spool_to(&dir, "garbage.trc", &garbage);
    let session = PushSession::connect(&addr, "mallory", "bad").expect("connect");
    // The push must come back with a verdict — salvage of the intact
    // prefix or a hard rejection — never a hang or a dead server.
    let verdict = session.push_file(&garbage_path);
    match verdict {
        Ok(outcome) => assert_eq!(outcome.status, PushStatus::Salvaged),
        Err(e) => {
            let text = e.to_string();
            assert!(!text.is_empty(), "error verdict carries a message");
        }
    }

    // The server is still healthy for everyone else.
    let good = trace_bytes(0, 3, Imbalance::None, None);
    let good_path = spool_to(&dir, "good.trc", &good);
    let outcome = PushSession::connect(&addr, "alice", "ok")
        .expect("connect after poison")
        .push_file(&good_path)
        .expect("push after poison");
    assert_eq!(outcome.status, PushStatus::Complete);
    assert_eq!(outcome.report, offline_report(&good));
    server.shutdown().expect("shutdown");
}

/// Admission control: the tenant cap rejects the N+1th tenant, a live
/// run rejects a duplicate session, and rejected connections leave the
/// server serving.
#[test]
fn admission_control_enforces_caps_and_uniqueness() {
    let cfg = ServeConfig {
        max_tenants: 2,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg).expect("server");
    let addr = server.addr().to_string();

    let a = PushSession::connect(&addr, "t0", "r").expect("first tenant");
    let _b = PushSession::connect(&addr, "t1", "r").expect("second tenant");
    let err = PushSession::connect(&addr, "t2", "r").unwrap_err();
    assert!(err.to_string().contains("tenant cap"), "{err}");
    // Same run, second live session: rejected while the first streams.
    let err = PushSession::connect(&addr, "t0", "r").unwrap_err();
    assert!(err.to_string().contains("already streaming"), "{err}");
    drop(a);
    server.shutdown().expect("shutdown");
}

/// Connection hygiene: the session cap drops connections beyond it at
/// accept instead of spawning unbounded threads, and silent
/// connections are cut loose after the handshake timeout — in both
/// cases the server keeps serving.
#[test]
fn idle_connections_time_out_and_session_cap_holds() {
    let cfg = ServeConfig {
        max_sessions: 2,
        handshake_timeout: Duration::from_millis(500),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg).expect("server");
    let addr = server.addr().to_string();

    // Two silent connections occupy both session slots.
    let _idle1 = TcpStream::connect(&addr).expect("idle connect");
    let _idle2 = TcpStream::connect(&addr).expect("idle connect");
    // The third is dropped at accept: its read ends promptly (clean
    // close or reset), never a hang.
    let mut third = TcpStream::connect(&addr).expect("third connect");
    third
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut buf = [0u8; 1];
    match third.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("dropped connection produced {n} bytes"),
    }

    // Once the silent sessions hit the handshake timeout their
    // threads are reaped and the server serves queries again.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match limba::serve::client::query(&addr, "STATUS") {
            Ok(status) if status.contains("limba-serve") => break,
            _ if std::time::Instant::now() > deadline => {
                panic!("server did not recover session slots")
            }
            _ => std::thread::sleep(Duration::from_millis(100)),
        }
    }
    server.shutdown().expect("shutdown");
}

/// The query protocol's error and edge responses are well-formed.
#[test]
fn query_protocol_edges() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("server");
    let addr = server.addr().to_string();

    let status = client::query(&addr, "STATUS").expect("status");
    assert!(status.contains("0 runs"), "{status}");
    let missing = client::query(&addr, "REPORT ghost none").expect("missing run");
    assert!(missing.contains("error"), "{missing}");
    let unknown = client::query(&addr, "FROB x").expect("unknown verb");
    assert!(unknown.contains("error"), "{unknown}");
    // A raw connection that sends nothing and closes must not wedge
    // the accept loop.
    drop(TcpStream::connect(&addr).expect("raw connect"));
    let status = client::query(&addr, "STATUS").expect("status after dead conn");
    assert!(status.contains("limba-serve"), "{status}");
    server.shutdown().expect("shutdown");
}
