//! Error isolation in batch analysis: one degenerate trace must yield an
//! `Err` in its own slot and leave every other trace's report intact.

use limba::analysis::{AnalysisError, Analyzer, BatchAnalyzer};
use limba::model::{ActivityKind, Measurements, MeasurementsBuilder};

fn good(scale: f64) -> Measurements {
    let mut b = MeasurementsBuilder::new(4);
    let core = b.add_region("core");
    let halo = b.add_region("halo");
    for p in 0..4 {
        b.record(core, ActivityKind::Computation, p, scale * (2.0 + p as f64))
            .unwrap();
        b.record(halo, ActivityKind::PointToPoint, p, scale * 0.25)
            .unwrap();
    }
    b.build().unwrap()
}

/// A structurally valid matrix with no recorded time at all — the
/// analyzer rejects it as an empty program.
fn corrupt() -> Measurements {
    let mut b = MeasurementsBuilder::new(4);
    b.add_region("silent");
    b.build().unwrap()
}

#[test]
fn one_corrupt_trace_fails_alone() {
    let items = vec![good(1.0), corrupt(), good(2.0), good(3.0)];
    for jobs in [1, 2, 4] {
        let reports = BatchAnalyzer::new(Analyzer::new())
            .with_jobs(jobs)
            .analyze_batch(&items);
        assert_eq!(reports.len(), 4);
        assert!(matches!(reports[1], Err(AnalysisError::EmptyProgram)));
        for (i, r) in reports.iter().enumerate() {
            if i != 1 {
                let report = r.as_ref().unwrap();
                assert_eq!(report.coarse.heaviest_region_name, "core");
            }
        }
    }
}

#[test]
fn all_corrupt_traces_fail_individually() {
    let items = vec![corrupt(), corrupt(), corrupt()];
    let reports = BatchAnalyzer::new(Analyzer::new())
        .with_jobs(2)
        .analyze_batch(&items);
    assert!(reports
        .iter()
        .all(|r| matches!(r, Err(AnalysisError::EmptyProgram))));
}

#[test]
fn good_reports_match_solo_analysis_despite_neighbor_failure() {
    let items = vec![corrupt(), good(1.0)];
    let reports = BatchAnalyzer::new(Analyzer::new())
        .with_jobs(2)
        .analyze_batch(&items);
    let solo = Analyzer::new().analyze(&good(1.0)).unwrap();
    assert_eq!(reports[1].as_ref().unwrap(), &solo);
}
