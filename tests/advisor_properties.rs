//! Property-based tests of the tuning advisor's prediction bounds.
//!
//! The majorization bracket is the advisor's load-bearing guarantee:
//! for fault-free runs, every catalog intervention's *simulated*
//! wall-clock must land inside `[lower_bound, upper_bound]`. These
//! tests exercise the guarantee on randomly generated BSP scenarios —
//! skewed per-rank work across several regions, mixed collectives,
//! and heterogeneous CPU speeds (which arm the remap and upgrade
//! proposals on top of the splits and swaps).

use limba::advisor::{propose, BaselineModel, Scenario};
use limba::mpisim::{MachineConfig, Program, ProgramBuilder, Simulator};
use proptest::prelude::*;

/// A random BSP scenario: per-region per-rank compute (milliseconds),
/// a collective discriminant per region, and optional CPU speed tiers.
fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (2usize..6)
        .prop_flat_map(|ranks| {
            (
                Just(ranks),
                proptest::collection::vec(
                    (
                        proptest::collection::vec(1u16..500, ranks),
                        0u8..4,
                        1u32..100_000,
                    ),
                    1..4,
                ),
                proptest::collection::vec(1u8..4, ranks),
            )
        })
        .prop_map(|(ranks, regions, speed_tiers)| {
            let program = build_program(ranks, &regions);
            let speeds: Vec<f64> = speed_tiers.iter().map(|&t| t as f64).collect();
            let config = MachineConfig::new(ranks).with_cpu_speeds(speeds);
            Scenario::new(program, config).expect("generated scenario is valid")
        })
}

fn build_program(ranks: usize, regions: &[(Vec<u16>, u8, u32)]) -> Program {
    let mut pb = ProgramBuilder::new(ranks);
    let ids: Vec<_> = (0..regions.len())
        .map(|i| pb.add_region(format!("region {i}")))
        .collect();
    for (id, (work, collective, bytes)) in ids.iter().zip(regions) {
        pb.spmd(|rank, mut ops| {
            ops.enter(*id);
            ops.compute(work[rank] as f64 * 1e-3);
            match collective {
                0 => {
                    ops.barrier();
                }
                1 => {
                    ops.allreduce(*bytes as u64);
                }
                2 => {
                    ops.broadcast(*bytes as u64);
                }
                _ => {
                    ops.alltoall(*bytes as u64);
                }
            }
            ops.leave(*id);
        });
    }
    pb.build().expect("generated program is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every proposed intervention's simulated wall-clock stays inside
    /// its predicted majorization bracket, on both engines.
    #[test]
    fn simulated_wall_clock_never_exceeds_the_predicted_upper_bound(
        scenario in scenario_strategy()
    ) {
        let sim = Simulator::new(scenario.config.clone());
        let baseline = sim.run(&scenario.program).unwrap().stats.makespan;
        let model = BaselineModel::new(&scenario, baseline);
        let catalog = propose(&scenario);
        for intervention in &catalog {
            let candidate = intervention.apply(&scenario).unwrap();
            let prediction = model.predict(&candidate);
            let eps = 1e-9 * baseline.max(1.0);
            prop_assert!(
                prediction.lower_bound <= prediction.upper_bound + eps,
                "inverted bracket {prediction:?}"
            );
            // Interventions transform the machine as well as the
            // program: simulate under the candidate's own config.
            let cand_sim = Simulator::new(candidate.config.clone());
            for (engine, measured) in [
                (
                    "event",
                    cand_sim.run(&candidate.program).unwrap().stats.makespan,
                ),
                (
                    "polling",
                    cand_sim
                        .run_polling(&candidate.program)
                        .unwrap()
                        .stats
                        .makespan,
                ),
            ] {
                prop_assert!(
                    measured <= prediction.upper_bound + eps,
                    "{engine}: measured {measured} exceeds upper bound {} for {:?}",
                    prediction.upper_bound,
                    intervention.signature()
                );
                prop_assert!(
                    measured >= prediction.lower_bound - eps,
                    "{engine}: measured {measured} below lower bound {} for {:?}",
                    prediction.lower_bound,
                    intervention.signature()
                );
            }
        }
    }

    /// The identity bracket also holds for the baseline itself: its own
    /// simulated makespan lies inside its own prediction.
    #[test]
    fn the_baseline_brackets_itself(scenario in scenario_strategy()) {
        let sim = Simulator::new(scenario.config.clone());
        let baseline = sim.run(&scenario.program).unwrap().stats.makespan;
        let model = BaselineModel::new(&scenario, baseline);
        let p = model.predict(&scenario);
        let eps = 1e-9 * baseline.max(1.0);
        prop_assert!(baseline <= p.upper_bound + eps, "{p:?} vs {baseline}");
        prop_assert!(baseline >= p.lower_bound - eps, "{p:?} vs {baseline}");
        prop_assert!(p.submajorized, "a load vector submajorizes itself");
    }
}
