//! Property-based tests of the methodology's mathematical invariants on
//! random measurement matrices.

use limba::analysis::patterns::{classify_row, PatternBin};
use limba::analysis::views::{activity_view, processor_view, region_view};
use limba::model::{Measurements, MeasurementsBuilder, STANDARD_ACTIVITIES};
use limba::stats::dispersion::DispersionKind;
use proptest::prelude::*;

/// Random measurements: `regions × 4 × procs` with nonneg times and at
/// least one strictly positive cell.
fn measurements_strategy() -> impl Strategy<Value = Measurements> {
    (2usize..6, 2usize..9).prop_flat_map(|(regions, procs)| {
        proptest::collection::vec(0.0f64..100.0, regions * 4 * procs)
            .prop_filter("some time", |v| v.iter().sum::<f64>() > 1.0)
            .prop_map(move |data| {
                let mut b = MeasurementsBuilder::new(procs);
                let mut it = data.into_iter();
                for r in 0..regions {
                    let id = b.add_region(format!("r{r}"));
                    for kind in STANDARD_ACTIVITIES {
                        for p in 0..procs {
                            b.record(id, kind, p, it.next().expect("sized")).unwrap();
                        }
                    }
                }
                b.build().unwrap()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn activity_summary_is_convex_combination_of_cells(m in measurements_strategy()) {
        let av = activity_view(&m, DispersionKind::Euclidean).unwrap();
        for s in &av.summaries {
            let col = m.activities().column(s.kind).unwrap();
            let cells: Vec<f64> = (0..m.regions()).filter_map(|i| av.id[i][col]).collect();
            prop_assume!(!cells.is_empty());
            let min = cells.iter().copied().fold(f64::INFINITY, f64::min);
            let max = cells.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(s.id >= min - 1e-9 && s.id <= max + 1e-9,
                "{}: ID_A {} outside [{min}, {max}]", s.kind, s.id);
            // Scaling can only shrink the index.
            prop_assert!(s.sid <= s.id + 1e-12);
            prop_assert!(s.fraction_of_program <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn region_summary_is_convex_combination_of_cells(m in measurements_strategy()) {
        let av = activity_view(&m, DispersionKind::Euclidean).unwrap();
        let rv = region_view(&m, &av).unwrap();
        for s in &rv.summaries {
            let cells: Vec<f64> = av.id[s.region.index()].iter().flatten().copied().collect();
            prop_assume!(!cells.is_empty());
            let min = cells.iter().copied().fold(f64::INFINITY, f64::min);
            let max = cells.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(s.id >= min - 1e-9 && s.id <= max + 1e-9);
            prop_assert!(s.sid <= s.id + 1e-12);
        }
        // Scaled indices sum to at most the max raw index (weights sum 1).
        let total_fraction: f64 = rv.summaries.iter().map(|s| s.fraction_of_program).sum();
        prop_assert!((total_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dispersion_ids_are_within_euclidean_bounds(m in measurements_strategy()) {
        let av = activity_view(&m, DispersionKind::Euclidean).unwrap();
        let bound = (1.0 - 1.0 / m.processors() as f64).sqrt();
        for row in &av.id {
            for id in row.iter().flatten() {
                prop_assert!(*id >= -1e-12 && *id <= bound + 1e-9);
            }
        }
    }

    #[test]
    fn processor_view_distances_are_bounded_by_sqrt2(m in measurements_strategy()) {
        // Standardized mixes live on the unit simplex, whose diameter is
        // sqrt(2); distances to the mean mix are at most that.
        let pv = processor_view(&m).unwrap();
        for row in &pv.id {
            for d in row.iter().flatten() {
                prop_assert!(*d >= -1e-12 && *d <= 2f64.sqrt() + 1e-9);
            }
        }
    }

    #[test]
    fn most_imbalanced_per_region_is_the_argmax(m in measurements_strategy()) {
        let pv = processor_view(&m).unwrap();
        for (row, most) in pv.id.iter().zip(&pv.most_imbalanced_per_region) {
            if let Some((proc, d, _)) = most {
                let max = row.iter().flatten().copied().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!((d - max).abs() < 1e-12);
                prop_assert_eq!(row[proc.index()], Some(*d));
            }
        }
    }

    #[test]
    fn pattern_rows_have_extremes_iff_spread(row in proptest::collection::vec(0.0f64..10.0, 2..20)) {
        let bins = classify_row(&row);
        let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = row.iter().copied().fold(f64::INFINITY, f64::min);
        if max > min {
            prop_assert!(bins.contains(&PatternBin::Max));
            prop_assert!(bins.contains(&PatternBin::Min));
            // Bins are consistent with values.
            for (v, b) in row.iter().zip(&bins) {
                match b {
                    PatternBin::Max => prop_assert_eq!(*v, max),
                    PatternBin::Min => prop_assert_eq!(*v, min),
                    PatternBin::UpperTail => prop_assert!(*v >= min + 0.85 * (max - min)),
                    PatternBin::LowerTail => prop_assert!(*v <= min + 0.15 * (max - min)),
                    PatternBin::Mid => {
                        prop_assert!(*v > min + 0.15 * (max - min));
                        prop_assert!(*v < min + 0.85 * (max - min));
                    }
                }
            }
        } else {
            prop_assert!(bins.iter().all(|&b| b == PatternBin::Mid));
        }
    }

    #[test]
    fn analyzer_is_deterministic(m in measurements_strategy()) {
        let a = limba::analysis::Analyzer::new().analyze(&m).unwrap();
        let b = limba::analysis::Analyzer::new().analyze(&m).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn scaling_measurements_leaves_indices_unchanged(m in measurements_strategy(), scale in 0.5f64..100.0) {
        // Rebuild the matrix scaled by a constant; every (S)ID must be
        // invariant because the methodology is relative.
        let mut b = MeasurementsBuilder::new(m.processors());
        for r in m.region_ids() {
            let id = b.add_region(m.region_info(r).name().to_string());
            for kind in STANDARD_ACTIVITIES {
                for p in m.processor_ids() {
                    b.record(id, kind, p.index(), m.time(r, kind, p) * scale).unwrap();
                }
            }
        }
        let scaled = b.build().unwrap();
        let av1 = activity_view(&m, DispersionKind::Euclidean).unwrap();
        let av2 = activity_view(&scaled, DispersionKind::Euclidean).unwrap();
        for (r1, r2) in av1.id.iter().zip(&av2.id) {
            for (a, b) in r1.iter().zip(r2) {
                match (a, b) {
                    (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
                    (None, None) => {}
                    _ => prop_assert!(false, "performed-ness changed under scaling"),
                }
            }
        }
        for (s1, s2) in av1.summaries.iter().zip(&av2.summaries) {
            prop_assert!((s1.id - s2.id).abs() < 1e-9);
            prop_assert!((s1.sid - s2.sid).abs() < 1e-9);
        }
    }
}

#[test]
fn findings_agree_with_views_on_the_paper_data() {
    // Deterministic cross-check on real data: the findings' claims can be
    // re-derived from the raw views.
    let m = limba::calibrate::paper::paper_measurements().unwrap();
    let report = limba::analysis::Analyzer::new().analyze(&m).unwrap();
    let f = &report.findings;
    let best_activity = report
        .activity_view
        .summaries
        .iter()
        .max_by(|a, b| a.id.total_cmp(&b.id))
        .unwrap();
    assert_eq!(f.most_imbalanced_activity.unwrap().0, best_activity.kind);
    let best_region = report
        .region_view
        .summaries
        .iter()
        .max_by(|a, b| a.id.total_cmp(&b.id))
        .unwrap();
    assert_eq!(f.most_imbalanced_region.unwrap().0, best_region.region);
}
