//! Kill-resume determinism locks for the supervision runtime.
//!
//! The contract under test: interrupting a supervised run at *any*
//! point — a unit cap, a cancellation, a verification budget — and
//! resuming it from its checkpoint reaches output byte-identical to an
//! uninterrupted run, at any `jobs` setting. Alongside it, the
//! robustness half: a panicking unit becomes a structured `JobFailure`
//! while the rest of the sweep completes, retryable failures are
//! retried with a bounded budget, and corrupted checkpoint files are
//! rejected with named errors, never a panic.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use limba::advisor::{AdviseError, Advisor, Scenario};
use limba::analysis::Analyzer;
use limba::guard::codec::{ByteReader, ByteWriter};
use limba::guard::{
    config_fingerprint, CheckpointVerifyCache, GuardError, JobError, PayloadCodec, RetryPolicy,
    Supervisor,
};
use limba::mpisim::{MachineConfig, Simulator};
use limba::par::{derive_seed, CancelToken};
use limba::workloads::{cfd::CfdConfig, Imbalance};
use proptest::prelude::*;

const KIND: &str = "guard-resume-test";
const UNITS: usize = 12;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("limba-guard-resume-{name}.ckpt"))
}

/// The canonical per-unit payload: one CFD replication's summary line.
/// Everything observable flows from the unit index, so the payload is
/// the same no matter which invocation produced it.
fn replicate(index: usize) -> Result<String, JobError> {
    let seed = derive_seed(0xC0FFEE, index as u64);
    let program = CfdConfig::new(4)
        .with_iterations(1)
        .with_imbalance(Imbalance::RandomJitter { amplitude: 0.3 })
        .with_seed(seed)
        .build_program()
        .map_err(|e| JobError::Fatal(e.to_string()))?;
    let out = Simulator::new(MachineConfig::new(4))
        .run(&program)
        .map_err(|e| JobError::Fatal(e.to_string()))?;
    Ok(format!(
        "{index} {seed} {:?} {} {}",
        out.stats.makespan, out.stats.messages, out.stats.bytes
    ))
}

struct LineCodec;

impl PayloadCodec<String> for LineCodec {
    fn encode(&self, payload: &String) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_str(payload);
        w.into_bytes()
    }

    fn decode(&self, bytes: &[u8]) -> Result<String, GuardError> {
        let mut r = ByteReader::new(bytes);
        let line = r.get_str("line")?;
        r.expect_end("line payload")?;
        Ok(line)
    }
}

/// Renders a supervised run the way the CLI renders a sweep table:
/// one line per unit, errors and not-run units included.
fn snapshot(run: &limba::guard::SupervisedRun<String>) -> String {
    run.results
        .iter()
        .enumerate()
        .map(|(i, slot)| match slot {
            Some(Ok(line)) => format!("{i}: {line}\n"),
            Some(Err(failure)) => format!("{i}: error {failure}\n"),
            None => format!("{i}: not run\n"),
        })
        .collect()
}

fn reference_snapshot() -> String {
    let items: Vec<usize> = (0..UNITS).collect();
    let run = Supervisor::new(1)
        .run(KIND, 1, &items, &LineCodec, |_, &i| replicate(i))
        .unwrap();
    assert!(run.manifest.is_complete());
    snapshot(&run)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Interrupt a supervised sweep after a randomized number of units,
    /// then resume at jobs 1 and 4: both resumed snapshots must be
    /// byte-identical to an uninterrupted run.
    #[test]
    fn interrupted_sweep_resumes_byte_identically(cut in 0usize..UNITS, interrupt_jobs in 1usize..=4) {
        let reference = reference_snapshot();
        let items: Vec<usize> = (0..UNITS).collect();
        for resume_jobs in [1usize, 4] {
            let path = temp_path(&format!("prop-{cut}-{interrupt_jobs}-{resume_jobs}"));
            std::fs::remove_file(&path).ok();

            let interrupted = Supervisor::new(interrupt_jobs)
                .with_max_units(cut)
                .with_checkpoint(&path, false)
                .run(KIND, 1, &items, &LineCodec, |_, &i| replicate(i))
                .unwrap();
            prop_assert!(interrupted.checkpoint_error.is_none());
            prop_assert_eq!(interrupted.manifest.completed, cut);
            prop_assert!(!interrupted.manifest.is_complete());

            let resumed = Supervisor::new(resume_jobs)
                .with_checkpoint(&path, true)
                .run(KIND, 1, &items, &LineCodec, |_, &i| replicate(i))
                .unwrap();
            prop_assert!(resumed.manifest.is_complete());
            prop_assert_eq!(resumed.manifest.cached, cut);
            prop_assert_eq!(snapshot(&resumed), reference.clone());
            std::fs::remove_file(&path).ok();
        }
    }

    /// An external cancellation mid-run keeps every completed unit;
    /// resuming afterwards still converges on the reference snapshot.
    #[test]
    fn cancelled_sweep_resumes_byte_identically(trip_after in 1usize..UNITS) {
        let reference = reference_snapshot();
        let items: Vec<usize> = (0..UNITS).collect();
        let path = temp_path(&format!("cancel-{trip_after}"));
        std::fs::remove_file(&path).ok();

        let cancel = CancelToken::new();
        let started = AtomicUsize::new(0);
        let interrupted = Supervisor::new(1)
            .with_cancel(cancel.clone())
            .with_checkpoint(&path, false)
            .run(KIND, 1, &items, &LineCodec, |_, &i| {
                if started.fetch_add(1, Ordering::SeqCst) + 1 >= trip_after {
                    cancel.cancel();
                }
                replicate(i)
            })
            .unwrap();
        prop_assert!(!interrupted.manifest.is_complete());
        prop_assert!(interrupted.manifest.completed >= 1);

        let resumed = Supervisor::new(4)
            .with_checkpoint(&path, true)
            .run(KIND, 1, &items, &LineCodec, |_, &i| replicate(i))
            .unwrap();
        prop_assert!(resumed.manifest.is_complete());
        prop_assert_eq!(snapshot(&resumed), reference);
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn panicking_unit_is_isolated_and_reported() {
    let items: Vec<usize> = (0..UNITS).collect();
    let run = Supervisor::new(4)
        .run(KIND, 2, &items, &LineCodec, |_, &i| {
            if i == 3 {
                panic!("unit {i} exploded");
            }
            replicate(i)
        })
        .unwrap();
    assert_eq!(run.manifest.failures.len(), 1);
    assert_eq!(run.manifest.failures[0].unit, 3);
    assert!(run.manifest.failures[0].to_string().contains("panicked"));
    assert_eq!(run.manifest.completed, UNITS - 1);
    // Every other unit delivered exactly its reference payload.
    let reference = reference_snapshot();
    for (i, slot) in run.results.iter().enumerate() {
        match slot {
            Some(Ok(line)) => assert!(reference.contains(line), "unit {i}"),
            Some(Err(failure)) => assert_eq!(failure.unit, 3),
            None => panic!("unit {i} never ran"),
        }
    }
}

#[test]
fn retryable_failures_are_retried_within_budget() {
    let items: Vec<usize> = (0..4).collect();
    let flaky_calls = AtomicUsize::new(0);
    let run = Supervisor::new(1)
        .with_retry(RetryPolicy::with_max_retries(2))
        .run(KIND, 3, &items, &LineCodec, |_, &i| {
            if i == 2 && flaky_calls.fetch_add(1, Ordering::SeqCst) == 0 {
                return Err(JobError::Retryable("transient glitch".into()));
            }
            replicate(i)
        })
        .unwrap();
    assert!(run.manifest.is_complete());
    assert_eq!(run.manifest.retries, 1);
    assert_eq!(flaky_calls.load(Ordering::SeqCst), 2);
}

#[test]
fn corrupted_checkpoints_are_rejected_with_named_errors() {
    let items: Vec<usize> = (0..4).collect();
    let path = temp_path("corrupt");
    std::fs::remove_file(&path).ok();
    Supervisor::new(1)
        .with_checkpoint(&path, false)
        .run(KIND, 4, &items, &LineCodec, |_, &i| replicate(i))
        .unwrap();
    let good = std::fs::read(&path).unwrap();

    // Every truncation and every bit-flip must produce a named error —
    // never a panic, never an unbounded allocation.
    for cut in 0..good.len() {
        std::fs::write(&path, &good[..cut]).unwrap();
        let err = Supervisor::new(1)
            .with_checkpoint(&path, true)
            .run(KIND, 4, &items, &LineCodec, |_, &i| replicate(i))
            .unwrap_err();
        assert!(
            matches!(
                err,
                GuardError::Corrupted { .. } | GuardError::ChecksumMismatch { .. }
            ),
            "cut={cut}: {err}"
        );
    }
    for byte in 0..good.len() {
        let mut bad = good.clone();
        bad[byte] ^= 0x10;
        std::fs::write(&path, &bad).unwrap();
        let err = Supervisor::new(1)
            .with_checkpoint(&path, true)
            .run(KIND, 4, &items, &LineCodec, |_, &i| replicate(i))
            .unwrap_err();
        assert!(
            matches!(
                err,
                GuardError::Corrupted { .. }
                    | GuardError::ChecksumMismatch { .. }
                    | GuardError::KindMismatch { .. }
                    | GuardError::FingerprintMismatch { .. }
            ),
            "byte={byte}: {err}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn foreign_checkpoints_are_refused_by_identity() {
    let items: Vec<usize> = (0..4).collect();
    let path = temp_path("identity");
    std::fs::remove_file(&path).ok();
    Supervisor::new(1)
        .with_checkpoint(&path, false)
        .run(KIND, 5, &items, &LineCodec, |_, &i| replicate(i))
        .unwrap();
    let err = Supervisor::new(1)
        .with_checkpoint(&path, true)
        .run("other-kind", 5, &items, &LineCodec, |_, &i| replicate(i))
        .unwrap_err();
    assert!(matches!(err, GuardError::KindMismatch { .. }), "{err}");
    let err = Supervisor::new(1)
        .with_checkpoint(&path, true)
        .run(KIND, 6, &items, &LineCodec, |_, &i| replicate(i))
        .unwrap_err();
    assert!(
        matches!(err, GuardError::FingerprintMismatch { .. }),
        "{err}"
    );
    std::fs::remove_file(&path).ok();
}

/// The advisor scenario the resume tests share: a small CFD proxy with
/// the paper-style linear skew.
fn advise_scenario() -> Scenario {
    let program = CfdConfig::new(4)
        .with_iterations(1)
        .with_imbalance(Imbalance::LinearSkew { spread: 0.4 })
        .build_program()
        .unwrap();
    Scenario::new(program, MachineConfig::new(4)).unwrap()
}

fn advisor(jobs: usize) -> Advisor {
    Advisor::new()
        .with_top_k(3)
        .with_jobs(jobs)
        .with_analyzer(Analyzer::new().with_cluster_k(2))
}

/// Interrupt the advisor's simulate-verify stage after a randomized
/// number of verifications, resume from the verification checkpoint at
/// jobs 1 and 4, and require the rendered advice to be byte-identical
/// to an uninterrupted run's.
#[test]
fn interrupted_advise_resumes_byte_identically() {
    let scenario = advise_scenario();
    let reference = limba::viz::advice::render_advice(&advisor(1).advise(&scenario).unwrap());
    let fingerprint = config_fingerprint("guard-resume-advise");

    // The cache trips the token once `cut` verifications have been
    // stored, so the checkpoint holds exactly `cut` of the 3 entries.
    for cut in 1..3 {
        for resume_jobs in [1usize, 4] {
            let path = temp_path(&format!("advise-{cut}-{resume_jobs}"));
            std::fs::remove_file(&path).ok();

            let token = CancelToken::new();
            let cache = CheckpointVerifyCache::open(&path, fingerprint, false)
                .unwrap()
                .with_interrupt_after(cut, token.clone());
            let err = advisor(1)
                .with_cancel(token)
                .with_verify_cache(Arc::new(cache))
                .advise(&scenario)
                .unwrap_err();
            assert!(matches!(err, AdviseError::Interrupted { .. }), "{err}");

            let cache = CheckpointVerifyCache::open(&path, fingerprint, true).unwrap();
            assert_eq!(cache.len(), cut, "checkpoint kept the finished units");
            let cache = Arc::new(cache);
            let advice = advisor(resume_jobs)
                .with_verify_cache(cache.clone())
                .advise(&scenario)
                .unwrap();
            assert_eq!(cache.hits(), cut, "resume replayed the checkpoint");
            assert_eq!(
                limba::viz::advice::render_advice(&advice),
                reference,
                "cut={cut} jobs={resume_jobs}"
            );
            std::fs::remove_file(&path).ok();
        }
    }
}
