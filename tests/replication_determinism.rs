//! Determinism lock of the simulator replication sweeps: a seed-sweep is
//! the same set of runs no matter how many threads execute it and no
//! matter in which order the replications complete.

use std::sync::atomic::{AtomicUsize, Ordering};

use limba::mpisim::{MachineConfig, Program, Replication, SimError, Simulator};
use limba::par;
use limba::workloads::{cfd::CfdConfig, Imbalance};
use proptest::prelude::*;

fn cfd_program(ranks: usize, seed: u64) -> Result<Program, SimError> {
    CfdConfig::new(ranks)
        .with_iterations(1)
        .with_imbalance(Imbalance::RandomJitter { amplitude: 0.3 })
        .with_seed(seed)
        .build_program()
        .map_err(|e| SimError::BuildFailed {
            detail: e.to_string(),
        })
}

/// Everything observable about a sweep, in replication order: seeds,
/// full traces, and summary statistics.
fn fingerprint(sweep: &[Result<Replication, SimError>]) -> Vec<String> {
    sweep
        .iter()
        .map(|r| {
            let r = r.as_ref().unwrap();
            format!(
                "{} {} {:?} {:?}",
                r.index, r.seed, r.output.stats, r.output.trace
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn seed_sweep_is_bit_identical_across_thread_counts(
        root_seed in 0u64..1_000_000,
        replications in 1usize..6,
    ) {
        let sim = Simulator::new(MachineConfig::new(4));
        let reference = fingerprint(
            &sim.run_replications(replications, root_seed, 1, |_, seed| cfd_program(4, seed)),
        );
        for jobs in [2, 8] {
            let sweep = fingerprint(
                &sim.run_replications(replications, root_seed, jobs, |_, seed| cfd_program(4, seed)),
            );
            prop_assert_eq!(&sweep, &reference, "jobs={}", jobs);
        }
    }
}

#[test]
fn sweep_results_are_independent_of_completion_order() {
    // Stall whichever worker claims replication 0 until every other
    // replication has been built, forcing a completion order that is the
    // reverse of the index order.
    let sim = Simulator::new(MachineConfig::new(4));
    let reference = fingerprint(&sim.run_replications(6, 99, 1, |_, seed| cfd_program(4, seed)));
    let built = AtomicUsize::new(0);
    let skewed = sim.run_replications(6, 99, 6, |index, seed| {
        if index == 0 {
            while built.load(Ordering::SeqCst) < 5 {
                std::thread::yield_now();
            }
        }
        let program = cfd_program(4, seed);
        built.fetch_add(1, Ordering::SeqCst);
        program
    });
    assert_eq!(fingerprint(&skewed), reference);
}

#[test]
fn replication_seeds_match_derive_seed_exactly() {
    let sim = Simulator::new(MachineConfig::new(4));
    let sweep = sim.run_replications(5, 2003, 3, |_, seed| cfd_program(4, seed));
    for (i, r) in sweep.iter().enumerate() {
        assert_eq!(r.as_ref().unwrap().seed, par::derive_seed(2003, i as u64));
    }
}

#[test]
fn sweep_analysis_is_jobs_invariant_end_to_end() {
    // Full pipeline: replicate → reduce → batch-analyze, locked
    // byte-for-byte. The sweep's measurement matrices feed the
    // BatchAnalyzer directly.
    use limba::analysis::snapshot::canonical;
    use limba::analysis::{Analyzer, BatchAnalyzer};
    use limba::model::Measurements;
    let sim = Simulator::new(MachineConfig::new(4));
    let render = |jobs: usize| -> Vec<String> {
        let matrices: Vec<Measurements> = sim
            .run_replications(4, 7, jobs, |_, seed| cfd_program(4, seed))
            .iter()
            .map(|r| r.as_ref().unwrap().output.reduce().unwrap().measurements)
            .collect();
        BatchAnalyzer::new(Analyzer::new())
            .with_jobs(jobs)
            .analyze_batch(&matrices)
            .iter()
            .map(|r| canonical(r.as_ref().unwrap()))
            .collect()
    };
    let reference = render(1);
    assert_eq!(render(4), reference);
}
