//! Equivalence harness for the simulator's two execution cores: the
//! event-driven wakeup-list scheduler (`Simulator::run`) must be
//! bit-identical to the reference polling scheduler
//! (`Simulator::run_polling`) — same trace bytes, same stats, same
//! deadlock diagnostics — on the paper case, every synthetic workload,
//! and randomized programs.
//!
//! The canonical analysis snapshots are additionally locked against
//! golden files so an engine change that shifts any downstream number
//! shows up as a byte diff. Regenerate intentionally with
//! `UPDATE_GOLDEN=1 cargo test --test engine_equivalence`.

use std::path::PathBuf;

use limba::analysis::snapshot::canonical;
use limba::analysis::Analyzer;
use limba::mpisim::{MachineConfig, Program, ProgramBuilder, SimError, SimOutput, Simulator};
use limba::workloads::{
    amr::AmrConfig, cfd::CfdConfig, fft::FftConfig, irregular::IrregularConfig,
    master_worker::MasterWorkerConfig, pipeline::PipelineConfig, stencil::StencilConfig,
    sweep::SweepConfig, Imbalance,
};
use proptest::prelude::*;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {}: {e}; generate it with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden snapshot; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

/// Runs the engine triple — event, polling, and parallel event with 4
/// worker threads — and asserts bit-identical output before returning
/// the (event-engine) result.
fn run_both(ranks: usize, program: &Program, label: &str) -> SimOutput {
    let sim = Simulator::new(MachineConfig::new(ranks));
    let event = sim.run(program).unwrap();
    let polling = sim.run_polling(program).unwrap();
    assert_eq!(event.trace, polling.trace, "{label}: traces diverge");
    assert_eq!(event.stats, polling.stats, "{label}: stats diverge");
    let par = sim.run_event_parallel(program, 4).unwrap();
    assert_eq!(event.trace, par.trace, "{label}: event-par trace diverges");
    assert_eq!(event.stats, par.stats, "{label}: event-par stats diverge");
    event
}

fn canonical_report(output: &SimOutput) -> String {
    let reduced = output.reduce().unwrap();
    let report = Analyzer::new().analyze(&reduced.measurements).unwrap();
    canonical(&report)
}

#[test]
fn cfd_proxy_engines_match_and_canonical_is_locked() {
    // The paper-case proxy, mirroring limba_bench::simulated_cfd.
    let program = CfdConfig::new(16)
        .with_iterations(1)
        .with_imbalance(Imbalance::RandomJitter { amplitude: 0.25 })
        .with_seed(2003)
        .build_program()
        .unwrap();
    let output = run_both(16, &program, "cfd proxy");
    check_golden("engine_cfd_proxy_canonical.txt", &canonical_report(&output));
}

#[test]
fn all_workloads_engines_match_and_canonicals_are_locked() {
    let skew = Imbalance::LinearSkew { spread: 0.4 };
    let ranks = 8usize;
    let programs: Vec<(&str, Program)> = vec![
        (
            "cfd",
            CfdConfig::new(ranks)
                .with_imbalance(skew)
                .build_program()
                .unwrap(),
        ),
        (
            "stencil",
            StencilConfig::new(4, 2)
                .with_imbalance(skew)
                .build_program()
                .unwrap(),
        ),
        (
            "master-worker",
            MasterWorkerConfig::new(ranks)
                .with_tasks(14)
                .with_imbalance(skew)
                .build_program()
                .unwrap(),
        ),
        (
            "pipeline",
            PipelineConfig::new(ranks)
                .with_items(8)
                .with_imbalance(skew)
                .build_program()
                .unwrap(),
        ),
        (
            "irregular",
            IrregularConfig::new(ranks)
                .with_steps(4)
                .with_imbalance(skew)
                .build_program()
                .unwrap(),
        ),
        (
            "fft",
            FftConfig::new(ranks)
                .with_imbalance(skew)
                .build_program()
                .unwrap(),
        ),
        (
            "sweep",
            SweepConfig::new(ranks)
                .with_imbalance(skew)
                .build_program()
                .unwrap(),
        ),
        (
            "amr",
            AmrConfig::new(ranks)
                .with_refinement(skew)
                .build_program()
                .unwrap(),
        ),
    ];
    let mut combined = String::new();
    for (name, program) in &programs {
        let output = run_both(ranks, program, name);
        combined.push_str(&format!("== {name} ==\n"));
        combined.push_str(&canonical_report(&output));
        combined.push('\n');
    }
    check_golden("engine_workloads_canonical.txt", &combined);
}

#[test]
fn engines_report_identical_deadlock_diagnostics() {
    // A 4-rank receive cycle: everyone waits on the left neighbor.
    let ranks = 4usize;
    let mut pb = ProgramBuilder::new(ranks);
    let region = pb.add_region("cycle");
    pb.spmd(|rank, mut ops| {
        ops.enter(region);
        ops.recv((rank + ranks - 1) % ranks);
        ops.leave(region);
    });
    let program = pb.build().unwrap();
    let sim = Simulator::new(MachineConfig::new(ranks));
    let event = sim.run(&program).unwrap_err();
    let polling = sim.run_polling(&program).unwrap_err();
    assert!(matches!(event, SimError::Deadlock { .. }));
    assert_eq!(event.to_string(), polling.to_string());
}

/// One phase of a generated program; every variant is globally
/// coordinated, so any sequence of phases is deadlock-free. Mirrors the
/// generator in `simulator_properties.rs`.
#[derive(Debug, Clone)]
enum Phase {
    Compute(Vec<u16>),
    Exchange(u32),
    Collective(u8, u32),
    RingShift(u32),
}

fn phase_strategy(ranks: usize) -> impl Strategy<Value = Phase> {
    prop_oneof![
        proptest::collection::vec(0u16..200, ranks).prop_map(Phase::Compute),
        (1u32..200_000).prop_map(Phase::Exchange),
        (0u8..8, 1u32..100_000).prop_map(|(k, b)| Phase::Collective(k, b)),
        (1u32..200_000).prop_map(Phase::RingShift),
    ]
}

fn program_strategy() -> impl Strategy<Value = (Program, usize)> {
    (2usize..7)
        .prop_flat_map(|ranks| {
            (
                proptest::collection::vec(phase_strategy(ranks), 1..8),
                Just(ranks),
            )
        })
        .prop_map(|(phases, ranks)| {
            let mut pb = ProgramBuilder::new(ranks);
            let region = pb.add_region("phase region");
            for (pi, phase) in phases.iter().enumerate() {
                pb.spmd(|rank, mut ops| {
                    ops.enter(region);
                    match phase {
                        Phase::Compute(amounts) => {
                            ops.compute(amounts[rank] as f64 * 1e-3);
                        }
                        Phase::Exchange(bytes) => {
                            for parity in 0..2usize {
                                if rank % 2 == parity {
                                    if rank + 1 < ranks {
                                        ops.send(rank + 1, *bytes as u64).recv(rank + 1);
                                    }
                                } else if rank >= 1 {
                                    ops.recv(rank - 1).send(rank - 1, *bytes as u64);
                                }
                            }
                        }
                        Phase::Collective(kind, bytes) => {
                            let b = *bytes as u64;
                            match kind % 8 {
                                0 => ops.reduce(b),
                                1 => ops.allreduce(b),
                                2 => ops.broadcast(b),
                                3 => ops.alltoall(b),
                                4 => ops.barrier(),
                                5 => ops.gather(b),
                                6 => ops.scatter(b),
                                _ => ops.allgather(b),
                            };
                        }
                        Phase::RingShift(bytes) => {
                            let right = (rank + 1) % ranks;
                            let left = (rank + ranks - 1) % ranks;
                            let h = (pi as u32) * 2;
                            ops.isend(right, *bytes as u64, h)
                                .irecv(left, h + 1)
                                .compute(0.001)
                                .wait(h)
                                .wait(h + 1);
                        }
                    }
                    ops.leave(region);
                });
            }
            (pb.build().expect("generated programs are valid"), ranks)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn randomized_programs_are_engine_invariant((program, ranks) in program_strategy()) {
        let sim = Simulator::new(MachineConfig::new(ranks));
        let event = sim.run(&program).unwrap();
        let polling = sim.run_polling(&program).unwrap();
        prop_assert_eq!(&event.trace, &polling.trace);
        prop_assert_eq!(&event.stats, &polling.stats);
        let par = sim.run_event_parallel(&program, 4).unwrap();
        prop_assert_eq!(&event.trace, &par.trace);
        prop_assert_eq!(&event.stats, &par.stats);
    }

    #[test]
    fn engine_invariance_survives_heterogeneous_machines(
        (program, ranks) in program_strategy(),
        slow in 0usize..7,
        eager in prop_oneof![Just(0u64), Just(1024), Just(8 * 1024), Just(u64::MAX)],
    ) {
        // Rendezvous-heavy and eager-heavy protocol mixes, plus a slow
        // rank to skew the schedule.
        let cfg = MachineConfig::new(ranks)
            .with_cpu_speed(slow % ranks, 0.5)
            .with_eager_threshold(eager);
        let sim = Simulator::new(cfg);
        let event = sim.run(&program).unwrap();
        let polling = sim.run_polling(&program).unwrap();
        prop_assert_eq!(&event.trace, &polling.trace);
        prop_assert_eq!(&event.stats, &polling.stats);
        let par = sim.run_event_parallel(&program, 4).unwrap();
        prop_assert_eq!(&event.trace, &par.trace);
        prop_assert_eq!(&event.stats, &par.stats);
    }
}
