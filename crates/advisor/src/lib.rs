//! Closed-loop tuning advisor: propose → predict → simulate-verify.
//!
//! The analysis layers diagnose load imbalance — they name the heaviest
//! region and the most dissimilar processors and stop there. This crate
//! closes the loop entirely in-repo:
//!
//! 1. **propose** — the [`catalog`] derives typed, composable
//!    interventions from a [`Scenario`] (a program plus the machine it
//!    runs on): splitting the heaviest region's work across underloaded
//!    ranks, remapping ranks to CPUs (greedy LPT and a speed-aware
//!    variant), upgrading the slowest CPU class, swapping a
//!    collective's cost algorithm, and enabling an in-run dynamic
//!    balancing policy ([`limba_mpisim::BalancePlan`]) — pricing
//!    runtime mitigation against static refactors;
//! 2. **predict** — each candidate's gain is estimated analytically
//!    from the program's `t_ijp` marginals, bracketed by sound
//!    majorization-style lower/upper bounds ([`predict`]) — no
//!    simulation on the search path;
//! 3. **search** — [`Advisor`] beam-searches intervention combos under
//!    a prediction budget, evaluating candidates in parallel through
//!    [`limba_par::par_map`] with input-order slots, so advice is
//!    byte-identical at every `--jobs` setting;
//! 4. **verify** — the top-k candidates are re-simulated on *both*
//!    engines ([`verify`]), reporting predicted-vs-measured gain and
//!    flagging mispredictions.
//!
//! # Example
//!
//! ```
//! use limba_advisor::{Advisor, Scenario};
//! use limba_mpisim::{MachineConfig, ProgramBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut pb = ProgramBuilder::new(4);
//! let solve = pb.add_region("solve");
//! pb.spmd(|rank, mut ops| {
//!     ops.enter(solve)
//!         .compute(1.0 + rank as f64) // heavily skewed
//!         .barrier()
//!         .leave(solve);
//! });
//! let scenario = Scenario::new(pb.build()?, MachineConfig::new(4))?;
//! let advice = Advisor::new().with_top_k(1).advise(&scenario)?;
//! let best = &advice.candidates[0];
//! assert!(best.verification.as_ref().unwrap().measured_gain > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use limba_model::{ActivityKind, Measurements};
use limba_mpisim::{MachineConfig, Program, ProgramBuilder, SimError};

pub mod catalog;
pub mod predict;
pub mod search;
pub mod verify;

pub use catalog::{propose, Intervention, RemapVariant};
pub use predict::{BaselineModel, Prediction};
pub use search::{Advice, Advisor, Candidate};
pub use verify::{Verification, VerifyCache};

/// Errors the advisor reports.
#[derive(Debug)]
pub enum AdviseError {
    /// The simulator rejected a program, machine, or fault plan.
    Sim(SimError),
    /// The verification analysis failed.
    Analysis(limba_analysis::AnalysisError),
    /// Trace reduction of a verification run failed.
    Trace(limba_trace::TraceError),
    /// An internal invariant broke (e.g. the two engines disagreed).
    Internal {
        /// What went wrong.
        detail: String,
    },
    /// A cancellation token tripped mid-advise (see
    /// [`Advisor::with_cancel`]). No advice is returned, but any
    /// verifications already completed were offered to the attached
    /// [`VerifyCache`](crate::verify::VerifyCache), so a resumed advise
    /// run skips them.
    Interrupted {
        /// Which phase the cancellation landed in.
        detail: String,
    },
}

impl fmt::Display for AdviseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdviseError::Sim(e) => write!(f, "simulation failed: {e}"),
            AdviseError::Analysis(e) => write!(f, "analysis failed: {e}"),
            AdviseError::Trace(e) => write!(f, "trace reduction failed: {e}"),
            AdviseError::Internal { detail } => write!(f, "internal error: {detail}"),
            AdviseError::Interrupted { detail } => write!(f, "advise interrupted: {detail}"),
        }
    }
}

impl std::error::Error for AdviseError {}

impl From<SimError> for AdviseError {
    fn from(e: SimError) -> Self {
        AdviseError::Sim(e)
    }
}

impl From<limba_analysis::AnalysisError> for AdviseError {
    fn from(e: limba_analysis::AnalysisError) -> Self {
        AdviseError::Analysis(e)
    }
}

impl From<limba_trace::TraceError> for AdviseError {
    fn from(e: limba_trace::TraceError) -> Self {
        AdviseError::Trace(e)
    }
}

/// What the advisor optimizes: a program plus the machine it runs on.
///
/// Interventions are pure transformations `Scenario → Scenario`; the
/// original is never mutated, so candidates compose and compare freely.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The per-rank op program.
    pub program: Program,
    /// The machine configuration.
    pub config: MachineConfig,
    /// An in-run dynamic balancing plan, when one is active. `None` is
    /// the static baseline; the catalog's
    /// [`Intervention::EnableBalancing`](crate::catalog::Intervention)
    /// turns it on, and every simulation of the scenario (baseline and
    /// verification) honors it.
    pub balance: Option<limba_mpisim::BalancePlan>,
}

impl Scenario {
    /// Pairs a program with a machine.
    ///
    /// # Errors
    ///
    /// Returns [`AdviseError::Sim`] when the configuration is invalid
    /// or its processor count differs from the program's rank count.
    pub fn new(program: Program, config: MachineConfig) -> Result<Self, AdviseError> {
        config.validate()?;
        if config.processors() != program.ranks() {
            return Err(AdviseError::Sim(SimError::InvalidConfig {
                detail: format!(
                    "machine has {} processors but the program has {} ranks",
                    config.processors(),
                    program.ranks()
                ),
            }));
        }
        Ok(Scenario {
            program,
            config,
            balance: None,
        })
    }

    /// Attaches an in-run dynamic balancing plan — every simulation of
    /// the scenario runs under it.
    pub fn with_balance(mut self, plan: limba_mpisim::BalancePlan) -> Self {
        self.balance = Some(plan);
        self
    }

    /// Reconstructs a simulatable proxy scenario from a measurement
    /// matrix: one region per measured region, each rank computing its
    /// measured computation time (its `t_ijp` computation marginal) and
    /// then synchronizing at a barrier, on a uniform machine of the
    /// measured processor count. This is what lets `limba advise` close
    /// the loop on a *trace*: the proxy preserves the per-phase load
    /// shape — exactly what the intervention catalog acts on — while
    /// abstracting the original communication structure into the
    /// barrier.
    ///
    /// # Errors
    ///
    /// Returns [`AdviseError::Sim`] when the matrix has no processors
    /// or a measured time is not a valid work amount.
    pub fn from_measurements(measurements: &Measurements) -> Result<Self, AdviseError> {
        let procs = measurements.processors();
        let mut pb = ProgramBuilder::new(procs);
        let regions: Vec<_> = measurements
            .region_ids()
            .map(|r| pb.add_region(measurements.region_info(r).name()))
            .collect();
        for (region, mid) in measurements.region_ids().zip(regions) {
            pb.spmd(|rank, mut ops| {
                let t = measurements.time(
                    region,
                    ActivityKind::Computation,
                    limba_model::ProcessorId::new(rank),
                );
                ops.enter(mid).compute(t).barrier().leave(mid);
            });
        }
        Scenario::new(pb.build()?, MachineConfig::new(procs))
    }

    /// Per-rank CPU speeds of the machine, in rank order.
    pub fn speeds(&self) -> Vec<f64> {
        (0..self.config.processors())
            .map(|p| self.config.cpu_speed(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_model::MeasurementsBuilder;

    #[test]
    fn scenario_rejects_rank_mismatch() {
        let mut pb = ProgramBuilder::new(2);
        pb.spmd(|_, mut ops| {
            ops.compute(1.0);
        });
        let program = pb.build().unwrap();
        assert!(Scenario::new(program.clone(), MachineConfig::new(3)).is_err());
        assert!(Scenario::new(program, MachineConfig::new(2)).is_ok());
    }

    #[test]
    fn proxy_scenario_preserves_the_load_shape() {
        let mut b = MeasurementsBuilder::new(3);
        let r0 = b.add_region("solve");
        let r1 = b.add_region("exchange");
        for p in 0..3 {
            b.record(r0, ActivityKind::Computation, p, 1.0 + p as f64)
                .unwrap();
            b.record(r1, ActivityKind::Computation, p, 0.5).unwrap();
            b.record(r1, ActivityKind::PointToPoint, p, 0.25).unwrap();
        }
        let m = b.build().unwrap();
        let scenario = Scenario::from_measurements(&m).unwrap();
        assert_eq!(scenario.program.ranks(), 3);
        assert_eq!(scenario.program.region_names(), ["solve", "exchange"]);
        assert_eq!(
            scenario
                .program
                .region_compute_seconds(limba_model::RegionId::new(0)),
            vec![1.0, 2.0, 3.0]
        );
        // Communication marginals are abstracted into the barrier.
        assert_eq!(
            scenario
                .program
                .region_compute_seconds(limba_model::RegionId::new(1)),
            vec![0.5, 0.5, 0.5]
        );
    }
}
