//! The intervention catalog: typed, composable scenario transformations.
//!
//! Every intervention is a pure function `Scenario → Scenario`. The
//! [`propose`] entry point derives a deterministic candidate list from
//! a baseline scenario:
//!
//! * **work splitting** — rebalance the heaviest regions' compute
//!   across ranks in proportion to CPU speed (full and half steps);
//! * **rank remapping** — permute the machine's CPU speeds so faster
//!   CPUs serve heavier ranks (greedy LPT on total load, and a
//!   speed-aware variant driven by each rank's peak single-phase load);
//! * **CPU upgrade** — raise every rank of the slowest CPU class to the
//!   fastest class's speed;
//! * **collective swap** — re-cost one collective kind with a different
//!   algorithm ([`limba_mpisim::MachineConfig::with_collective_algorithm`]);
//! * **dynamic balancing** — enable an in-run migration policy
//!   ([`limba_mpisim::BalancePlan`]): work stealing, diffusion, or
//!   anticipatory rebalancing, applied by the simulator mid-run.
//!
//! Remapping and upgrading are only proposed on heterogeneous machines
//! (on a uniform machine both are no-ops or trivial "buy faster CPUs"
//! advice); collective swaps are only proposed when the swap is an
//! analytic improvement under the machine's own cost model; balancing
//! is only proposed when the per-rank effective totals are imbalanced
//! and the scenario has no policy active yet.

use limba_model::RegionId;
use limba_mpisim::{collective_cost, BalancePlan, CollectiveAlgorithm, CollectiveKind};

use crate::{AdviseError, Scenario};

/// How a rank-to-CPU remapping chooses its assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemapVariant {
    /// Greedy LPT: ranks sorted by *total* compute load get the fastest
    /// remaining CPU each.
    Lpt,
    /// Speed-aware: ranks sorted by their *peak single-phase* load get
    /// the fastest remaining CPU each — targets the rank that
    /// bottlenecks one synchronized phase rather than the largest
    /// aggregate.
    SpeedAware,
}

impl RemapVariant {
    fn label(self) -> &'static str {
        match self {
            RemapVariant::Lpt => "lpt",
            RemapVariant::SpeedAware => "speed-aware",
        }
    }
}

/// One proposed transformation of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum Intervention {
    /// Scale the compute attributed to `region` by `factors[rank]` —
    /// proposed with factors that move the region's work toward a
    /// speed-weighted balance while conserving its total.
    SplitRegionWork {
        /// The region whose work is redistributed.
        region: RegionId,
        /// Per-rank multiplicative factors.
        factors: Vec<f64>,
    },
    /// Permute the machine's CPU speeds: rank `p` receives the speed of
    /// CPU `assignment[p]` in the original machine.
    RemapRanks {
        /// `assignment[p]` = index of the original CPU rank `p` gets.
        assignment: Vec<usize>,
        /// How the assignment was chosen.
        variant: RemapVariant,
    },
    /// Raise every rank currently at the machine's slowest CPU speed to
    /// `speed`.
    UpgradeSlowestCpu {
        /// The new speed for the slowest class.
        speed: f64,
    },
    /// Cost one collective kind with a different algorithm.
    SwapCollective {
        /// The collective kind to re-cost.
        kind: CollectiveKind,
        /// The algorithm to cost it with.
        algorithm: CollectiveAlgorithm,
    },
    /// Turn on in-run dynamic load balancing: the simulator migrates
    /// work between ranks mid-run under `plan` — a runtime mitigation
    /// rather than a code or hardware change, priced against the static
    /// interventions on equal footing.
    EnableBalancing {
        /// The balancing policy and its parameters.
        plan: BalancePlan,
    },
}

impl Intervention {
    /// Applies the intervention, returning the transformed scenario.
    ///
    /// # Errors
    ///
    /// Returns [`AdviseError::Sim`] when the transformation produces an
    /// invalid program or machine (e.g. non-finite split factors).
    pub fn apply(&self, scenario: &Scenario) -> Result<Scenario, AdviseError> {
        match self {
            Intervention::SplitRegionWork { region, factors } => {
                let program = scenario
                    .program
                    .with_region_compute_scaled(*region, factors)?;
                Ok(Scenario {
                    program,
                    config: scenario.config.clone(),
                    balance: scenario.balance.clone(),
                })
            }
            Intervention::RemapRanks { assignment, .. } => {
                let speeds = scenario.speeds();
                let remapped: Vec<f64> = assignment.iter().map(|&c| speeds[c]).collect();
                let config = scenario.config.clone().with_cpu_speeds(remapped);
                config.validate()?;
                Ok(Scenario {
                    program: scenario.program.clone(),
                    config,
                    balance: scenario.balance.clone(),
                })
            }
            Intervention::UpgradeSlowestCpu { speed } => {
                let speeds = scenario.speeds();
                let slowest = speeds.iter().copied().fold(f64::INFINITY, f64::min);
                let upgraded: Vec<f64> = speeds
                    .iter()
                    .map(|&s| if s == slowest { *speed } else { s })
                    .collect();
                let config = scenario.config.clone().with_cpu_speeds(upgraded);
                config.validate()?;
                Ok(Scenario {
                    program: scenario.program.clone(),
                    config,
                    balance: scenario.balance.clone(),
                })
            }
            Intervention::SwapCollective { kind, algorithm } => Ok(Scenario {
                program: scenario.program.clone(),
                config: scenario
                    .config
                    .clone()
                    .with_collective_algorithm(*kind, *algorithm),
                balance: scenario.balance.clone(),
            }),
            Intervention::EnableBalancing { plan } => {
                plan.validate()?;
                Ok(Scenario {
                    program: scenario.program.clone(),
                    config: scenario.config.clone(),
                    balance: Some(plan.clone()),
                })
            }
        }
    }

    /// Human-readable description; `region_names` resolves region ids.
    pub fn label(&self, region_names: &[String]) -> String {
        match self {
            Intervention::SplitRegionWork { region, factors } => {
                let name = region_names
                    .get(region.index())
                    .map(String::as_str)
                    .unwrap_or("?");
                let max = factors.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                format!("rebalance work of region \"{name}\" across ranks (max factor {max:.2})")
            }
            Intervention::RemapRanks { variant, .. } => {
                format!("remap ranks to CPUs ({})", variant.label())
            }
            Intervention::UpgradeSlowestCpu { speed } => {
                format!("upgrade slowest CPU class to speed {speed}")
            }
            Intervention::SwapCollective { kind, algorithm } => {
                format!("cost {kind} collectives with the {algorithm} algorithm")
            }
            Intervention::EnableBalancing { plan } => {
                format!("enable dynamic load balancing ({})", plan.summary())
            }
        }
    }

    /// A canonical, deterministic identity string — the tie-breaker for
    /// every ranking and the key of the search's memo cache.
    pub fn signature(&self) -> String {
        match self {
            Intervention::SplitRegionWork { region, factors } => {
                let fs: Vec<String> = factors.iter().map(|f| format!("{f:.6}")).collect();
                format!("split:{}:{}", region.index(), fs.join(","))
            }
            Intervention::RemapRanks {
                assignment,
                variant,
            } => {
                let a: Vec<String> = assignment.iter().map(usize::to_string).collect();
                format!("remap:{}:{}", variant.label(), a.join(","))
            }
            Intervention::UpgradeSlowestCpu { speed } => format!("upgrade:{speed:.6}"),
            Intervention::SwapCollective { kind, algorithm } => {
                format!("swap:{kind}:{algorithm}")
            }
            Intervention::EnableBalancing { plan } => format!("balance:{}", plan.signature()),
        }
    }

    /// The exclusive slot the intervention occupies inside a combo: a
    /// combo holds at most one intervention per slot, which rules out
    /// double-splitting one region or stacking two remaps.
    pub fn slot(&self) -> String {
        match self {
            Intervention::SplitRegionWork { region, .. } => format!("split:{}", region.index()),
            Intervention::RemapRanks { .. } => "remap".to_string(),
            Intervention::UpgradeSlowestCpu { .. } => "upgrade".to_string(),
            Intervention::SwapCollective { kind, .. } => format!("swap:{kind}"),
            Intervention::EnableBalancing { .. } => "balance".to_string(),
        }
    }
}

/// Factors that move region work `w` toward the speed-weighted balance
/// point, conserving the region's total. Ranks with zero work keep
/// factor 1 (a multiplicative transform cannot create work from
/// nothing); `step` interpolates between no change (0) and full
/// balance (1).
fn balance_factors(w: &[f64], speeds: &[f64], step: f64) -> Vec<f64> {
    let active: Vec<usize> = (0..w.len()).filter(|&p| w[p] > 0.0).collect();
    let total: f64 = active.iter().map(|&p| w[p]).sum();
    let speed_sum: f64 = active.iter().map(|&p| speeds[p]).sum();
    if total <= 0.0 || speed_sum <= 0.0 {
        return vec![1.0; w.len()];
    }
    let mut factors = vec![1.0; w.len()];
    for &p in &active {
        let target = total * speeds[p] / speed_sum;
        let full = target / w[p];
        factors[p] = 1.0 + step * (full - 1.0);
    }
    factors
}

/// Sorted-matching assignment: ranks ordered by `loads` descending
/// (ties by rank) each take the fastest remaining CPU (ties by index).
fn matched_assignment(loads: &[f64], speeds: &[f64]) -> Vec<usize> {
    let mut rank_order: Vec<usize> = (0..loads.len()).collect();
    rank_order.sort_by(|&a, &b| loads[b].total_cmp(&loads[a]).then(a.cmp(&b)));
    let mut cpu_order: Vec<usize> = (0..speeds.len()).collect();
    cpu_order.sort_by(|&a, &b| speeds[b].total_cmp(&speeds[a]).then(a.cmp(&b)));
    let mut assignment = vec![0usize; loads.len()];
    for (i, &rank) in rank_order.iter().enumerate() {
        assignment[rank] = cpu_order[i];
    }
    assignment
}

/// Relative spread threshold below which a region is considered
/// balanced and not worth splitting.
const SPLIT_THRESHOLD: f64 = 1e-3;

/// Seed of the proposed balancing plans — fixed so the catalog (and
/// therefore every signature, cache key, and golden) is deterministic.
const BALANCE_SEED: u64 = 2003;

/// How many of the heaviest imbalanced regions get split proposals.
const SPLIT_REGIONS: usize = 3;

/// Derives the deterministic intervention catalog for a scenario.
///
/// The list is ordered: splits of the heaviest imbalanced regions
/// first (full then half step for the single heaviest), then remaps
/// and the CPU upgrade (heterogeneous machines only), then analytic
/// collective-swap improvements, then the dynamic-balancing policies
/// (imbalanced scenarios only).
pub fn propose(scenario: &Scenario) -> Vec<Intervention> {
    let mut catalog = Vec::new();
    let speeds = scenario.speeds();
    let regions = scenario.program.region_names().len();

    // Work splitting: heaviest imbalanced regions, by effective load.
    let region_loads: Vec<Vec<f64>> = (0..regions)
        .map(|j| scenario.program.region_compute_seconds(RegionId::new(j)))
        .collect();
    let mut by_weight: Vec<usize> = (0..regions).collect();
    let totals: Vec<f64> = region_loads.iter().map(|w| w.iter().sum()).collect();
    by_weight.sort_by(|&a, &b| totals[b].total_cmp(&totals[a]).then(a.cmp(&b)));
    let mut split_candidates = 0usize;
    for &j in &by_weight {
        if split_candidates >= SPLIT_REGIONS || totals[j] <= 0.0 {
            break;
        }
        let w = &region_loads[j];
        let eff_max = w
            .iter()
            .zip(&speeds)
            .map(|(&w, &s)| w / s)
            .fold(0.0f64, f64::max);
        let eff_mean = w.iter().zip(&speeds).map(|(&w, &s)| w / s).sum::<f64>() / w.len() as f64;
        if eff_max <= eff_mean * (1.0 + SPLIT_THRESHOLD) {
            continue; // already balanced
        }
        catalog.push(Intervention::SplitRegionWork {
            region: RegionId::new(j),
            factors: balance_factors(w, &speeds, 1.0),
        });
        if split_candidates == 0 {
            // A gentler half-step for the heaviest region: realistic
            // refactors rarely achieve perfect balance in one move.
            catalog.push(Intervention::SplitRegionWork {
                region: RegionId::new(j),
                factors: balance_factors(w, &speeds, 0.5),
            });
        }
        split_candidates += 1;
    }

    // Placement interventions only make sense on heterogeneous machines.
    let slowest = speeds.iter().copied().fold(f64::INFINITY, f64::min);
    let fastest = speeds.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if fastest > slowest {
        let total_loads = scenario.program.compute_seconds();
        let peak_loads: Vec<f64> = (0..scenario.program.ranks())
            .map(|p| region_loads.iter().map(|w| w[p]).fold(0.0f64, f64::max))
            .collect();
        for (loads, variant) in [
            (&total_loads, RemapVariant::Lpt),
            (&peak_loads, RemapVariant::SpeedAware),
        ] {
            let assignment = matched_assignment(loads, &speeds);
            if assignment.iter().enumerate().any(|(p, &c)| p != c) {
                catalog.push(Intervention::RemapRanks {
                    assignment,
                    variant,
                });
            }
        }
        catalog.push(Intervention::UpgradeSlowestCpu { speed: fastest });
    }

    // Collective swaps that the machine's own cost model says improve.
    let calls = scenario.program.collective_calls();
    let mut kinds: Vec<CollectiveKind> = Vec::new();
    for &(kind, _) in &calls {
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }
    let procs = scenario.config.processors();
    for kind in kinds {
        let current = scenario.config.collective_algorithm(kind);
        let current_total: f64 = calls
            .iter()
            .filter(|&&(k, _)| k == kind)
            .map(|&(_, bytes)| collective_cost(kind, procs, bytes, &scenario.config))
            .sum();
        let mut best: Option<(CollectiveAlgorithm, f64)> = None;
        for algorithm in CollectiveAlgorithm::ALL {
            if algorithm == current {
                continue;
            }
            let swapped = scenario
                .config
                .clone()
                .with_collective_algorithm(kind, algorithm);
            let total: f64 = calls
                .iter()
                .filter(|&&(k, _)| k == kind)
                .map(|&(_, bytes)| collective_cost(kind, procs, bytes, &swapped))
                .sum();
            if total < current_total && best.is_none_or(|(_, b)| total < b) {
                best = Some((algorithm, total));
            }
        }
        if let Some((algorithm, _)) = best {
            catalog.push(Intervention::SwapCollective { kind, algorithm });
        }
    }

    // Dynamic balancing: a runtime mitigation rather than a code or
    // hardware change, proposed whenever the per-rank effective totals
    // are imbalanced and no policy is active yet. One candidate per
    // policy family; the plan parameters match the workload presets.
    if scenario.balance.is_none() {
        let totals = scenario.program.compute_seconds();
        let eff: Vec<f64> = totals.iter().zip(&speeds).map(|(&w, &s)| w / s).collect();
        let eff_max = eff.iter().copied().fold(0.0f64, f64::max);
        let eff_mean = eff.iter().sum::<f64>() / eff.len().max(1) as f64;
        if eff_max > eff_mean * (1.0 + SPLIT_THRESHOLD) {
            for plan in [
                BalancePlan::stealing(BALANCE_SEED, 1.15),
                BalancePlan::diffusion(BALANCE_SEED, 0.5),
                BalancePlan::anticipatory(BALANCE_SEED, 8, 0.25),
            ] {
                catalog.push(Intervention::EnableBalancing { plan });
            }
        }
    }

    catalog
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_mpisim::{MachineConfig, ProgramBuilder};

    fn skewed_scenario(speeds: Option<Vec<f64>>) -> Scenario {
        let mut pb = ProgramBuilder::new(4);
        let heavy = pb.add_region("heavy");
        let light = pb.add_region("light");
        pb.spmd(|rank, mut ops| {
            ops.enter(heavy)
                .compute(1.0 + rank as f64)
                .barrier()
                .leave(heavy)
                .enter(light)
                .compute(0.1)
                .allgather(64 * 1024)
                .leave(light);
        });
        let mut config = MachineConfig::new(4);
        if let Some(speeds) = speeds {
            config = config.with_cpu_speeds(speeds);
        }
        Scenario::new(pb.build().unwrap(), config).unwrap()
    }

    #[test]
    fn balance_factors_conserve_total_work() {
        let w = [4.0, 0.0, 1.0, 3.0];
        let speeds = [1.0; 4];
        let f = balance_factors(&w, &speeds, 1.0);
        let after: Vec<f64> = w.iter().zip(&f).map(|(&w, &f)| w * f).collect();
        let total: f64 = after.iter().sum();
        assert!((total - 8.0).abs() < 1e-12);
        // Active ranks balanced, inactive untouched.
        assert!((after[0] - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(after[1], 0.0);
        assert_eq!(f[1], 1.0);
    }

    #[test]
    fn uniform_machines_get_no_placement_advice() {
        let catalog = propose(&skewed_scenario(None));
        assert!(catalog
            .iter()
            .all(|i| !matches!(i, Intervention::RemapRanks { .. })));
        assert!(catalog
            .iter()
            .all(|i| !matches!(i, Intervention::UpgradeSlowestCpu { .. })));
        // But the skewed heavy region is proposed for splitting.
        assert!(catalog.iter().any(|i| matches!(
            i,
            Intervention::SplitRegionWork { region, .. } if region.index() == 0
        )));
    }

    #[test]
    fn heterogeneous_machines_get_remap_and_upgrade() {
        let catalog = propose(&skewed_scenario(Some(vec![2.0, 1.0, 0.5, 1.0])));
        assert!(catalog
            .iter()
            .any(|i| matches!(i, Intervention::RemapRanks { variant, .. } if *variant == RemapVariant::Lpt)));
        assert!(catalog
            .iter()
            .any(|i| matches!(i, Intervention::UpgradeSlowestCpu { speed } if *speed == 2.0)));
        // The LPT remap sends the heaviest rank (3) to the fastest CPU (0).
        let Some(Intervention::RemapRanks { assignment, .. }) = catalog
            .iter()
            .find(|i| matches!(i, Intervention::RemapRanks { variant, .. } if *variant == RemapVariant::Lpt))
        else {
            panic!("no LPT remap proposed")
        };
        assert_eq!(assignment[3], 0);
    }

    #[test]
    fn collective_swaps_only_improve_under_the_cost_model() {
        // 4-rank allgather: ring is 3 rounds, recursive doubling 2 —
        // a swap must be proposed and must be an analytic improvement.
        let scenario = skewed_scenario(None);
        let swap = propose(&scenario)
            .into_iter()
            .find(|i| matches!(i, Intervention::SwapCollective { kind, .. } if *kind == CollectiveKind::Allgather))
            .expect("no allgather swap proposed");
        let Intervention::SwapCollective { kind, algorithm } = swap else {
            unreachable!()
        };
        let before = collective_cost(kind, 4, 64 * 1024, &scenario.config);
        let after = collective_cost(
            kind,
            4,
            64 * 1024,
            &scenario
                .config
                .clone()
                .with_collective_algorithm(kind, algorithm),
        );
        assert!(after < before);
    }

    #[test]
    fn apply_round_trips_through_the_simulator() {
        use limba_mpisim::Simulator;
        let scenario = skewed_scenario(Some(vec![2.0, 1.0, 0.5, 1.0]));
        for intervention in propose(&scenario) {
            let cand = intervention.apply(&scenario).unwrap();
            let sim = Simulator::new(cand.config.clone());
            sim.run(&cand.program)
                .unwrap_or_else(|e| panic!("{} failed: {e}", intervention.signature()));
        }
    }

    #[test]
    fn balancing_proposed_only_for_imbalanced_unbalanced_scenarios() {
        // Skewed rank totals: one candidate per policy family.
        let scenario = skewed_scenario(None);
        let balance: Vec<Intervention> = propose(&scenario)
            .into_iter()
            .filter(|i| matches!(i, Intervention::EnableBalancing { .. }))
            .collect();
        assert_eq!(balance.len(), 3);
        assert!(balance.iter().all(|i| i.slot() == "balance"));
        assert!(balance
            .iter()
            .any(|i| i.signature() == "balance:stealing:1.15:0.5"));

        // A scenario already running a policy gets no second one.
        let active = Intervention::EnableBalancing {
            plan: BalancePlan::stealing(2003, 1.15),
        }
        .apply(&scenario)
        .unwrap();
        assert!(active.balance.is_some());
        assert!(!propose(&active)
            .iter()
            .any(|i| matches!(i, Intervention::EnableBalancing { .. })));

        // A perfectly level workload has nothing to balance.
        let mut pb = ProgramBuilder::new(4);
        pb.spmd(|_, mut ops| {
            ops.compute(1.0).barrier();
        });
        let level = Scenario::new(pb.build().unwrap(), MachineConfig::new(4)).unwrap();
        assert!(!propose(&level)
            .iter()
            .any(|i| matches!(i, Intervention::EnableBalancing { .. })));
    }

    #[test]
    fn signatures_and_slots_are_stable() {
        let i = Intervention::SwapCollective {
            kind: CollectiveKind::Allreduce,
            algorithm: CollectiveAlgorithm::Ring,
        };
        assert_eq!(i.signature(), "swap:allreduce:ring");
        assert_eq!(i.slot(), "swap:allreduce");
        let s = Intervention::SplitRegionWork {
            region: RegionId::new(2),
            factors: vec![1.0, 0.5],
        };
        assert_eq!(s.signature(), "split:2:1.000000,0.500000");
        assert_eq!(s.slot(), "split:2");
    }
}
