//! The verification stage: re-simulate top candidates on both engines.
//!
//! Prediction is a model; verification is the ground truth. Each
//! surviving candidate is re-run on the event-driven *and* the polling
//! engine (with the advise run's fault plan, when one is set, and the
//! candidate's own balancing plan, when it carries one), the two
//! outputs are required to be identical, and the measured makespan is
//! compared against the prediction: `mispredicted` flags estimates off
//! by more than [`MISPREDICT_TOLERANCE`] of the measured value, and
//! `within_bounds` checks the majorization bracket (guaranteed for
//! fault-free runs). The verified trace is then reduced and analyzed —
//! through the shared batch memo cache — so the advice can also report
//! where the imbalance *moved*: the post-intervention heaviest region.

use limba_analysis::BatchAnalyzer;
use limba_mpisim::{FaultPlan, Simulator};

use crate::{AdviseError, Prediction, Scenario};

/// Relative error (vs the measured makespan) above which a prediction
/// counts as a misprediction.
pub const MISPREDICT_TOLERANCE: f64 = 0.05;

/// The measured outcome of one candidate's verification runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Verification {
    /// Makespan measured on the event-driven engine (seconds).
    pub event_makespan: f64,
    /// Makespan measured on the polling engine (seconds).
    pub polling_makespan: f64,
    /// Measured gain over the baseline (positive = faster).
    pub measured_gain: f64,
    /// Whether the measured makespan lies inside the predicted
    /// majorization bracket `[lower_bound, upper_bound]`.
    pub within_bounds: bool,
    /// Whether the point estimate missed the measurement by more than
    /// [`MISPREDICT_TOLERANCE`] of the measured makespan.
    pub mispredicted: bool,
    /// The heaviest region *after* the intervention, from re-analyzing
    /// the verified trace (`None` when that analysis is degenerate,
    /// e.g. too few ranks to cluster).
    pub heaviest_region: Option<String>,
}

/// A pluggable store of completed [`Verification`]s, keyed by the
/// candidate's canonical combo signature.
///
/// The advisor consults the cache before re-simulating a candidate and
/// offers every freshly computed verification back, which is what makes
/// an interrupted `advise` run resumable: a checkpoint-backed
/// implementation (see `limba-guard`) persists each verification as it
/// completes, and the resumed run replays them instead of simulating.
///
/// Correctness requirement for implementors: `get` must only return a
/// value previously `put` under the same signature *for the same
/// scenario, faults, and analyzer configuration* — verifications are
/// deterministic, so under that discipline a cache hit is bit-identical
/// to a recomputation.
pub trait VerifyCache: Send + Sync {
    /// Looks up a completed verification by combo signature.
    fn get(&self, signature: &str) -> Option<Verification>;
    /// Records a completed verification. Errors must be swallowed or
    /// surfaced out-of-band; a failed `put` only costs a future hit.
    fn put(&self, signature: &str, verification: &Verification);
}

/// Re-simulates `candidate` on both engines and scores it against its
/// prediction. `batch` supplies the analyzer (and its shared memo
/// cache) for the post-intervention report.
///
/// # Errors
///
/// Returns [`AdviseError::Sim`] when a run fails outright and
/// [`AdviseError::Internal`] when the two engines disagree — a
/// simulator bug, never a property of the candidate.
pub fn verify(
    candidate: &Scenario,
    faults: Option<&FaultPlan>,
    baseline_makespan: f64,
    prediction: &Prediction,
    batch: &BatchAnalyzer,
) -> Result<Verification, AdviseError> {
    let sim = Simulator::new(candidate.config.clone());
    let (event, polling) = (
        sim.run_configured(&candidate.program, faults, candidate.balance.as_ref(), None)?,
        sim.run_polling_configured(&candidate.program, faults, candidate.balance.as_ref(), None)?,
    );
    if event.trace != polling.trace || event.stats != polling.stats {
        return Err(AdviseError::Internal {
            detail: "event and polling engines disagree on a verification run".into(),
        });
    }
    let measured = event.stats.makespan;
    let eps = 1e-9 * measured.abs().max(1.0);
    let within_bounds =
        measured >= prediction.lower_bound - eps && measured <= prediction.upper_bound + eps;
    let mispredicted = (prediction.makespan - measured).abs()
        > MISPREDICT_TOLERANCE * measured.max(f64::MIN_POSITIVE);

    // Where did the imbalance move? Reduce and re-analyze the verified
    // trace; a failure here degrades the answer, not the verification.
    let heaviest_region = event
        .reduce_checked()
        .ok()
        .and_then(|salvaged| {
            batch
                .analyze_batch(std::slice::from_ref(&salvaged.reduced.measurements))
                .pop()?
                .ok()
        })
        .and_then(|report| {
            report
                .findings
                .tuning_candidates
                .iter()
                .find(|c| c.is_heaviest)
                .map(|c| c.name.clone())
        });

    Ok(Verification {
        event_makespan: measured,
        polling_makespan: polling.stats.makespan,
        measured_gain: baseline_makespan - measured,
        within_bounds,
        mispredicted,
        heaviest_region,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_analysis::Analyzer;
    use limba_mpisim::{MachineConfig, ProgramBuilder};

    #[test]
    fn verification_agrees_with_a_direct_run() {
        let mut pb = ProgramBuilder::new(4);
        let r = pb.add_region("solve");
        pb.spmd(|rank, mut ops| {
            ops.enter(r)
                .compute(0.2 + 0.1 * rank as f64)
                .barrier()
                .leave(r);
        });
        let scenario = Scenario::new(pb.build().unwrap(), MachineConfig::new(4)).unwrap();
        let sim = Simulator::new(scenario.config.clone());
        let baseline = sim.run(&scenario.program).unwrap().stats.makespan;
        let model = crate::BaselineModel::new(&scenario, baseline);
        let prediction = model.predict(&scenario);
        let batch = BatchAnalyzer::new(Analyzer::new().with_cluster_k(2));
        let v = verify(&scenario, None, baseline, &prediction, &batch).unwrap();
        assert_eq!(v.event_makespan, baseline);
        assert_eq!(v.polling_makespan, baseline);
        assert_eq!(v.measured_gain, 0.0);
        assert!(v.within_bounds);
        assert!(!v.mispredicted);
        assert_eq!(v.heaviest_region.as_deref(), Some("solve"));
    }
}
