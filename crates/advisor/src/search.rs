//! The search driver: beam search over intervention combos.
//!
//! Candidates are *combos* — signature-sorted sets of catalog
//! interventions with pairwise-distinct slots. The driver predicts
//! every explored combo analytically (never simulating on the search
//! path), keeps the `beam_width` best per depth, extends them with
//! compatible interventions up to `max_depth`, and stops when the
//! prediction `budget` is exhausted. The top `top_k` combos by
//! predicted makespan are then handed to the verification stage, and
//! the advice is ranked by *measured* makespan.
//!
//! Determinism: combos are evaluated through [`limba_par::par_map`]
//! (input-order result slots), every ranking tie-breaks on the combo's
//! canonical signature, and a memo set prevents re-evaluating a combo
//! reached through two beam paths — so the advice is byte-identical at
//! every `jobs` setting.

use std::collections::BTreeSet;
use std::sync::Arc;

use limba_analysis::{Analyzer, BatchAnalyzer, ReportCache};
use limba_mpisim::{FaultPlan, Simulator};
use limba_par::{par_map, par_map_cancellable, CancelToken};

use crate::catalog::{propose, Intervention};
use crate::predict::{BaselineModel, Prediction};
use crate::verify::{verify, Verification, VerifyCache};
use crate::{AdviseError, Scenario};

/// One ranked recommendation: an intervention combo, its analytic
/// prediction, and (after verification) its measured outcome.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The interventions, in canonical (signature-sorted) apply order.
    pub interventions: Vec<Intervention>,
    /// Human-readable labels, one per intervention.
    pub labels: Vec<String>,
    /// Canonical identity of the combo.
    pub signature: String,
    /// The analytic prediction.
    pub prediction: Prediction,
    /// Predicted gain over the baseline in seconds.
    pub predicted_gain: f64,
    /// The verification outcome (`Some` for every advised candidate).
    pub verification: Option<Verification>,
}

/// The advisor's result: the baseline and the verified top candidates.
#[derive(Debug, Clone)]
pub struct Advice {
    /// Baseline makespan both engines agreed on (seconds).
    pub baseline_makespan: f64,
    /// Size of the proposed intervention catalog.
    pub catalog_size: usize,
    /// Number of combos the search predicted (≤ budget).
    pub evaluated: usize,
    /// The prediction budget the search ran under.
    pub budget: usize,
    /// Verified candidates, ranked by measured makespan (best first).
    pub candidates: Vec<Candidate>,
}

/// The closed-loop tuning advisor (see the crate docs).
#[derive(Clone)]
pub struct Advisor {
    budget: usize,
    top_k: usize,
    beam_width: usize,
    max_depth: usize,
    jobs: usize,
    faults: Option<FaultPlan>,
    analyzer: Analyzer,
    cancel: Option<CancelToken>,
    verify_cache: Option<Arc<dyn VerifyCache>>,
}

impl std::fmt::Debug for Advisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Advisor")
            .field("budget", &self.budget)
            .field("top_k", &self.top_k)
            .field("beam_width", &self.beam_width)
            .field("max_depth", &self.max_depth)
            .field("jobs", &self.jobs)
            .field("faults", &self.faults)
            .field("analyzer", &self.analyzer)
            .field("cancel", &self.cancel)
            .field("verify_cache", &self.verify_cache.as_ref().map(|_| ".."))
            .finish()
    }
}

impl Default for Advisor {
    fn default() -> Self {
        Advisor::new()
    }
}

impl Advisor {
    /// An advisor with the default search knobs: budget 64, top-k 3,
    /// beam width 8, depth 2, sequential evaluation.
    pub fn new() -> Self {
        Advisor {
            budget: 64,
            top_k: 3,
            beam_width: 8,
            max_depth: 2,
            jobs: 1,
            faults: None,
            analyzer: Analyzer::new(),
            cancel: None,
            verify_cache: None,
        }
    }

    /// Sets the prediction budget: the maximum number of combos the
    /// search evaluates analytically. The budget caps *predictions*,
    /// not simulations — verification always runs exactly
    /// `2 × min(top_k, evaluated)` simulations.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget.max(1);
        self
    }

    /// Sets how many top candidates are simulate-verified and reported.
    pub fn with_top_k(mut self, top_k: usize) -> Self {
        self.top_k = top_k.max(1);
        self
    }

    /// Sets the beam width (combos kept per search depth).
    pub fn with_beam_width(mut self, width: usize) -> Self {
        self.beam_width = width.max(1);
        self
    }

    /// Sets the maximum number of interventions per combo.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth.max(1);
        self
    }

    /// Sets the worker count for parallel candidate evaluation and
    /// verification (0 = all cores). Results are identical at every
    /// setting.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Runs the baseline and every verification under `plan` — advising
    /// on the machine as it degrades, not as designed.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Overrides the analyzer used for post-verification reports.
    pub fn with_analyzer(mut self, analyzer: Analyzer) -> Self {
        self.analyzer = analyzer;
        self
    }

    /// Attaches a cooperative cancellation token. When the token trips,
    /// [`advise`](Self::advise) stops at the next phase boundary (or the
    /// next unstarted verification) and returns
    /// [`AdviseError::Interrupted`]. Verifications finished before the
    /// trip were already offered to the attached
    /// [`VerifyCache`], so nothing completed is lost.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Attaches a [`VerifyCache`]: candidate verifications found in the
    /// cache are reused instead of re-simulated, and fresh ones are
    /// stored back. With a persistent implementation this makes advise
    /// runs resumable (see the `VerifyCache` docs for the correctness
    /// discipline).
    pub fn with_verify_cache(mut self, cache: Arc<dyn VerifyCache>) -> Self {
        self.verify_cache = Some(cache);
        self
    }

    fn check_cancelled(&self, phase: &str) -> Result<(), AdviseError> {
        match &self.cancel {
            Some(token) if token.is_cancelled() => Err(AdviseError::Interrupted {
                detail: format!("cancelled during {phase}"),
            }),
            _ => Ok(()),
        }
    }

    /// Proposes, predicts, searches, and verifies: the closed loop.
    ///
    /// # Errors
    ///
    /// Returns [`AdviseError::Sim`] when the baseline or a verification
    /// run fails, and [`AdviseError::Internal`] when the two engines
    /// disagree on any simulated run.
    pub fn advise(&self, scenario: &Scenario) -> Result<Advice, AdviseError> {
        scenario.config.validate()?;
        if let Some(plan) = &self.faults {
            plan.validate(scenario.config.processors())?;
        }
        self.check_cancelled("baseline simulation")?;

        // Baseline on both engines: the one simulation predictions use.
        // The scenario's own balance plan (if any) is part of the
        // baseline — the advisor measures interventions against it.
        let sim = Simulator::new(scenario.config.clone());
        let (event, polling) = (
            sim.run_configured(
                &scenario.program,
                self.faults.as_ref(),
                scenario.balance.as_ref(),
                None,
            )?,
            sim.run_polling_configured(
                &scenario.program,
                self.faults.as_ref(),
                scenario.balance.as_ref(),
                None,
            )?,
        );
        if event.trace != polling.trace || event.stats != polling.stats {
            return Err(AdviseError::Internal {
                detail: "event and polling engines disagree on the baseline run".into(),
            });
        }
        let baseline_makespan = event.stats.makespan;
        let model = BaselineModel::new(scenario, baseline_makespan);
        let catalog = propose(scenario);

        // Beam search under the prediction budget.
        let mut evaluated = 0usize;
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut scored: Vec<(String, Vec<Intervention>, Prediction)> = Vec::new();
        let mut frontier: Vec<Vec<Intervention>> =
            catalog.iter().map(|i| vec![i.clone()]).collect();
        for _depth in 0..self.max_depth {
            self.check_cancelled("beam search")?;
            let mut batch: Vec<(String, Vec<Intervention>)> = Vec::new();
            for combo in frontier.drain(..) {
                if evaluated + batch.len() >= self.budget {
                    break;
                }
                let signature = combo_signature(&combo);
                if seen.insert(signature.clone()) {
                    batch.push((signature, combo));
                }
            }
            if batch.is_empty() {
                break;
            }
            let predictions = par_map(self.jobs, &batch, |_, (_, combo)| {
                apply_combo(scenario, combo)
                    .ok()
                    .map(|cand| model.predict(&cand))
            });
            evaluated += batch.len();
            for ((signature, combo), prediction) in batch.into_iter().zip(predictions) {
                if let Some(prediction) = prediction {
                    scored.push((signature, combo, prediction));
                }
            }
            if evaluated >= self.budget {
                break;
            }
            // Extend the beam with every slot-compatible intervention.
            let mut beam: Vec<&(String, Vec<Intervention>, Prediction)> = scored.iter().collect();
            beam.sort_by(|a, b| rank_predicted(a, b));
            beam.truncate(self.beam_width);
            frontier = beam
                .iter()
                .flat_map(|(_, combo, _)| {
                    catalog
                        .iter()
                        .filter(|i| combo.iter().all(|c| c.slot() != i.slot()))
                        .map(|i| {
                            let mut extended = combo.clone();
                            extended.push(i.clone());
                            extended.sort_by_key(|i| i.signature());
                            extended
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
        }

        // Rank every evaluated combo and verify the top k. Dynamic
        // balancing gets one reserved verification slot: when no combo
        // in the top k carries a balancing intervention but a scored
        // one does, the best such combo is verified as an extra
        // candidate — runtime mitigation is always priced against the
        // static refactors it competes with.
        self.check_cancelled("candidate ranking")?;
        scored.sort_by(rank_predicted);
        let has_balance = |combo: &[Intervention]| {
            combo
                .iter()
                .any(|i| matches!(i, Intervention::EnableBalancing { .. }))
        };
        let reserved = if scored
            .iter()
            .take(self.top_k)
            .any(|(_, combo, _)| has_balance(combo))
        {
            None
        } else {
            scored
                .iter()
                .skip(self.top_k)
                .find(|(_, combo, _)| has_balance(combo))
                .cloned()
        };
        scored.truncate(self.top_k);
        scored.extend(reserved);
        let batch_analyzer = BatchAnalyzer::new(self.analyzer.clone())
            .with_jobs(self.jobs)
            .with_cache(ReportCache::new());
        let verify_one = |signature: &str,
                          combo: &[Intervention],
                          prediction: &Prediction|
         -> Result<Verification, AdviseError> {
            if let Some(cache) = &self.verify_cache {
                if let Some(hit) = cache.get(signature) {
                    return Ok(hit);
                }
            }
            let cand = apply_combo(scenario, combo)?;
            let verification = verify(
                &cand,
                self.faults.as_ref(),
                baseline_makespan,
                prediction,
                &batch_analyzer,
            )?;
            if let Some(cache) = &self.verify_cache {
                cache.put(signature, &verification);
            }
            Ok(verification)
        };
        let verifications: Vec<Result<Verification, AdviseError>> = match &self.cancel {
            None => par_map(self.jobs, &scored, |_, (signature, combo, prediction)| {
                verify_one(signature, combo, prediction)
            }),
            Some(token) => par_map_cancellable(
                self.jobs,
                &scored,
                token,
                |_, (signature, combo, prediction)| verify_one(signature, combo, prediction),
            )
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    Err(AdviseError::Interrupted {
                        detail: "cancelled during verification".into(),
                    })
                })
            })
            .collect(),
        };

        let region_names = scenario.program.region_names();
        let mut candidates = Vec::with_capacity(scored.len());
        for ((signature, interventions, prediction), verification) in
            scored.into_iter().zip(verifications)
        {
            let verification = verification?;
            candidates.push(Candidate {
                labels: interventions
                    .iter()
                    .map(|i| i.label(region_names))
                    .collect(),
                signature,
                predicted_gain: prediction.gain(baseline_makespan),
                prediction,
                interventions,
                verification: Some(verification),
            });
        }
        candidates.sort_by(|a, b| {
            let am = a
                .verification
                .as_ref()
                .map_or(f64::INFINITY, |v| v.event_makespan);
            let bm = b
                .verification
                .as_ref()
                .map_or(f64::INFINITY, |v| v.event_makespan);
            am.total_cmp(&bm)
                .then(a.interventions.len().cmp(&b.interventions.len()))
                .then(a.signature.cmp(&b.signature))
        });

        Ok(Advice {
            baseline_makespan,
            catalog_size: catalog.len(),
            evaluated,
            budget: self.budget,
            candidates,
        })
    }
}

/// Prediction-ranking order: predicted makespan, then combo size
/// (simpler combos win exact ties — a combo whose extra intervention
/// predicts no change must not outrank its base), then signature.
fn rank_predicted(
    a: &(String, Vec<Intervention>, Prediction),
    b: &(String, Vec<Intervention>, Prediction),
) -> std::cmp::Ordering {
    a.2.makespan
        .total_cmp(&b.2.makespan)
        .then(a.1.len().cmp(&b.1.len()))
        .then(a.0.cmp(&b.0))
}

/// Canonical identity of a combo: its sorted intervention signatures.
fn combo_signature(combo: &[Intervention]) -> String {
    let mut sigs: Vec<String> = combo.iter().map(Intervention::signature).collect();
    sigs.sort();
    sigs.join(" + ")
}

/// Applies a combo in its canonical order.
fn apply_combo(scenario: &Scenario, combo: &[Intervention]) -> Result<Scenario, AdviseError> {
    let mut current = scenario.clone();
    for intervention in combo {
        current = intervention.apply(&current)?;
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_mpisim::{MachineConfig, ProgramBuilder};

    fn skewed_scenario() -> Scenario {
        let mut pb = ProgramBuilder::new(4);
        let heavy = pb.add_region("heavy");
        let light = pb.add_region("light");
        pb.spmd(|rank, mut ops| {
            ops.enter(heavy)
                .compute(1.0 + rank as f64)
                .barrier()
                .leave(heavy)
                .enter(light)
                .compute(0.2)
                .allreduce(2048)
                .leave(light);
        });
        Scenario::new(pb.build().unwrap(), MachineConfig::new(4)).unwrap()
    }

    #[test]
    fn advice_finds_a_verified_improvement() {
        let scenario = skewed_scenario();
        let advisor = Advisor::new()
            .with_top_k(3)
            .with_analyzer(Analyzer::new().with_cluster_k(2));
        let advice = advisor.advise(&scenario).unwrap();
        assert!(advice.evaluated > 0);
        assert!(advice.evaluated <= advice.budget);
        assert!(!advice.candidates.is_empty());
        let best = &advice.candidates[0];
        let v = best.verification.as_ref().unwrap();
        assert!(
            v.measured_gain > 0.0,
            "best candidate should beat the baseline: {best:?}"
        );
        assert!(v.within_bounds, "{best:?}");
        assert_eq!(v.event_makespan, v.polling_makespan);
        // The top recommendation targets the heavy region.
        assert!(
            best.labels.iter().any(|l| l.contains("heavy")),
            "{:?}",
            best.labels
        );
    }

    #[test]
    fn advice_surfaces_a_verified_balancing_candidate() {
        // The reserved slot (or the ranking itself) must always price
        // dynamic balancing on an imbalanced scenario, and the verified
        // run must honor the plan: migrations never worsen the run.
        let scenario = skewed_scenario();
        let advice = Advisor::new()
            .with_analyzer(Analyzer::new().with_cluster_k(2))
            .advise(&scenario)
            .unwrap();
        let balanced: Vec<&Candidate> = advice
            .candidates
            .iter()
            .filter(|c| c.signature.contains("balance:"))
            .collect();
        assert!(
            !balanced.is_empty(),
            "no dynamic-balancing candidate surfaced: {:?}",
            advice
                .candidates
                .iter()
                .map(|c| &c.signature)
                .collect::<Vec<_>>()
        );
        for c in balanced {
            let v = c.verification.as_ref().unwrap();
            assert!(v.measured_gain >= 0.0, "balancing worsened the run: {c:?}");
            assert_eq!(v.event_makespan, v.polling_makespan);
        }
    }

    #[test]
    fn advice_is_jobs_invariant() {
        let scenario = skewed_scenario();
        let base = Advisor::new().with_analyzer(Analyzer::new().with_cluster_k(2));
        let reference = base.clone().with_jobs(1).advise(&scenario).unwrap();
        for jobs in [2, 8] {
            let advice = base.clone().with_jobs(jobs).advise(&scenario).unwrap();
            assert_eq!(advice.evaluated, reference.evaluated);
            assert_eq!(
                format!("{:#?}", advice.candidates),
                format!("{:#?}", reference.candidates),
                "advice drifted at jobs={jobs}"
            );
        }
    }

    #[test]
    fn budget_caps_the_search() {
        let scenario = skewed_scenario();
        let advice = Advisor::new()
            .with_budget(2)
            .with_top_k(1)
            .with_analyzer(Analyzer::new().with_cluster_k(2))
            .advise(&scenario)
            .unwrap();
        assert!(advice.evaluated <= 2);
        assert_eq!(advice.candidates.len(), 1);
    }

    #[test]
    fn cancelled_advise_returns_interrupted() {
        let scenario = skewed_scenario();
        let token = CancelToken::new();
        token.cancel();
        let result = Advisor::new().with_cancel(token).advise(&scenario);
        assert!(matches!(result, Err(AdviseError::Interrupted { .. })));

        // An untripped token leaves the advice identical.
        let plain = Advisor::new()
            .with_analyzer(Analyzer::new().with_cluster_k(2))
            .advise(&scenario)
            .unwrap();
        let tokened = Advisor::new()
            .with_analyzer(Analyzer::new().with_cluster_k(2))
            .with_cancel(CancelToken::new())
            .advise(&scenario)
            .unwrap();
        assert_eq!(
            format!("{:#?}", plain.candidates),
            format!("{:#?}", tokened.candidates)
        );
    }

    #[derive(Default)]
    struct CountingCache {
        entries: std::sync::Mutex<std::collections::HashMap<String, Verification>>,
        hits: std::sync::atomic::AtomicUsize,
        puts: std::sync::atomic::AtomicUsize,
    }

    impl VerifyCache for CountingCache {
        fn get(&self, signature: &str) -> Option<Verification> {
            let hit = self.entries.lock().unwrap().get(signature).cloned();
            if hit.is_some() {
                self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            hit
        }

        fn put(&self, signature: &str, verification: &Verification) {
            self.puts.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.entries
                .lock()
                .unwrap()
                .insert(signature.to_string(), verification.clone());
        }
    }

    #[test]
    fn verify_cache_replays_completed_verifications() {
        let scenario = skewed_scenario();
        let cache = Arc::new(CountingCache::default());
        let advisor = Advisor::new()
            .with_analyzer(Analyzer::new().with_cluster_k(2))
            .with_verify_cache(cache.clone());
        let first = advisor.advise(&scenario).unwrap();
        let first_puts = cache.puts.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(first_puts, first.candidates.len());

        // Second run: every verification is a cache hit, zero new puts,
        // and the advice is identical.
        let second = advisor.advise(&scenario).unwrap();
        assert_eq!(
            cache.puts.load(std::sync::atomic::Ordering::Relaxed),
            first_puts
        );
        assert_eq!(
            cache.hits.load(std::sync::atomic::Ordering::Relaxed),
            second.candidates.len()
        );
        assert_eq!(
            format!("{:#?}", first.candidates),
            format!("{:#?}", second.candidates)
        );
    }

    #[test]
    fn faulted_advise_still_verifies_deterministically() {
        let scenario = skewed_scenario();
        let plan = FaultPlan::new(7).with_slowdown(1, 0.0, 0.5, 2.0);
        let advice = Advisor::new()
            .with_faults(plan)
            .with_top_k(1)
            .with_analyzer(Analyzer::new().with_cluster_k(2))
            .advise(&scenario)
            .unwrap();
        let v = advice.candidates[0].verification.as_ref().unwrap();
        assert_eq!(v.event_makespan, v.polling_makespan);
    }
}
