//! Analytic gain prediction: `t_ijp` marginals plus majorization bounds.
//!
//! Candidate evaluation must be cheap — the search explores many combos
//! — so nothing here simulates. A [`BaselineModel`] is built once from
//! the baseline scenario and its (single, shared) simulated makespan;
//! each candidate is then predicted from its per-region per-rank
//! compute marginals:
//!
//! * **lower bound** — every rank executes its own compute and every
//!   collective instance serially, so the makespan is at least
//!   `max_p(effective compute of p) + Σ collective costs`. The first
//!   term is the head of the decreasing rearrangement of the effective
//!   load vector — the quantity majorization orders: if a candidate's
//!   load vector is weakly submajorized by the baseline's, its lower
//!   bound cannot exceed the baseline's ([`Prediction::submajorized`]).
//! * **upper bound** — the simulators' event times are monotone
//!   max-plus compositions in which each op duration appears at most
//!   once along any dependency path, so perturbing durations raises the
//!   makespan by at most the sum of the *positive* per-cell deltas:
//!   `baseline + Σ max(0, Δ effective cell) + Σ max(0, Δ collective
//!   cost)`. Deltas are aggregated per `(region, rank)` cell, which is
//!   exact for every catalog intervention (each scales a cell's ops
//!   uniformly, so the cell delta's sign is the ops' common sign).
//!   (Sound for fault-free runs; a slowdown window can amplify shifted
//!   work, and a crash can truncate below the lower bound.)
//! * **point estimate** — the BSP-style phase sum
//!   `Σ_j max_p(effective load of region j)` plus the baseline's
//!   measured communication slack and the analytic collective-cost
//!   delta, clamped into the bounds.
//!
//! Candidates with an in-run balancing plan are predicted from the
//! plan's analytic steady-state loads
//! ([`limba_mpisim::BalancePlan::predicted_loads`]): the point estimate
//! uses the smoothed cells plus a migration-overhead tax, the upper
//! bound keeps the *unbalanced* cells (sound — the simulator's
//! profitability guard never worsens a run), and the lower bound
//! weakens to the `1 − max_fraction` share of the heaviest rank that
//! can never migrate away (migrated chunks overlap the target's own
//! compute on its auxiliary stream).

use limba_model::RegionId;
use limba_mpisim::collective_cost;
use limba_stats::majorization::is_weakly_submajorized_by;

use crate::Scenario;

/// The analytic prediction for one candidate scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Point estimate of the candidate's makespan in seconds.
    pub makespan: f64,
    /// Sound lower bound on the simulated makespan (fault-free runs).
    pub lower_bound: f64,
    /// Sound upper bound on the simulated makespan (fault-free runs).
    pub upper_bound: f64,
    /// Whether the candidate's effective load vector is weakly
    /// submajorized by the baseline's — a strict "no rank got heavier
    /// than any baseline prefix" ordering in the majorization sense.
    pub submajorized: bool,
}

impl Prediction {
    /// Predicted gain over `baseline` seconds (positive = faster).
    pub fn gain(&self, baseline: f64) -> f64 {
        baseline - self.makespan
    }
}

/// Per-migration overhead, as a fraction of the migrated nominal
/// seconds, charged to a balanced candidate's point estimate — the
/// transfer latency and remote execution the smoothing model abstracts
/// away. Heuristic: calibrated to keep estimates conservative.
const MIGRATION_OVERHEAD: f64 = 0.05;

/// Per-scenario load decomposition the model predicts from.
#[derive(Debug, Clone)]
struct Loads {
    /// `region_eff[j][p]`: effective seconds of region `j` on rank `p`.
    region_eff: Vec<Vec<f64>>,
    /// Effective seconds outside any region, per rank.
    outside_eff: Vec<f64>,
    /// Per-instance collective costs under the scenario's machine.
    coll_costs: Vec<f64>,
    /// Nominal seconds the scenario's balancing plan is predicted to
    /// migrate (0 without a plan, or when the loads are already level).
    moved: f64,
}

impl Loads {
    fn decompose(scenario: &Scenario) -> Loads {
        let speeds = scenario.speeds();
        let regions = scenario.program.region_names().len();
        let region_nominal: Vec<Vec<f64>> = (0..regions)
            .map(|j| scenario.program.region_compute_seconds(RegionId::new(j)))
            .collect();
        let region_eff: Vec<Vec<f64>> = region_nominal
            .iter()
            .map(|w| w.iter().zip(&speeds).map(|(&w, &s)| w / s).collect())
            .collect();
        let total = scenario.program.compute_seconds();
        let outside_eff: Vec<f64> = (0..scenario.program.ranks())
            .map(|p| {
                let in_regions: f64 = region_nominal.iter().map(|w| w[p]).sum();
                ((total[p] - in_regions) / speeds[p]).max(0.0)
            })
            .collect();
        let procs = scenario.config.processors();
        let coll_costs: Vec<f64> = scenario
            .program
            .collective_calls()
            .iter()
            .map(|&(kind, bytes)| collective_cost(kind, procs, bytes, &scenario.config))
            .collect();
        Loads {
            region_eff,
            outside_eff,
            coll_costs,
            moved: 0.0,
        }
    }

    /// Folds the scenario's balancing plan into the decomposition:
    /// every rank's cells are scaled toward the plan's analytic
    /// steady-state loads ([`limba_mpisim::BalancePlan::predicted_loads`]),
    /// and the migrated nominal seconds are recorded for the overhead
    /// term. Callers that need the *unbalanced* cells (the upper bound
    /// does — see [`BaselineModel::predict`]) must read them first.
    fn apply_balance(&mut self, plan: &limba_mpisim::BalancePlan, scenario: &Scenario) {
        let totals = scenario.program.compute_seconds();
        let smoothed = plan.predicted_loads(&totals, &scenario.config);
        self.moved = totals
            .iter()
            .zip(&smoothed)
            .map(|(&w, &s)| (w - s).max(0.0))
            .sum();
        for (p, (&w, &s)) in totals.iter().zip(&smoothed).enumerate() {
            if w <= 0.0 {
                continue;
            }
            let scale = s / w;
            for row in &mut self.region_eff {
                row[p] *= scale;
            }
            self.outside_eff[p] *= scale;
        }
    }

    /// `Σ_j max_p eff_jp + max_p outside_p`: the BSP phase sum.
    fn phase_sum(&self) -> f64 {
        let regions: f64 = self
            .region_eff
            .iter()
            .map(|row| row.iter().copied().fold(0.0f64, f64::max))
            .sum();
        let outside = self.outside_eff.iter().copied().fold(0.0f64, f64::max);
        regions + outside
    }

    /// Per-rank total effective compute.
    fn rank_totals(&self) -> Vec<f64> {
        (0..self.outside_eff.len())
            .map(|p| self.region_eff.iter().map(|row| row[p]).sum::<f64>() + self.outside_eff[p])
            .collect()
    }
}

/// The baseline decomposition plus calibration, built once per advise
/// run and shared (immutably) by every candidate prediction.
#[derive(Debug, Clone)]
pub struct BaselineModel {
    baseline_makespan: f64,
    baseline: Loads,
    /// Baseline makespan minus the baseline phase sum and collective
    /// costs: the communication/wait time the phase model does not see.
    comm_slack: f64,
}

impl BaselineModel {
    /// Builds the model from the baseline scenario and its simulated
    /// makespan (the one simulation the prediction path relies on).
    pub fn new(scenario: &Scenario, baseline_makespan: f64) -> BaselineModel {
        let mut baseline = Loads::decompose(scenario);
        if let Some(plan) = &scenario.balance {
            // The measured baseline makespan includes the balancing, so
            // the slack must be calibrated against the smoothed loads.
            baseline.apply_balance(plan, scenario);
        }
        let coll_total: f64 = baseline.coll_costs.iter().sum();
        let comm_slack = (baseline_makespan - baseline.phase_sum() - coll_total).max(0.0);
        BaselineModel {
            baseline_makespan,
            baseline,
            comm_slack,
        }
    }

    /// The baseline makespan the model was calibrated against.
    pub fn baseline_makespan(&self) -> f64 {
        self.baseline_makespan
    }

    /// Predicts a candidate's makespan and bounds analytically.
    pub fn predict(&self, candidate: &Scenario) -> Prediction {
        let mut cand = Loads::decompose(candidate);
        let coll_total: f64 = cand.coll_costs.iter().sum();

        // Upper bound: baseline plus the positive per-cell deltas —
        // computed from the *unbalanced* cells even for a balanced
        // candidate, because the simulator's profitability guard only
        // ever accepts migrations that do not worsen the run, so the
        // unbalanced upper bound still holds.
        let mut positive_delta = 0.0f64;
        for (j, row) in cand.region_eff.iter().enumerate() {
            let base_row = self.baseline.region_eff.get(j);
            for (p, &eff) in row.iter().enumerate() {
                let base = base_row.and_then(|r| r.get(p)).copied().unwrap_or(0.0);
                positive_delta += (eff - base).max(0.0);
            }
        }
        for (p, &eff) in cand.outside_eff.iter().enumerate() {
            let base = self.baseline.outside_eff.get(p).copied().unwrap_or(0.0);
            positive_delta += (eff - base).max(0.0);
        }
        for (i, &cost) in cand.coll_costs.iter().enumerate() {
            let base = self.baseline.coll_costs.get(i).copied().unwrap_or(0.0);
            positive_delta += (cost - base).max(0.0);
        }
        let upper = self.baseline_makespan + positive_delta;

        // Lower bound. Without balancing: serial execution of each
        // rank's own compute plus every collective instance. With
        // balancing, migrated chunks execute on the target's auxiliary
        // stream (overlapping its own compute), so the only retained
        // serial floor is the `1 − max_fraction` share of each op the
        // policy can never migrate away.
        let serial_floor = cand.rank_totals().iter().copied().fold(0.0f64, f64::max);
        let lower = match &candidate.balance {
            Some(plan) => serial_floor * (1.0 - plan.max_fraction()) + coll_total,
            None => serial_floor + coll_total,
        };
        if let Some(plan) = &candidate.balance {
            cand.apply_balance(plan, candidate);
        }
        let cand_totals = cand.rank_totals();

        // Point estimate: phase sum + the candidate's collective costs
        // + the baseline's calibrated slack (+ the migration-overhead
        // tax for balanced candidates), clamped into the bounds. For
        // the identity candidate this reproduces the baseline makespan
        // exactly (the slack is defined as the residual).
        let estimate =
            cand.phase_sum() + coll_total + self.comm_slack + MIGRATION_OVERHEAD * cand.moved;
        let makespan = estimate.max(lower).min(upper.max(lower));

        let submajorized =
            is_weakly_submajorized_by(&cand_totals, &self.baseline.rank_totals()).unwrap_or(false);

        Prediction {
            makespan,
            lower_bound: lower,
            upper_bound: upper,
            submajorized,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_mpisim::{MachineConfig, ProgramBuilder, Simulator};

    fn scenario() -> Scenario {
        let mut pb = ProgramBuilder::new(4);
        let solve = pb.add_region("solve");
        pb.spmd(|rank, mut ops| {
            ops.enter(solve)
                .compute(0.5 + 0.5 * rank as f64)
                .allreduce(4096)
                .leave(solve);
        });
        Scenario::new(pb.build().unwrap(), MachineConfig::new(4)).unwrap()
    }

    #[test]
    fn bounds_bracket_the_baseline_itself() {
        let s = scenario();
        let sim = Simulator::new(s.config.clone());
        let makespan = sim.run(&s.program).unwrap().stats.makespan;
        let model = BaselineModel::new(&s, makespan);
        let p = model.predict(&s);
        assert!(p.lower_bound <= makespan + 1e-12, "{p:?}");
        assert!(p.upper_bound >= makespan - 1e-12, "{p:?}");
        assert!(p.submajorized); // identical loads submajorize themselves
                                 // The identity candidate predicts (close to) the baseline.
        assert!((p.makespan - makespan).abs() <= 1e-9 + 0.05 * makespan);
    }

    #[test]
    fn balanced_candidate_predicts_a_gain_within_bounds() {
        let s = scenario();
        let sim = Simulator::new(s.config.clone());
        let makespan = sim.run(&s.program).unwrap().stats.makespan;
        let model = BaselineModel::new(&s, makespan);

        let catalog = crate::propose(&s);
        let split = catalog
            .iter()
            .find(|i| matches!(i, crate::Intervention::SplitRegionWork { .. }))
            .expect("no split proposed");
        let cand = split.apply(&s).unwrap();
        let p = model.predict(&cand);
        assert!(p.gain(makespan) > 0.0, "{p:?}");
        assert!(p.submajorized, "{p:?}");
        let measured = sim.run(&cand.program).unwrap().stats.makespan;
        assert!(
            measured <= p.upper_bound + 1e-9 && measured >= p.lower_bound - 1e-9,
            "measured {measured} outside [{}, {}]",
            p.lower_bound,
            p.upper_bound
        );
    }
}
