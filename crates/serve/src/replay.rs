//! Spool replay: turning a run's on-disk bytes into reports.
//!
//! The serving layer never grows a second analysis path. A run's
//! **final** report is produced by replaying its spool through the
//! exact sequence `limba analyze --from-stream` runs — scan pass,
//! salvage fold, the default analyzer, the coverage renderer — so the
//! served bytes are byte-for-byte what the offline CLI prints for the
//! same tracefile. A **partial** report (mid-stream disconnect, live
//! query) runs the same two passes but closes the folds directly
//! instead of requiring the stream's end chunk, which is precisely the
//! salvage repair: truncated ranks are closed at their last event and
//! flagged in the coverage section.
//!
//! Replay reads the spool in bounded chunks; memory is one chunk
//! buffer plus fold state, never the trace.

use std::path::Path;

use limba_analysis::Analyzer;
use limba_stats::dispersion::DispersionKind;
use limba_stats::rank::RankingCriterion;
use limba_trace::{
    SalvageSink, SalvagedTrace, ScanSink, StreamDecoder, StreamScan, TraceSink, WindowSink,
};
use limba_vfs::Vfs;

use crate::ServeError;

/// Replay chunk size — matches the offline CLI's streaming reads.
const CHUNK: usize = 64 * 1024;

/// Analyzer knobs pinned to the `limba analyze` defaults. The serve
/// layer deliberately exposes no analysis knobs: its contract is
/// byte-identity with the *default* offline analysis.
fn analyzer() -> Analyzer {
    Analyzer::new()
        .with_dispersion(DispersionKind::Euclidean)
        .with_criterion(RankingCriterion::Maximum)
        .with_cluster_k(2)
}

/// Feeds the spool through `sink`. With `strict`, the decoder's own
/// `finish` runs — truncated spools fail exactly like the offline
/// CLI. Without it, decode errors past the header are swallowed and
/// the sink is closed directly, salvaging whatever prefix decoded.
fn feed_spool(
    vfs: &dyn Vfs,
    path: &Path,
    sink: &mut dyn TraceSink,
    strict: bool,
) -> Result<(), ServeError> {
    let mut file = vfs.open_read(path)?;
    let mut decoder = StreamDecoder::new();
    let mut buf = vec![0u8; CHUNK];
    let mut fed = 0u64;
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            break;
        }
        fed += n as u64;
        if let Err(e) = decoder.feed(&buf[..n], sink) {
            if strict {
                return Err(e.into());
            }
            // Salvage mode: a malformed tail (the stream died
            // mid-write) ends the usable prefix. A header that never
            // decoded is still fatal — there is nothing to salvage.
            if fed == n as u64 {
                return Err(e.into());
            }
            break;
        }
    }
    if strict {
        decoder.finish(sink)?;
    } else {
        // Close the folds over whatever arrived. ScanSink just seals
        // its totals; SalvageSink closes every rank's walker at its
        // last event — the truncation repair.
        sink.finish()?;
    }
    Ok(())
}

/// Scan pass over the spool.
fn scan_spool(vfs: &dyn Vfs, path: &Path, strict: bool) -> Result<StreamScan, ServeError> {
    let mut scan = ScanSink::new();
    feed_spool(vfs, path, &mut scan, strict)?;
    scan.into_scan()
        .ok_or_else(|| ServeError::State("stream scan did not complete".into()))
}

/// Salvage-fold pass over the spool.
fn fold_spool(
    vfs: &dyn Vfs,
    path: &Path,
    scan: &StreamScan,
    strict: bool,
) -> Result<SalvagedTrace, ServeError> {
    let mut salvage = SalvageSink::new(scan.activities.clone());
    feed_spool(vfs, path, &mut salvage, strict)?;
    salvage
        .into_salvaged()
        .ok_or_else(|| ServeError::State("stream fold did not complete".into()))
}

/// Rejects a salvage that recovered no measured time — same guard,
/// same wording as the offline CLI.
fn guard_salvage(salvaged: &SalvagedTrace) -> Result<(), ServeError> {
    let SalvagedTrace { reduced, coverage } = salvaged;
    if coverage.iter().any(|c| !c.complete) && reduced.measurements.total_time() <= 0.0 {
        let truncated = coverage.iter().filter(|c| !c.complete).count();
        return Err(ServeError::Trace(limba_trace::TraceError::Malformed {
            detail: format!(
                "unsalvageable trace: {truncated} of {} ranks truncated and no measured time survives",
                coverage.len()
            ),
        }));
    }
    Ok(())
}

fn render(salvaged: &SalvagedTrace) -> Result<String, ServeError> {
    let report = analyzer()
        .analyze_with_counts(&salvaged.reduced.measurements, &salvaged.reduced.counts)
        .map_err(|e| ServeError::State(e.to_string()))?;
    Ok(limba_viz::report::render_with_coverage(
        &report,
        &salvaged.coverage,
    ))
}

/// The final report for a **complete** spool: byte-for-byte what
/// `limba analyze <spool> --from-stream` prints.
pub fn complete_report(vfs: &dyn Vfs, spool: &Path) -> Result<String, ServeError> {
    let scan = scan_spool(vfs, spool, true)?;
    let salvaged = fold_spool(vfs, spool, &scan, true)?;
    guard_salvage(&salvaged)?;
    render(&salvaged)
}

/// A salvage-grade report over a **partial** spool (disconnected or
/// still-live run): both passes close their folds at the last decoded
/// event instead of requiring the end chunk.
pub fn partial_report(vfs: &dyn Vfs, spool: &Path) -> Result<String, ServeError> {
    let scan = scan_spool(vfs, spool, false)?;
    let salvaged = fold_spool(vfs, spool, &scan, false)?;
    guard_salvage(&salvaged)?;
    render(&salvaged)
}

/// The offline imbalance-evolution section over `windows` slices of a
/// complete spool — same pass order and rendering as
/// `limba analyze --from-stream --windows N`.
pub fn evolution_report(vfs: &dyn Vfs, spool: &Path, windows: usize) -> Result<String, ServeError> {
    let scan = scan_spool(vfs, spool, true)?;
    let mut sink = WindowSink::new(windows, scan.makespan, scan.activities.clone())?;
    feed_spool(vfs, spool, &mut sink, true)?;
    let sliced = sink
        .into_windows()
        .ok_or_else(|| ServeError::State("stream fold did not complete".into()))?;
    let matrices: Vec<_> = sliced.into_iter().map(|w| w.measurements).collect();
    let evolution =
        limba_analysis::evolution::imbalance_evolution(&matrices, DispersionKind::Euclidean, 0.02)
            .map_err(|e| ServeError::State(e.to_string()))?;
    Ok(limba_viz::report::render_evolution(&evolution, windows))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use limba_trace::WriteSink;
    use limba_vfs::StdVfs;
    use std::fs;

    /// Writes a tiny two-rank trace; returns (full bytes, event count).
    fn sample_bytes() -> Vec<u8> {
        let mut out = Vec::new();
        {
            let mut sink = WriteSink::new(&mut out);
            sink.begin(2, &["work".into(), "halo".into()]).unwrap();
            let evs = vec![
                limba_trace::Event::enter(0.0, 0, 0.into()),
                limba_trace::Event::leave(1.0, 0, 0.into()),
                limba_trace::Event::enter(0.0, 1, 0.into()),
                limba_trace::Event::leave(3.0, 1, 0.into()),
                limba_trace::Event::enter(3.0, 1, 1.into()),
                limba_trace::Event::leave(3.5, 1, 1.into()),
            ];
            sink.events(&evs).unwrap();
            sink.finish().unwrap();
        }
        out
    }

    #[test]
    fn complete_report_round_trips() {
        let dir = std::env::temp_dir().join(format!("limba-replay-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let spool = dir.join("complete.trc");
        fs::write(&spool, sample_bytes()).unwrap();
        let report = complete_report(&StdVfs, &spool).unwrap();
        assert!(report.contains("== coarse grain =="), "{report}");
        // A complete spool's partial report matches the final one:
        // nothing needed salvaging.
        assert_eq!(partial_report(&StdVfs, &spool).unwrap(), report);
        fs::remove_file(&spool).unwrap();
    }

    #[test]
    fn truncated_spool_salvages_but_fails_strict() {
        let bytes = sample_bytes();
        let dir = std::env::temp_dir().join(format!("limba-replay-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let spool = dir.join("partial.trc");
        fs::write(&spool, &bytes[..bytes.len() - 21]).unwrap();
        assert!(complete_report(&StdVfs, &spool).is_err());
        let report = partial_report(&StdVfs, &spool).unwrap();
        assert!(report.contains("== coarse grain =="), "{report}");
        fs::remove_file(&spool).unwrap();
    }
}
