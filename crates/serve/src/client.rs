//! The push/query client side of the serving protocol.
//!
//! A [`PushSession`] opens one TCP connection, performs the binary
//! handshake, and then streams a chunked-v3 trace — either an existing
//! tracefile ([`PushSession::push_file`]) or anything that drives a
//! [`TraceSink`] ([`PushSession::push_sink`]), which is how the CLI
//! streams a *live simulation* into the server without materializing
//! it. The handshake ack carries a **resume offset**: when the server
//! already spooled a prefix of this run (an earlier session
//! disconnected), the client skips that many bytes and the server
//! appends seamlessly. For a deterministic producer that makes
//! reconnect-and-resume byte-exact.
//!
//! [`query`] is the one-shot line protocol: send one request line,
//! read the response until the server closes.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};

use limba_trace::{TraceSink, WriteSink};

use crate::protocol::{
    self, read_ack, read_final, write_handshake, STATUS_OK, STATUS_REJECTED, STATUS_SALVAGED,
};
use crate::ServeError;

/// How a push ended, plus the report the server sent back.
#[derive(Debug, Clone, PartialEq)]
pub struct PushOutcome {
    /// Whether the run completed or was salvaged.
    pub status: PushStatus,
    /// The server's final payload: a full analysis report
    /// ([`PushStatus::Complete`]) or a salvage-grade partial report
    /// ([`PushStatus::Salvaged`]).
    pub report: String,
}

/// Terminal status of a push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushStatus {
    /// The end chunk arrived and verified; the report is final and
    /// byte-identical to the offline analysis of the same bytes.
    Complete,
    /// The stream ended early; the report covers the salvaged prefix
    /// and the run may be resumed by a later session.
    Salvaged,
}

/// One push connection after a successful handshake.
#[derive(Debug)]
pub struct PushSession {
    stream: TcpStream,
    offset: u64,
}

impl PushSession {
    /// Connects and performs the push handshake for `tenant`/`run`.
    ///
    /// Fails with [`ServeError::Rejected`] when admission control
    /// refuses the run (duplicate live session, completed run, tenant
    /// cap).
    pub fn connect<A: ToSocketAddrs>(addr: A, tenant: &str, run: &str) -> Result<Self, ServeError> {
        if !protocol::valid_name(tenant) || !protocol::valid_name(run) {
            return Err(ServeError::Protocol(
                "tenant and run names must be 1-64 chars of [A-Za-z0-9._-]".into(),
            ));
        }
        let mut stream = TcpStream::connect(addr)?;
        write_handshake(&mut stream, tenant, run)?;
        let ack = read_ack(&mut stream)?;
        if ack.status != STATUS_OK {
            return Err(ServeError::Rejected(ack.message));
        }
        Ok(PushSession {
            stream,
            offset: ack.offset,
        })
    }

    /// The resume offset the server requested (0 for a fresh run).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Streams an existing tracefile, skipping the resume offset, then
    /// half-closes and reads the server's verdict.
    pub fn push_file(mut self, path: &std::path::Path) -> Result<PushOutcome, ServeError> {
        let mut file = std::fs::File::open(path)?;
        std::io::copy(
            &mut SkipReader {
                inner: &mut file,
                remaining: self.offset,
            },
            &mut self.stream,
        )?;
        self.finish()
    }

    /// Hands a [`TraceSink`] writing straight to the socket to
    /// `produce`, then half-closes and reads the server's verdict.
    ///
    /// The producer must drive the full sink protocol (`begin` →
    /// `events`* → `finish`); the simulator's streaming entry points
    /// do. On resume the first `offset` bytes the producer emits are
    /// discarded instead of sent — a deterministic producer therefore
    /// regenerates the exact suffix the server is missing.
    pub fn push_sink<F>(self, produce: F) -> Result<PushOutcome, ServeError>
    where
        F: FnOnce(&mut dyn TraceSink) -> Result<(), ServeError>,
    {
        {
            let writer = SkipWriter {
                inner: self.stream.try_clone()?,
                remaining: self.offset,
            };
            let mut sink = WriteSink::new(writer);
            produce(&mut sink)?;
        }
        self.finish()
    }

    fn finish(mut self) -> Result<PushOutcome, ServeError> {
        self.stream.flush()?;
        self.stream.shutdown(Shutdown::Write)?;
        let fin = read_final(&mut self.stream)?;
        let report = fin.body;
        match fin.status {
            STATUS_OK => Ok(PushOutcome {
                status: PushStatus::Complete,
                report,
            }),
            STATUS_SALVAGED => Ok(PushOutcome {
                status: PushStatus::Salvaged,
                report,
            }),
            STATUS_REJECTED => Err(ServeError::Rejected(report)),
            _ => Err(ServeError::State(report)),
        }
    }
}

/// Discards the first `remaining` bytes written, forwarding the rest.
/// Skipped bytes count as written, so upstream encoders never see a
/// short write.
struct SkipWriter<W: Write> {
    inner: W,
    remaining: u64,
}

impl<W: Write> Write for SkipWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.remaining == 0 {
            return self.inner.write(buf);
        }
        let skip = (self.remaining as usize).min(buf.len());
        self.remaining -= skip as u64;
        if skip < buf.len() {
            let sent = self.inner.write(&buf[skip..])?;
            Ok(skip + sent)
        } else {
            Ok(skip)
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Skips the first `remaining` bytes of the underlying reader.
struct SkipReader<'a, R: Read> {
    inner: &'a mut R,
    remaining: u64,
}

impl<R: Read> Read for SkipReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        while self.remaining > 0 {
            let mut scratch = [0u8; 4096];
            let want = (self.remaining as usize).min(scratch.len());
            let n = self.inner.read(&mut scratch[..want])?;
            if n == 0 {
                return Ok(0);
            }
            self.remaining -= n as u64;
        }
        self.inner.read(buf)
    }
}

/// Sends one query line and reads the full response.
pub fn query<A: ToSocketAddrs>(addr: A, line: &str) -> Result<String, ServeError> {
    if line.contains('\n') || line.is_empty() {
        return Err(ServeError::Protocol(
            "query must be one non-empty line".into(),
        ));
    }
    if line.as_bytes()[0] == protocol::MAGIC[0] {
        // The server dispatches on the first byte: the handshake magic
        // claims 'L', so no query verb may start with it.
        return Err(ServeError::Protocol(format!(
            "query may not start with {:?}",
            protocol::MAGIC[0] as char
        )));
    }
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    stream.shutdown(Shutdown::Write)?;
    let mut out = String::new();
    stream.read_to_string(&mut out)?;
    Ok(out)
}
