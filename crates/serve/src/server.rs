//! The threaded ingestion server.
//!
//! Plain `std::net` + `std::thread`, no async runtime:
//!
//! * an **accept thread** takes connections and spawns one *session
//!   thread* each;
//! * a push session reads raw socket bytes and forwards them to its
//!   tenant's **shard worker** over a bounded
//!   [`limba_stream`] channel — when the shard falls behind, `send`
//!   blocks, the session stops reading, and TCP flow control throttles
//!   the client: ingestion memory is bounded end to end (channel depth
//!   × chunk per shard, plus fold state);
//! * each shard worker owns the decode/detect state for the runs
//!   hashed onto it, spools every byte to disk before folding it, and
//!   isolates fold panics with `catch_unwind` so one poisoned run
//!   cannot take down its shard;
//! * query sessions answer from the [`Registry`] and spool replay
//!   only — they never touch a shard, so monitoring cannot stall
//!   ingestion.
//!
//! **Durability.** The spool file is the source of truth: a run's
//! resume offset *is* its spool length, and every report — live,
//! salvaged, final — is a replay of those bytes. With a checkpoint
//! directory, run metadata also persists through a
//! [`limba_guard::Checkpoint`], so a killed server restarts knowing
//! every tenant's runs and resumes each one from its spooled offset;
//! because folds are deterministic, the resumed run converges to the
//! byte-identical final report the uninterrupted run would have
//! produced.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use limba_guard::codec::{ByteReader, ByteWriter};
use limba_guard::{config_fingerprint, fnv1a, Checkpoint};
use limba_par::CancelToken;
use limba_stream::{bounded, StageRx, StageTx};
use limba_trace::{SealScanner, StreamDecoder};
use limba_vfs::{StdVfs, Vfs, VfsFile};

use crate::detect::{DetectorConfig, OnlineDetector};
use crate::protocol::{self, Final, STATUS_ERROR, STATUS_OK, STATUS_REJECTED, STATUS_SALVAGED};
use crate::registry::{Registry, RunEntry, RunKey, RunStatus};
use crate::{replay, ServeError};

/// Socket read-buffer / shard-chunk size.
const CHUNK: usize = 64 * 1024;
/// How often blocked socket reads wake to check for shutdown.
const POLL: Duration = Duration::from_millis(250);
/// Checkpoint kind tag for the run-metadata file.
const META_KIND: &str = "limba-serve-meta";

/// Server tuning. `Default` gives a small single-host deployment.
#[derive(Clone)]
pub struct ServeConfig {
    /// Most distinct tenants admitted at once.
    pub max_tenants: usize,
    /// Most concurrent connections (push and query sessions combined);
    /// connections beyond the cap are dropped at accept, so idle
    /// sockets cannot exhaust session threads.
    pub max_sessions: usize,
    /// Shard worker threads (tenants hash onto shards).
    pub shards: usize,
    /// Bounded channel depth per shard — with [`CHUNK`], the per-shard
    /// in-flight byte bound.
    pub depth: usize,
    /// How long a freshly accepted connection may sit idle before its
    /// handshake byte (or query line) arrives; a client that connects
    /// and goes silent is cut loose instead of holding a session
    /// thread forever.
    pub handshake_timeout: Duration,
    /// Online detector knobs applied to every run.
    pub detector: DetectorConfig,
    /// Durable state directory (spools + run metadata). `None` spools
    /// to a per-process temp directory: resume works across
    /// *reconnects* but not across server restarts.
    pub checkpoint_dir: Option<PathBuf>,
    /// Filesystem every durable artifact (spools, run metadata) goes
    /// through. [`StdVfs`] in production; tests and the
    /// `--io-faults` CLI flag substitute fault-injecting or in-memory
    /// implementations.
    pub vfs: Arc<dyn Vfs>,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("max_tenants", &self.max_tenants)
            .field("max_sessions", &self.max_sessions)
            .field("shards", &self.shards)
            .field("depth", &self.depth)
            .field("handshake_timeout", &self.handshake_timeout)
            .field("detector", &self.detector)
            .field("checkpoint_dir", &self.checkpoint_dir)
            .finish_non_exhaustive()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_tenants: 8,
            max_sessions: 64,
            shards: 2,
            depth: 8,
            handshake_timeout: Duration::from_secs(10),
            detector: DetectorConfig::default(),
            checkpoint_dir: None,
            vfs: Arc::new(StdVfs),
        }
    }
}

/// One message from a session to its shard worker.
enum ShardMsg {
    /// A session was admitted for `key`; `resume` replays the
    /// existing spool into fresh fold state first.
    Open { key: RunKey, resume: bool },
    /// Raw bytes off the socket, in arrival order.
    Chunk { key: RunKey, data: Vec<u8> },
    /// The stream ended (end chunk, half-close, or disconnect — the
    /// decoder state distinguishes them); reply with the verdict.
    End {
        key: RunKey,
        reply: std::sync::mpsc::SyncSender<Final>,
    },
}

/// State shared by every thread of one server.
struct Shared {
    cfg: ServeConfig,
    registry: Registry,
    spool_dir: PathBuf,
    /// Run-metadata checkpoint, present with `checkpoint_dir`.
    meta: Option<(PathBuf, Mutex<Checkpoint>)>,
    cancel: CancelToken,
}

impl Shared {
    fn vfs(&self) -> &dyn Vfs {
        self.cfg.vfs.as_ref()
    }
}

/// A running ingestion server. Dropping it shuts it down.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    shard_handles: Vec<JoinHandle<()>>,
    /// Held so shards outlive sessions; dropped during shutdown to
    /// end-of-stream the shard channels.
    shard_txs: Vec<StageTx<ShardMsg>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`), recovers any checkpointed
    /// runs, and starts accepting.
    pub fn start(addr: &str, cfg: ServeConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shards = cfg.shards.max(1);

        let (spool_dir, meta) = match &cfg.checkpoint_dir {
            Some(dir) => {
                let spool_dir = dir.join("spool");
                cfg.vfs.create_dir_all(&spool_dir)?;
                let path = dir.join("serve-meta.ckpt");
                let ckpt =
                    Checkpoint::load_or_new_vfs(cfg.vfs.as_ref(), &path, META_KIND, meta_fingerprint())
                        .map_err(|e| ServeError::State(format!("checkpoint: {e}")))?;
                (spool_dir, Some((path, Mutex::new(ckpt))))
            }
            None => {
                let spool_dir = std::env::temp_dir().join(format!(
                    "limba-serve-{}-{}",
                    std::process::id(),
                    local.port()
                ));
                cfg.vfs.create_dir_all(&spool_dir)?;
                (spool_dir, None)
            }
        };

        let shared = Arc::new(Shared {
            cfg,
            registry: Registry::new(),
            spool_dir,
            meta,
            cancel: CancelToken::new(),
        });
        recover(&shared, shards)?;

        let mut shard_txs = Vec::with_capacity(shards);
        let mut shard_handles = Vec::with_capacity(shards);
        for i in 0..shards {
            let (tx, rx) = bounded::<ShardMsg>(shared.cfg.depth.max(1));
            let sh = Arc::clone(&shared);
            shard_handles.push(
                std::thread::Builder::new()
                    .name(format!("limba-serve-shard-{i}"))
                    .spawn(move || shard_worker(sh, rx))
                    .map_err(ServeError::Io)?,
            );
            shard_txs.push(tx);
        }

        let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let sh = Arc::clone(&shared);
            let txs = shard_txs.clone();
            let sessions = Arc::clone(&sessions);
            std::thread::Builder::new()
                .name("limba-serve-accept".into())
                .spawn(move || accept_loop(sh, listener, txs, sessions))
                .map_err(ServeError::Io)?
        };

        Ok(Server {
            shared,
            addr: local,
            accept: Some(accept),
            shard_handles,
            shard_txs,
            sessions,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's cancel token; a `SHUTDOWN` query cancels it.
    pub fn cancel_token(&self) -> CancelToken {
        self.shared.cancel.clone()
    }

    /// Blocks until the token is cancelled (Ctrl-C handling or a
    /// `SHUTDOWN` query), polling at the shutdown granularity.
    pub fn wait_cancelled(&self) {
        while !self.shared.cancel.is_cancelled() {
            std::thread::sleep(POLL);
        }
    }

    /// Graceful shutdown: stop accepting, let every live session end
    /// its run (live runs become resumable partials), drain the
    /// shards, persist metadata.
    pub fn shutdown(mut self) -> Result<(), ServeError> {
        self.shutdown_mut()
    }

    fn shutdown_mut(&mut self) -> Result<(), ServeError> {
        self.shared.cancel.cancel();
        // Unblock `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let sessions = std::mem::take(&mut *lock(&self.sessions));
        for s in sessions {
            let _ = s.join();
        }
        // All sessions are done: dropping the server's tx clones
        // end-of-streams the shard channels.
        self.shard_txs.clear();
        for h in self.shard_handles.drain(..) {
            let _ = h.join();
        }
        // Belt and braces: anything still marked live (a session that
        // died without its End reaching the shard) is a valid partial.
        for key in self.shared.registry.demote_live() {
            save_meta(&self.shared, &key);
        }
        Ok(())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() {
            let _ = self.shutdown_mut();
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn meta_fingerprint() -> u64 {
    config_fingerprint(META_KIND)
}

/// Stable spool filename for a run: readable prefix plus a hash of the
/// `tenant|run` pair ('|' cannot appear in names, so the hash is
/// collision-free across distinct runs even though '_' may appear in
/// either name).
fn spool_name(key: &RunKey) -> String {
    let tag = fnv1a(format!("{}|{}", key.tenant, key.run).as_bytes());
    format!("{}__{}-{tag:016x}.trc", key.tenant, key.run)
}

fn shard_of(tenant: &str, shards: usize) -> usize {
    (fnv1a(tenant.as_bytes()) % shards as u64) as usize
}

// ---------------------------------------------------------------------------
// Metadata persistence
// ---------------------------------------------------------------------------

fn encode_meta(key: &RunKey, entry: &RunEntry) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(match entry.status {
        RunStatus::Live => 0,
        RunStatus::Partial => 1,
        RunStatus::Complete => 2,
        RunStatus::Failed => 3,
    });
    w.put_u64(entry.bytes);
    w.put_u64(entry.events);
    w.put_u32(entry.processors as u32);
    w.put_f64(entry.makespan);
    w.put_str(&key.tenant);
    w.put_str(&key.run);
    w.put_str(entry.error.as_deref().unwrap_or(""));
    w.into_bytes()
}

/// Decoded registry entry: key, status, bytes, events, processors,
/// makespan, error message.
type DecodedMeta = (RunKey, RunStatus, u64, u64, usize, f64, String);

fn decode_meta(payload: &[u8]) -> Result<DecodedMeta, String> {
    let mut r = ByteReader::new(payload);
    let status = match r.get_u8("status").map_err(|e| e.to_string())? {
        // A run that was live when the server died is a resumable
        // partial on recovery.
        0 | 1 => RunStatus::Partial,
        2 => RunStatus::Complete,
        _ => RunStatus::Failed,
    };
    let bytes = r.get_u64("bytes").map_err(|e| e.to_string())?;
    let events = r.get_u64("events").map_err(|e| e.to_string())?;
    let processors = r.get_u32("processors").map_err(|e| e.to_string())? as usize;
    let makespan = r.get_f64("makespan").map_err(|e| e.to_string())?;
    let tenant = r.get_str("tenant").map_err(|e| e.to_string())?;
    let run = r.get_str("run").map_err(|e| e.to_string())?;
    let error = r.get_str("error").map_err(|e| e.to_string())?;
    Ok((
        RunKey::new(&tenant, &run),
        status,
        bytes,
        events,
        processors,
        makespan,
        error,
    ))
}

/// Persists one run's registry entry into the metadata checkpoint
/// (no-op without a checkpoint directory).
fn save_meta(shared: &Shared, key: &RunKey) {
    let Some((path, meta)) = &shared.meta else {
        return;
    };
    let Some(entry) = shared.registry.get(key) else {
        return;
    };
    let id = fnv1a(format!("{}|{}", key.tenant, key.run).as_bytes());
    let mut ckpt = lock(meta);
    ckpt.insert(id, encode_meta(key, &entry));
    // Persistence is best-effort while serving; the spool remains the
    // source of truth and the next save retries.
    let _ = ckpt.save_atomic_vfs(shared.vfs(), path);
}

/// What a spool scrub concluded.
struct ScrubOutcome {
    /// The byte offset a resumed client may append from: the full
    /// spool length for a clean prefix (even one cut mid-chunk — the
    /// replayed decoder holds the mid-chunk state), or the last sealed
    /// chunk boundary after a damaged tail was cut away.
    resume: u64,
    /// The spool verified end to end as a complete stream.
    complete: bool,
}

/// Scrubs one spool: a crash or a faulting disk may have left a
/// *damaged* tail — bytes past the last sealed chunk boundary that do
/// not decode. Replaying such a spool would latch the fold and fail
/// the run, so the tail is cut back to the sealed boundary instead:
/// the run stays a resumable partial and the client regenerates the
/// rest. A tail that is merely truncated (a clean prefix of the
/// stream) is left alone — it resumes from its exact byte length.
///
/// Returns `None` when the spool cannot be read or repaired (the
/// caller falls back to checkpointed metadata or degrades the run).
fn scrub_spool(vfs: &dyn Vfs, spool: &Path) -> Option<ScrubOutcome> {
    if !vfs.exists(spool) {
        return Some(ScrubOutcome {
            resume: 0,
            complete: false,
        });
    }
    let scan = SealScanner::scan_file(vfs, spool).ok()?;
    if scan.damaged {
        vfs.truncate(spool, scan.sealed).ok()?;
        // Make the cut durable so a crash right after the scrub cannot
        // resurrect the damaged tail behind a promised resume offset.
        vfs.sync_path(spool).ok()?;
        return Some(ScrubOutcome {
            resume: scan.sealed,
            complete: false,
        });
    }
    Some(ScrubOutcome {
        resume: scan.total,
        complete: scan.complete,
    })
}

/// Rebuilds the registry from the metadata checkpoint at startup,
/// scrubbing every spool back to its last sealed boundary.
fn recover(shared: &Arc<Shared>, shards: usize) -> Result<(), ServeError> {
    let Some((_, meta)) = &shared.meta else {
        return Ok(());
    };
    let records: Vec<Vec<u8>> = lock(meta).iter().map(|(_, p)| p.to_vec()).collect();
    for payload in records {
        let (key, status, bytes, events, processors, makespan, error) = decode_meta(&payload)
            .map_err(|e| ServeError::State(format!("corrupt run metadata: {e}")))?;
        let spool = shared.spool_dir.join(spool_name(&key));
        // The scrubbed spool length on disk outranks the checkpointed
        // byte count: metadata is only saved at session boundaries,
        // while the spool grew with every chunk — and a power cut may
        // have torn its tail.
        let on_disk = scrub_spool(shared.vfs(), &spool);
        let mut entry = RunEntry::new(shard_of(&key.tenant, shards), spool);
        entry.status = match (&on_disk, status) {
            (Some(scrub), RunStatus::Partial) if scrub.resume == 0 => {
                // Nothing spooled survived; treat as never-seen by
                // skipping the entry entirely.
                continue;
            }
            // A run flagged Complete whose spool no longer verifies is
            // a resumable partial, not a silently corrupt "complete"
            // report.
            (Some(scrub), RunStatus::Complete) if !scrub.complete => RunStatus::Partial,
            _ => status,
        };
        entry.bytes = match &on_disk {
            Some(scrub) if scrub.resume > 0 => scrub.resume,
            _ => bytes,
        };
        entry.events = events;
        entry.processors = processors;
        entry.makespan = makespan;
        entry.error = if error.is_empty() { None } else { Some(error) };
        shared.registry.restore(key, entry);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Accept + sessions
// ---------------------------------------------------------------------------

fn accept_loop(
    shared: Arc<Shared>,
    listener: TcpListener,
    txs: Vec<StageTx<ShardMsg>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.cancel.is_cancelled() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let mut held = lock(&sessions);
        // Reap finished sessions so the handle list stays bounded.
        held.retain(|h| !h.is_finished());
        // The session cap bounds thread count against connection
        // floods; admission control (tenants) is per-run, this is
        // per-socket. Excess connections are dropped — push clients
        // see a failed ack read, query clients an empty response.
        if held.len() >= shared.cfg.max_sessions.max(1) {
            drop(stream);
            continue;
        }
        // A read deadline from the very first byte: a client that
        // connects and goes silent cannot hold its session thread
        // (the push pump replaces this with its own poll timeout
        // once the handshake acks).
        let _ = stream.set_read_timeout(Some(shared.cfg.handshake_timeout));
        let sh = Arc::clone(&shared);
        let txs = txs.clone();
        let handle = std::thread::Builder::new()
            .name("limba-serve-session".into())
            .spawn(move || session(sh, stream, txs));
        if let Ok(h) = handle {
            held.push(h);
        }
    }
}

/// One connection: dispatch on the first byte — the handshake magic
/// starts a push session, anything else is a query line.
fn session(shared: Arc<Shared>, mut stream: TcpStream, txs: Vec<StageTx<ShardMsg>>) {
    let mut first = [0u8; 1];
    if stream.read_exact(&mut first).is_err() {
        return;
    }
    if first[0] == protocol::MAGIC[0] {
        push_session(&shared, stream, &txs);
    } else {
        query_session(&shared, stream, first[0]);
    }
}

fn push_session(shared: &Shared, mut stream: TcpStream, txs: &[StageTx<ShardMsg>]) {
    let (tenant, run) = match protocol::read_handshake_rest(&mut stream) {
        Ok(names) => names,
        Err(e) => {
            let _ = protocol::write_ack(
                &mut stream,
                &protocol::Ack {
                    status: STATUS_REJECTED,
                    offset: 0,
                    message: e.to_string(),
                },
            );
            return;
        }
    };
    let key = RunKey::new(&tenant, &run);
    if shared.cancel.is_cancelled() {
        let _ = protocol::write_ack(
            &mut stream,
            &protocol::Ack {
                status: STATUS_REJECTED,
                offset: 0,
                message: "server is shutting down".into(),
            },
        );
        return;
    }
    let shard = shard_of(&tenant, txs.len());
    let spool = shared.spool_dir.join(spool_name(&key));
    let admission = match shared
        .registry
        .admit(&key, shard, spool, shared.cfg.max_tenants.max(1))
    {
        Ok(a) => a,
        Err(e) => {
            // The client re-wraps the ack message in its own
            // `Rejected` display, so send the bare reason.
            let message = match e {
                ServeError::Rejected(m) => m,
                other => other.to_string(),
            };
            let _ = protocol::write_ack(
                &mut stream,
                &protocol::Ack {
                    status: STATUS_REJECTED,
                    offset: 0,
                    message,
                },
            );
            return;
        }
    };
    // The offset we are about to promise must be durable and sealed:
    // scrub any torn tail left by a crash or disk fault, then fsync,
    // *before* the client is told how many bytes to skip. Otherwise a
    // power cut after the ack could roll the spool back behind the
    // offset the client already skipped past.
    let mut offset = admission.offset;
    if admission.resume {
        let spool = shared.spool_dir.join(spool_name(&key));
        match scrub_spool(shared.vfs(), &spool).and_then(|scrub| {
            if scrub.resume > 0 {
                // Content and directory entry both durable: the
                // promised offset must survive a power cut the instant
                // the client acts on it.
                shared.vfs().sync_path(&spool).ok()?;
                shared.vfs().sync_dir(parent_dir(&spool)).ok()?;
            }
            Some(scrub.resume)
        }) {
            Some(sealed) => {
                offset = sealed;
                if sealed != admission.offset {
                    shared.registry.update(&key, |entry| entry.bytes = sealed);
                }
            }
            None => {
                // The spool cannot be made durable: degrade this run
                // back to a resumable partial instead of promising an
                // offset the disk may not honor.
                let error = ServeError::Disk {
                    path: spool.display().to_string(),
                    detail: "spool scrub/sync failed before resume".into(),
                };
                shared.registry.update(&key, |entry| {
                    entry.status = RunStatus::Partial;
                    entry.error = Some(error.to_string());
                });
                save_meta(shared, &key);
                let _ = protocol::write_ack(
                    &mut stream,
                    &protocol::Ack {
                        status: STATUS_REJECTED,
                        offset: 0,
                        message: error.to_string(),
                    },
                );
                return;
            }
        }
    }
    let tx = &txs[admission.shard];
    if tx
        .send(ShardMsg::Open {
            key: key.clone(),
            resume: admission.resume,
        })
        .is_err()
    {
        return;
    }
    save_meta(shared, &key);
    if protocol::write_ack(
        &mut stream,
        &protocol::Ack {
            status: STATUS_OK,
            offset,
            message: String::new(),
        },
    )
    .is_err()
    {
        // Client vanished before the ack: end the run immediately so
        // it degrades to a resumable partial.
        finish_run(shared, &key, tx);
        return;
    }

    // The pump: socket → shard. A full shard channel blocks `send`,
    // which stops `read`, which backpressures the client through TCP.
    let _ = stream.set_read_timeout(Some(POLL));
    let mut buf = vec![0u8; CHUNK];
    loop {
        if shared.cancel.is_cancelled() {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if tx
                    .send(ShardMsg::Chunk {
                        key: key.clone(),
                        data: buf[..n].to_vec(),
                    })
                    .is_err()
                {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        }
    }

    if let Some(fin) = finish_run(shared, &key, tx) {
        let _ = protocol::write_final(&mut stream, &fin);
    }
}

/// Sends `End` for the run and waits for the shard's verdict.
fn finish_run(shared: &Shared, key: &RunKey, tx: &StageTx<ShardMsg>) -> Option<Final> {
    let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
    tx.send(ShardMsg::End {
        key: key.clone(),
        reply: reply_tx,
    })
    .ok()?;
    let fin = reply_rx.recv().ok()?;
    save_meta(shared, key);
    Some(fin)
}

// ---------------------------------------------------------------------------
// Shard workers
// ---------------------------------------------------------------------------

/// Why a run's ingest latched. The two classes degrade differently:
/// a fold failure means the *content* is bad (the run fails), a disk
/// failure means the *storage* is bad (the run stays resumable and
/// the client is told to retry later).
enum Failure {
    /// The trace content failed to decode/fold (including fold panics).
    Fold(String),
    /// Durable storage faulted under the run (ENOSPC, EIO, short
    /// write): the spooled prefix up to the last sealed boundary is
    /// still good, so the run degrades to Partial.
    Disk(String),
}

/// Live fold state for one run on its shard.
struct Ingest {
    decoder: StreamDecoder,
    detector: OnlineDetector,
    spool: Box<dyn VfsFile>,
    path: PathBuf,
    /// First failure (fold or disk); latches the run.
    failed: Option<Failure>,
    /// How many of the detector's alerts the registry already holds —
    /// `publish` appends only the suffix past this mark instead of
    /// re-cloning the whole history every chunk.
    published_alerts: usize,
    /// Same high-water mark for retired-window stats.
    published_windows: usize,
}

fn shard_worker(shared: Arc<Shared>, rx: StageRx<ShardMsg>) {
    let mut runs: HashMap<RunKey, Ingest> = HashMap::new();
    for msg in rx {
        match msg {
            ShardMsg::Open { key, resume } => {
                if let Err(e) = open_run(&shared, &mut runs, &key, resume) {
                    shared.registry.update(&key, |entry| {
                        entry.status = RunStatus::Failed;
                        entry.error = Some(e.to_string());
                    });
                }
            }
            ShardMsg::Chunk { key, data } => ingest_chunk(&shared, &mut runs, &key, &data),
            ShardMsg::End { key, reply } => {
                let fin = end_run(&shared, &mut runs, &key);
                let _ = reply.send(fin);
            }
        }
    }
}

fn open_run(
    shared: &Shared,
    runs: &mut HashMap<RunKey, Ingest>,
    key: &RunKey,
    resume: bool,
) -> Result<(), ServeError> {
    let path = shared
        .registry
        .get(key)
        .map(|e| e.spool)
        .unwrap_or_else(|| shared.spool_dir.join(spool_name(key)));
    let mut ingest = Ingest {
        decoder: StreamDecoder::new(),
        detector: OnlineDetector::new(shared.cfg.detector.clone()),
        spool: shared.vfs().open_append(&path)?,
        path: path.clone(),
        failed: None,
        published_alerts: 0,
        published_windows: 0,
    };
    if resume {
        // Deterministic folds: replaying the spooled prefix rebuilds
        // the exact decoder/detector state the previous session left,
        // so the continuation is byte-identical to an uninterrupted
        // stream.
        let mut file = shared.vfs().open_read(&path)?;
        let mut buf = vec![0u8; CHUNK];
        loop {
            let n = file.read(&mut buf)?;
            if n == 0 {
                break;
            }
            feed(&mut ingest, &buf[..n]);
            if ingest.failed.is_some() {
                break;
            }
        }
        publish(shared, key, &mut ingest);
    }
    runs.insert(key.clone(), ingest);
    Ok(())
}

/// Feeds bytes into the run's fold, isolating panics and latching the
/// first failure.
fn feed(ingest: &mut Ingest, data: &[u8]) {
    if ingest.failed.is_some() {
        return;
    }
    let Ingest {
        decoder, detector, ..
    } = ingest;
    match catch_unwind(AssertUnwindSafe(|| decoder.feed(data, detector))) {
        Ok(Ok(())) => {}
        Ok(Err(e)) => ingest.failed = Some(Failure::Fold(e.to_string())),
        Err(panic) => {
            let what = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".into());
            ingest.failed = Some(Failure::Fold(format!("ingestion fold panicked: {what}")));
        }
    }
}

/// Pushes the detector's current view into the registry. Alerts and
/// window stats are append-only over an ingest's lifetime, so only the
/// suffix past the published high-water mark is cloned — per-chunk
/// cost stays proportional to what the chunk produced, not to the
/// run's whole history.
fn publish(shared: &Shared, key: &RunKey, ingest: &mut Ingest) {
    let events = ingest.detector.events_seen();
    let processors = ingest.detector.processors();
    let makespan = ingest.detector.makespan();
    let new_alerts = ingest.detector.alerts()[ingest.published_alerts..].to_vec();
    let new_windows = ingest.detector.stats()[ingest.published_windows..].to_vec();
    // Nothing published yet for this ingest: a resumed run's registry
    // entry may hold state from the previous session, which the
    // replayed detector regenerates from byte zero.
    let fresh = ingest.published_alerts == 0 && ingest.published_windows == 0;
    ingest.published_alerts = ingest.detector.alerts().len();
    ingest.published_windows = ingest.detector.stats().len();
    let bytes = shared.vfs().len(&ingest.path).unwrap_or(0);
    shared.registry.update(key, |entry| {
        entry.bytes = bytes;
        entry.events = events;
        entry.processors = processors;
        entry.makespan = makespan;
        if fresh {
            entry.alerts.clear();
            entry.windows.clear();
        }
        entry.alerts.extend(new_alerts);
        entry.windows.extend(new_windows);
    });
}

fn ingest_chunk(shared: &Shared, runs: &mut HashMap<RunKey, Ingest>, key: &RunKey, data: &[u8]) {
    let Some(ingest) = runs.get_mut(key) else {
        return;
    };
    if ingest.failed.is_some() {
        // Latched: shed this run's load without touching disk or the
        // fold again. Other runs on the shard proceed normally.
        return;
    }
    // Spool before folding: the disk copy is the source of truth and
    // must contain every byte the client was allowed to send.
    if let Err(e) = ingest.spool.append(data) {
        // A short write may have appended a prefix that tears
        // mid-chunk; the scrub truncates it back to the last sealed
        // boundary on the next resume or restart.
        ingest.failed = Some(Failure::Disk(format!("spool write failed: {e}")));
        shared.registry.update(key, |entry| {
            entry.status = RunStatus::Partial;
            entry.error = Some(
                ServeError::Disk {
                    path: ingest.path.display().to_string(),
                    detail: format!("spool write failed: {e}"),
                }
                .to_string(),
            );
        });
        save_meta(shared, key);
        return;
    }
    feed(ingest, data);
    publish(shared, key, ingest);
}

fn end_run(shared: &Shared, runs: &mut HashMap<RunKey, Ingest>, key: &RunKey) -> Final {
    let Some(ingest) = runs.remove(key) else {
        return Final {
            status: STATUS_ERROR,
            body: format!("run {key} is not open on this shard"),
        };
    };
    let Ingest {
        decoder,
        path,
        failed,
        mut spool,
        ..
    } = ingest;

    match failed {
        Some(Failure::Fold(error)) => {
            drop(spool);
            shared.registry.update(key, |entry| {
                entry.status = RunStatus::Failed;
                entry.error = Some(error.clone());
            });
            return Final {
                status: STATUS_ERROR,
                body: error,
            };
        }
        Some(Failure::Disk(detail)) => {
            // Best effort: whatever prefix the failing disk still
            // holds is worth trying to pin down (the scrub re-seals
            // on resume or restart either way).
            let _ = spool.sync();
            let _ = shared.vfs().sync_dir(parent_dir(&path));
            drop(spool);
            // Storage faulted mid-run: the run is a resumable partial,
            // not a failure — the sealed spooled prefix is still good
            // and the client exits with the partial code, free to
            // retry once the disk recovers.
            let error = ServeError::Disk {
                path: path.display().to_string(),
                detail,
            };
            shared.registry.update(key, |entry| {
                entry.status = RunStatus::Partial;
                entry.error = Some(error.to_string());
            });
            let body = match replay::partial_report(shared.vfs(), &path) {
                Ok(report) => report,
                Err(e) => format!("no salvageable data yet: {e}\n"),
            };
            return Final {
                status: STATUS_SALVAGED,
                body: format!("{error}\n{body}"),
            };
        }
        None => {}
    }

    if decoder.is_done() {
        // The spool is about to become the durable artifact behind a
        // Complete verdict: fsync it (and its directory entry) first.
        // A sync failure degrades to a resumable partial — never a
        // "complete" run whose bytes may not survive a power cut.
        let durable = spool
            .sync()
            .and_then(|()| shared.vfs().sync_dir(parent_dir(&path)));
        drop(spool);
        if let Err(e) = durable {
            let error = ServeError::Disk {
                path: path.display().to_string(),
                detail: format!("spool sync failed: {e}"),
            };
            shared.registry.update(key, |entry| {
                entry.status = RunStatus::Partial;
                entry.error = Some(error.to_string());
            });
            let body = match replay::partial_report(shared.vfs(), &path) {
                Ok(report) => report,
                Err(e) => format!("no salvageable data yet: {e}\n"),
            };
            return Final {
                status: STATUS_SALVAGED,
                body: format!("{error}\n{body}"),
            };
        }
        match replay::complete_report(shared.vfs(), &path) {
            Ok(report) => {
                shared.registry.update(key, |entry| {
                    entry.status = RunStatus::Complete;
                    entry.report = Some(report.clone());
                });
                Final {
                    status: STATUS_OK,
                    body: report,
                }
            }
            Err(e) => {
                let error = format!("final analysis failed: {e}");
                shared.registry.update(key, |entry| {
                    entry.status = RunStatus::Failed;
                    entry.error = Some(error.clone());
                });
                Final {
                    status: STATUS_ERROR,
                    body: error,
                }
            }
        }
    } else {
        // Pin the partial down (content + directory entry) so the
        // spooled progress survives a power cut between sessions; a
        // sync failure is tolerable — the recovery scrub re-seals.
        let _ = spool.sync();
        let _ = shared.vfs().sync_dir(parent_dir(&path));
        drop(spool);
        // The stream stopped before its end chunk: salvage the spooled
        // prefix and leave the run resumable.
        shared.registry.update(key, |entry| {
            entry.status = RunStatus::Partial;
        });
        let body = match replay::partial_report(shared.vfs(), &path) {
            Ok(report) => report,
            Err(e) => format!("no salvageable data yet: {e}\n"),
        };
        Final {
            status: STATUS_SALVAGED,
            body,
        }
    }
}

/// The directory holding `path` (`"."` for bare filenames).
fn parent_dir(path: &Path) -> &Path {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    }
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

fn query_session(shared: &Shared, mut stream: TcpStream, first: u8) {
    let line = match protocol::read_line_rest(first, &mut stream) {
        Ok(line) => line,
        Err(e) => {
            let _ = writeln!(stream, "error: {e}");
            return;
        }
    };
    let response = if line.eq_ignore_ascii_case("SHUTDOWN") {
        shared.cancel.cancel();
        // Unblock the accept loop so shutdown is prompt even with no
        // further connections.
        "shutting down\n".to_string()
    } else {
        match handle_query(shared, &line) {
            Ok(r) => r,
            Err(e) => format!("error: {e}\n"),
        }
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Escapes a string for embedding in a JSON body: backslash, quote,
/// and all control characters (error messages carry newlines and tabs
/// from lower layers).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn find_run(shared: &Shared, tenant: &str, run: &str) -> Result<(RunKey, RunEntry), ServeError> {
    let key = RunKey::new(tenant, run);
    shared
        .registry
        .get(&key)
        .map(|e| (key.clone(), e))
        .ok_or_else(|| ServeError::State(format!("unknown run {key}")))
}

fn handle_query(shared: &Shared, line: &str) -> Result<String, ServeError> {
    let mut words = line.split_whitespace();
    let verb = words.next().unwrap_or("").to_ascii_uppercase();
    let args: Vec<&str> = words.collect();
    match (verb.as_str(), args.as_slice()) {
        ("STATUS", []) => {
            let all = shared.registry.all();
            let count = |s: RunStatus| all.iter().filter(|(_, st)| *st == s).count();
            Ok(format!(
                "limba-serve: {} tenants, {} runs ({} live, {} partial, {} complete, {} failed)\n",
                shared.registry.tenants().len(),
                all.len(),
                count(RunStatus::Live),
                count(RunStatus::Partial),
                count(RunStatus::Complete),
                count(RunStatus::Failed),
            ))
        }
        ("TENANTS", []) => {
            let mut out = String::new();
            for t in shared.registry.tenants() {
                out.push_str(&t);
                out.push('\n');
            }
            Ok(out)
        }
        ("RUNS", [tenant]) => {
            let rows = shared.registry.runs_of(tenant);
            if rows.is_empty() {
                return Err(ServeError::State(format!("unknown tenant {tenant}")));
            }
            let mut out = String::new();
            for (key, status, bytes, events) in rows {
                out.push_str(&format!("{} {} {bytes} {events}\n", key.run, status.name()));
            }
            Ok(out)
        }
        ("REPORT", [tenant, run]) => {
            let (_, entry) = find_run(shared, tenant, run)?;
            match entry.status {
                RunStatus::Complete => match entry.report {
                    // The cached (or regenerated) bytes are exactly
                    // what `limba analyze --from-stream` prints for
                    // the spooled tracefile.
                    Some(report) => Ok(report),
                    None => replay::complete_report(shared.vfs(), &entry.spool),
                },
                RunStatus::Failed => Err(ServeError::State(format!(
                    "run failed: {}",
                    entry.error.as_deref().unwrap_or("unknown error")
                ))),
                RunStatus::Live | RunStatus::Partial => {
                    let mut out = format!(
                        "== {} report over {} spooled bytes ==\n",
                        entry.status.name(),
                        entry.bytes
                    );
                    out.push_str(&replay::partial_report(shared.vfs(), &entry.spool)?);
                    Ok(out)
                }
            }
        }
        ("DIGEST", [tenant, run]) => {
            let (key, entry) = find_run(shared, tenant, run)?;
            let alerts: Vec<String> = entry.alerts.iter().map(|a| a.to_json()).collect();
            let recent: Vec<String> = entry
                .windows
                .iter()
                .rev()
                .take(8)
                .rev()
                .map(|w| w.to_json())
                .collect();
            Ok(format!(
                "{{\"tenant\":\"{}\",\"run\":\"{}\",\"status\":\"{}\",\"bytes\":{},\
                 \"events\":{},\"processors\":{},\"makespan\":{},\"error\":{},\
                 \"alerts\":[{}],\"windows\":[{}]}}\n",
                json_escape(&key.tenant),
                json_escape(&key.run),
                entry.status.name(),
                entry.bytes,
                entry.events,
                entry.processors,
                crate::detect::json_f64(entry.makespan),
                match &entry.error {
                    Some(e) => format!("\"{}\"", json_escape(e)),
                    None => "null".into(),
                },
                alerts.join(","),
                recent.join(","),
            ))
        }
        ("ALERTS", [tenant, run]) => {
            let (_, entry) = find_run(shared, tenant, run)?;
            if entry.alerts.is_empty() {
                return Ok("no alerts\n".into());
            }
            let mut out = String::new();
            for a in &entry.alerts {
                out.push_str(&format!("{a}\n"));
            }
            Ok(out)
        }
        ("EVOLUTION", [tenant, run, windows]) => {
            let (_, entry) = find_run(shared, tenant, run)?;
            if entry.status != RunStatus::Complete {
                return Err(ServeError::State(
                    "evolution needs a complete run (live trend is in DIGEST)".into(),
                ));
            }
            let windows: usize = windows
                .parse()
                .map_err(|_| ServeError::Protocol(format!("bad window count {windows:?}")))?;
            if windows == 0 {
                return Err(ServeError::Protocol("window count must be positive".into()));
            }
            replay::evolution_report(shared.vfs(), &entry.spool, windows)
        }
        _ => Err(ServeError::Protocol(format!(
            "unknown query {line:?} (try STATUS, TENANTS, RUNS <t>, REPORT <t> <r>, \
             DIGEST <t> <r>, ALERTS <t> <r>, EVOLUTION <t> <r> <n>, SHUTDOWN)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    #[test]
    fn json_escape_covers_control_characters() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("line1\nline2\ttab\r"), "line1\\nline2\\ttab\\r");
        assert_eq!(json_escape("bell\u{7}"), "bell\\u0007");
        assert_eq!(json_escape("plain ünïcode"), "plain ünïcode");
    }
}
