//! Live multi-tenant trace-ingestion service with online imbalance
//! detection.
//!
//! Everything upstream of this crate analyses a *finished* artifact: a
//! tracefile on disk, or a stream whose producer runs in the same
//! process. This crate turns the same machinery into a long-running
//! service that ingests traces **while the applications producing them
//! are still executing**:
//!
//! * [`server::Server`] — a threaded `std::net` TCP server (no async
//!   runtime). Each accepted connection is either a *push session*
//!   streaming one chunked-v3 trace (binary handshake naming tenant
//!   and run) or a one-shot *query* (line protocol). Sessions forward
//!   raw bytes to per-tenant **shard workers** over the same bounded
//!   channels as the streaming pipeline, so a slow shard backpressures
//!   the socket instead of buffering the trace — ingestion memory is
//!   bounded regardless of client count or trace size.
//! * [`detect::OnlineDetector`] — each shard feeds arriving frames
//!   through an incremental windowed fold that flags imbalance onset,
//!   rising dispersion trends, and per-rank outliers as structured
//!   [`detect::Alert`]s, long before the run ends.
//! * [`registry::Registry`] — the shared tenant/run table queries are
//!   answered from: admission control, live progress, terminal status.
//! * Durability — every run's bytes spool to disk as they arrive; with
//!   a checkpoint directory, run metadata persists via
//!   [`limba_guard::Checkpoint`] so a killed server resumes every
//!   tenant from its spooled offset and converges to **byte-identical**
//!   final reports. A mid-stream disconnect degrades to a
//!   salvage-grade partial report over the bytes that arrived, using
//!   the same truncation repair as `limba analyze --salvage`.
//! * [`client`] — the push/query side: stream a tracefile or any
//!   [`TraceSink`](limba_trace::TraceSink)-driven producer (the CLI
//!   plugs a live simulation in) and read back acks, final reports,
//!   and query responses.
//!
//! The contract that anchors all of it: a completed run's report is
//! byte-for-byte what `limba analyze --from-stream` prints for the
//! same bytes. The server adds availability, not a second analysis
//! path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::panic)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

use std::fmt;

pub mod client;
pub mod detect;
pub mod protocol;
pub mod registry;
pub mod replay;
pub mod server;

pub use client::{PushOutcome, PushSession};
pub use detect::{Alert, DetectorConfig, OnlineDetector, WindowStat};
pub use registry::{Registry, RunKey, RunStatus};
pub use server::{ServeConfig, Server};

/// Errors from the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// A socket or spool-file operation failed.
    Io(std::io::Error),
    /// Durable storage failed under a run (ENOSPC, EIO, torn spool).
    /// Unlike [`ServeError::Io`] this names the run's artifact: the
    /// run degrades to a resumable partial instead of failing, and
    /// other tenants are unaffected.
    Disk {
        /// The artifact that faulted (spool or checkpoint path).
        path: String,
        /// The underlying failure.
        detail: String,
    },
    /// The peer violated the wire protocol.
    Protocol(String),
    /// The server refused the session (admission control, duplicate
    /// run, tenant cap).
    Rejected(String),
    /// The trace content itself was invalid.
    Trace(limba_trace::TraceError),
    /// The service is in a state that cannot satisfy the request
    /// (unknown run, shutdown in progress, poisoned session).
    State(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o: {e}"),
            ServeError::Disk { path, detail } => write!(f, "disk: {path}: {detail}"),
            ServeError::Protocol(m) => write!(f, "protocol: {m}"),
            ServeError::Rejected(m) => write!(f, "rejected: {m}"),
            ServeError::Trace(e) => write!(f, "trace: {e}"),
            ServeError::State(m) => write!(f, "state: {m}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<limba_trace::TraceError> for ServeError {
    fn from(e: limba_trace::TraceError) -> Self {
        ServeError::Trace(e)
    }
}
