//! Online imbalance detection over a live trace stream.
//!
//! The offline methodology slices a *finished* run into windows and
//! tracks dispersion across them. A live stream has no makespan to
//! slice against, so the detector bins computation time into
//! **fixed-width** time windows as events arrive and retires a window
//! once every rank's clock has passed its end (the watermark) — at
//! which point the window's per-rank compute loads are final and can
//! be judged:
//!
//! * **onset** — the window's coefficient of variation crosses the
//!   configured threshold from below;
//! * **rising trend** — the least-squares slope of the last few
//!   retired windows' CVs exceeds the configured rate;
//! * **rank outliers** — ranks whose window load sits more than the
//!   configured number of standard deviations above the window mean.
//!
//! Attribution is not reimplemented: the detector drives one
//! [`SalvageWalker`] per rank — the same state machine behind
//! [`reduce_checked`](limba_trace::reduce_checked) and the streaming
//! salvage fold — and bins the computation intervals it emits. Alerts
//! are therefore a pure function of the event stream: replaying the
//! same bytes (after a reconnect or a server restart) reproduces the
//! identical alert sequence.
//!
//! Memory is bounded: O(`max_active` × ranks) for the open windows
//! plus O(1) walker state per rank. A straggling rank stalls the
//! watermark; when more than `max_active` windows accumulate behind
//! it, the oldest is force-retired so the bound holds. The bound is
//! enforced against hostile input too: decode rejects non-finite
//! timestamps, a single interval never materializes more than
//! `max_active` windows past the retirement cursor (the remainder is
//! attributed to the newest allowed window), and idle gaps longer
//! than `MAX_IDLE_RUN` windows are elided rather than retired one
//! zero-load stat at a time.

use std::collections::BTreeMap;
use std::fmt;

use limba_model::ActivityKind;
use limba_trace::{Attribution, Event, SalvageWalker, TraceError, TraceSink};

/// Formats a float for a JSON body: six decimal places, or `null` for
/// non-finite values (bare `NaN`/`inf` would make the object invalid
/// JSON).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

/// Longest run of consecutive idle (zero-load) windows retired
/// densely; anything longer is elided down to its tail so a single
/// absurd timestamp cannot force an unbounded number of zero-load
/// window stats. 1024 windows is ~4 minutes at the default 0.25 s
/// width — far past any idle gap a real trace produces.
const MAX_IDLE_RUN: usize = 1024;

/// Tuning knobs of the online detector.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// Window width in trace seconds.
    pub window: f64,
    /// Coefficient-of-variation threshold whose upward crossing fires
    /// an [`Alert::Onset`].
    pub onset: f64,
    /// Retired windows the trend regression looks back over.
    pub trend_windows: usize,
    /// Least-squares CV slope (per window) at or above which an
    /// [`Alert::RisingTrend`] fires.
    pub trend_slope: f64,
    /// Standard deviations above the window mean at which a rank
    /// becomes an [`Alert::RankOutlier`].
    pub outlier_sigma: f64,
    /// Most open windows held before the oldest is force-retired —
    /// the detector's memory bound (× ranks).
    pub max_active: usize,
    /// Most rank-outlier alerts emitted per window (lowest ranks
    /// first), bounding alert volume on wide machines.
    pub max_outliers: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            window: 0.25,
            onset: 0.15,
            trend_windows: 4,
            trend_slope: 0.01,
            outlier_sigma: 3.0,
            max_active: 32,
            max_outliers: 8,
        }
    }
}

/// One structured alert from the online detector.
#[derive(Debug, Clone, PartialEq)]
pub enum Alert {
    /// A window's compute-load CV crossed the onset threshold from
    /// below.
    Onset {
        /// Window index (time `window × width` onward).
        window: usize,
        /// The window's coefficient of variation.
        value: f64,
    },
    /// The CV of recent windows is rising faster than the configured
    /// slope.
    RisingTrend {
        /// Newest window of the regression.
        window: usize,
        /// Fitted CV slope per window.
        slope: f64,
        /// Windows the regression spanned.
        over: usize,
    },
    /// One rank's window load sits far above the window mean.
    RankOutlier {
        /// Window index.
        window: usize,
        /// The outlying rank.
        rank: u32,
        /// The rank's compute seconds in the window.
        load: f64,
        /// Mean compute seconds over all ranks in the window.
        mean: f64,
        /// How many standard deviations above the mean the rank sits.
        sigmas: f64,
    },
}

impl Alert {
    /// The window the alert belongs to.
    pub fn window(&self) -> usize {
        match self {
            Alert::Onset { window, .. }
            | Alert::RisingTrend { window, .. }
            | Alert::RankOutlier { window, .. } => *window,
        }
    }

    /// The alert as one JSON object.
    pub fn to_json(&self) -> String {
        match self {
            Alert::Onset { window, value } => format!(
                "{{\"kind\":\"onset\",\"window\":{window},\"cv\":{}}}",
                json_f64(*value)
            ),
            Alert::RisingTrend {
                window,
                slope,
                over,
            } => format!(
                "{{\"kind\":\"rising-trend\",\"window\":{window},\"slope\":{},\"over\":{over}}}",
                json_f64(*slope)
            ),
            Alert::RankOutlier {
                window,
                rank,
                load,
                mean,
                sigmas,
            } => format!(
                "{{\"kind\":\"rank-outlier\",\"window\":{window},\"rank\":{rank},\
                 \"load\":{},\"mean\":{},\"sigmas\":{}}}",
                json_f64(*load),
                json_f64(*mean),
                if sigmas.is_finite() {
                    format!("{sigmas:.2}")
                } else {
                    "null".into()
                },
            ),
        }
    }
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Alert::Onset { window, value } => {
                write!(f, "window {window}: imbalance onset (cv {value:.3})")
            }
            Alert::RisingTrend {
                window,
                slope,
                over,
            } => write!(
                f,
                "window {window}: rising imbalance trend (cv slope {slope:+.4}/window over {over})"
            ),
            Alert::RankOutlier {
                window,
                rank,
                load,
                mean,
                sigmas,
            } => write!(
                f,
                "window {window}: rank {rank} outlier ({load:.3} s vs mean {mean:.3} s, \
                 {sigmas:.1}σ above)"
            ),
        }
    }
}

/// Summary of one retired window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStat {
    /// Window index.
    pub window: usize,
    /// Total compute seconds over all ranks.
    pub compute: f64,
    /// Mean compute seconds per rank.
    pub mean: f64,
    /// Coefficient of variation of the per-rank loads (0 for idle
    /// windows).
    pub cv: f64,
    /// Rank with the largest load.
    pub busiest: u32,
    /// That rank's load in seconds.
    pub peak: f64,
}

impl WindowStat {
    /// The stat as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"window\":{},\"compute\":{},\"mean\":{},\"cv\":{},\
             \"busiest\":{},\"peak\":{}}}",
            self.window,
            json_f64(self.compute),
            json_f64(self.mean),
            json_f64(self.cv),
            self.busiest,
            json_f64(self.peak)
        )
    }
}

/// The live detector: a [`TraceSink`] fed incrementally as frames
/// decode, producing [`Alert`]s and per-window [`WindowStat`]s.
pub struct OnlineDetector {
    cfg: DetectorConfig,
    walkers: Vec<SalvageWalker>,
    /// Per-rank clock high-water mark (last event time).
    clocks: Vec<f64>,
    /// Open windows: index → per-rank compute seconds.
    active: BTreeMap<usize, Vec<f64>>,
    /// Next window index to retire (windows retire in order).
    next_retire: usize,
    /// Retired window summaries, ascending by index.
    stats: Vec<WindowStat>,
    alerts: Vec<Alert>,
    /// Whether the last retired window sat at or above the onset
    /// threshold (edge-triggering for [`Alert::Onset`]).
    above_onset: bool,
    /// Recording-order index of the next event (for error naming).
    index: usize,
    events: u64,
    makespan: f64,
    finished: bool,
}

impl OnlineDetector {
    /// Creates a detector; the stream's shape arrives via
    /// [`TraceSink::begin`].
    pub fn new(cfg: DetectorConfig) -> Self {
        OnlineDetector {
            cfg,
            walkers: Vec::new(),
            clocks: Vec::new(),
            active: BTreeMap::new(),
            next_retire: 0,
            stats: Vec::new(),
            alerts: Vec::new(),
            above_onset: false,
            index: 0,
            events: 0,
            makespan: 0.0,
            finished: false,
        }
    }

    /// Alerts emitted so far, in retirement order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Retired window summaries so far, ascending.
    pub fn stats(&self) -> &[WindowStat] {
        &self.stats
    }

    /// Events consumed so far. (Named to stay clear of
    /// [`TraceSink::events`].)
    pub fn events_seen(&self) -> u64 {
        self.events
    }

    /// Largest event timestamp seen so far.
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// Ranks the stream declared (0 before `begin`).
    pub fn processors(&self) -> usize {
        self.walkers.len().max(self.clocks.len())
    }

    /// Bins one computation interval into the fixed-width windows it
    /// overlaps, never materializing more than `max_active` windows
    /// past the retirement cursor: an interval reaching further (a
    /// hostile or pathological timestamp — decode already rejects
    /// non-finite times, but finite ones can still be absurd) has its
    /// remainder attributed to the newest allowed window, so total
    /// binned time is conserved while memory stays O(`max_active` ×
    /// ranks).
    #[allow(clippy::too_many_arguments)]
    fn bin_interval(
        active: &mut BTreeMap<usize, Vec<f64>>,
        next_retire: usize,
        max_active: usize,
        procs: usize,
        width: f64,
        rank: usize,
        start: f64,
        end: f64,
    ) {
        // NaN-safe: bins only when `end` is strictly greater.
        if end.partial_cmp(&start) != Some(std::cmp::Ordering::Greater) {
            return;
        }
        // Newest window index binning may materialize. `as usize`
        // saturates on huge floats, which `.min(cap)` then bounds.
        let cap = next_retire.saturating_add(max_active.max(1) - 1);
        let first = ((start / width).floor() as usize).min(cap);
        let last = ((end / width).floor() as usize).min(cap);
        for w in first..=last {
            // A window already retired (force-retired past a
            // straggler) drops late arrivals — the documented cost of
            // the memory bound.
            if w < next_retire {
                continue;
            }
            let lo = start.max(w as f64 * width);
            // The cap window absorbs whatever the clamp cut off.
            let hi = if w == cap {
                end
            } else {
                end.min((w + 1) as f64 * width)
            };
            if hi > lo {
                let loads = active.entry(w).or_insert_with(|| vec![0.0; procs]);
                loads[rank] += hi - lo;
            }
        }
    }

    /// Retires every window the watermark has passed, then enforces
    /// the `max_active` bound by force-retiring the oldest stragglers.
    ///
    /// Windows retire in dense index order (idle windows included) so
    /// the stat/alert sequence depends only on the event stream, not
    /// on where frame boundaries happened to fall — except past the
    /// `max_active` force-retire bound, where late arrivals behind a
    /// straggler are dropped, and across idle gaps longer than
    /// `MAX_IDLE_RUN`, which are elided (see `retire_below`).
    fn retire_ready(&mut self) {
        let watermark = self.clocks.iter().copied().fold(f64::INFINITY, f64::min);
        if watermark.is_finite() {
            // Windows strictly before `boundary` are final: every
            // rank's clock has passed their end. `as usize` saturates
            // on absurd (but finite) clocks; retire_below bounds the
            // work regardless.
            let boundary = (watermark / self.cfg.window).floor() as usize;
            self.retire_below(boundary);
        }
        while self.active.len() > self.cfg.max_active {
            let Some((&oldest, _)) = self.active.first_key_value() else {
                break;
            };
            self.retire(oldest);
        }
    }

    /// Retires every window strictly below `target` in ascending
    /// order. Idle windows between loaded ones retire as zero-load
    /// stats so indices stay dense — but a run of more than
    /// [`MAX_IDLE_RUN`] consecutive idle windows is elided down to its
    /// last `MAX_IDLE_RUN`: one hostile (finite but absurd) timestamp
    /// must not force billions of zero-load stats. The work per call is
    /// therefore bounded by the active set plus the elision cap, never
    /// by the raw magnitude of a timestamp.
    fn retire_below(&mut self, target: usize) {
        while self.next_retire < target {
            // The next loaded window before the target, if any; the
            // stretch up to it is all idle.
            let next_loaded = self
                .active
                .range(self.next_retire..)
                .next()
                .map(|(&w, _)| w)
                .filter(|&w| w < target)
                .unwrap_or(target);
            if next_loaded - self.next_retire > MAX_IDLE_RUN {
                self.next_retire = next_loaded - MAX_IDLE_RUN;
            }
            while self.next_retire < next_loaded {
                let w = self.next_retire;
                self.judge(w, None);
            }
            if next_loaded < target {
                let loads = self.active.remove(&next_loaded);
                self.judge(next_loaded, loads);
            }
        }
    }

    /// Retires all windows up to and including `upto`.
    fn retire(&mut self, upto: usize) {
        self.retire_below(upto);
        let w = upto.max(self.next_retire);
        let loads = self.active.remove(&w);
        self.judge(w, loads);
    }

    /// Computes one retired window's stats and alerts.
    fn judge(&mut self, window: usize, loads: Option<Vec<f64>>) {
        self.next_retire = window + 1;
        let procs = self.processors().max(1);
        let loads = loads.unwrap_or_default();
        let compute: f64 = loads.iter().sum();
        let mean = compute / procs as f64;
        let (mut busiest, mut peak) = (0u32, 0.0f64);
        let mut var = 0.0;
        for (rank, &load) in loads.iter().enumerate() {
            if load > peak {
                peak = load;
                busiest = rank as u32;
            }
            var += (load - mean) * (load - mean);
        }
        // Ranks beyond the loads vector (idle window) contribute the
        // full squared mean each.
        var += (procs - loads.len()) as f64 * mean * mean;
        var /= procs as f64;
        let std = var.sqrt();
        let cv = if mean > 0.0 { std / mean } else { 0.0 };
        self.stats.push(WindowStat {
            window,
            compute,
            mean,
            cv,
            busiest,
            peak,
        });

        if compute > 0.0 {
            if cv >= self.cfg.onset {
                if !self.above_onset {
                    self.alerts.push(Alert::Onset { window, value: cv });
                }
                self.above_onset = true;
            } else {
                self.above_onset = false;
            }
        }

        let k = self.cfg.trend_windows;
        if k >= 2 && self.stats.len() >= k {
            let tail = &self.stats[self.stats.len() - k..];
            let slope = least_squares_slope(tail.iter().map(|s| s.cv));
            if slope >= self.cfg.trend_slope {
                self.alerts.push(Alert::RisingTrend {
                    window,
                    slope,
                    over: k,
                });
            }
        }

        if std > 0.0 {
            let mut emitted = 0;
            for (rank, &load) in loads.iter().enumerate() {
                if emitted >= self.cfg.max_outliers {
                    break;
                }
                let sigmas = (load - mean) / std;
                if sigmas >= self.cfg.outlier_sigma {
                    self.alerts.push(Alert::RankOutlier {
                        window,
                        rank: rank as u32,
                        load,
                        mean,
                        sigmas,
                    });
                    emitted += 1;
                }
            }
        }
    }
}

/// Least-squares slope of `values` against their indices 0..n.
fn least_squares_slope(values: impl Iterator<Item = f64>) -> f64 {
    let values: Vec<f64> = values.collect();
    let n = values.len() as f64;
    if values.len() < 2 {
        return 0.0;
    }
    let mean_x = (n - 1.0) / 2.0;
    let mean_y: f64 = values.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, y) in values.iter().enumerate() {
        let dx = i as f64 - mean_x;
        num += dx * (y - mean_y);
        den += dx * dx;
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

impl TraceSink for OnlineDetector {
    fn begin(&mut self, processors: usize, region_names: &[String]) -> Result<(), TraceError> {
        self.walkers = (0..processors)
            .map(|proc| SalvageWalker::new(proc as u32, region_names.len()))
            .collect();
        self.clocks = vec![0.0; processors];
        Ok(())
    }

    fn events(&mut self, events: &[Event]) -> Result<(), TraceError> {
        if self.walkers.len() != self.clocks.len() || self.clocks.is_empty() {
            return Err(TraceError::Malformed {
                detail: "events before begin".into(),
            });
        }
        let width = self.cfg.window;
        let max_active = self.cfg.max_active;
        let procs = self.clocks.len();
        for e in events {
            let index = self.index;
            self.index += 1;
            self.events += 1;
            // The stream decoder already rejects non-finite times;
            // this guards sinks fed from other producers.
            if !e.time.is_finite() {
                return Err(TraceError::MalformedEvent {
                    proc: e.proc,
                    index,
                    detail: format!("non-finite event timestamp {}", e.time),
                });
            }
            self.makespan = self.makespan.max(e.time);
            let rank = e.proc as usize;
            let Some(walker) = self.walkers.get_mut(rank) else {
                return Err(TraceError::MalformedEvent {
                    proc: e.proc,
                    index,
                    detail: format!("references processor {}, trace has {}", e.proc, procs),
                });
            };
            self.clocks[rank] = self.clocks[rank].max(e.time);
            let active = &mut self.active;
            let next_retire = self.next_retire;
            walker.step(index, e, &mut |attribution| {
                if let Attribution::Interval {
                    kind: ActivityKind::Computation,
                    start,
                    end,
                    ..
                } = attribution
                {
                    Self::bin_interval(
                        active,
                        next_retire,
                        max_active,
                        procs,
                        width,
                        rank,
                        start,
                        end,
                    );
                }
            })?;
        }
        self.retire_ready();
        Ok(())
    }

    fn finish(&mut self) -> Result<(), TraceError> {
        if self.finished {
            return Ok(());
        }
        self.finished = true;
        // Close every rank (truncation repair, same as salvage) so
        // trailing partial intervals are attributed, then retire
        // everything still open.
        let walkers = std::mem::take(&mut self.walkers);
        let width = self.cfg.window;
        let max_active = self.cfg.max_active;
        let procs = self.clocks.len().max(1);
        for walker in walkers {
            let rank = walker.proc() as usize;
            let active = &mut self.active;
            let next_retire = self.next_retire;
            walker.finish(&mut |attribution| {
                if let Attribution::Interval {
                    kind: ActivityKind::Computation,
                    start,
                    end,
                    ..
                } = attribution
                {
                    Self::bin_interval(
                        active,
                        next_retire,
                        max_active,
                        procs,
                        width,
                        rank,
                        start,
                        end,
                    );
                }
            });
        }
        while let Some((&oldest, _)) = self.active.first_key_value() {
            self.retire(oldest);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use limba_trace::Event;

    fn feed(det: &mut OnlineDetector, events: &[Event]) {
        det.events(events).expect("well-formed");
    }

    /// Two ranks, rank 1 three times the compute of rank 0, in four
    /// 1-second windows.
    #[test]
    fn detects_onset_and_outliers() {
        let cfg = DetectorConfig {
            window: 1.0,
            onset: 0.3,
            trend_windows: 2,
            trend_slope: 10.0, // effectively off
            outlier_sigma: 0.9,
            ..DetectorConfig::default()
        };
        let mut det = OnlineDetector::new(cfg);
        det.begin(2, &["work".into()]).unwrap();
        let mut evs = Vec::new();
        for w in 0..4 {
            let t0 = w as f64;
            evs.push(Event::enter(t0, 0, 0.into()));
            evs.push(Event::leave(t0 + 0.2, 0, 0.into()));
            evs.push(Event::enter(t0, 1, 0.into()));
            evs.push(Event::leave(t0 + 0.8, 1, 0.into()));
        }
        feed(&mut det, &evs);
        det.finish().unwrap();
        assert_eq!(det.stats().len(), 4);
        let s0 = &det.stats()[0];
        assert!((s0.compute - 1.0).abs() < 1e-9, "{s0:?}");
        assert_eq!(s0.busiest, 1);
        assert!(det
            .alerts()
            .iter()
            .any(|a| matches!(a, Alert::Onset { window: 0, .. })));
        assert!(det
            .alerts()
            .iter()
            .any(|a| matches!(a, Alert::RankOutlier { rank: 1, .. })));
    }

    #[test]
    fn detects_rising_trend() {
        let cfg = DetectorConfig {
            window: 1.0,
            onset: 10.0, // off
            trend_windows: 3,
            trend_slope: 0.05,
            outlier_sigma: 100.0, // off
            ..DetectorConfig::default()
        };
        let mut det = OnlineDetector::new(cfg);
        det.begin(2, &["work".into()]).unwrap();
        let mut evs = Vec::new();
        // Rank 1's share grows every window: CV rises.
        for w in 0..5 {
            let t0 = w as f64;
            let skew = 0.1 + 0.15 * w as f64;
            evs.push(Event::enter(t0, 0, 0.into()));
            evs.push(Event::leave(t0 + 0.5 - skew / 2.0, 0, 0.into()));
            evs.push(Event::enter(t0, 1, 0.into()));
            evs.push(Event::leave(t0 + 0.5 + skew / 2.0, 1, 0.into()));
        }
        feed(&mut det, &evs);
        det.finish().unwrap();
        assert!(
            det.alerts()
                .iter()
                .any(|a| matches!(a, Alert::RisingTrend { .. })),
            "{:?}",
            det.alerts()
        );
    }

    /// The alert stream is a pure function of the event stream: one
    /// batch vs many batches vs replay produce identical alerts.
    #[test]
    fn alerts_are_deterministic_across_batching() {
        let cfg = DetectorConfig {
            window: 0.5,
            onset: 0.2,
            outlier_sigma: 1.0,
            ..DetectorConfig::default()
        };
        let mut evs = Vec::new();
        for w in 0..6 {
            let t0 = w as f64 * 0.5;
            for rank in 0..3u32 {
                evs.push(Event::enter(t0, rank, 0.into()));
                evs.push(Event::leave(t0 + 0.1 * (rank + 1) as f64, rank, 0.into()));
            }
        }
        let run = |chunk: usize| {
            let mut det = OnlineDetector::new(cfg.clone());
            det.begin(3, &["work".into()]).unwrap();
            for batch in evs.chunks(chunk) {
                det.events(batch).unwrap();
            }
            det.finish().unwrap();
            (det.alerts().to_vec(), det.stats().to_vec())
        };
        let whole = run(evs.len());
        for chunk in [1, 2, 5] {
            assert_eq!(run(chunk), whole);
        }
    }

    /// Hostile (finite but absurd) timestamps cannot blow the memory
    /// bound: binning clamps to the `max_active` cap with the
    /// remainder attributed to the newest allowed window, and the
    /// idle stretch up to the watermark is elided, so the call
    /// returns promptly with bounded state and conserved compute.
    #[test]
    fn absurd_timestamps_stay_bounded() {
        let cfg = DetectorConfig {
            window: 0.25,
            max_active: 8,
            ..DetectorConfig::default()
        };
        let mut det = OnlineDetector::new(cfg);
        det.begin(1, &["work".into()]).unwrap();
        // One computation interval claiming to last 1e18 seconds —
        // ~4e18 windows if binned naively.
        feed(
            &mut det,
            &[
                Event::enter(0.0, 0, 0.into()),
                Event::leave(1e18, 0, 0.into()),
            ],
        );
        assert!(det.active.len() <= 8, "active = {}", det.active.len());
        det.finish().unwrap();
        assert!(
            det.stats().len() <= 8 + MAX_IDLE_RUN + 2,
            "stats = {}",
            det.stats().len()
        );
        let total: f64 = det.stats().iter().map(|s| s.compute).sum();
        assert!((total - 1e18).abs() < 1e6, "compute not conserved: {total}");
    }

    /// Non-finite timestamps are rejected with a named error instead
    /// of poisoning the window arithmetic.
    #[test]
    fn non_finite_timestamps_are_rejected() {
        for time in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut det = OnlineDetector::new(DetectorConfig::default());
            det.begin(1, &["work".into()]).unwrap();
            let err = det.events(&[Event::enter(time, 0, 0.into())]).unwrap_err();
            assert!(err.to_string().contains("non-finite"), "{err}");
        }
    }

    /// JSON bodies stay valid when a float goes non-finite: the value
    /// becomes `null`, never a bare `NaN`/`inf` token.
    #[test]
    fn json_handles_non_finite_floats() {
        assert_eq!(json_f64(1.5), "1.500000");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        let alert = Alert::Onset {
            window: 3,
            value: f64::NAN,
        };
        assert_eq!(alert.to_json(), "{\"kind\":\"onset\",\"window\":3,\"cv\":null}");
        let stat = WindowStat {
            window: 0,
            compute: f64::INFINITY,
            mean: 1.0,
            cv: 0.5,
            busiest: 2,
            peak: 4.0,
        };
        assert!(stat.to_json().contains("\"compute\":null"), "{}", stat.to_json());
    }

    /// The memory bound: a straggling rank cannot hold unbounded
    /// windows open.
    #[test]
    fn straggler_cannot_grow_active_windows_unboundedly() {
        let cfg = DetectorConfig {
            window: 0.1,
            max_active: 4,
            ..DetectorConfig::default()
        };
        let mut det = OnlineDetector::new(cfg);
        det.begin(2, &["work".into()]).unwrap();
        // Rank 0 stays at t≈0 (stalls the watermark); rank 1 races
        // ahead through many windows.
        let mut evs = vec![Event::enter(0.0, 0, 0.into())];
        evs.push(Event::enter(0.0, 1, 0.into()));
        for i in 1..100 {
            let t = i as f64 * 0.1;
            evs.push(Event::leave(t, 1, 0.into()));
            evs.push(Event::enter(t, 1, 0.into()));
        }
        feed(&mut det, &evs);
        assert!(det.active.len() <= 4, "active = {}", det.active.len());
        det.finish().unwrap();
    }
}
