//! The wire protocol of the ingestion service.
//!
//! One TCP connection carries exactly one of two conversations, told
//! apart by the first byte the client sends:
//!
//! * **Push** — the byte is `L`, the first byte of the 8-byte magic
//!   `LIMBASRV`. A length-prefixed handshake names the protocol
//!   version, the tenant, and the run id; the server answers with an
//!   [`Ack`] carrying the *resume offset* (how many bytes of this run
//!   it has already persisted — `0` for a new run). The client then
//!   streams the raw chunked-v3 tracefile bytes **starting at that
//!   offset**, half-closes its write side, and reads one [`Final`]
//!   frame: the run's report (complete, or salvage-grade when the
//!   stream was truncated).
//! * **Query** — any other first byte starts a single `\n`-terminated
//!   text command line (`STATUS`, `TENANTS`, `RUNS <t>`,
//!   `REPORT <t> <r>`, `DIGEST <t> <r>`, `ALERTS <t> <r>`,
//!   `EVOLUTION <t> <r> <n>`, `SHUTDOWN`). The reply is plain text,
//!   delimited by the server closing the connection. No command starts
//!   with `L`, which is what makes the first-byte dispatch sound.
//!
//! All integers are little-endian, matching the trace container.

use std::io::{Read, Write};

use crate::ServeError;

/// Magic opening a push handshake.
pub const MAGIC: &[u8; 8] = b"LIMBASRV";
/// Protocol version this build speaks.
pub const VERSION: u16 = 1;
/// Handshake kind: push a trace stream.
pub const KIND_PUSH: u8 = 0;

/// Ack/Final status: accepted, or a complete run's report.
pub const STATUS_OK: u8 = 0;
/// Ack status: the handshake was rejected (message says why).
pub const STATUS_REJECTED: u8 = 1;
/// Final status: the stream was truncated; the body is a
/// salvage-grade partial report and the run stays resumable.
pub const STATUS_SALVAGED: u8 = 2;
/// Final status: ingestion failed (corrupt stream or internal error);
/// the body is the error message.
pub const STATUS_ERROR: u8 = 3;

/// Longest tenant or run name accepted.
pub const MAX_NAME: usize = 64;
/// Longest query line accepted.
pub const MAX_LINE: usize = 4096;
/// Largest final-frame body accepted by the client (reports are text;
/// anything near this is a protocol violation, not a report).
pub const MAX_FINAL: usize = 64 << 20;

/// `true` when `name` is a valid tenant or run id: 1–64 characters of
/// `[A-Za-z0-9._-]`. The charset keeps ids safe to embed in filesystem
/// paths (the spool layout is `<tenant>/<run>.spool`) and in the
/// space-separated query protocol.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_NAME
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

fn proto(detail: impl Into<String>) -> ServeError {
    ServeError::Protocol(detail.into())
}

fn read_exact(r: &mut dyn Read, buf: &mut [u8], what: &str) -> Result<(), ServeError> {
    r.read_exact(buf)
        .map_err(|e| proto(format!("connection ended while reading {what}: {e}")))
}

fn read_u16(r: &mut dyn Read, what: &str) -> Result<u16, ServeError> {
    let mut b = [0u8; 2];
    read_exact(r, &mut b, what)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32(r: &mut dyn Read, what: &str) -> Result<u32, ServeError> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b, what)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut dyn Read, what: &str) -> Result<u64, ServeError> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b, what)?;
    Ok(u64::from_le_bytes(b))
}

fn read_name(r: &mut dyn Read, what: &str) -> Result<String, ServeError> {
    let len = read_u16(r, what)? as usize;
    if len > MAX_NAME {
        return Err(proto(format!("{what} of {len} bytes exceeds {MAX_NAME}")));
    }
    let mut buf = vec![0u8; len];
    read_exact(r, &mut buf, what)?;
    let name = String::from_utf8(buf).map_err(|_| proto(format!("{what} is not utf-8")))?;
    if !valid_name(&name) {
        return Err(proto(format!(
            "invalid {what} {name:?}: 1-{MAX_NAME} characters of [A-Za-z0-9._-]"
        )));
    }
    Ok(name)
}

/// Writes the push handshake (client side).
///
/// # Errors
///
/// Invalid names and I/O failures.
pub fn write_handshake(w: &mut dyn Write, tenant: &str, run: &str) -> Result<(), ServeError> {
    for (what, name) in [("tenant", tenant), ("run", run)] {
        if !valid_name(name) {
            return Err(proto(format!(
                "invalid {what} {name:?}: 1-{MAX_NAME} characters of [A-Za-z0-9._-]"
            )));
        }
    }
    let mut buf = Vec::with_capacity(16 + tenant.len() + run.len());
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.push(KIND_PUSH);
    for name in [tenant, run] {
        buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
    }
    w.write_all(&buf).map_err(ServeError::Io)?;
    w.flush().map_err(ServeError::Io)
}

/// Reads the push handshake after the first magic byte has already
/// been consumed by the first-byte dispatch (server side). Returns
/// `(tenant, run)`.
///
/// # Errors
///
/// Bad magic, unsupported version or kind, invalid names.
pub fn read_handshake_rest(r: &mut dyn Read) -> Result<(String, String), ServeError> {
    let mut magic = [0u8; 7];
    read_exact(r, &mut magic, "handshake magic")?;
    if magic != MAGIC[1..] {
        return Err(proto("bad handshake magic"));
    }
    let version = read_u16(r, "handshake version")?;
    if version != VERSION {
        return Err(proto(format!(
            "unsupported protocol version {version} (this build speaks {VERSION})"
        )));
    }
    let mut kind = [0u8; 1];
    read_exact(r, &mut kind, "handshake kind")?;
    if kind[0] != KIND_PUSH {
        return Err(proto(format!("unsupported handshake kind {}", kind[0])));
    }
    let tenant = read_name(r, "tenant name")?;
    let run = read_name(r, "run name")?;
    Ok((tenant, run))
}

/// The server's answer to a push handshake.
#[derive(Debug, Clone, PartialEq)]
pub struct Ack {
    /// [`STATUS_OK`] or [`STATUS_REJECTED`].
    pub status: u8,
    /// Bytes of this run already persisted server-side; the client
    /// must start streaming at this offset.
    pub offset: u64,
    /// Human-readable detail (the rejection reason, or empty).
    pub message: String,
}

/// Writes an [`Ack`] (server side).
///
/// # Errors
///
/// I/O failures.
pub fn write_ack(w: &mut dyn Write, ack: &Ack) -> Result<(), ServeError> {
    let mut buf = Vec::with_capacity(13 + ack.message.len());
    buf.push(ack.status);
    buf.extend_from_slice(&ack.offset.to_le_bytes());
    buf.extend_from_slice(&(ack.message.len() as u32).to_le_bytes());
    buf.extend_from_slice(ack.message.as_bytes());
    w.write_all(&buf).map_err(ServeError::Io)?;
    w.flush().map_err(ServeError::Io)
}

/// Reads an [`Ack`] (client side).
///
/// # Errors
///
/// Truncated or malformed replies.
pub fn read_ack(r: &mut dyn Read) -> Result<Ack, ServeError> {
    let mut status = [0u8; 1];
    read_exact(r, &mut status, "ack status")?;
    let offset = read_u64(r, "ack offset")?;
    let len = read_u32(r, "ack message length")? as usize;
    if len > MAX_LINE {
        return Err(proto(format!("ack message of {len} bytes")));
    }
    let mut msg = vec![0u8; len];
    read_exact(r, &mut msg, "ack message")?;
    Ok(Ack {
        status: status[0],
        offset,
        message: String::from_utf8(msg).map_err(|_| proto("ack message is not utf-8"))?,
    })
}

/// The final frame closing a push session: the run's report or the
/// ingest error.
#[derive(Debug, Clone, PartialEq)]
pub struct Final {
    /// [`STATUS_OK`], [`STATUS_SALVAGED`], or [`STATUS_ERROR`].
    pub status: u8,
    /// The rendered report (or the error message).
    pub body: String,
}

/// Writes a [`Final`] frame (server side).
///
/// # Errors
///
/// I/O failures.
pub fn write_final(w: &mut dyn Write, frame: &Final) -> Result<(), ServeError> {
    let mut buf = Vec::with_capacity(5 + frame.body.len());
    buf.push(frame.status);
    buf.extend_from_slice(&(frame.body.len() as u32).to_le_bytes());
    buf.extend_from_slice(frame.body.as_bytes());
    w.write_all(&buf).map_err(ServeError::Io)?;
    w.flush().map_err(ServeError::Io)
}

/// Reads a [`Final`] frame (client side).
///
/// # Errors
///
/// Truncated or oversized replies.
pub fn read_final(r: &mut dyn Read) -> Result<Final, ServeError> {
    let mut status = [0u8; 1];
    read_exact(r, &mut status, "final status")?;
    let len = read_u32(r, "final length")? as usize;
    if len > MAX_FINAL {
        return Err(proto(format!("final frame of {len} bytes")));
    }
    let mut body = vec![0u8; len];
    read_exact(r, &mut body, "final body")?;
    Ok(Final {
        status: status[0],
        body: String::from_utf8(body).map_err(|_| proto("final body is not utf-8"))?,
    })
}

/// Reads the rest of a query line whose first byte the dispatch
/// already consumed. Returns the whole trimmed command line.
///
/// # Errors
///
/// Lines over [`MAX_LINE`] bytes or ending before a newline.
pub fn read_line_rest(first: u8, r: &mut dyn Read) -> Result<String, ServeError> {
    let mut line = vec![first];
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(proto(format!("query line over {MAX_LINE} bytes")));
                }
            }
            Err(e) => return Err(ServeError::Io(e)),
        }
    }
    let line = String::from_utf8(line).map_err(|_| proto("query line is not utf-8"))?;
    Ok(line.trim().to_string())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    #[test]
    fn names_are_validated() {
        assert!(valid_name("tenant-1"));
        assert!(valid_name("a.b_c-D9"));
        assert!(!valid_name(""));
        assert!(!valid_name("has space"));
        assert!(!valid_name("sl/ash"));
        assert!(!valid_name(&"x".repeat(MAX_NAME + 1)));
    }

    #[test]
    fn handshake_round_trips() {
        let mut buf = Vec::new();
        write_handshake(&mut buf, "acme", "run-7").unwrap();
        let mut r = &buf[1..];
        let (tenant, run) = read_handshake_rest(&mut r).unwrap();
        assert_eq!((tenant.as_str(), run.as_str()), ("acme", "run-7"));
    }

    #[test]
    fn ack_and_final_round_trip() {
        let ack = Ack {
            status: STATUS_OK,
            offset: 12345,
            message: "resuming".into(),
        };
        let mut buf = Vec::new();
        write_ack(&mut buf, &ack).unwrap();
        assert_eq!(read_ack(&mut buf.as_slice()).unwrap(), ack);

        let fin = Final {
            status: STATUS_SALVAGED,
            body: "== report ==".into(),
        };
        let mut buf = Vec::new();
        write_final(&mut buf, &fin).unwrap();
        assert_eq!(read_final(&mut buf.as_slice()).unwrap(), fin);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut r: &[u8] = b"IMBAXRV\x01\x00\x00";
        assert!(read_handshake_rest(&mut r).is_err());
    }

    #[test]
    fn query_line_reads_to_newline() {
        let mut r: &[u8] = b"TATUS extra\nmore";
        let line = read_line_rest(b'S', &mut r).unwrap();
        assert_eq!(line, "STATUS extra");
    }
}
