//! The shared tenant/run table behind admission control and queries.
//!
//! The registry is the server's single source of truth about what runs
//! exist and where they stand. Sessions consult it under one lock at
//! admission (reject duplicates, enforce the tenant cap, pick up a
//! resume offset) and update it as bytes land; the query handler reads
//! it without touching the shard workers, so queries never stall
//! ingestion.

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use crate::detect::{Alert, WindowStat};
use crate::ServeError;

/// Identity of one run: tenant name plus run name, both validated by
/// [`protocol::valid_name`](crate::protocol::valid_name).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RunKey {
    /// The tenant the run belongs to.
    pub tenant: String,
    /// The run's name, unique within the tenant.
    pub run: String,
}

impl RunKey {
    /// Builds a key (names are assumed already validated).
    pub fn new(tenant: &str, run: &str) -> Self {
        RunKey {
            tenant: tenant.to_string(),
            run: run.to_string(),
        }
    }
}

impl fmt::Display for RunKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.tenant, self.run)
    }
}

/// Where a run stands in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// A session is currently streaming this run.
    Live,
    /// The stream ended before the trace's end chunk — the spool holds
    /// a salvage-grade prefix and a resumed session may complete it.
    Partial,
    /// The end chunk arrived and verified; the final report is final.
    Complete,
    /// The trace content was invalid (or the fold panicked); terminal.
    Failed,
}

impl RunStatus {
    /// Stable lowercase name used on the wire and in checkpoints.
    pub fn name(self) -> &'static str {
        match self {
            RunStatus::Live => "live",
            RunStatus::Partial => "partial",
            RunStatus::Complete => "complete",
            RunStatus::Failed => "failed",
        }
    }

    /// Parses [`RunStatus::name`] back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "live" => Some(RunStatus::Live),
            "partial" => Some(RunStatus::Partial),
            "complete" => Some(RunStatus::Complete),
            "failed" => Some(RunStatus::Failed),
            _ => None,
        }
    }
}

/// Everything the registry tracks about one run.
#[derive(Debug, Clone)]
pub struct RunEntry {
    /// Lifecycle state.
    pub status: RunStatus,
    /// Which shard worker owns the run's fold state.
    pub shard: usize,
    /// The spool file holding every byte received so far.
    pub spool: PathBuf,
    /// Bytes spooled (also the resume offset handed to clients).
    pub bytes: u64,
    /// Events decoded so far.
    pub events: u64,
    /// Ranks the stream declared (0 until the header decodes).
    pub processors: usize,
    /// Largest event timestamp seen.
    pub makespan: f64,
    /// Alerts the online detector has emitted.
    pub alerts: Vec<Alert>,
    /// Retired-window summaries from the online detector.
    pub windows: Vec<WindowStat>,
    /// The final report, cached once the run completes.
    pub report: Option<String>,
    /// Terminal error text for [`RunStatus::Failed`].
    pub error: Option<String>,
}

impl RunEntry {
    /// A fresh live entry for a newly admitted run.
    pub fn new(shard: usize, spool: PathBuf) -> Self {
        RunEntry {
            status: RunStatus::Live,
            shard,
            spool,
            bytes: 0,
            events: 0,
            processors: 0,
            makespan: 0.0,
            alerts: Vec::new(),
            windows: Vec::new(),
            report: None,
            error: None,
        }
    }
}

/// Admission verdict for a push handshake.
#[derive(Debug)]
pub struct Admission {
    /// Shard worker assigned to the run.
    pub shard: usize,
    /// Offset the client must skip to (0 for a fresh run).
    pub offset: u64,
    /// Spool path the shard appends to.
    pub spool: PathBuf,
    /// Whether the run resumes a partial spool (the shard must replay
    /// it before accepting new bytes).
    pub resume: bool,
}

/// The shared run table. All methods take `&self`; a single internal
/// mutex serialises access (registry operations are tiny compared to
/// decode work, which happens outside the lock).
#[derive(Debug, Default)]
pub struct Registry {
    runs: Mutex<BTreeMap<RunKey, RunEntry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<RunKey, RunEntry>> {
        self.runs.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pre-populates an entry recovered from a checkpoint at startup.
    pub fn restore(&self, key: RunKey, entry: RunEntry) {
        self.lock().insert(key, entry);
    }

    /// Admits or rejects a push handshake under one lock:
    /// * unknown run, tenant under cap → fresh [`RunStatus::Live`] entry;
    /// * [`RunStatus::Partial`] → resume from the spooled offset;
    /// * [`RunStatus::Live`] → rejected (one session per run);
    /// * [`RunStatus::Complete`] / [`RunStatus::Failed`] → rejected
    ///   (runs are immutable once terminal).
    pub fn admit(
        &self,
        key: &RunKey,
        shard: usize,
        spool: PathBuf,
        max_tenants: usize,
    ) -> Result<Admission, ServeError> {
        let mut runs = self.lock();
        if let Some(entry) = runs.get_mut(key) {
            return match entry.status {
                RunStatus::Live => Err(ServeError::Rejected(format!(
                    "run {key} is already streaming"
                ))),
                RunStatus::Complete => Err(ServeError::Rejected(format!("run {key} is complete"))),
                RunStatus::Failed => Err(ServeError::Rejected(format!(
                    "run {key} failed terminally: {}",
                    entry.error.as_deref().unwrap_or("unknown error")
                ))),
                RunStatus::Partial => {
                    entry.status = RunStatus::Live;
                    Ok(Admission {
                        shard: entry.shard,
                        offset: entry.bytes,
                        spool: entry.spool.clone(),
                        resume: true,
                    })
                }
            };
        }
        // Only tenants with non-terminal runs count toward the cap:
        // completed and failed runs stay queryable, but a long-lived
        // server must not drift into rejecting every new tenant just
        // because old ones finished.
        let tenants: std::collections::BTreeSet<&str> = runs
            .iter()
            .filter(|(_, e)| matches!(e.status, RunStatus::Live | RunStatus::Partial))
            .map(|(k, _)| k.tenant.as_str())
            .collect();
        if !tenants.contains(key.tenant.as_str()) && tenants.len() >= max_tenants {
            return Err(ServeError::Rejected(format!(
                "tenant cap reached ({max_tenants} active); tenant {} not admitted",
                key.tenant
            )));
        }
        runs.insert(key.clone(), RunEntry::new(shard, spool.clone()));
        Ok(Admission {
            shard,
            offset: 0,
            spool,
            resume: false,
        })
    }

    /// Applies `f` to the run's entry (no-op when the run is unknown).
    pub fn update<F: FnOnce(&mut RunEntry)>(&self, key: &RunKey, f: F) {
        if let Some(entry) = self.lock().get_mut(key) {
            f(entry);
        }
    }

    /// Clones the run's entry.
    pub fn get(&self, key: &RunKey) -> Option<RunEntry> {
        self.lock().get(key).cloned()
    }

    /// Tenant names, ascending.
    pub fn tenants(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for key in self.lock().keys() {
            if out.last().map(|t| t != &key.tenant).unwrap_or(true) {
                out.push(key.tenant.clone());
            }
        }
        out
    }

    /// `(key, status, bytes, events)` rows for one tenant, ascending
    /// by run name.
    pub fn runs_of(&self, tenant: &str) -> Vec<(RunKey, RunStatus, u64, u64)> {
        self.lock()
            .iter()
            .filter(|(k, _)| k.tenant == tenant)
            .map(|(k, e)| (k.clone(), e.status, e.bytes, e.events))
            .collect()
    }

    /// `(key, status)` for every run, ascending.
    pub fn all(&self) -> Vec<(RunKey, RunStatus)> {
        self.lock()
            .iter()
            .map(|(k, e)| (k.clone(), e.status))
            .collect()
    }

    /// Marks every [`RunStatus::Live`] run [`RunStatus::Partial`]
    /// (shutdown: the spool is a valid resumable prefix), returning
    /// the keys demoted.
    pub fn demote_live(&self) -> Vec<RunKey> {
        let mut runs = self.lock();
        let mut demoted = Vec::new();
        for (k, e) in runs.iter_mut() {
            if e.status == RunStatus::Live {
                e.status = RunStatus::Partial;
                demoted.push(k.clone());
            }
        }
        demoted
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    /// Completed and failed runs stay queryable but release their
    /// tenant-cap slot: a long-lived server never drifts into
    /// rejecting every new tenant.
    #[test]
    fn terminal_runs_do_not_count_toward_tenant_cap() {
        let reg = Registry::new();
        let k0 = RunKey::new("t0", "r");
        let k1 = RunKey::new("t1", "r");
        reg.admit(&k0, 0, PathBuf::from("s0"), 1).expect("t0 admitted");
        // Cap of 1: a second tenant is rejected while t0 is live...
        assert!(reg.admit(&k1, 0, PathBuf::from("s1"), 1).is_err());
        // ...but once t0's run reaches a terminal state, the slot
        // frees up while the run itself stays queryable.
        reg.update(&k0, |e| e.status = RunStatus::Complete);
        reg.admit(&k1, 0, PathBuf::from("s1"), 1)
            .expect("slot freed by terminal run");
        let kept = reg.get(&k0).expect("terminal run still present");
        assert_eq!(kept.status, RunStatus::Complete);
    }
}
