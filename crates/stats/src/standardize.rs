//! Standardization of wall-clock times.
//!
//! The first step of the paper's dissimilarity analysis: "the standardized
//! times are such that they sum to one, that is, they are obtained by
//! dividing the wall clock times by the corresponding sum". Standardization
//! makes every index of dispersion a *relative* measure, independent of the
//! absolute magnitude of the times.

use crate::StatsError;

/// Validates that every element is finite and non-negative.
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] for an empty slice and
/// [`StatsError::InvalidValue`] for the first offending element.
pub fn validate_nonnegative(data: &[f64]) -> Result<(), StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyData);
    }
    for &v in data {
        if !v.is_finite() || v < 0.0 {
            return Err(StatsError::InvalidValue { value: v });
        }
    }
    Ok(())
}

/// Returns a copy of `data` scaled so its elements sum to one.
///
/// # Errors
///
/// Returns an error when `data` is empty, contains negative or non-finite
/// values, or sums to zero.
///
/// # Example
///
/// ```
/// let s = limba_stats::standardize::to_unit_sum(&[1.0, 3.0]).unwrap();
/// assert_eq!(s, vec![0.25, 0.75]);
/// ```
pub fn to_unit_sum(data: &[f64]) -> Result<Vec<f64>, StatsError> {
    validate_nonnegative(data)?;
    let sum: f64 = data.iter().sum();
    if sum <= 0.0 {
        return Err(StatsError::ZeroSum);
    }
    Ok(data.iter().map(|&v| v / sum).collect())
}

/// Standardizes `data` in place to sum one.
///
/// # Errors
///
/// Same conditions as [`to_unit_sum`]; on error the slice is unchanged.
pub fn unit_sum_in_place(data: &mut [f64]) -> Result<(), StatsError> {
    validate_nonnegative(data)?;
    let sum: f64 = data.iter().sum();
    if sum <= 0.0 {
        return Err(StatsError::ZeroSum);
    }
    for v in data.iter_mut() {
        *v /= sum;
    }
    Ok(())
}

/// The perfectly balanced standardized vector of length `n`: every element
/// equals `1/n`. This is the reference point the paper's indices measure
/// distance from.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn balanced_reference(n: usize) -> Vec<f64> {
    assert!(n > 0, "balanced reference needs at least one element");
    vec![1.0 / n as f64; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardized_sums_to_one() {
        let s = to_unit_sum(&[2.0, 2.0, 4.0]).unwrap();
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(s, vec![0.25, 0.25, 0.5]);
    }

    #[test]
    fn in_place_matches_owned() {
        let mut d = [1.0, 2.0, 5.0];
        unit_sum_in_place(&mut d).unwrap();
        assert_eq!(d.to_vec(), to_unit_sum(&[1.0, 2.0, 5.0]).unwrap());
    }

    #[test]
    fn zero_sum_is_rejected() {
        assert_eq!(to_unit_sum(&[0.0, 0.0]), Err(StatsError::ZeroSum));
    }

    #[test]
    fn empty_and_invalid_inputs_are_rejected() {
        assert_eq!(to_unit_sum(&[]), Err(StatsError::EmptyData));
        assert!(matches!(
            to_unit_sum(&[1.0, -1.0]),
            Err(StatsError::InvalidValue { .. })
        ));
        assert!(matches!(
            to_unit_sum(&[f64::INFINITY]),
            Err(StatsError::InvalidValue { .. })
        ));
        let mut bad = [1.0, f64::NAN];
        assert!(unit_sum_in_place(&mut bad).is_err());
        assert_eq!(bad[0], 1.0); // unchanged on error
    }

    #[test]
    fn balanced_reference_is_uniform() {
        let r = balanced_reference(4);
        assert_eq!(r, vec![0.25; 4]);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn balanced_reference_zero_panics() {
        balanced_reference(0);
    }
}
