//! Descriptive statistics helpers.

use crate::StatsError;

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] for an empty slice.
pub fn mean(data: &[f64]) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyData);
    }
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Population standard deviation.
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] for an empty slice.
pub fn std_dev(data: &[f64]) -> Result<f64, StatsError> {
    let m = mean(data)?;
    let var = data.iter().map(|&v| (v - m).powi(2)).sum::<f64>() / data.len() as f64;
    Ok(var.sqrt())
}

/// Percentile of `data` with linear interpolation between order statistics,
/// `p` in `[0, 100]`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] for an empty slice and
/// [`StatsError::InvalidFraction`] when `p` is outside `[0, 100]`.
///
/// # Example
///
/// ```
/// let p50 = limba_stats::describe::percentile(&[1.0, 2.0, 3.0, 4.0], 50.0).unwrap();
/// assert_eq!(p50, 2.5);
/// ```
pub fn percentile(data: &[f64], p: f64) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyData);
    }
    if !(0.0..=100.0).contains(&p) || !p.is_finite() {
        return Err(StatsError::InvalidFraction { value: p });
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Five-number summary of a data set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumberSummary {
    /// Minimum.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes the [`FiveNumberSummary`] of `data`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] for an empty slice.
pub fn five_number_summary(data: &[f64]) -> Result<FiveNumberSummary, StatsError> {
    Ok(FiveNumberSummary {
        min: percentile(data, 0.0)?,
        q1: percentile(data, 25.0)?,
        median: percentile(data, 50.0)?,
        q3: percentile(data, 75.0)?,
        max: percentile(data, 100.0)?,
    })
}

/// Least-squares slope of `y` over `x` for a set of `(x, y)` points — the
/// trend engine behind the windowed imbalance-evolution detector and the
/// simulator's anticipatory balancing policy.
///
/// Returns `0.0` for fewer than two points or when all `x` coincide, so
/// degenerate windows read as "no trend" instead of an error.
///
/// # Example
///
/// ```
/// let pts = [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)];
/// assert_eq!(limba_stats::describe::least_squares_slope(&pts), 2.0);
/// ```
pub fn least_squares_slope(points: &[(f64, f64)]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let cov: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    let var: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    if var == 0.0 {
        0.0
    } else {
        cov / var
    }
}

/// Index of the maximum element, breaking ties toward the smaller index.
///
/// Returns `None` for an empty slice.
pub fn argmax(data: &[f64]) -> Option<usize> {
    data.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)
}

/// Index of the minimum element, breaking ties toward the smaller index.
///
/// Returns `None` for an empty slice.
pub fn argmin(data: &[f64]) -> Option<usize> {
    data.iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
        assert_eq!(std_dev(&[2.0, 2.0]).unwrap(), 0.0);
        assert!((std_dev(&[0.0, 2.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn percentile_interpolates() {
        let d = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&d, 0.0).unwrap(), 10.0);
        assert_eq!(percentile(&d, 100.0).unwrap(), 50.0);
        assert_eq!(percentile(&d, 50.0).unwrap(), 30.0);
        assert_eq!(percentile(&d, 25.0).unwrap(), 20.0);
        assert_eq!(percentile(&d, 10.0).unwrap(), 14.0);
    }

    #[test]
    fn percentile_is_order_independent() {
        let a = percentile(&[3.0, 1.0, 2.0], 50.0).unwrap();
        assert_eq!(a, 2.0);
    }

    #[test]
    fn percentile_validates_p() {
        assert!(percentile(&[1.0], -1.0).is_err());
        assert!(percentile(&[1.0], 100.5).is_err());
        assert!(percentile(&[1.0], f64::NAN).is_err());
        assert!(percentile(&[], 50.0).is_err());
    }

    #[test]
    fn five_numbers() {
        let s = five_number_summary(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
    }

    #[test]
    fn argmax_argmin_with_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmin(&[2.0, 1.0, 1.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmin(&[]), None);
    }
}
