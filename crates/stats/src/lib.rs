//! Statistical machinery for load-imbalance analysis.
//!
//! This crate implements the metric toolbox of *"Load Imbalance in Parallel
//! Programs"* (PACT 2003):
//!
//! * [`standardize`] — the methodology's first step: scaling a data set so
//!   its elements sum to one, making dispersions *relative* measures;
//! * [`dispersion`] — indices of dispersion that quantify how spread out a
//!   standardized data set is, chief among them the paper's
//!   [`EuclideanFromMean`](dispersion::EuclideanFromMean) (Euclidean
//!   distance between each element and the common average);
//! * [`majorization`] — the majorization partial order of Marshall & Olkin
//!   that grounds those indices: Lorenz curves, `x ≺ y` tests, and
//!   T-transforms;
//! * [`rank`] — criteria for assessing the *severity* of dissimilarities
//!   (maximum, top-k, percentile, threshold);
//! * [`describe`] — small descriptive-statistics helpers (mean, percentile,
//!   five-number summaries).
//!
//! # Example
//!
//! ```
//! use limba_stats::dispersion::{DispersionIndex, EuclideanFromMean};
//!
//! // Perfectly balanced processors → zero dispersion.
//! let balanced = [2.0, 2.0, 2.0, 2.0];
//! assert_eq!(EuclideanFromMean.index(&balanced).unwrap(), 0.0);
//!
//! // One processor does all the work → maximal dispersion sqrt(1 - 1/P).
//! let concentrated = [8.0, 0.0, 0.0, 0.0];
//! let id = EuclideanFromMean.index(&concentrated).unwrap();
//! assert!((id - (1.0f64 - 0.25).sqrt()).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod describe;
pub mod dispersion;
pub mod majorization;
pub mod rank;
pub mod standardize;

mod error;

pub use error::StatsError;
