//! Ranking criteria for assessing the severity of dissimilarities.
//!
//! "Once the metrics to quantify dissimilarities have been defined, it is
//! necessary to select the criteria for their ranking. … Possible criteria
//! are the maximum of the indices of dispersion, the percentiles of their
//! distribution, or some predefined thresholds."

use crate::describe::percentile;
use crate::StatsError;

/// A criterion selecting which items of a scored collection are *severe*.
///
/// # Example
///
/// ```
/// use limba_stats::rank::RankingCriterion;
/// let scores = [0.1, 0.9, 0.4, 0.8];
/// // The single worst item.
/// assert_eq!(RankingCriterion::Maximum.select(&scores).unwrap(), vec![1]);
/// // Everything at or above a threshold, worst first.
/// assert_eq!(
///     RankingCriterion::Threshold(0.5).select(&scores).unwrap(),
///     vec![1, 3]
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RankingCriterion {
    /// Select only the item with the maximum index of dispersion.
    #[default]
    Maximum,
    /// Select the `k` items with the largest indices.
    TopK(usize),
    /// Select the items at or above the given percentile (in `[0, 100]`)
    /// of the score distribution.
    Percentile(f64),
    /// Select the items whose score is at or above a predefined threshold.
    Threshold(f64),
}

impl RankingCriterion {
    /// Returns the indices of the selected items, ordered by decreasing
    /// score (ties broken toward smaller indices).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyData`] when `scores` is empty and
    /// [`StatsError::InvalidFraction`] for an out-of-range percentile or a
    /// non-finite threshold.
    pub fn select(&self, scores: &[f64]) -> Result<Vec<usize>, StatsError> {
        if scores.is_empty() {
            return Err(StatsError::EmptyData);
        }
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
        match *self {
            RankingCriterion::Maximum => Ok(vec![order[0]]),
            RankingCriterion::TopK(k) => {
                order.truncate(k);
                Ok(order)
            }
            RankingCriterion::Percentile(p) => {
                let cut = percentile(scores, p)?;
                order.retain(|&i| scores[i] >= cut);
                Ok(order)
            }
            RankingCriterion::Threshold(t) => {
                if !t.is_finite() {
                    return Err(StatsError::InvalidFraction { value: t });
                }
                order.retain(|&i| scores[i] >= t);
                Ok(order)
            }
        }
    }

    /// Convenience: the single most severe index, if any item is selected.
    ///
    /// # Errors
    ///
    /// Same conditions as [`select`](Self::select).
    pub fn most_severe(&self, scores: &[f64]) -> Result<Option<usize>, StatsError> {
        Ok(self.select(scores)?.into_iter().next())
    }
}

/// Ranks all items by decreasing score, returning `(index, score)` pairs.
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] when `scores` is empty.
pub fn rank_descending(scores: &[f64]) -> Result<Vec<(usize, f64)>, StatsError> {
    if scores.is_empty() {
        return Err(StatsError::EmptyData);
    }
    let mut pairs: Vec<(usize, f64)> = scores.iter().copied().enumerate().collect();
    pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCORES: [f64; 5] = [0.3, 0.1, 0.5, 0.5, 0.2];

    #[test]
    fn maximum_picks_single_worst() {
        // Tie between indices 2 and 3 → smaller index wins.
        assert_eq!(RankingCriterion::Maximum.select(&SCORES).unwrap(), vec![2]);
    }

    #[test]
    fn top_k_orders_descending() {
        assert_eq!(
            RankingCriterion::TopK(3).select(&SCORES).unwrap(),
            vec![2, 3, 0]
        );
        // k larger than the collection returns everything.
        assert_eq!(RankingCriterion::TopK(99).select(&SCORES).unwrap().len(), 5);
        assert!(RankingCriterion::TopK(0)
            .select(&SCORES)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn percentile_selects_upper_tail() {
        let sel = RankingCriterion::Percentile(80.0).select(&SCORES).unwrap();
        // 80th percentile of [0.1,0.2,0.3,0.5,0.5] = 0.5 → both 0.5 entries.
        assert_eq!(sel, vec![2, 3]);
    }

    #[test]
    fn threshold_keeps_at_or_above() {
        assert_eq!(
            RankingCriterion::Threshold(0.3).select(&SCORES).unwrap(),
            vec![2, 3, 0]
        );
        assert!(RankingCriterion::Threshold(0.9)
            .select(&SCORES)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn invalid_inputs() {
        assert!(RankingCriterion::Maximum.select(&[]).is_err());
        assert!(RankingCriterion::Percentile(150.0).select(&SCORES).is_err());
        assert!(RankingCriterion::Threshold(f64::NAN)
            .select(&SCORES)
            .is_err());
    }

    #[test]
    fn most_severe_handles_empty_selection() {
        assert_eq!(
            RankingCriterion::Threshold(9.0)
                .most_severe(&SCORES)
                .unwrap(),
            None
        );
        assert_eq!(
            RankingCriterion::Maximum.most_severe(&SCORES).unwrap(),
            Some(2)
        );
    }

    #[test]
    fn rank_descending_is_stable_on_ties() {
        let r = rank_descending(&SCORES).unwrap();
        let idx: Vec<usize> = r.iter().map(|p| p.0).collect();
        assert_eq!(idx, vec![2, 3, 0, 4, 1]);
        assert!(rank_descending(&[]).is_err());
    }
}
