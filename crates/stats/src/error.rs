//! Error type for statistical computations.

use std::error::Error;
use std::fmt;

/// Error raised by statistical computations.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// The input data set was empty.
    EmptyData,
    /// The data set sums to zero, so it cannot be standardized to sum one.
    ZeroSum,
    /// The data contained a negative or non-finite value.
    InvalidValue {
        /// The rejected value.
        value: f64,
    },
    /// A percentile or fraction parameter was outside `[0, 1]` (or `[0, 100]`
    /// where a percentage is expected).
    InvalidFraction {
        /// The rejected parameter.
        value: f64,
    },
    /// Two data sets that must have equal lengths did not.
    LengthMismatch {
        /// Length of the first data set.
        left: usize,
        /// Length of the second data set.
        right: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyData => write!(f, "data set is empty"),
            StatsError::ZeroSum => write!(f, "data set sums to zero and cannot be standardized"),
            StatsError::InvalidValue { value } => {
                write!(f, "data must be finite and non-negative, got {value}")
            }
            StatsError::InvalidFraction { value } => {
                write!(f, "fraction parameter out of range, got {value}")
            }
            StatsError::LengthMismatch { left, right } => {
                write!(f, "data sets have mismatched lengths {left} and {right}")
            }
        }
    }
}

impl Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_offending_values() {
        assert!(StatsError::InvalidValue { value: -2.5 }
            .to_string()
            .contains("-2.5"));
        assert!(StatsError::LengthMismatch { left: 3, right: 4 }
            .to_string()
            .contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
