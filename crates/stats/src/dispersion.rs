//! Indices of dispersion.
//!
//! "Dissimilarities can be measured by different indices of dispersion,
//! such as, variance, coefficient of variation, Euclidean distance, mean
//! absolute deviation, maximum, sum of the elements of the data sets."
//!
//! Every index here first standardizes its input to sum one (see
//! [`standardize`](crate::standardize)), so all indices are *relative*
//! measures of spread with value `0` exactly at the perfectly balanced
//! condition. The paper selects the Euclidean distance from the average —
//! [`EuclideanFromMean`] — as the index best suited for load-imbalance
//! studies; the others are provided for ablation and because the
//! methodology treats the index as a pluggable choice.
//!
//! All of these indices are Schur-convex functions of the standardized
//! data, so they respect the majorization partial order (see
//! [`majorization`](crate::majorization)): if `x ≺ y` then
//! `index(x) ≤ index(y)`.

use std::fmt;

use crate::standardize::to_unit_sum;
use crate::StatsError;

/// A relative index of dispersion over a non-negative data set.
///
/// Implementations standardize the data to sum one, then measure its spread
/// around the perfectly balanced point `(1/n, …, 1/n)`.
pub trait DispersionIndex {
    /// Human-readable name used in reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Computes the index for `data`.
    ///
    /// # Errors
    ///
    /// Returns an error when `data` is empty, contains negative or
    /// non-finite values, or sums to zero (an all-idle data set has no
    /// relative spread).
    fn index(&self, data: &[f64]) -> Result<f64, StatsError>;
}

/// The paper's index: the Euclidean distance between the standardized times
/// and their common average,
/// `ID = sqrt( Σ_p (t̂_p − mean(t̂))² )` with `mean(t̂) = 1/n`.
///
/// For `n` elements the index ranges from `0` (perfect balance) to
/// `sqrt(1 − 1/n)` (all time on one element).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EuclideanFromMean;

impl DispersionIndex for EuclideanFromMean {
    fn name(&self) -> &'static str {
        "euclidean"
    }

    fn index(&self, data: &[f64]) -> Result<f64, StatsError> {
        let x = to_unit_sum(data)?;
        let mean = 1.0 / x.len() as f64;
        Ok(x.iter().map(|&v| (v - mean).powi(2)).sum::<f64>().sqrt())
    }
}

impl EuclideanFromMean {
    /// The largest value the index can take for `n` elements,
    /// `sqrt(1 − 1/n)`, attained when a single element holds all the time.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn max_for(n: usize) -> f64 {
        assert!(n > 0, "need at least one element");
        (1.0 - 1.0 / n as f64).sqrt()
    }
}

/// Variance of the standardized data set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Variance;

impl DispersionIndex for Variance {
    fn name(&self) -> &'static str {
        "variance"
    }

    fn index(&self, data: &[f64]) -> Result<f64, StatsError> {
        let x = to_unit_sum(data)?;
        let mean = 1.0 / x.len() as f64;
        Ok(x.iter().map(|&v| (v - mean).powi(2)).sum::<f64>() / x.len() as f64)
    }
}

/// Coefficient of variation: standard deviation over mean (computed on the
/// standardized data, where it equals the CV of the raw data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoefficientOfVariation;

impl DispersionIndex for CoefficientOfVariation {
    fn name(&self) -> &'static str {
        "cv"
    }

    fn index(&self, data: &[f64]) -> Result<f64, StatsError> {
        let x = to_unit_sum(data)?;
        let mean = 1.0 / x.len() as f64;
        let var = x.iter().map(|&v| (v - mean).powi(2)).sum::<f64>() / x.len() as f64;
        Ok(var.sqrt() / mean)
    }
}

/// Mean absolute deviation of the standardized data from its mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeanAbsoluteDeviation;

impl DispersionIndex for MeanAbsoluteDeviation {
    fn name(&self) -> &'static str {
        "mad"
    }

    fn index(&self, data: &[f64]) -> Result<f64, StatsError> {
        let x = to_unit_sum(data)?;
        let mean = 1.0 / x.len() as f64;
        Ok(x.iter().map(|&v| (v - mean).abs()).sum::<f64>() / x.len() as f64)
    }
}

/// Maximum of the standardized data set, shifted so perfect balance maps to
/// zero: `max(t̂) − 1/n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaxExcess;

impl DispersionIndex for MaxExcess {
    fn name(&self) -> &'static str {
        "max-excess"
    }

    fn index(&self, data: &[f64]) -> Result<f64, StatsError> {
        let x = to_unit_sum(data)?;
        let max = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok(max - 1.0 / x.len() as f64)
    }
}

/// Range of the standardized data set: `max(t̂) − min(t̂)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Range;

impl DispersionIndex for Range {
    fn name(&self) -> &'static str {
        "range"
    }

    fn index(&self, data: &[f64]) -> Result<f64, StatsError> {
        let x = to_unit_sum(data)?;
        let max = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = x.iter().copied().fold(f64::INFINITY, f64::min);
        Ok(max - min)
    }
}

/// Gini coefficient of the data set (half the relative mean absolute
/// difference), a classic majorization-respecting inequality measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Gini;

impl DispersionIndex for Gini {
    fn name(&self) -> &'static str {
        "gini"
    }

    fn index(&self, data: &[f64]) -> Result<f64, StatsError> {
        let x = to_unit_sum(data)?;
        let n = x.len() as f64;
        let mut sorted = x;
        sorted.sort_by(f64::total_cmp);
        // G = (2·Σ_i i·x_(i) − (n+1)) / n for unit-sum data, i counted from 1.
        let weighted: f64 = sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 + 1.0) * v)
            .sum();
        Ok((2.0 * weighted - (n + 1.0)) / n)
    }
}

/// Theil's T entropy index: `(1/n) Σ (x/μ)·ln(x/μ)` over the
/// standardized data, with the `0·ln 0 = 0` convention. Zero at perfect
/// balance, `ln n` at total concentration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Theil;

impl DispersionIndex for Theil {
    fn name(&self) -> &'static str {
        "theil"
    }

    fn index(&self, data: &[f64]) -> Result<f64, StatsError> {
        let x = to_unit_sum(data)?;
        let n = x.len() as f64;
        Ok(x.iter()
            .map(|&v| {
                let r = v * n; // x / mean
                if r > 0.0 {
                    r * r.ln()
                } else {
                    0.0
                }
            })
            .sum::<f64>()
            / n)
    }
}

/// Atkinson index with inequality aversion `ε = 1/2`:
/// `1 − ( (1/n) Σ sqrt(x/μ) )²`. Zero at perfect balance, approaching 1
/// under total concentration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Atkinson;

impl DispersionIndex for Atkinson {
    fn name(&self) -> &'static str {
        "atkinson"
    }

    fn index(&self, data: &[f64]) -> Result<f64, StatsError> {
        let x = to_unit_sum(data)?;
        let n = x.len() as f64;
        let mean_sqrt = x.iter().map(|&v| (v * n).sqrt()).sum::<f64>() / n;
        Ok(1.0 - mean_sqrt * mean_sqrt)
    }
}

/// Enumeration of the provided indices, for configuration and ablation.
///
/// # Example
///
/// ```
/// use limba_stats::dispersion::{DispersionIndex, DispersionKind};
/// let id = DispersionKind::Euclidean.index(&[1.0, 0.0]).unwrap();
/// assert!((id - (0.5f64).sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DispersionKind {
    /// [`EuclideanFromMean`] — the paper's choice.
    #[default]
    Euclidean,
    /// [`Variance`].
    Variance,
    /// [`CoefficientOfVariation`].
    Cv,
    /// [`MeanAbsoluteDeviation`].
    Mad,
    /// [`MaxExcess`].
    MaxExcess,
    /// [`Range`].
    Range,
    /// [`Gini`].
    Gini,
    /// [`Theil`].
    Theil,
    /// [`Atkinson`].
    Atkinson,
}

impl DispersionKind {
    /// All provided kinds.
    pub const ALL: [DispersionKind; 9] = [
        DispersionKind::Euclidean,
        DispersionKind::Variance,
        DispersionKind::Cv,
        DispersionKind::Mad,
        DispersionKind::MaxExcess,
        DispersionKind::Range,
        DispersionKind::Gini,
        DispersionKind::Theil,
        DispersionKind::Atkinson,
    ];
}

impl DispersionIndex for DispersionKind {
    fn name(&self) -> &'static str {
        match self {
            DispersionKind::Euclidean => EuclideanFromMean.name(),
            DispersionKind::Variance => Variance.name(),
            DispersionKind::Cv => CoefficientOfVariation.name(),
            DispersionKind::Mad => MeanAbsoluteDeviation.name(),
            DispersionKind::MaxExcess => MaxExcess.name(),
            DispersionKind::Range => Range.name(),
            DispersionKind::Gini => Gini.name(),
            DispersionKind::Theil => Theil.name(),
            DispersionKind::Atkinson => Atkinson.name(),
        }
    }

    fn index(&self, data: &[f64]) -> Result<f64, StatsError> {
        match self {
            DispersionKind::Euclidean => EuclideanFromMean.index(data),
            DispersionKind::Variance => Variance.index(data),
            DispersionKind::Cv => CoefficientOfVariation.index(data),
            DispersionKind::Mad => MeanAbsoluteDeviation.index(data),
            DispersionKind::MaxExcess => MaxExcess.index(data),
            DispersionKind::Range => Range.index(data),
            DispersionKind::Gini => Gini.index(data),
            DispersionKind::Theil => Theil.index(data),
            DispersionKind::Atkinson => Atkinson.index(data),
        }
    }
}

impl fmt::Display for DispersionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Euclidean distance between two equal-length vectors — the building block
/// of the paper's processor view, where each processor's standardized
/// activity mix is compared with the average mix.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] when the slices differ in length
/// and [`StatsError::EmptyData`] when they are empty.
///
/// # Example
///
/// ```
/// let d = limba_stats::dispersion::euclidean_distance(&[0.0, 3.0], &[4.0, 0.0]).unwrap();
/// assert_eq!(d, 5.0);
/// ```
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> Result<f64, StatsError> {
    if a.len() != b.len() {
        return Err(StatsError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.is_empty() {
        return Err(StatsError::EmptyData);
    }
    Ok(a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).powi(2))
        .sum::<f64>()
        .sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn all_indices_are_zero_at_perfect_balance() {
        let balanced = [3.0; 8];
        for kind in DispersionKind::ALL {
            let v = kind.index(&balanced).unwrap();
            assert!(v.abs() < EPS, "{kind} gave {v} on balanced data");
        }
    }

    #[test]
    fn euclidean_reaches_documented_maximum() {
        let mut data = vec![0.0; 16];
        data[0] = 7.0;
        let id = EuclideanFromMean.index(&data).unwrap();
        assert!((id - EuclideanFromMean::max_for(16)).abs() < EPS);
    }

    #[test]
    fn euclidean_is_scale_invariant() {
        let a = [1.0, 2.0, 3.0, 10.0];
        let b: Vec<f64> = a.iter().map(|v| v * 123.456).collect();
        let ia = EuclideanFromMean.index(&a).unwrap();
        let ib = EuclideanFromMean.index(&b).unwrap();
        assert!((ia - ib).abs() < EPS);
    }

    #[test]
    fn concentration_on_fewer_processors_increases_euclidean() {
        // m processors sharing all work equally: ID = sqrt(1/m - 1/P).
        let p = 16;
        let mut last = -1.0;
        for m in (1..=p).rev() {
            let mut data = vec![0.0; p];
            for v in data.iter_mut().take(m) {
                *v = 1.0;
            }
            let id = EuclideanFromMean.index(&data).unwrap();
            let expected = (1.0 / m as f64 - 1.0 / p as f64).sqrt();
            assert!((id - expected).abs() < EPS, "m={m}: {id} vs {expected}");
            assert!(id > last);
            last = id;
        }
    }

    #[test]
    fn variance_is_squared_euclidean_over_n() {
        let data = [1.0, 4.0, 2.0, 9.0];
        let e = EuclideanFromMean.index(&data).unwrap();
        let v = Variance.index(&data).unwrap();
        assert!((v - e * e / data.len() as f64).abs() < EPS);
    }

    #[test]
    fn cv_matches_raw_cv() {
        let data = [2.0, 4.0, 6.0, 8.0];
        let mean = 5.0;
        let var = data.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / 4.0;
        let raw_cv = var.sqrt() / mean;
        let cv = CoefficientOfVariation.index(&data).unwrap();
        assert!((cv - raw_cv).abs() < EPS);
    }

    #[test]
    fn theil_known_values() {
        // Perfect balance → 0; total concentration on one of n → ln n.
        assert!(Theil.index(&[2.0; 8]).unwrap().abs() < EPS);
        let mut conc = vec![0.0; 8];
        conc[3] = 5.0;
        assert!((Theil.index(&conc).unwrap() - 8.0f64.ln()).abs() < EPS);
        // Two-point distribution [3μ, μ]: T = (1/2)(1.5 ln 1.5 + 0.5 ln 0.5).
        let expected = 0.5 * (1.5 * 1.5f64.ln() + 0.5 * 0.5f64.ln());
        assert!((Theil.index(&[3.0, 1.0]).unwrap() - expected).abs() < EPS);
    }

    #[test]
    fn atkinson_known_values() {
        assert!(Atkinson.index(&[2.0; 8]).unwrap().abs() < EPS);
        // Total concentration on one of n: 1 − ((1/n)·sqrt(n))² = 1 − 1/n.
        let mut conc = vec![0.0; 4];
        conc[0] = 1.0;
        assert!((Atkinson.index(&conc).unwrap() - 0.75).abs() < EPS);
        // Bounded in [0, 1).
        let a = Atkinson.index(&[9.0, 1.0, 0.1, 0.0]).unwrap();
        assert!((0.0..1.0).contains(&a));
    }

    #[test]
    fn gini_known_values() {
        // Perfect inequality over n elements: G = (n-1)/n.
        let mut data = vec![0.0; 5];
        data[2] = 3.0;
        let g = Gini.index(&data).unwrap();
        assert!((g - 0.8).abs() < EPS);
        // Two equal halves of [0, x]: G = 1/4 for [0,0,1,1]? compute: sorted
        // x=[0,0,.5,.5], G = (2*(3*.5+4*.5)-5)/4 = (7-5)/4 = 0.5... use direct formula instead.
        let g2 = Gini.index(&[1.0, 1.0, 1.0, 3.0]).unwrap();
        assert!(g2 > 0.0 && g2 < 1.0);
    }

    #[test]
    fn range_and_max_excess() {
        let data = [0.0, 1.0, 3.0]; // standardized: 0, .25, .75
        assert!((Range.index(&data).unwrap() - 0.75).abs() < EPS);
        assert!((MaxExcess.index(&data).unwrap() - (0.75 - 1.0 / 3.0)).abs() < EPS);
    }

    #[test]
    fn mad_known_value() {
        let data = [0.0, 2.0]; // standardized 0,1; mean .5; MAD = .5
        assert!((MeanAbsoluteDeviation.index(&data).unwrap() - 0.5).abs() < EPS);
    }

    #[test]
    fn indices_reject_bad_input() {
        for kind in DispersionKind::ALL {
            assert!(kind.index(&[]).is_err());
            assert!(kind.index(&[0.0, 0.0]).is_err());
            assert!(kind.index(&[1.0, -1.0]).is_err());
        }
    }

    #[test]
    fn euclidean_distance_basics() {
        assert_eq!(euclidean_distance(&[0.0], &[0.0]).unwrap(), 0.0);
        assert!(matches!(
            euclidean_distance(&[1.0], &[1.0, 2.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            euclidean_distance(&[], &[]),
            Err(StatsError::EmptyData)
        ));
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<&str> = DispersionKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), DispersionKind::ALL.len());
    }
}
