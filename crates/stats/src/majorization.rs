//! Majorization theory (Marshall & Olkin).
//!
//! The paper grounds its metrics in "the majorization theory \[8\], which
//! provides a framework for measuring the spread of data sets … based on
//! the definition of indices for partially ordering data sets according to
//! the dissimilarities among their elements."
//!
//! For unit-sum vectors `x` and `y` of equal length, `x` is *majorized* by
//! `y` (written `x ≺ y`, "y is more spread out than x") when every prefix
//! sum of the descending rearrangement of `x` is bounded by the matching
//! prefix sum of `y`. Perfect balance `(1/n, …, 1/n)` is the minimum of the
//! order; total concentration `(1, 0, …, 0)` the maximum. Schur-convex
//! functions — all indices in [`dispersion`](crate::dispersion) — are
//! exactly the functions monotone with respect to `≺`, which is why those
//! indices are sound measures of load imbalance.

use crate::standardize::to_unit_sum;
use crate::StatsError;

/// Result of comparing two data sets under the majorization partial order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MajorizationOrder {
    /// The data sets have the same descending rearrangement.
    Equal,
    /// The left data set is majorized by the right (`left ≺ right`): the
    /// right is more spread out.
    LessSpread,
    /// The right data set is majorized by the left: the left is more
    /// spread out.
    MoreSpread,
    /// The data sets are incomparable (the order is only partial).
    Incomparable,
}

fn descending_standardized(data: &[f64]) -> Result<Vec<f64>, StatsError> {
    let mut x = to_unit_sum(data)?;
    x.sort_by(|a, b| b.total_cmp(a));
    Ok(x)
}

/// Compares two non-negative data sets under majorization after
/// standardizing both to sum one.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] when lengths differ, plus the
/// standardization errors of [`to_unit_sum`].
///
/// # Example
///
/// ```
/// use limba_stats::majorization::{compare, MajorizationOrder};
/// let balanced = [1.0, 1.0, 1.0, 1.0];
/// let skewed = [4.0, 0.0, 0.0, 0.0];
/// assert_eq!(compare(&balanced, &skewed).unwrap(), MajorizationOrder::LessSpread);
/// ```
pub fn compare(left: &[f64], right: &[f64]) -> Result<MajorizationOrder, StatsError> {
    if left.len() != right.len() {
        return Err(StatsError::LengthMismatch {
            left: left.len(),
            right: right.len(),
        });
    }
    let a = descending_standardized(left)?;
    let b = descending_standardized(right)?;
    const EPS: f64 = 1e-12;
    let mut a_below = true; // prefix sums of a ≤ prefix sums of b
    let mut b_below = true;
    let (mut pa, mut pb) = (0.0, 0.0);
    for (&x, &y) in a.iter().zip(&b) {
        pa += x;
        pb += y;
        if pa > pb + EPS {
            a_below = false;
        }
        if pb > pa + EPS {
            b_below = false;
        }
    }
    Ok(match (a_below, b_below) {
        (true, true) => MajorizationOrder::Equal,
        (true, false) => MajorizationOrder::LessSpread,
        (false, true) => MajorizationOrder::MoreSpread,
        (false, false) => MajorizationOrder::Incomparable,
    })
}

/// Returns `true` when `left ≺ right` (right at least as spread out),
/// i.e. [`compare`] yields `Equal` or `LessSpread`.
///
/// # Errors
///
/// Same conditions as [`compare`].
pub fn is_majorized_by(left: &[f64], right: &[f64]) -> Result<bool, StatsError> {
    Ok(matches!(
        compare(left, right)?,
        MajorizationOrder::Equal | MajorizationOrder::LessSpread
    ))
}

/// Points of the Lorenz curve of `data` after standardization: the `k`-th
/// point is `(k/n, S_k)` where `S_k` is the sum of the `k` smallest
/// standardized elements. A curve closer to the diagonal means better
/// balance; `x ≺ y` iff the Lorenz curve of `x` lies (weakly) above that
/// of `y`.
///
/// The returned vector has `n + 1` points including `(0, 0)` and `(1, 1)`.
///
/// # Errors
///
/// Standardization errors of [`to_unit_sum`].
pub fn lorenz_curve(data: &[f64]) -> Result<Vec<(f64, f64)>, StatsError> {
    let mut x = to_unit_sum(data)?;
    x.sort_by(f64::total_cmp);
    let n = x.len() as f64;
    let mut points = Vec::with_capacity(x.len() + 1);
    points.push((0.0, 0.0));
    let mut acc = 0.0;
    for (k, &v) in x.iter().enumerate() {
        acc += v;
        points.push(((k as f64 + 1.0) / n, acc));
    }
    Ok(points)
}

/// Applies a *T-transform* (Robin Hood operation) moving `amount` from the
/// larger of elements `i`, `j` toward the smaller. T-transforms generate
/// the majorization order: the result is always majorized by the input.
///
/// # Errors
///
/// Returns [`StatsError::InvalidValue`] when `amount` is negative,
/// non-finite, or exceeds half the gap between the two elements (which
/// would overshoot the balanced point), and [`StatsError::EmptyData`] when
/// either index is out of range.
///
/// # Example
///
/// ```
/// use limba_stats::majorization::{is_majorized_by, t_transform};
/// let y = [6.0, 2.0];
/// let x = t_transform(&y, 0, 1, 1.0).unwrap(); // [5, 3]
/// assert_eq!(x, vec![5.0, 3.0]);
/// assert!(is_majorized_by(&x, &y).unwrap());
/// ```
pub fn t_transform(data: &[f64], i: usize, j: usize, amount: f64) -> Result<Vec<f64>, StatsError> {
    if i >= data.len() || j >= data.len() {
        return Err(StatsError::EmptyData);
    }
    if !amount.is_finite() || amount < 0.0 {
        return Err(StatsError::InvalidValue { value: amount });
    }
    let gap = (data[i] - data[j]).abs();
    if amount > gap / 2.0 + 1e-15 {
        return Err(StatsError::InvalidValue { value: amount });
    }
    let mut out = data.to_vec();
    if out[i] >= out[j] {
        out[i] -= amount;
        out[j] += amount;
    } else {
        out[j] -= amount;
        out[i] += amount;
    }
    Ok(out)
}

/// Compares two non-negative data sets under *weak submajorization*
/// (`x ≺_w y`): every prefix sum of the descending rearrangement of `x`
/// is bounded by the matching prefix of `y`, *without* requiring equal
/// totals — so the raw (unstandardized) times are compared directly.
/// Returns `true` when `left ≺_w right`.
///
/// Weak majorization is the right order when comparing absolute load
/// vectors of different total volume: if run A's sorted loads are
/// prefix-dominated by run B's, every increasing Schur-convex cost (e.g.
/// makespan, sum of the k largest loads) is no worse in A.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] when lengths differ and
/// [`StatsError::InvalidValue`] for negative or non-finite elements.
///
/// # Example
///
/// ```
/// use limba_stats::majorization::is_weakly_submajorized_by;
/// // Same spread, smaller volume: weakly submajorized.
/// assert!(is_weakly_submajorized_by(&[2.0, 1.0], &[4.0, 2.0]).unwrap());
/// assert!(!is_weakly_submajorized_by(&[4.0, 2.0], &[2.0, 1.0]).unwrap());
/// ```
pub fn is_weakly_submajorized_by(left: &[f64], right: &[f64]) -> Result<bool, StatsError> {
    if left.len() != right.len() {
        return Err(StatsError::LengthMismatch {
            left: left.len(),
            right: right.len(),
        });
    }
    crate::standardize::validate_nonnegative(left)?;
    crate::standardize::validate_nonnegative(right)?;
    let mut a = left.to_vec();
    let mut b = right.to_vec();
    a.sort_by(|x, y| y.total_cmp(x));
    b.sort_by(|x, y| y.total_cmp(x));
    let (mut pa, mut pb) = (0.0, 0.0);
    for (&x, &y) in a.iter().zip(&b) {
        pa += x;
        pb += y;
        if pa > pb + 1e-12 {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Returns `true` when `matrix` (row-major, `n × n`) is doubly
/// stochastic: non-negative entries with every row and column summing to
/// one within `tol`. By the Hardy–Littlewood–Pólya theorem, `x ≺ y`
/// exactly when `x = D·y` for some doubly stochastic `D`.
pub fn is_doubly_stochastic(matrix: &[f64], n: usize, tol: f64) -> bool {
    if matrix.len() != n * n || n == 0 {
        return false;
    }
    if matrix.iter().any(|&v| !v.is_finite() || v < -tol) {
        return false;
    }
    for i in 0..n {
        let row: f64 = matrix[i * n..(i + 1) * n].iter().sum();
        if (row - 1.0).abs() > tol {
            return false;
        }
        let col: f64 = (0..n).map(|j| matrix[j * n + i]).sum();
        if (col - 1.0).abs() > tol {
            return false;
        }
    }
    true
}

/// Applies a doubly stochastic `n × n` matrix (row-major) to `data`,
/// producing a vector majorized by the input — the constructive
/// direction of the Hardy–Littlewood–Pólya theorem.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] when shapes disagree and
/// [`StatsError::InvalidValue`] when `matrix` is not doubly stochastic.
///
/// # Example
///
/// ```
/// use limba_stats::majorization::{apply_doubly_stochastic, is_majorized_by};
/// // Averaging matrix: maximal mixing.
/// let d = vec![0.5, 0.5, 0.5, 0.5];
/// let y = [8.0, 2.0];
/// let x = apply_doubly_stochastic(&d, &y).unwrap();
/// assert_eq!(x, vec![5.0, 5.0]);
/// assert!(is_majorized_by(&x, &y).unwrap());
/// ```
pub fn apply_doubly_stochastic(matrix: &[f64], data: &[f64]) -> Result<Vec<f64>, StatsError> {
    let n = data.len();
    if matrix.len() != n * n {
        return Err(StatsError::LengthMismatch {
            left: matrix.len(),
            right: n * n,
        });
    }
    if !is_doubly_stochastic(matrix, n, 1e-9) {
        return Err(StatsError::InvalidValue { value: f64::NAN });
    }
    Ok((0..n)
        .map(|i| (0..n).map(|j| matrix[i * n + j] * data[j]).sum())
        .collect())
}

/// Checks empirically that `f` is Schur-convex on the given pair: if
/// `x ≺ y` then `f(x) ≤ f(y)` (within `tol`). Returns `None` when the pair
/// is incomparable, `Some(bool)` otherwise.
///
/// Intended for tests of candidate dispersion indices.
///
/// # Errors
///
/// Same conditions as [`compare`].
pub fn respects_majorization<F>(
    f: F,
    x: &[f64],
    y: &[f64],
    tol: f64,
) -> Result<Option<bool>, StatsError>
where
    F: Fn(&[f64]) -> Result<f64, StatsError>,
{
    match compare(x, y)? {
        MajorizationOrder::Incomparable => Ok(None),
        MajorizationOrder::Equal => {
            let (fx, fy) = (f(x)?, f(y)?);
            Ok(Some((fx - fy).abs() <= tol))
        }
        MajorizationOrder::LessSpread => {
            let (fx, fy) = (f(x)?, f(y)?);
            Ok(Some(fx <= fy + tol))
        }
        MajorizationOrder::MoreSpread => {
            let (fx, fy) = (f(x)?, f(y)?);
            Ok(Some(fy <= fx + tol))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispersion::{DispersionIndex, DispersionKind};

    #[test]
    fn balanced_is_minimum_concentrated_is_maximum() {
        let balanced = [1.0; 6];
        let middle = [3.0, 1.0, 1.0, 0.5, 0.3, 0.2];
        let concentrated = [6.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        assert!(is_majorized_by(&balanced, &middle).unwrap());
        assert!(is_majorized_by(&middle, &concentrated).unwrap());
        assert!(is_majorized_by(&balanced, &concentrated).unwrap());
        assert!(!is_majorized_by(&concentrated, &balanced).unwrap());
    }

    #[test]
    fn compare_is_permutation_invariant() {
        let a = [5.0, 1.0, 2.0];
        let b = [1.0, 2.0, 5.0];
        assert_eq!(compare(&a, &b).unwrap(), MajorizationOrder::Equal);
    }

    #[test]
    fn incomparable_pair_detected() {
        // Classic incomparable pair (after standardization by sum 10):
        // x = (6,2,2)/10, y = (5,4,1)/10. Prefix sums: .6 vs .5 (x bigger),
        // .8 vs .9 (y bigger) → incomparable.
        let x = [6.0, 2.0, 2.0];
        let y = [5.0, 4.0, 1.0];
        assert_eq!(compare(&x, &y).unwrap(), MajorizationOrder::Incomparable);
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(matches!(
            compare(&[1.0], &[1.0, 2.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn lorenz_curve_of_balanced_is_diagonal() {
        let pts = lorenz_curve(&[2.0, 2.0, 2.0, 2.0]).unwrap();
        for &(x, y) in &pts {
            assert!((x - y).abs() < 1e-12);
        }
        assert_eq!(pts.first(), Some(&(0.0, 0.0)));
        let (lx, ly) = *pts.last().unwrap();
        assert!((lx - 1.0).abs() < 1e-12 && (ly - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lorenz_curve_is_below_diagonal_for_imbalanced() {
        let pts = lorenz_curve(&[1.0, 1.0, 6.0]).unwrap();
        // Interior points strictly below the diagonal.
        for &(x, y) in &pts[1..pts.len() - 1] {
            assert!(y < x);
        }
    }

    #[test]
    fn t_transform_reduces_spread() {
        let y = [8.0, 4.0, 0.0];
        let x = t_transform(&y, 0, 2, 2.0).unwrap();
        assert_eq!(x, vec![6.0, 4.0, 2.0]);
        assert_eq!(compare(&x, &y).unwrap(), MajorizationOrder::LessSpread);
    }

    #[test]
    fn t_transform_validates() {
        let y = [8.0, 0.0];
        assert!(t_transform(&y, 0, 5, 1.0).is_err());
        assert!(t_transform(&y, 0, 1, -1.0).is_err());
        assert!(t_transform(&y, 0, 1, 5.0).is_err()); // overshoots balance
                                                      // Exactly reaching balance is allowed.
        assert_eq!(t_transform(&y, 0, 1, 4.0).unwrap(), vec![4.0, 4.0]);
        // Direction is automatic.
        assert_eq!(t_transform(&[0.0, 8.0], 0, 1, 4.0).unwrap(), vec![4.0, 4.0]);
    }

    #[test]
    fn all_dispersion_indices_are_schur_convex_on_t_transform_chains() {
        let y = [10.0, 5.0, 3.0, 1.0, 1.0, 0.0];
        let x = t_transform(&y, 0, 5, 3.0).unwrap();
        let w = t_transform(&x, 0, 3, 1.5).unwrap();
        for kind in DispersionKind::ALL {
            let f = |d: &[f64]| kind.index(d);
            assert_eq!(respects_majorization(f, &x, &y, 1e-12).unwrap(), Some(true));
            assert_eq!(respects_majorization(f, &w, &x, 1e-12).unwrap(), Some(true));
            assert_eq!(respects_majorization(f, &w, &y, 1e-12).unwrap(), Some(true));
        }
    }

    #[test]
    fn weak_submajorization_ignores_totals() {
        // Standard majorization requires equal sums after normalization;
        // weak handles different volumes directly.
        assert!(is_weakly_submajorized_by(&[1.0, 1.0], &[3.0, 1.0]).unwrap());
        assert!(!is_weakly_submajorized_by(&[3.0, 1.0], &[1.0, 1.0]).unwrap());
        // Equal vectors are weakly comparable both ways.
        assert!(is_weakly_submajorized_by(&[2.0, 2.0], &[2.0, 2.0]).unwrap());
        // Regular majorization implies weak for equal totals.
        assert!(is_weakly_submajorized_by(&[2.0, 2.0], &[4.0, 0.0]).unwrap());
        assert!(is_weakly_submajorized_by(&[], &[]).is_err()); // empty data rejected
        assert!(is_weakly_submajorized_by(&[1.0], &[1.0, 2.0]).is_err());
        assert!(is_weakly_submajorized_by(&[-1.0], &[1.0]).is_err());
    }

    #[test]
    fn doubly_stochastic_checks() {
        let identity = vec![1.0, 0.0, 0.0, 1.0];
        assert!(is_doubly_stochastic(&identity, 2, 1e-12));
        let average = vec![0.5, 0.5, 0.5, 0.5];
        assert!(is_doubly_stochastic(&average, 2, 1e-12));
        let rows_only = vec![1.0, 0.0, 1.0, 0.0]; // columns broken
        assert!(!is_doubly_stochastic(&rows_only, 2, 1e-12));
        assert!(!is_doubly_stochastic(&[1.0], 2, 1e-12)); // wrong shape
        assert!(!is_doubly_stochastic(&[], 0, 1e-12));
        assert!(!is_doubly_stochastic(&[2.0, -1.0, -1.0, 2.0], 2, 1e-12));
    }

    #[test]
    fn hlp_theorem_constructive_direction() {
        // Any convex combination of permutation matrices mixes toward
        // balance: the result is majorized by the input.
        let d = vec![
            0.7, 0.2, 0.1, //
            0.2, 0.6, 0.2, //
            0.1, 0.2, 0.7,
        ];
        assert!(is_doubly_stochastic(&d, 3, 1e-12));
        let y = [9.0, 3.0, 0.0];
        let x = apply_doubly_stochastic(&d, &y).unwrap();
        assert!(is_majorized_by(&x, &y).unwrap());
        // Totals are preserved.
        assert!((x.iter().sum::<f64>() - 12.0).abs() < 1e-12);
        // A non-DS matrix is rejected.
        assert!(apply_doubly_stochastic(&[1.0, 1.0, 1.0, 1.0], &y[..2]).is_err());
        assert!(apply_doubly_stochastic(&d, &y[..2]).is_err());
    }

    #[test]
    fn respects_majorization_returns_none_for_incomparable() {
        let f = |d: &[f64]| DispersionKind::Euclidean.index(d);
        let r = respects_majorization(f, &[6.0, 2.0, 2.0], &[5.0, 4.0, 1.0], 1e-12).unwrap();
        assert_eq!(r, None);
    }
}
