//! Property-based tests for the statistical core.

use limba_stats::dispersion::{DispersionIndex, DispersionKind, EuclideanFromMean};
use limba_stats::majorization::{
    compare, is_majorized_by, lorenz_curve, respects_majorization, t_transform, MajorizationOrder,
};
use limba_stats::standardize::to_unit_sum;
use proptest::prelude::*;

/// Non-negative data sets with at least one strictly positive element.
fn positive_data(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1e6, 2..max_len)
        .prop_filter("needs a positive element", |v| v.iter().sum::<f64>() > 1e-9)
}

proptest! {
    #[test]
    fn standardized_data_sums_to_one(data in positive_data(64)) {
        let s = to_unit_sum(&data).unwrap();
        prop_assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for v in s {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        }
    }

    #[test]
    fn euclidean_index_is_within_theoretical_bounds(data in positive_data(64)) {
        let id = EuclideanFromMean.index(&data).unwrap();
        prop_assert!(id >= -1e-12);
        prop_assert!(id <= EuclideanFromMean::max_for(data.len()) + 1e-9);
    }

    #[test]
    fn all_indices_are_scale_invariant(data in positive_data(32), scale in 1e-3f64..1e3) {
        let scaled: Vec<f64> = data.iter().map(|v| v * scale).collect();
        for kind in DispersionKind::ALL {
            let a = kind.index(&data).unwrap();
            let b = kind.index(&scaled).unwrap();
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{kind}: {a} vs {b}");
        }
    }

    #[test]
    fn all_indices_are_permutation_invariant(data in positive_data(32), seed in 0u64..1000) {
        // Deterministic shuffle driven by the seed.
        let mut permuted = data.clone();
        let n = permuted.len();
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        for i in (1..n).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state % (i as u64 + 1)) as usize;
            permuted.swap(i, j);
        }
        for kind in DispersionKind::ALL {
            let a = kind.index(&data).unwrap();
            let b = kind.index(&permuted).unwrap();
            prop_assert!((a - b).abs() < 1e-9, "{kind}: {a} vs {b}");
        }
    }

    #[test]
    fn t_transform_never_increases_any_index(
        data in positive_data(16),
        i in 0usize..16,
        j in 0usize..16,
        frac in 0.0f64..=1.0,
    ) {
        let i = i % data.len();
        let j = j % data.len();
        prop_assume!(i != j);
        let gap = (data[i] - data[j]).abs();
        prop_assume!(gap > 1e-9);
        let amount = gap / 2.0 * frac;
        let moved = t_transform(&data, i, j, amount).unwrap();
        for kind in DispersionKind::ALL {
            let before = kind.index(&data).unwrap();
            let after = kind.index(&moved).unwrap();
            prop_assert!(after <= before + 1e-9, "{kind}: {after} > {before}");
        }
    }

    #[test]
    fn majorization_is_reflexive_and_antisymmetric_up_to_permutation(data in positive_data(16)) {
        prop_assert_eq!(compare(&data, &data).unwrap(), MajorizationOrder::Equal);
        let mut sorted = data.clone();
        sorted.sort_by(f64::total_cmp);
        prop_assert_eq!(compare(&data, &sorted).unwrap(), MajorizationOrder::Equal);
    }

    #[test]
    fn everything_majorizes_balanced_and_is_majorized_by_concentrated(data in positive_data(16)) {
        let n = data.len();
        let balanced = vec![1.0; n];
        let mut concentrated = vec![0.0; n];
        concentrated[0] = 1.0;
        prop_assert!(is_majorized_by(&balanced, &data).unwrap());
        prop_assert!(is_majorized_by(&data, &concentrated).unwrap());
    }

    #[test]
    fn lorenz_curve_is_monotone_and_convex(data in positive_data(32)) {
        let pts = lorenz_curve(&data).unwrap();
        for w in pts.windows(2) {
            prop_assert!(w[1].1 >= w[0].1 - 1e-12); // monotone
            prop_assert!(w[1].1 <= w[1].0 + 1e-9);  // below the diagonal
        }
        // Convexity: increments are non-decreasing (sorted ascending).
        let mut last = -1e-12;
        for w in pts.windows(2) {
            let inc = w[1].1 - w[0].1;
            prop_assert!(inc >= last - 1e-9);
            last = inc;
        }
    }

    #[test]
    fn dispersion_indices_respect_majorization(
        (a, b) in (2usize..12).prop_flat_map(|n| {
            let one = proptest::collection::vec(0.0f64..1e6, n)
                .prop_filter("needs a positive element", |v| v.iter().sum::<f64>() > 1e-9);
            (one.clone(), one)
        }),
    ) {
        for kind in DispersionKind::ALL {
            let f = |d: &[f64]| kind.index(d);
            if let Some(ok) = respects_majorization(f, &a, &b, 1e-9).unwrap() {
                prop_assert!(ok, "{kind} violated Schur-convexity");
            }
        }
    }
}
