//! k-means clustering for code-region characterization.
//!
//! The paper summarizes the behaviour of code regions by clustering them in
//! the `K`-dimensional space of their per-activity wall-clock times: "Each
//! code region i is described by its wall clock times t_ij and is
//! represented in a K-dimensional space. Clustering partitions this space
//! into groups of code regions with homogeneous characteristics such that
//! the candidates for possible tuning are identified." The case study uses
//! the k-means algorithm of Hartigan's *Clustering Algorithms*.
//!
//! This crate implements Lloyd-style k-means with Forgy or k-means++
//! initialization, deterministic seeding, and the usual internal quality
//! measures (within-cluster sum of squares, silhouette, Calinski–Harabasz).
//!
//! # Example
//!
//! ```
//! use limba_cluster::{KMeans, KMeansConfig};
//!
//! // Two obvious groups on the line.
//! let points = vec![vec![0.0], vec![0.2], vec![10.0], vec![10.3]];
//! let result = KMeans::new(KMeansConfig::new(2).with_seed(7)).fit(&points).unwrap();
//! assert_eq!(result.assignments[0], result.assignments[1]);
//! assert_eq!(result.assignments[2], result.assignments[3]);
//! assert_ne!(result.assignments[0], result.assignments[2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assess;
mod distance;
mod error;
mod init;
mod kmeans;

pub use assess::{calinski_harabasz, silhouette, within_cluster_sum_of_squares};
pub use distance::{squared_euclidean, Standardizer};
pub use error::ClusterError;
pub use init::InitMethod;
pub use kmeans::{KMeans, KMeansConfig, KMeansResult};
