//! Centroid initialization strategies.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::distance::squared_euclidean;

/// How initial centroids are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InitMethod {
    /// k-means++: spread seeds with probability proportional to squared
    /// distance from the nearest already-chosen seed. Default.
    #[default]
    KMeansPlusPlus,
    /// Forgy: pick `k` distinct points uniformly at random.
    Forgy,
}

impl InitMethod {
    /// Chooses `k` initial centroids from `points`.
    ///
    /// Callers guarantee `1 <= k <= points.len()` and validated points.
    pub(crate) fn choose<R: Rng>(
        self,
        points: &[Vec<f64>],
        k: usize,
        rng: &mut R,
    ) -> Vec<Vec<f64>> {
        match self {
            InitMethod::Forgy => {
                let mut idx: Vec<usize> = (0..points.len()).collect();
                idx.shuffle(rng);
                idx.truncate(k);
                idx.into_iter().map(|i| points[i].clone()).collect()
            }
            InitMethod::KMeansPlusPlus => {
                let mut centroids = Vec::with_capacity(k);
                let first = rng.gen_range(0..points.len());
                centroids.push(points[first].clone());
                let mut d2: Vec<f64> = points
                    .iter()
                    .map(|p| squared_euclidean(p, &centroids[0]))
                    .collect();
                while centroids.len() < k {
                    let total: f64 = d2.iter().sum();
                    let next = if total <= 0.0 {
                        // All remaining points coincide with a centroid;
                        // fall back to an arbitrary point.
                        rng.gen_range(0..points.len())
                    } else {
                        let mut target = rng.gen_range(0.0..total);
                        let mut chosen = points.len() - 1;
                        for (i, &d) in d2.iter().enumerate() {
                            if target < d {
                                chosen = i;
                                break;
                            }
                            target -= d;
                        }
                        chosen
                    };
                    centroids.push(points[next].clone());
                    let newest = centroids.last().expect("just pushed");
                    for (d, p) in d2.iter_mut().zip(points) {
                        let nd = squared_euclidean(p, newest);
                        if nd < *d {
                            *d = nd;
                        }
                    }
                }
                centroids
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid() -> Vec<Vec<f64>> {
        (0..10).map(|i| vec![i as f64]).collect()
    }

    #[test]
    fn forgy_picks_distinct_points() {
        let pts = grid();
        let mut rng = StdRng::seed_from_u64(1);
        let c = InitMethod::Forgy.choose(&pts, 4, &mut rng);
        assert_eq!(c.len(), 4);
        for i in 0..c.len() {
            for j in i + 1..c.len() {
                assert_ne!(c[i], c[j]);
            }
        }
    }

    #[test]
    fn plus_plus_picks_k_centroids() {
        let pts = grid();
        let mut rng = StdRng::seed_from_u64(2);
        let c = InitMethod::KMeansPlusPlus.choose(&pts, 3, &mut rng);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn plus_plus_handles_duplicate_points() {
        let pts = vec![vec![1.0]; 5];
        let mut rng = StdRng::seed_from_u64(3);
        let c = InitMethod::KMeansPlusPlus.choose(&pts, 3, &mut rng);
        assert_eq!(c.len(), 3);
        for cc in &c {
            assert_eq!(cc, &vec![1.0]);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts = grid();
        let a = InitMethod::KMeansPlusPlus.choose(&pts, 3, &mut StdRng::seed_from_u64(9));
        let b = InitMethod::KMeansPlusPlus.choose(&pts, 3, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
