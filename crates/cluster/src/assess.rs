//! Internal cluster-quality measures.

use crate::distance::{squared_euclidean, validate_points};
use crate::ClusterError;

fn centroid_of(points: &[Vec<f64>], members: &[usize], dim: usize) -> Vec<f64> {
    let mut c = vec![0.0; dim];
    for &i in members {
        for (s, &v) in c.iter_mut().zip(&points[i]) {
            *s += v;
        }
    }
    for s in &mut c {
        *s /= members.len() as f64;
    }
    c
}

fn clusters_of(assignments: &[usize]) -> Vec<Vec<usize>> {
    let k = assignments
        .iter()
        .copied()
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);
    let mut clusters = vec![Vec::new(); k];
    for (i, &a) in assignments.iter().enumerate() {
        clusters[a].push(i);
    }
    clusters
}

fn validate_pair(points: &[Vec<f64>], assignments: &[usize]) -> Result<usize, ClusterError> {
    let dim = validate_points(points)?;
    if assignments.len() != points.len() {
        return Err(ClusterError::DimensionMismatch {
            expected: points.len(),
            found: assignments.len(),
        });
    }
    Ok(dim)
}

/// Within-cluster sum of squared distances to cluster centroids.
///
/// # Errors
///
/// Returns an error when points are invalid or `assignments` does not have
/// one label per point.
pub fn within_cluster_sum_of_squares(
    points: &[Vec<f64>],
    assignments: &[usize],
) -> Result<f64, ClusterError> {
    let dim = validate_pair(points, assignments)?;
    let mut total = 0.0;
    for members in clusters_of(assignments) {
        if members.is_empty() {
            continue;
        }
        let c = centroid_of(points, &members, dim);
        for &i in &members {
            total += squared_euclidean(&points[i], &c);
        }
    }
    Ok(total)
}

/// Mean silhouette coefficient over all points, in `[-1, 1]`; larger means
/// better-separated clusters. Points in singleton clusters contribute `0`.
///
/// # Errors
///
/// Same conditions as [`within_cluster_sum_of_squares`].
pub fn silhouette(points: &[Vec<f64>], assignments: &[usize]) -> Result<f64, ClusterError> {
    validate_pair(points, assignments)?;
    let clusters = clusters_of(assignments);
    let occupied = clusters.iter().filter(|c| !c.is_empty()).count();
    if occupied < 2 {
        // Silhouette is undefined for a single cluster; report 0.
        return Ok(0.0);
    }
    let n = points.len();
    let mut total = 0.0;
    for i in 0..n {
        let own = assignments[i];
        if clusters[own].len() <= 1 {
            continue; // contributes 0
        }
        // a(i): mean distance to own cluster (excluding self).
        let a: f64 = clusters[own]
            .iter()
            .filter(|&&j| j != i)
            .map(|&j| squared_euclidean(&points[i], &points[j]).sqrt())
            .sum::<f64>()
            / (clusters[own].len() - 1) as f64;
        // b(i): smallest mean distance to another cluster.
        let mut b = f64::INFINITY;
        for (c, members) in clusters.iter().enumerate() {
            if c == own || members.is_empty() {
                continue;
            }
            let d: f64 = members
                .iter()
                .map(|&j| squared_euclidean(&points[i], &points[j]).sqrt())
                .sum::<f64>()
                / members.len() as f64;
            b = b.min(d);
        }
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    Ok(total / n as f64)
}

/// Calinski–Harabasz index (variance-ratio criterion); larger is better.
/// Returns `0` when there are fewer than two occupied clusters or fewer
/// points than clusters.
///
/// # Errors
///
/// Same conditions as [`within_cluster_sum_of_squares`].
pub fn calinski_harabasz(points: &[Vec<f64>], assignments: &[usize]) -> Result<f64, ClusterError> {
    let dim = validate_pair(points, assignments)?;
    let clusters: Vec<Vec<usize>> = clusters_of(assignments)
        .into_iter()
        .filter(|c| !c.is_empty())
        .collect();
    let k = clusters.len();
    let n = points.len();
    if k < 2 || n <= k {
        return Ok(0.0);
    }
    let all: Vec<usize> = (0..n).collect();
    let global = centroid_of(points, &all, dim);
    let mut between = 0.0;
    let mut within = 0.0;
    for members in &clusters {
        let c = centroid_of(points, members, dim);
        between += members.len() as f64 * squared_euclidean(&c, &global);
        for &i in members {
            within += squared_euclidean(&points[i], &c);
        }
    }
    if within == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok((between / (k - 1) as f64) / (within / (n - k) as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let points = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![9.0, 9.0],
            vec![9.1, 9.0],
            vec![9.0, 9.1],
        ];
        let assignments = vec![0, 0, 0, 1, 1, 1];
        (points, assignments)
    }

    #[test]
    fn wcss_of_tight_clusters_is_small() {
        let (pts, asg) = blobs();
        let w = within_cluster_sum_of_squares(&pts, &asg).unwrap();
        assert!(w < 0.1, "wcss = {w}");
        // Everything in one cluster is much worse.
        let one = within_cluster_sum_of_squares(&pts, &[0; 6]).unwrap();
        assert!(one > 50.0);
    }

    #[test]
    fn silhouette_high_for_good_split_low_for_bad() {
        let (pts, asg) = blobs();
        let good = silhouette(&pts, &asg).unwrap();
        assert!(good > 0.9, "good = {good}");
        let bad = silhouette(&pts, &[0, 1, 0, 1, 0, 1]).unwrap();
        assert!(bad < good);
    }

    #[test]
    fn silhouette_single_cluster_is_zero() {
        let (pts, _) = blobs();
        assert_eq!(silhouette(&pts, &[0; 6]).unwrap(), 0.0);
    }

    #[test]
    fn calinski_harabasz_prefers_true_split() {
        let (pts, asg) = blobs();
        let good = calinski_harabasz(&pts, &asg).unwrap();
        let bad = calinski_harabasz(&pts, &[0, 1, 0, 1, 0, 1]).unwrap();
        assert!(good > bad);
        assert_eq!(calinski_harabasz(&pts, &[0; 6]).unwrap(), 0.0);
    }

    #[test]
    fn ch_is_infinite_for_zero_within_variance() {
        let pts = vec![vec![0.0], vec![0.0], vec![5.0], vec![5.0]];
        let ch = calinski_harabasz(&pts, &[0, 0, 1, 1]).unwrap();
        assert!(ch.is_infinite());
    }

    #[test]
    fn mismatched_assignments_rejected() {
        let (pts, _) = blobs();
        assert!(within_cluster_sum_of_squares(&pts, &[0, 1]).is_err());
        assert!(silhouette(&pts, &[0]).is_err());
        assert!(calinski_harabasz(&pts, &[]).is_err());
    }

    #[test]
    fn singleton_cluster_contributes_zero_silhouette() {
        let pts = vec![vec![0.0], vec![0.1], vec![9.0]];
        let s = silhouette(&pts, &[0, 0, 1]).unwrap();
        // Two of three points have well-defined coefficients near 1.
        assert!(s > 0.5 && s < 1.0);
    }
}
