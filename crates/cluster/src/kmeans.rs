//! Lloyd-style k-means with restarts.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::distance::{squared_euclidean, validate_points};
use crate::{ClusterError, InitMethod};

/// Configuration of a k-means run.
///
/// # Example
///
/// ```
/// use limba_cluster::{InitMethod, KMeansConfig};
/// let cfg = KMeansConfig::new(3)
///     .with_seed(42)
///     .with_restarts(8)
///     .with_max_iterations(200)
///     .with_init(InitMethod::Forgy);
/// assert_eq!(cfg.k(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    k: usize,
    max_iterations: usize,
    restarts: usize,
    tolerance: f64,
    seed: u64,
    init: InitMethod,
}

impl KMeansConfig {
    /// Creates a configuration for `k` clusters with library defaults
    /// (100 iterations, 4 restarts, k-means++ init, seed 0).
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            max_iterations: 100,
            restarts: 4,
            tolerance: 1e-9,
            seed: 0,
            init: InitMethod::default(),
        }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Sets the RNG seed, making the run deterministic.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the iteration cap per restart.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n.max(1);
        self
    }

    /// Sets the number of independent restarts; the best run (lowest WCSS)
    /// wins.
    pub fn with_restarts(mut self, n: usize) -> Self {
        self.restarts = n.max(1);
        self
    }

    /// Sets the convergence tolerance on centroid movement.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol.max(0.0);
        self
    }

    /// Sets the initialization method.
    pub fn with_init(mut self, init: InitMethod) -> Self {
        self.init = init;
        self
    }
}

/// Result of a k-means fit.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster index of each input point, in input order.
    pub assignments: Vec<usize>,
    /// Final centroids, `k × dim`.
    pub centroids: Vec<Vec<f64>>,
    /// Within-cluster sum of squared distances of the winning restart.
    pub wcss: f64,
    /// Iterations used by the winning restart.
    pub iterations: usize,
}

impl KMeansResult {
    /// Members of cluster `c` as point indices.
    pub fn cluster_members(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == c)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }
}

/// The k-means algorithm (Lloyd iterations, several restarts).
#[derive(Debug, Clone)]
pub struct KMeans {
    config: KMeansConfig,
}

impl KMeans {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: KMeansConfig) -> Self {
        KMeans { config }
    }

    /// Clusters `points` into `k` groups.
    ///
    /// # Errors
    ///
    /// Returns an error when `points` is empty, inconsistent, non-finite,
    /// or `k` is zero or larger than the number of points.
    pub fn fit(&self, points: &[Vec<f64>]) -> Result<KMeansResult, ClusterError> {
        let dim = validate_points(points)?;
        let k = self.config.k;
        if k == 0 || k > points.len() {
            return Err(ClusterError::InvalidK {
                k,
                points: points.len(),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut best: Option<KMeansResult> = None;
        for _ in 0..self.config.restarts {
            let run = self.run_once(points, dim, &mut rng);
            if best.as_ref().map(|b| run.wcss < b.wcss).unwrap_or(true) {
                best = Some(run);
            }
        }
        Ok(best.expect("at least one restart"))
    }

    fn run_once(&self, points: &[Vec<f64>], dim: usize, rng: &mut StdRng) -> KMeansResult {
        let k = self.config.k;
        let mut centroids = self.config.init.choose(points, k, rng);
        let mut assignments = vec![0usize; points.len()];
        let mut iterations = 0;
        for iter in 0..self.config.max_iterations {
            iterations = iter + 1;
            // Assignment step.
            for (a, p) in assignments.iter_mut().zip(points) {
                *a = nearest(p, &centroids);
            }
            // Update step.
            let mut sums = vec![vec![0.0; dim]; k];
            let mut counts = vec![0usize; k];
            for (&a, p) in assignments.iter().zip(points) {
                counts[a] += 1;
                for (s, &v) in sums[a].iter_mut().zip(p) {
                    *s += v;
                }
            }
            let mut movement: f64 = 0.0;
            for c in 0..k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster at the point farthest from
                    // its centroid, a standard empty-cluster repair.
                    let far = points
                        .iter()
                        .enumerate()
                        .max_by(|a, b| {
                            squared_euclidean(a.1, &centroids[assignments[a.0]])
                                .total_cmp(&squared_euclidean(b.1, &centroids[assignments[b.0]]))
                        })
                        .map(|(i, _)| i)
                        .expect("points nonempty");
                    movement += squared_euclidean(&centroids[c], &points[far]);
                    centroids[c] = points[far].clone();
                    continue;
                }
                let new: Vec<f64> = sums[c].iter().map(|&s| s / counts[c] as f64).collect();
                movement += squared_euclidean(&centroids[c], &new);
                centroids[c] = new;
            }
            if movement <= self.config.tolerance {
                break;
            }
        }
        // Final assignment against the converged centroids.
        for (a, p) in assignments.iter_mut().zip(points) {
            *a = nearest(p, &centroids);
        }
        let wcss = assignments
            .iter()
            .zip(points)
            .map(|(&a, p)| squared_euclidean(p, &centroids[a]))
            .sum();
        KMeansResult {
            assignments,
            centroids,
            wcss,
            iterations,
        }
    }
}

fn nearest(point: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = squared_euclidean(point, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![i as f64 * 0.01, 0.0]);
            pts.push(vec![5.0 + i as f64 * 0.01, 5.0]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let r = KMeans::new(KMeansConfig::new(2).with_seed(11))
            .fit(&pts)
            .unwrap();
        // All even indices (first blob) share a label distinct from odds.
        let a = r.assignments[0];
        let b = r.assignments[1];
        assert_ne!(a, b);
        for i in (0..20).step_by(2) {
            assert_eq!(r.assignments[i], a);
        }
        for i in (1..20).step_by(2) {
            assert_eq!(r.assignments[i], b);
        }
        assert!(r.wcss < 1.0);
    }

    #[test]
    fn k_equals_n_gives_zero_wcss() {
        let pts = vec![vec![0.0], vec![5.0], vec![9.0]];
        let r = KMeans::new(KMeansConfig::new(3).with_seed(3))
            .fit(&pts)
            .unwrap();
        assert!(r.wcss < 1e-18);
        let mut labels = r.assignments.clone();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let pts = vec![vec![0.0], vec![2.0], vec![4.0]];
        let r = KMeans::new(KMeansConfig::new(1).with_seed(0))
            .fit(&pts)
            .unwrap();
        assert!((r.centroids[0][0] - 2.0).abs() < 1e-12);
        assert_eq!(r.assignments, vec![0, 0, 0]);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let km = KMeans::new(KMeansConfig::new(2));
        assert_eq!(km.fit(&[]), Err(ClusterError::EmptyData));
        assert!(matches!(
            km.fit(&[vec![1.0]]),
            Err(ClusterError::InvalidK { .. })
        ));
        assert!(matches!(
            KMeans::new(KMeansConfig::new(0)).fit(&[vec![1.0]]),
            Err(ClusterError::InvalidK { .. })
        ));
        assert!(matches!(
            km.fit(&[vec![1.0], vec![1.0, 2.0]]),
            Err(ClusterError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts = two_blobs();
        let a = KMeans::new(KMeansConfig::new(2).with_seed(5))
            .fit(&pts)
            .unwrap();
        let b = KMeans::new(KMeansConfig::new(2).with_seed(5))
            .fit(&pts)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_points_do_not_break_clustering() {
        let pts = vec![vec![1.0]; 6];
        let r = KMeans::new(KMeansConfig::new(2).with_seed(1))
            .fit(&pts)
            .unwrap();
        assert_eq!(r.assignments.len(), 6);
        assert!(r.wcss < 1e-18);
    }

    #[test]
    fn cluster_members_partition_points() {
        let pts = two_blobs();
        let r = KMeans::new(KMeansConfig::new(2).with_seed(2))
            .fit(&pts)
            .unwrap();
        let m0 = r.cluster_members(0);
        let m1 = r.cluster_members(1);
        assert_eq!(m0.len() + m1.len(), pts.len());
        assert_eq!(r.k(), 2);
    }
}
