//! Error type for clustering.

use std::error::Error;
use std::fmt;

/// Error raised by clustering routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// No points were provided.
    EmptyData,
    /// `k` was zero or exceeded the number of points.
    InvalidK {
        /// Requested number of clusters.
        k: usize,
        /// Number of points available.
        points: usize,
    },
    /// Points have inconsistent dimensionality.
    DimensionMismatch {
        /// Dimension of the first point.
        expected: usize,
        /// Dimension of the offending point.
        found: usize,
    },
    /// A coordinate was not finite.
    NonFiniteCoordinate,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::EmptyData => write!(f, "no points to cluster"),
            ClusterError::InvalidK { k, points } => {
                write!(f, "cannot form {k} clusters from {points} points")
            }
            ClusterError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "point dimension {found} does not match expected {expected}"
                )
            }
            ClusterError::NonFiniteCoordinate => write!(f, "point coordinates must be finite"),
        }
    }
}

impl Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ClusterError::InvalidK { k: 3, points: 2 }
            .to_string()
            .contains('3'));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClusterError>();
    }
}
