//! Distances and feature standardization.

use crate::ClusterError;

/// Squared Euclidean distance between two points of equal dimension.
///
/// # Panics
///
/// Panics in debug builds when dimensions differ; in release the shorter
/// dimension governs. Points coming from clustering entry points are
/// validated up front, which rules this out.
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Validates a point set: non-empty, consistent dimension, finite values.
///
/// # Errors
///
/// Returns the corresponding [`ClusterError`] on the first violation.
pub(crate) fn validate_points(points: &[Vec<f64>]) -> Result<usize, ClusterError> {
    let first = points.first().ok_or(ClusterError::EmptyData)?;
    let dim = first.len();
    for p in points {
        if p.len() != dim {
            return Err(ClusterError::DimensionMismatch {
                expected: dim,
                found: p.len(),
            });
        }
        if p.iter().any(|v| !v.is_finite()) {
            return Err(ClusterError::NonFiniteCoordinate);
        }
    }
    Ok(dim)
}

/// Z-score standardizer fit on a point set, mapping each feature to zero
/// mean and unit variance. Features with zero variance are left centred
/// but unscaled.
///
/// Standardizing features before k-means keeps activities with large
/// absolute times (e.g. computation) from drowning out small ones.
///
/// # Example
///
/// ```
/// use limba_cluster::Standardizer;
/// let points = vec![vec![0.0, 100.0], vec![2.0, 300.0]];
/// let s = Standardizer::fit(&points).unwrap();
/// let t = s.transform(&points);
/// assert!((t[0][0] + 1.0).abs() < 1e-12);
/// assert!((t[1][1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    scales: Vec<f64>,
}

impl Standardizer {
    /// Fits the standardizer on `points`.
    ///
    /// # Errors
    ///
    /// Same validation as clustering: non-empty, consistent, finite.
    pub fn fit(points: &[Vec<f64>]) -> Result<Self, ClusterError> {
        let dim = validate_points(points)?;
        let n = points.len() as f64;
        let mut means = vec![0.0; dim];
        for p in points {
            for (m, &v) in means.iter_mut().zip(p) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut scales = vec![0.0; dim];
        for p in points {
            for ((s, &m), &v) in scales.iter_mut().zip(&means).zip(p) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut scales {
            *s = (*s / n).sqrt();
            if *s == 0.0 {
                *s = 1.0;
            }
        }
        Ok(Standardizer { means, scales })
    }

    /// Applies the fitted transform to `points`.
    pub fn transform(&self, points: &[Vec<f64>]) -> Vec<Vec<f64>> {
        points
            .iter()
            .map(|p| {
                p.iter()
                    .zip(self.means.iter().zip(&self.scales))
                    .map(|(&v, (&m, &s))| (v - m) / s)
                    .collect()
            })
            .collect()
    }

    /// Per-feature means learned at fit time.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-feature scales learned at fit time.
    pub fn scales(&self) -> &[f64] {
        &self.scales
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_euclidean_basics() {
        assert_eq!(squared_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(squared_euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn validate_catches_problems() {
        assert_eq!(validate_points(&[]), Err(ClusterError::EmptyData));
        assert!(matches!(
            validate_points(&[vec![1.0], vec![1.0, 2.0]]),
            Err(ClusterError::DimensionMismatch { .. })
        ));
        assert_eq!(
            validate_points(&[vec![f64::NAN]]),
            Err(ClusterError::NonFiniteCoordinate)
        );
        assert_eq!(validate_points(&[vec![1.0, 2.0]]), Ok(2));
    }

    #[test]
    fn standardizer_produces_zero_mean_unit_variance() {
        let pts = vec![vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]];
        let s = Standardizer::fit(&pts).unwrap();
        let t = s.transform(&pts);
        let mean0: f64 = t.iter().map(|p| p[0]).sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-12);
        // Constant feature is centred but not blown up by zero variance.
        for p in &t {
            assert_eq!(p[1], 0.0);
        }
        assert_eq!(s.scales()[1], 1.0);
        assert_eq!(s.means()[0], 3.0);
    }
}
