//! Shared helpers for the limba benchmark harness and the `repro_*`
//! binaries that regenerate every table and figure of the paper.

use limba_analysis::{Analyzer, Report};
use limba_model::{ActivityKind, Measurements, MeasurementsBuilder};
use limba_mpisim::{MachineConfig, SimOutput, Simulator};
use limba_workloads::{cfd::CfdConfig, Imbalance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Analysis report of the calibrated paper reconstruction (loops only).
pub fn paper_report() -> Report {
    let m = limba_calibrate::paper::paper_measurements().expect("paper data calibrates");
    Analyzer::new().analyze(&m).expect("paper data analyzes")
}

/// Analysis report of the reconstruction including the unmeasured
/// remainder region (for the scaled indices of Tables 3–4).
pub fn paper_report_with_tail() -> Report {
    let m = limba_calibrate::paper::paper_measurements_with_tail().expect("paper data calibrates");
    Analyzer::new().analyze(&m).expect("paper data analyzes")
}

/// Simulates the CFD proxy on the default 16-rank machine with a mild
/// stochastic imbalance — the "organic" counterpart of the calibrated
/// reconstruction.
pub fn simulated_cfd(iterations: usize) -> SimOutput {
    let program = CfdConfig::new(16)
        .with_iterations(iterations)
        .with_imbalance(Imbalance::RandomJitter { amplitude: 0.25 })
        .with_seed(2003)
        .build_program()
        .expect("cfd proxy builds");
    Simulator::new(MachineConfig::new(16))
        .run(&program)
        .expect("cfd proxy runs")
}

/// Measurements of the simulated CFD proxy.
pub fn simulated_cfd_measurements(iterations: usize) -> Measurements {
    simulated_cfd(iterations)
        .reduce()
        .expect("cfd trace reduces")
        .measurements
}

/// Random measurements of shape `regions × 4 × processors` for scaling
/// benchmarks, deterministic in `seed`.
pub fn random_measurements(regions: usize, processors: usize, seed: u64) -> Measurements {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = MeasurementsBuilder::new(processors);
    for i in 0..regions {
        let r = b.add_region(format!("region {i}"));
        for kind in [
            ActivityKind::Computation,
            ActivityKind::PointToPoint,
            ActivityKind::Collective,
            ActivityKind::Synchronization,
        ] {
            for p in 0..processors {
                let t: f64 = rng.gen_range(0.1..10.0);
                b.record(r, kind, p, t).expect("valid time");
            }
        }
    }
    b.build().expect("valid measurements")
}

/// Formats a paper-vs-measured comparison line.
pub fn compare_line(label: &str, paper: f64, measured: f64) -> String {
    let delta = measured - paper;
    format!("{label:<28} paper {paper:>9.5}   measured {measured:>9.5}   delta {delta:>+9.5}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_consistent_data() {
        let r = paper_report();
        assert_eq!(r.profile.regions.len(), 7);
        let m = random_measurements(5, 8, 1);
        assert_eq!(m.regions(), 5);
        assert_eq!(m.processors(), 8);
        let m2 = random_measurements(5, 8, 1);
        assert_eq!(m, m2);
    }

    #[test]
    fn simulated_cfd_has_paper_structure() {
        let m = simulated_cfd_measurements(1);
        assert_eq!(m.regions(), 7);
        assert_eq!(m.processors(), 16);
    }

    #[test]
    fn compare_line_formats() {
        let line = compare_line("x", 1.0, 1.5);
        assert!(line.contains("+0.5"));
    }
}
