//! Bench runner for the tuning advisor: times catalog proposal,
//! analytic prediction, and the full propose → search → verify loop on
//! the CFD proxy at growing rank counts, verifies the advice is
//! byte-identical across worker-thread counts, and writes the results
//! as `BENCH_advisor.json`.
//!
//! Usage: `bench_advisor [--quick] [--out PATH]`
//!
//! `--quick` drops the repetition count so CI's perf-smoke job finishes
//! in seconds; the committed baseline is produced by a full run. See
//! `crates/bench/README.md` for the output format.

use std::fmt::Write as _;
use std::time::Instant;

use limba_advisor::{propose, Advisor, BaselineModel, Scenario};
use limba_mpisim::{MachineConfig, Simulator};
use limba_workloads::{cfd::CfdConfig, Imbalance};

struct Timed {
    name: String,
    ranks: usize,
    catalog: usize,
    evaluated: usize,
    propose_ns: u128,
    predict_ns: u128,
    advise_ns: u128,
    jobs_invariant: bool,
    verified_gain: f64,
}

fn scenario(ranks: usize) -> Scenario {
    let program = CfdConfig::new(ranks)
        .with_iterations(2)
        .with_imbalance(Imbalance::LinearSkew { spread: 0.4 })
        .with_seed(2003)
        .build_program()
        .expect("cfd builds");
    Scenario::new(program, MachineConfig::new(ranks)).expect("scenario is valid")
}

fn run_case(ranks: usize, reps: usize) -> Timed {
    let s = scenario(ranks);
    let baseline = Simulator::new(s.config.clone())
        .run(&s.program)
        .expect("baseline run")
        .stats
        .makespan;
    let model = BaselineModel::new(&s, baseline);
    let catalog = propose(&s);
    let candidates: Vec<Scenario> = catalog.iter().map(|i| i.apply(&s).unwrap()).collect();

    // Keep the minimum: a scheduling hiccup can only inflate a run.
    let mut propose_ns = u128::MAX;
    let mut predict_ns = u128::MAX;
    let mut advise_ns = u128::MAX;
    let advisor = Advisor::new().with_top_k(3);
    let reference = advisor.advise(&s).expect("advise runs");
    for _ in 0..reps {
        let start = Instant::now();
        let proposed = propose(&s);
        propose_ns = propose_ns.min(start.elapsed().as_nanos());
        assert_eq!(proposed.len(), catalog.len());

        let start = Instant::now();
        let sum: f64 = candidates.iter().map(|c| model.predict(c).makespan).sum();
        predict_ns = predict_ns.min(start.elapsed().as_nanos());
        assert!(sum.is_finite());

        let start = Instant::now();
        advisor.advise(&s).expect("advise runs");
        advise_ns = advise_ns.min(start.elapsed().as_nanos());
    }

    // The determinism axis: more worker threads, identical advice.
    let parallel = Advisor::new()
        .with_top_k(3)
        .with_jobs(4)
        .advise(&s)
        .expect("parallel advise runs");
    let jobs_invariant = format!("{reference:?}") == format!("{parallel:?}");

    let verified_gain = reference
        .candidates
        .first()
        .and_then(|c| c.verification.as_ref())
        .map(|v| v.measured_gain)
        .unwrap_or(0.0);
    Timed {
        name: format!("cfd_{ranks}r"),
        ranks,
        catalog: catalog.len(),
        evaluated: reference.evaluated,
        propose_ns,
        predict_ns,
        advise_ns,
        jobs_invariant,
        verified_gain,
    }
}

fn render_json(mode: &str, results: &[Timed]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"limba-bench-advisor/1\",\n");
    writeln!(out, "  \"mode\": \"{mode}\",").unwrap();
    out.push_str("  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        write!(
            out,
            "    {{\"name\": \"{}\", \"ranks\": {}, \"catalog\": {}, \"evaluated\": {}, \
             \"propose_ns\": {}, \"predict_ns\": {}, \"advise_ns\": {}, \
             \"jobs_invariant\": {}, \"verified_gain_s\": {:.6}}}",
            r.name,
            r.ranks,
            r.catalog,
            r.evaluated,
            r.propose_ns,
            r.predict_ns,
            r.advise_ns,
            r.jobs_invariant,
            r.verified_gain
        )
        .unwrap();
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let out_path = argv
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| argv.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_advisor.json".to_string());
    let reps = if quick { 2 } else { 9 };
    let mode = if quick { "quick" } else { "full" };

    let mut results = Vec::new();
    for ranks in [16usize, 64, 128] {
        let timed = run_case(ranks, reps);
        println!(
            "{:<12} {:>4} ranks  catalog {:>2}  evaluated {:>3}  propose {:>8.3} ms  \
             predict {:>8.3} ms  advise {:>9.3} ms  gain {:+.4} s  {}",
            timed.name,
            timed.ranks,
            timed.catalog,
            timed.evaluated,
            timed.propose_ns as f64 / 1e6,
            timed.predict_ns as f64 / 1e6,
            timed.advise_ns as f64 / 1e6,
            timed.verified_gain,
            if timed.jobs_invariant {
                "jobs-invariant"
            } else {
                "JOBS-DIVERGENT"
            },
        );
        results.push(timed);
    }

    let divergent: Vec<&str> = results
        .iter()
        .filter(|r| !r.jobs_invariant)
        .map(|r| r.name.as_str())
        .collect();
    let unprofitable: Vec<&str> = results
        .iter()
        .filter(|r| r.verified_gain <= 0.0)
        .map(|r| r.name.as_str())
        .collect();
    let json = render_json(mode, &results);
    std::fs::write(&out_path, json).expect("write bench output");
    println!("baseline written to {out_path} ({mode} mode, min over {reps} reps)");
    if !divergent.is_empty() {
        eprintln!("advice diverged across --jobs on: {}", divergent.join(", "));
        std::process::exit(1);
    }
    if !unprofitable.is_empty() {
        eprintln!(
            "no verified improvement found on: {}",
            unprofitable.join(", ")
        );
        std::process::exit(1);
    }
}
