//! Regenerates Table 4: code-region view summary `ID_C`, `SID_C`.

use limba_bench::{compare_line, paper_report, paper_report_with_tail};
use limba_calibrate::paper::{LOOP_NAMES, TABLE4};
use limba_model::RegionId;

fn main() {
    println!("=== Table 4: code region view summary ===\n");
    let loops_only = paper_report();
    let with_tail = paper_report_with_tail();
    for (i, &(id_c, sid_c)) in TABLE4.iter().enumerate() {
        let r = RegionId::new(i);
        let id = loops_only
            .region_view
            .summary_of(r)
            .map(|s| s.id)
            .expect("loop present");
        let sid = with_tail
            .region_view
            .summary_of(r)
            .map(|s| s.sid)
            .expect("loop present");
        println!(
            "{}",
            compare_line(&format!("{} ID_C", LOOP_NAMES[i]), id_c, id)
        );
        println!(
            "{}",
            compare_line(&format!("{} SID_C", LOOP_NAMES[i]), sid_c, sid)
        );
    }
    let most = loops_only
        .findings
        .most_imbalanced_region
        .expect("regions exist");
    println!(
        "\nmost imbalanced loop (raw ID_C): {} (paper: loop 6, ID 0.13734)",
        LOOP_NAMES[most.0.index()]
    );
    let top = &loops_only.findings.tuning_candidates[0];
    println!(
        "top tuning candidate by SID_C:   {} (paper: loop 1 — 'the core of the program'){}",
        top.name,
        if top.is_heaviest { " [heaviest]" } else { "" }
    );
}
