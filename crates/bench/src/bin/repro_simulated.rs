//! End-to-end "organic" reproduction: run the CFD proxy on the simulated
//! machine, reduce the trace, analyze it, and check that the paper's
//! qualitative story re-emerges from first principles (no calibration).

use limba_analysis::Analyzer;
use limba_bench::simulated_cfd;
use limba_model::ActivityKind;

fn main() {
    println!("=== End-to-end: CFD proxy on the simulated machine ===\n");
    let out = simulated_cfd(2);
    println!(
        "simulated run: makespan {:.3} s, {} p2p messages, {} collectives",
        out.stats.makespan, out.stats.messages, out.stats.collectives
    );
    let reduced = out.reduce().expect("trace reduces");
    let report = Analyzer::new()
        .analyze(&reduced.measurements)
        .expect("analysis succeeds");

    let checks: Vec<(&str, bool)> = vec![
        (
            "loop 1 is the heaviest region",
            report.coarse.heaviest_region_name == "loop 1",
        ),
        (
            "computation is the dominant activity",
            report.coarse.dominant_activity == ActivityKind::Computation,
        ),
        (
            "loop 3 spends the longest in point-to-point",
            report
                .coarse
                .extremes
                .iter()
                .find(|e| e.kind == ActivityKind::PointToPoint)
                .map(|e| e.worst.1 == "loop 3")
                .unwrap_or(false),
        ),
        (
            "synchronization is the most imbalanced activity (raw ID_A)",
            report
                .findings
                .most_imbalanced_activity
                .map(|x| x.0 == ActivityKind::Synchronization)
                .unwrap_or(false),
        ),
        (
            "scaling by time share demotes synchronization",
            report
                .findings
                .most_imbalanced_activity_scaled
                .map(|x| x.0 != ActivityKind::Synchronization)
                .unwrap_or(false),
        ),
        (
            "the top tuning candidate is the heaviest loop",
            report
                .findings
                .tuning_candidates
                .first()
                .map(|c| c.is_heaviest)
                .unwrap_or(false),
        ),
    ];
    println!();
    let mut pass = 0;
    for (label, ok) in &checks {
        println!("[{}] {label}", if *ok { "PASS" } else { "FAIL" });
        if *ok {
            pass += 1;
        }
    }
    println!("\n{pass}/{} qualitative checks hold", checks.len());
    println!("\nfull report:\n");
    print!("{}", limba_viz::report::render(&report));
}
