//! Regenerates the Section 4 processor-view findings.

use limba_bench::paper_report;
use limba_calibrate::paper::claims;
use limba_model::{ProcessorId, RegionId};

fn main() {
    println!("=== Section 4: processor view ===\n");
    let report = paper_report();
    let f = &report.findings.processors;

    let (proc, count) = f.most_frequently_imbalanced.expect("findings exist");
    let loops: Vec<String> = f.regions_per_processor[proc.index()]
        .iter()
        .map(|r| format!("loop {}", r.index() + 1))
        .collect();
    println!(
        "most frequently imbalanced: processor {} on {count} loops ({})",
        proc.index() + 1,
        loops.join(", ")
    );
    println!(
        "paper:                      processor {} on 2 loops (loop 3, loop 7)",
        claims::MOST_FREQUENT_PROC + 1
    );

    let (proc, duration) = f.longest_imbalanced.expect("findings exist");
    println!(
        "\nimbalanced for the longest time: processor {} ({duration:.2} s)",
        proc.index() + 1
    );
    let id = report
        .processor_view
        .id_of(
            RegionId::new(claims::LONGEST_LOOP),
            ProcessorId::new(claims::LONGEST_PROC),
        )
        .expect("participates");
    println!(
        "paper:                           processor {} (loop 1, ID_P {} and 15.93 s wall clock)",
        claims::LONGEST_PROC + 1,
        claims::LONGEST_ID
    );
    println!(
        "measured ID_P of processor {} on loop 1: {id:.5} (qualitative: the full matrix is not\n\
         published, so the exact value is not pinned down by Tables 1-2)",
        claims::LONGEST_PROC + 1
    );

    println!("\nper-loop most imbalanced processors:");
    for (i, entry) in report
        .processor_view
        .most_imbalanced_per_region
        .iter()
        .enumerate()
    {
        if let Some((p, d, wall)) = entry {
            println!(
                "  loop {}: processor {:>2} (ID_P {d:.5}, wall clock {wall:.3} s)",
                i + 1,
                p.index() + 1
            );
        }
    }
}
