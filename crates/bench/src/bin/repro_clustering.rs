//! Regenerates the Section 4 clustering result: k-means partitions the
//! loops into {loop 1, loop 2} vs the rest.

use limba_analysis::cluster_regions::{cluster_regions, FeatureScaling};
use limba_bench::{paper_report, simulated_cfd_measurements};
use limba_calibrate::paper::LOOP_NAMES;

fn main() {
    println!("=== Section 4: k-means clustering of the loops (k = 2) ===\n");
    let report = paper_report();
    let c = report.clustering.as_ref().expect("clustering enabled");
    for (g, members) in c.groups.iter().enumerate() {
        let names: Vec<&str> = members.iter().map(|&r| LOOP_NAMES[r.index()]).collect();
        println!("group {g}: {}", names.join(", "));
    }
    println!("paper:  group 0 = loop 1, loop 2; group 1 = the remaining loops");

    println!("\n-- feature scaling ablation --");
    let m = limba_calibrate::paper::paper_measurements().expect("calibrates");
    for scaling in [FeatureScaling::ZScore, FeatureScaling::Raw] {
        let c = cluster_regions(&m, 2, 0, scaling).expect("clusters");
        println!(
            "{scaling:?}: assignments {:?} (wcss {:.3})",
            c.assignments, c.wcss
        );
    }
    println!("(the paper's partition is the optimum under z-scored features)");

    println!("\n-- simulated CFD proxy --");
    let m = simulated_cfd_measurements(2);
    let c = cluster_regions(&m, 2, 0, FeatureScaling::ZScore).expect("clusters");
    for (g, members) in c.groups.iter().enumerate() {
        let names: Vec<String> = members
            .iter()
            .map(|&r| m.region_info(r).name().to_string())
            .collect();
        println!("group {g}: {}", names.join(", "));
    }
}
