//! Regenerates Table 3: activity-view summary `ID_A`, `SID_A`.

use limba_bench::{compare_line, paper_report, paper_report_with_tail};
use limba_calibrate::paper::TABLE3;

fn main() {
    println!("=== Table 3: activity view summary ===\n");
    let loops_only = paper_report();
    let with_tail = paper_report_with_tail();
    for &(kind, id_a, sid_a) in &TABLE3 {
        let id = loops_only
            .activity_view
            .summaries
            .iter()
            .find(|s| s.kind == kind)
            .map(|s| s.id)
            .expect("activity present");
        let sid = with_tail
            .activity_view
            .summaries
            .iter()
            .find(|s| s.kind == kind)
            .map(|s| s.sid)
            .expect("activity present");
        println!("{}", compare_line(&format!("{kind} ID_A"), id_a, id));
        println!("{}", compare_line(&format!("{kind} SID_A"), sid_a, sid));
    }
    println!(
        "\nmost imbalanced activity (raw): {:?} (paper: synchronization)",
        loops_only.findings.most_imbalanced_activity.map(|x| x.0)
    );
    println!(
        "after scaling by time share:    {:?} (paper: computation; sync 'not a suitable candidate')",
        loops_only.findings.most_imbalanced_activity_scaled.map(|x| x.0)
    );
}
