//! Bench runner for the simulator core: times the event-driven engine
//! against the reference polling engine on the CFD proxy (16/64/256
//! ranks) and the synthetic workload suite, verifies the two produce
//! identical traces, and writes the results as `BENCH_simulator.json`.
//!
//! Usage: `bench_simulator [--quick] [--out PATH]`
//!
//! `--quick` drops the repetition count so CI's perf-smoke job finishes
//! in seconds; the committed baseline is produced by a full run. See
//! `crates/bench/README.md` for the output format.

use std::fmt::Write as _;
use std::time::Instant;

use limba_mpisim::{BalancePlan, FaultPlan, MachineConfig, Program, Simulator};
use limba_workloads::{
    cfd::CfdConfig, fft::FftConfig, irregular::IrregularConfig, master_worker::MasterWorkerConfig,
    pipeline::PipelineConfig, stencil::StencilConfig, sweep::SweepConfig, Imbalance,
};

struct Case {
    name: String,
    ranks: usize,
    program: Program,
    faults: Option<FaultPlan>,
    balance: Option<BalancePlan>,
}

struct Timed {
    name: String,
    ranks: usize,
    total_ops: usize,
    event_ns: u128,
    polling_ns: u128,
    identical: bool,
}

fn cases() -> Vec<Case> {
    let jitter = Imbalance::RandomJitter { amplitude: 0.2 };
    let mut cases = Vec::new();
    // The headline trajectory: CFD proxy at growing rank counts.
    for ranks in [16usize, 64, 256] {
        cases.push(Case {
            name: format!("cfd_{ranks}r"),
            ranks,
            program: CfdConfig::new(ranks)
                .with_imbalance(jitter)
                .with_seed(2003)
                .build_program()
                .expect("cfd builds"),
            faults: None,
            balance: None,
        });
    }
    // The same 16-rank CFD proxy under the canned `chaos` fault plan
    // (straggler + degraded link + lossy network + crashed rank), so the
    // engine-identity check also exercises every fault-injection path.
    {
        let ranks = 16usize;
        let program = CfdConfig::new(ranks)
            .with_imbalance(jitter)
            .with_seed(2003)
            .build_program()
            .expect("cfd builds");
        let horizon = Simulator::new(MachineConfig::new(ranks))
            .run(&program)
            .expect("clean horizon run")
            .stats
            .makespan;
        let faults =
            limba_workloads::faults::preset("chaos", ranks, horizon).expect("chaos preset exists");
        cases.push(Case {
            name: "cfd_16r_chaos".to_string(),
            ranks,
            program,
            faults: Some(faults),
            balance: None,
        });
    }
    // The 64-rank CFD proxy under the stealing balance preset: times the
    // balance hook on the hot path (shared load view updates + policy
    // decisions at every compute boundary) and extends the
    // engine-identity check to the migration ledger.
    {
        let ranks = 64usize;
        cases.push(Case {
            name: "cfd_64r_stealing".to_string(),
            ranks,
            program: CfdConfig::new(ranks)
                .with_imbalance(Imbalance::LinearSkew { spread: 0.5 })
                .with_seed(2003)
                .build_program()
                .expect("cfd builds"),
            faults: None,
            balance: Some(limba_workloads::balance::preset("stealing").expect("stealing preset")),
        });
    }
    // One representative of each synthetic communication pattern at 64
    // ranks, so a scheduling regression in any pattern shows up.
    let at64: Vec<(&str, Program)> = vec![
        (
            "stencil_8x8",
            StencilConfig::new(8, 8)
                .with_imbalance(jitter)
                .build_program()
                .expect("stencil builds"),
        ),
        (
            "master_worker_64r",
            MasterWorkerConfig::new(64)
                .with_tasks(256)
                .with_imbalance(jitter)
                .build_program()
                .expect("master-worker builds"),
        ),
        (
            "pipeline_64s",
            PipelineConfig::new(64)
                .with_items(32)
                .with_imbalance(jitter)
                .build_program()
                .expect("pipeline builds"),
        ),
        (
            "irregular_64r",
            IrregularConfig::new(64)
                .with_steps(8)
                .with_imbalance(jitter)
                .build_program()
                .expect("irregular builds"),
        ),
        (
            "fft_64r",
            FftConfig::new(64)
                .with_imbalance(jitter)
                .build_program()
                .expect("fft builds"),
        ),
        (
            "sweep_64r",
            SweepConfig::new(64)
                .with_imbalance(jitter)
                .build_program()
                .expect("sweep builds"),
        ),
    ];
    for (name, program) in at64 {
        cases.push(Case {
            name: name.to_string(),
            ranks: 64,
            program,
            faults: None,
            balance: None,
        });
    }
    cases
}

fn run_case(case: &Case, reps: usize) -> Timed {
    let sim = Simulator::new(MachineConfig::new(case.ranks));
    let run_event = || {
        sim.run_configured(
            &case.program,
            case.faults.as_ref(),
            case.balance.as_ref(),
            None,
        )
        .expect("event run")
    };
    let run_polling = || {
        sim.run_polling_configured(
            &case.program,
            case.faults.as_ref(),
            case.balance.as_ref(),
            None,
        )
        .expect("polling run")
    };
    // Warmup both paths (page in code, size allocator pools), then
    // interleave the engines rep by rep so clock drift and background
    // load hit both equally. Keep the minimum: a scheduling hiccup can
    // only inflate a run, never deflate it.
    let event_out = run_event();
    let polling_out = run_polling();
    let identical = event_out.trace == polling_out.trace
        && event_out.stats == polling_out.stats
        && event_out.faults == polling_out.faults
        && event_out.balance == polling_out.balance;
    let (mut event_ns, mut polling_ns) = (u128::MAX, u128::MAX);
    for _ in 0..reps {
        let start = Instant::now();
        run_event();
        event_ns = event_ns.min(start.elapsed().as_nanos());
        let start = Instant::now();
        run_polling();
        polling_ns = polling_ns.min(start.elapsed().as_nanos());
    }
    Timed {
        name: case.name.clone(),
        ranks: case.ranks,
        total_ops: case.program.total_ops(),
        event_ns,
        polling_ns,
        identical,
    }
}

fn render_json(mode: &str, results: &[Timed]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"limba-bench-simulator/1\",\n");
    writeln!(out, "  \"mode\": \"{mode}\",").unwrap();
    out.push_str("  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        let speedup = r.polling_ns as f64 / r.event_ns.max(1) as f64;
        write!(
            out,
            "    {{\"name\": \"{}\", \"ranks\": {}, \"total_ops\": {}, \
             \"event_ns\": {}, \"polling_ns\": {}, \"speedup\": {:.3}, \
             \"identical\": {}}}",
            r.name, r.ranks, r.total_ops, r.event_ns, r.polling_ns, speedup, r.identical
        )
        .unwrap();
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let out_path = argv
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| argv.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_simulator.json".to_string());
    let reps = if quick { 2 } else { 9 };
    let mode = if quick { "quick" } else { "full" };

    let mut results = Vec::new();
    for case in cases() {
        let timed = run_case(&case, reps);
        println!(
            "{:<20} {:>4} ranks {:>8} ops  event {:>9.3} ms  polling {:>9.3} ms  x{:.2}  {}",
            timed.name,
            timed.ranks,
            timed.total_ops,
            timed.event_ns as f64 / 1e6,
            timed.polling_ns as f64 / 1e6,
            timed.polling_ns as f64 / timed.event_ns.max(1) as f64,
            if timed.identical {
                "identical"
            } else {
                "MISMATCH"
            },
        );
        results.push(timed);
    }

    let mismatches: Vec<&str> = results
        .iter()
        .filter(|r| !r.identical)
        .map(|r| r.name.as_str())
        .collect();
    let json = render_json(mode, &results);
    std::fs::write(&out_path, json).expect("write bench output");
    println!("baseline written to {out_path} ({mode} mode, min over {reps} reps)");
    if !mismatches.is_empty() {
        eprintln!("engine outputs diverged on: {}", mismatches.join(", "));
        std::process::exit(1);
    }
}
