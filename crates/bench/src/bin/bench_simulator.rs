//! Bench runner for the simulator core: times the event-driven engine
//! against the reference polling engine on the CFD proxy (16 ranks up
//! to 4k, plus a 64k-rank memory smoke) and the synthetic workload
//! suite, verifies that event, polling, and parallel-event runs produce
//! identical traces, and writes the results as `BENCH_simulator.json`.
//!
//! Usage: `bench_simulator [--quick] [--ranks N [--memory]] [--out PATH]`
//!
//! `--quick` drops the repetition count and the multi-thousand-rank
//! cases so CI's perf-smoke job finishes in seconds; the committed
//! baseline is produced by a full run. `--ranks N` replaces the case
//! list with a single CFD proxy at N ranks — an ad-hoc scaling probe;
//! add `--memory` to skip the (quadratic) polling baseline and probe
//! only the event engine's peak footprint, which is how the 64k/256k
//! baseline rows are measured. See `crates/bench/README.md` for the
//! output format.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use limba_mpisim::{BalancePlan, FaultPlan, MachineConfig, Program, Simulator};
use limba_workloads::{
    cfd::CfdConfig, fft::FftConfig, irregular::IrregularConfig, master_worker::MasterWorkerConfig,
    pipeline::PipelineConfig, stencil::StencilConfig, sweep::SweepConfig, Imbalance,
};

/// Counts live bytes and the high-water mark so each case can report
/// its peak event-engine footprint. `realloc`/`alloc_zeroed` use the
/// default trait implementations, which route through `alloc`/
/// `dealloc`, so they are tracked too.
struct CountingAlloc;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            let live = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` and returns its result plus the peak bytes live during the
/// call, net of what was already live before it started.
fn with_peak<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let before = CURRENT.load(Ordering::Relaxed);
    PEAK.store(before, Ordering::Relaxed);
    let result = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (result, peak.saturating_sub(before))
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Timed event-vs-polling comparison with the identity check.
    Speed,
    /// Event-engine-only footprint probe: the polling baseline is
    /// quadratic in ranks and would dominate the runner's wall clock
    /// without adding information at this scale.
    Memory,
}

struct Case {
    name: String,
    ranks: usize,
    kind: Kind,
    program: Program,
    faults: Option<FaultPlan>,
    balance: Option<BalancePlan>,
}

struct Timed {
    name: String,
    ranks: usize,
    total_ops: usize,
    kind: Kind,
    event_ns: u128,
    peak_bytes: usize,
    polling_ns: Option<u128>,
    identical: Option<bool>,
}

fn cfd_case(name: &str, ranks: usize, kind: Kind) -> Case {
    Case {
        name: name.to_string(),
        ranks,
        kind,
        program: CfdConfig::new(ranks)
            .with_imbalance(Imbalance::RandomJitter { amplitude: 0.2 })
            .with_seed(2003)
            .build_program()
            .expect("cfd builds"),
        faults: None,
        balance: None,
    }
}

fn cases(quick: bool, ranks_override: Option<(usize, Kind)>) -> Vec<Case> {
    if let Some((ranks, kind)) = ranks_override {
        return vec![cfd_case(&format!("cfd_{ranks}r"), ranks, kind)];
    }
    let jitter = Imbalance::RandomJitter { amplitude: 0.2 };
    let mut cases = Vec::new();
    // The headline trajectory: CFD proxy at growing rank counts. The
    // 1k case runs in quick mode too so CI exercises the sparse
    // routing path at scale; 4k+ is full-run only.
    for ranks in [16usize, 64, 256, 1024, 4096] {
        if quick && ranks > 1024 {
            continue;
        }
        let name = match ranks {
            1024 => "cfd_1kr".to_string(),
            4096 => "cfd_4kr".to_string(),
            _ => format!("cfd_{ranks}r"),
        };
        cases.push(cfd_case(&name, ranks, Kind::Speed));
    }
    // The same 16-rank CFD proxy under the canned `chaos` fault plan
    // (straggler + degraded link + lossy network + crashed rank), so the
    // engine-identity check also exercises every fault-injection path.
    {
        let ranks = 16usize;
        let program = CfdConfig::new(ranks)
            .with_imbalance(jitter)
            .with_seed(2003)
            .build_program()
            .expect("cfd builds");
        let horizon = Simulator::new(MachineConfig::new(ranks))
            .run(&program)
            .expect("clean horizon run")
            .stats
            .makespan;
        let faults =
            limba_workloads::faults::preset("chaos", ranks, horizon).expect("chaos preset exists");
        cases.push(Case {
            name: "cfd_16r_chaos".to_string(),
            ranks,
            kind: Kind::Speed,
            program,
            faults: Some(faults),
            balance: None,
        });
    }
    // The 64-rank CFD proxy under the stealing balance preset: times the
    // balance hook on the hot path (shared load view updates + policy
    // decisions at every compute boundary) and extends the
    // engine-identity check to the migration ledger.
    {
        let ranks = 64usize;
        cases.push(Case {
            name: "cfd_64r_stealing".to_string(),
            ranks,
            kind: Kind::Speed,
            program: CfdConfig::new(ranks)
                .with_imbalance(Imbalance::LinearSkew { spread: 0.5 })
                .with_seed(2003)
                .build_program()
                .expect("cfd builds"),
            faults: None,
            balance: Some(limba_workloads::balance::preset("stealing").expect("stealing preset")),
        });
    }
    // One representative of each synthetic communication pattern at 64
    // ranks, so a scheduling regression in any pattern shows up, plus
    // the stencil at a 64x64 grid (4096 ranks) to scale the
    // nearest-neighbor pattern alongside the CFD trajectory.
    let mut at_scale: Vec<(&str, usize, Program)> = vec![
        (
            "stencil_8x8",
            64,
            StencilConfig::new(8, 8)
                .with_imbalance(jitter)
                .build_program()
                .expect("stencil builds"),
        ),
        (
            "master_worker_64r",
            64,
            MasterWorkerConfig::new(64)
                .with_tasks(256)
                .with_imbalance(jitter)
                .build_program()
                .expect("master-worker builds"),
        ),
        (
            "pipeline_64s",
            64,
            PipelineConfig::new(64)
                .with_items(32)
                .with_imbalance(jitter)
                .build_program()
                .expect("pipeline builds"),
        ),
        (
            "irregular_64r",
            64,
            IrregularConfig::new(64)
                .with_steps(8)
                .with_imbalance(jitter)
                .build_program()
                .expect("irregular builds"),
        ),
        (
            "fft_64r",
            64,
            FftConfig::new(64)
                .with_imbalance(jitter)
                .build_program()
                .expect("fft builds"),
        ),
        (
            "sweep_64r",
            64,
            SweepConfig::new(64)
                .with_imbalance(jitter)
                .build_program()
                .expect("sweep builds"),
        ),
    ];
    if !quick {
        at_scale.push((
            "stencil_64x64",
            4096,
            StencilConfig::new(64, 64)
                .with_imbalance(jitter)
                .build_program()
                .expect("stencil builds"),
        ));
    }
    for (name, ranks, program) in at_scale {
        cases.push(Case {
            name: name.to_string(),
            ranks,
            kind: Kind::Speed,
            program,
            faults: None,
            balance: None,
        });
    }
    // Memory smoke: the CFD proxy at 64k ranks, event engine only. The
    // point is the peak_bytes column — with arena hot state and sparse
    // channel routing it grows near-linearly in ranks; any dense
    // rank-pair table would need tens of gigabytes here and OOM the
    // runner instead of finishing.
    if !quick {
        cases.push(cfd_case("cfd_64kr", 65_536, Kind::Memory));
        // And the same probe at 256k ranks: past the 100k mark the
        // arena and routing tables are the whole footprint, so this is
        // the case that catches a super-linear term the 64k point is
        // still too small to expose.
        cases.push(cfd_case("cfd_256kr", 262_144, Kind::Memory));
    }
    cases
}

fn run_case(case: &Case, reps: usize) -> Timed {
    let sim = Simulator::new(MachineConfig::new(case.ranks));
    let run_event = || {
        sim.run_configured(
            &case.program,
            case.faults.as_ref(),
            case.balance.as_ref(),
            None,
        )
        .expect("event run")
    };
    // Warmup (page in code, size allocator pools) doubles as the
    // footprint probe and the engine-identity check: the event engine's
    // peak live bytes, and — on speed cases — bit-identical output
    // across event, polling, and parallel event (4 worker threads).
    let (event_out, peak_bytes) = with_peak(run_event);
    if case.kind == Kind::Memory {
        let start = Instant::now();
        run_event();
        return Timed {
            name: case.name.clone(),
            ranks: case.ranks,
            total_ops: case.program.total_ops(),
            kind: case.kind,
            event_ns: start.elapsed().as_nanos(),
            peak_bytes,
            polling_ns: None,
            identical: None,
        };
    }
    let run_polling = || {
        sim.run_polling_configured(
            &case.program,
            case.faults.as_ref(),
            case.balance.as_ref(),
            None,
        )
        .expect("polling run")
    };
    let polling_out = run_polling();
    let par_out = sim
        .run_parallel_configured(
            &case.program,
            case.faults.as_ref(),
            case.balance.as_ref(),
            None,
            4,
        )
        .expect("parallel event run");
    let identical = event_out.trace == polling_out.trace
        && event_out.stats == polling_out.stats
        && event_out.faults == polling_out.faults
        && event_out.balance == polling_out.balance
        && event_out.trace == par_out.trace
        && event_out.stats == par_out.stats
        && event_out.faults == par_out.faults
        && event_out.balance == par_out.balance;
    // Calibrate a batch size so every timed sample spans at least a
    // couple of milliseconds: the microsecond-scale cases are pure
    // timer granularity and allocator-state noise when timed one run
    // at a time, and that noise — not the engines — decides their
    // ratio. Both engines run the same batch size, so the batching
    // cannot bias the comparison.
    let start = Instant::now();
    run_event();
    let est = start.elapsed().as_nanos().max(1);
    let batch = ((2_000_000 / est) as usize + 1).clamp(1, 4096);
    // Interleave the engines rep by rep so clock drift and background
    // load hit both equally. Keep the minimum: a scheduling hiccup can
    // only inflate a run, never deflate it.
    let (mut event_ns, mut polling_ns) = (u128::MAX, u128::MAX);
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(run_event());
        }
        event_ns = event_ns.min(start.elapsed().as_nanos() / batch as u128);
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(run_polling());
        }
        polling_ns = polling_ns.min(start.elapsed().as_nanos() / batch as u128);
    }
    Timed {
        name: case.name.clone(),
        ranks: case.ranks,
        total_ops: case.program.total_ops(),
        kind: case.kind,
        event_ns,
        peak_bytes,
        polling_ns: Some(polling_ns),
        identical: Some(identical),
    }
}

fn render_json(mode: &str, results: &[Timed]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"limba-bench-simulator/2\",\n");
    writeln!(out, "  \"mode\": \"{mode}\",").unwrap();
    out.push_str("  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        write!(
            out,
            "    {{\"name\": \"{}\", \"ranks\": {}, \"total_ops\": {}, \
             \"kind\": \"{}\", \"event_ns\": {}, \"peak_bytes\": {}",
            r.name,
            r.ranks,
            r.total_ops,
            match r.kind {
                Kind::Speed => "speed",
                Kind::Memory => "memory",
            },
            r.event_ns,
            r.peak_bytes,
        )
        .unwrap();
        if let Some(polling_ns) = r.polling_ns {
            let speedup = polling_ns as f64 / r.event_ns.max(1) as f64;
            write!(
                out,
                ", \"polling_ns\": {polling_ns}, \"speedup\": {speedup:.3}"
            )
            .unwrap();
        }
        if let Some(identical) = r.identical {
            write!(out, ", \"identical\": {identical}").unwrap();
        }
        out.push('}');
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let out_path = argv
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| argv.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_simulator.json".to_string());
    // `--memory` turns the ad-hoc `--ranks` probe into a memory-kind
    // case (event engine only) — the polling baseline is quadratic in
    // ranks and unusable at the scales where the footprint matters.
    let memory_only = argv.iter().any(|a| a == "--memory");
    let ranks_override = argv
        .iter()
        .position(|a| a == "--ranks")
        .and_then(|i| argv.get(i + 1))
        .map(|v| {
            let ranks = v
                .parse::<usize>()
                .expect("--ranks takes a positive integer");
            (
                ranks,
                if memory_only {
                    Kind::Memory
                } else {
                    Kind::Speed
                },
            )
        });
    let reps = if quick { 2 } else { 9 };
    let mode = if quick { "quick" } else { "full" };

    let mut results = Vec::new();
    for case in cases(quick, ranks_override) {
        let timed = run_case(&case, reps);
        match timed.polling_ns {
            Some(polling_ns) => println!(
                "{:<20} {:>5} ranks {:>8} ops  event {:>9.3} ms  polling {:>9.3} ms  x{:.2}  {:>9} KiB  {}",
                timed.name,
                timed.ranks,
                timed.total_ops,
                timed.event_ns as f64 / 1e6,
                polling_ns as f64 / 1e6,
                polling_ns as f64 / timed.event_ns.max(1) as f64,
                timed.peak_bytes / 1024,
                if timed.identical == Some(true) {
                    "identical"
                } else {
                    "MISMATCH"
                },
            ),
            None => println!(
                "{:<20} {:>5} ranks {:>8} ops  event {:>9.3} ms  {:>29} {:>9} KiB  memory-smoke",
                timed.name,
                timed.ranks,
                timed.total_ops,
                timed.event_ns as f64 / 1e6,
                "",
                timed.peak_bytes / 1024,
            ),
        }
        results.push(timed);
    }

    let mismatches: Vec<&str> = results
        .iter()
        .filter(|r| r.identical == Some(false))
        .map(|r| r.name.as_str())
        .collect();
    let json = render_json(mode, &results);
    std::fs::write(&out_path, json).expect("write bench output");
    println!("baseline written to {out_path} ({mode} mode, min over {reps} batched reps)");
    if !mismatches.is_empty() {
        eprintln!("engine outputs diverged on: {}", mismatches.join(", "));
        std::process::exit(1);
    }
}
