//! Dispersion-index ablation: the methodology treats the index of
//! dispersion as a pluggable choice ("the choice of the most appropriate
//! index … depends on the objective of the study"). Would the paper's
//! conclusions change under a different index?

use limba_analysis::Analyzer;
use limba_model::ActivityKind;
use limba_stats::dispersion::{DispersionIndex, DispersionKind};

fn main() {
    println!("=== Index-of-dispersion ablation on the paper's case study ===\n");
    let m = limba_calibrate::paper::paper_measurements().expect("calibrates");
    println!(
        "{:<12} {:>18} {:>14} {:>16} {:>14}",
        "index", "worst activity", "worst loop", "scaled activity", "candidate"
    );
    let mut agree = 0;
    for kind in DispersionKind::ALL {
        let report = Analyzer::new()
            .with_dispersion(kind)
            .analyze(&m)
            .expect("analyzes");
        let worst_activity = report
            .findings
            .most_imbalanced_activity
            .map(|x| x.0.to_string())
            .unwrap_or_default();
        let worst_loop = report
            .findings
            .most_imbalanced_region
            .map(|x| format!("loop {}", x.0.index() + 1))
            .unwrap_or_default();
        let scaled = report
            .findings
            .most_imbalanced_activity_scaled
            .map(|x| x.0)
            .unwrap_or(ActivityKind::Computation);
        let candidate = report
            .findings
            .tuning_candidates
            .first()
            .map(|c| c.name.clone())
            .unwrap_or_default();
        let matches_paper =
            worst_activity == "synchronization" && worst_loop == "loop 6" && candidate == "loop 1";
        if matches_paper {
            agree += 1;
        }
        println!(
            "{:<12} {worst_activity:>18} {worst_loop:>14} {:>16} {candidate:>14}{}",
            kind.name(),
            scaled.to_string(),
            if matches_paper { "" } else { "   <- diverges" }
        );
    }
    println!(
        "\n{agree}/{} indices reproduce the paper's three headline findings\n\
         (worst activity = synchronization, worst loop = loop 6, candidate = loop 1).\n\
         All provided indices are Schur-convex, so divergences reflect weighting,\n\
         not a different notion of spread.",
        DispersionKind::ALL.len()
    );
}
