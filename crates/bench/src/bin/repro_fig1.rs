//! Regenerates Figure 1: patterns of computation times.

use limba_bench::paper_report;
use limba_calibrate::paper::claims;
use limba_model::ActivityKind;

fn main() {
    println!("=== Figure 1: patterns of the times spent in computation ===\n");
    let report = paper_report();
    let grid = report
        .pattern_for(ActivityKind::Computation)
        .expect("computation performed");
    print!("{}", limba_viz::pattern::render(grid));
    print!("\n{}", limba_viz::pattern::tail_summary(grid));
    let loop4 = &grid.rows[3];
    let loop6 = &grid.rows[5];
    println!(
        "\nloop 4 upper-15% processors: {} (paper: {})",
        loop4.upper_tail_count(),
        claims::FIG1_LOOP4_UPPER
    );
    println!(
        "loop 6 lower-15% processors: {} (paper: {})",
        loop6.lower_tail_count(),
        claims::FIG1_LOOP6_LOWER
    );
    println!("\nSVG: see `limba paper --svg <dir>` for the rendered figure.");
}
