//! Regenerates Table 1: per-loop wall-clock breakdown.
//!
//! The calibrated reconstruction must match the paper exactly; the
//! simulated CFD proxy must reproduce the *shape* (loop ordering, which
//! activities appear where, computation dominant).

use limba_bench::{compare_line, paper_report, simulated_cfd_measurements};
use limba_calibrate::paper::{LOOP_NAMES, TABLE1, TABLE1_OVERALL};
use limba_model::{ActivityKind, ProgramProfile, STANDARD_ACTIVITIES};

fn main() {
    println!("=== Table 1: wall clock time of the loops and breakdown ===\n");
    let report = paper_report();
    println!("-- calibrated reconstruction vs paper --");
    for (i, row) in report.profile.regions.iter().enumerate() {
        println!(
            "{}",
            compare_line(
                &format!("{} overall", LOOP_NAMES[i]),
                TABLE1_OVERALL[i],
                row.seconds
            )
        );
        for (j, &kind) in STANDARD_ACTIVITIES.iter().enumerate() {
            if TABLE1[i][j] > 0.0 {
                println!(
                    "{}",
                    compare_line(
                        &format!("  {} {kind}", LOOP_NAMES[i]),
                        TABLE1[i][j],
                        row.activity_seconds(kind)
                    )
                );
            }
        }
    }

    println!("\n-- simulated CFD proxy (shape check) --");
    let m = simulated_cfd_measurements(2);
    let profile = ProgramProfile::from_measurements(&m);
    let heaviest = profile.heaviest_region().expect("has regions");
    println!(
        "heaviest region: {} ({:.1}% of wall clock; paper: loop 1, ~27%)",
        heaviest.name,
        heaviest.fraction_of_program * 100.0
    );
    let (kind, _) = profile.dominant_activity().expect("has activities");
    println!("dominant activity: {kind} (paper: computation)");
    let worst_p2p = profile
        .worst_region_for(ActivityKind::PointToPoint)
        .expect("p2p performed");
    println!("longest point-to-point: {} (paper: loop 3)", worst_p2p.name);
    let sync_loops: Vec<&str> = profile
        .regions
        .iter()
        .filter(|r| {
            r.breakdown
                .iter()
                .any(|b| b.kind == ActivityKind::Synchronization && b.performed)
        })
        .map(|r| r.name.as_str())
        .collect();
    println!("loops performing synchronization: {sync_loops:?} (paper: 3 loops)");
}
