//! Machine-scaling study (beyond the paper's single 16-processor run —
//! its future work plans "measurements collected on different parallel
//! systems"): how the methodology's indicators move as the same CFD
//! proxy runs on larger machines.

use limba_analysis::Analyzer;
use limba_model::ActivityKind;
use limba_mpisim::{MachineConfig, Simulator};
use limba_workloads::{cfd::CfdConfig, Imbalance};

fn main() {
    println!("=== Scaling study: CFD proxy with ±25% jitter on P = 4 … 64 ===\n");
    println!(
        "{:>5} {:>10} {:>12} {:>12} {:>12} {:>14}",
        "P", "makespan", "comp ID_A", "sync ID_A", "top SID_C", "candidate"
    );
    for p in [4usize, 8, 16, 32, 64] {
        let program = CfdConfig::new(p)
            .with_iterations(2)
            .with_imbalance(Imbalance::RandomJitter { amplitude: 0.25 })
            .with_seed(2003)
            .build_program()
            .expect("builds");
        let out = Simulator::new(MachineConfig::new(p))
            .run(&program)
            .expect("runs");
        let m = out.reduce().expect("reduces").measurements;
        let report = Analyzer::new()
            .with_cluster_k(0)
            .analyze(&m)
            .expect("analyzes");
        let id_of = |kind: ActivityKind| {
            report
                .activity_view
                .summaries
                .iter()
                .find(|s| s.kind == kind)
                .map(|s| s.id)
                .unwrap_or(0.0)
        };
        let (sid, name) = report
            .findings
            .tuning_candidates
            .first()
            .map(|c| (c.sid, c.name.clone()))
            .unwrap_or((0.0, "-".into()));
        println!(
            "{p:>5} {:>9.3}s {:>12.5} {:>12.5} {sid:>12.5} {name:>14}",
            out.stats.makespan,
            id_of(ActivityKind::Computation),
            id_of(ActivityKind::Synchronization),
        );
    }
    println!(
        "\nExpected shape: for i.i.d. per-rank jitter the Euclidean index decays like \
         1/sqrt(P) (concentration of the standardized vector around 1/P), and the \
         synchronization dispersion follows the same law; the makespan stays nearly \
         flat (work per rank is constant, collectives cost only log P). The \
         methodology's top candidate stays a heavy loop at every scale."
    );
}
