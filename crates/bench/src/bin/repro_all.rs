//! One-shot reproduction check: every table, figure, and in-text claim of
//! the paper, verified programmatically with PASS/FAIL lines. Exits
//! nonzero if any check fails, so it doubles as a CI gate.

use limba_analysis::Analyzer;
use limba_bench::{paper_report, paper_report_with_tail, simulated_cfd};
use limba_calibrate::paper::{claims, LOOPS, TABLE1, TABLE1_OVERALL, TABLE2, TABLE3, TABLE4};
use limba_model::{ActivityKind, ProcessorId, RegionId, STANDARD_ACTIVITIES};

struct Checker {
    passed: usize,
    failed: usize,
}

impl Checker {
    fn check(&mut self, label: &str, ok: bool) {
        println!("[{}] {label}", if ok { "PASS" } else { "FAIL" });
        if ok {
            self.passed += 1;
        } else {
            self.failed += 1;
        }
    }
}

fn main() {
    let mut c = Checker {
        passed: 0,
        failed: 0,
    };
    let report = paper_report();
    let scaled = paper_report_with_tail();

    // Table 1.
    let mut ok = true;
    for (i, row) in report.profile.regions.iter().enumerate() {
        ok &= (row.seconds - TABLE1_OVERALL[i]).abs() < 1e-9;
        for (j, &kind) in STANDARD_ACTIVITIES.iter().enumerate() {
            ok &= (row.activity_seconds(kind) - TABLE1[i][j]).abs() < 1e-9;
        }
    }
    c.check("Table 1: all 35 cells exact", ok);

    // Table 2.
    let mut ok = true;
    for i in 0..LOOPS {
        for j in 0..4 {
            match report.activity_view.id[i][j] {
                Some(id) => ok &= (id - TABLE2[i][j]).abs() < 1e-7 && TABLE1[i][j] > 0.0,
                None => ok &= TABLE1[i][j] == 0.0,
            }
        }
    }
    c.check("Table 2: all ID_ij cells within 1e-7, dashes preserved", ok);

    // Table 3.
    let mut ok = true;
    for &(kind, id_a, sid_a) in &TABLE3 {
        let id = report
            .activity_view
            .summaries
            .iter()
            .find(|s| s.kind == kind)
            .map(|s| s.id)
            .unwrap_or(f64::NAN);
        let sid = scaled
            .activity_view
            .summaries
            .iter()
            .find(|s| s.kind == kind)
            .map(|s| s.sid)
            .unwrap_or(f64::NAN);
        ok &= (id - id_a).abs() < 5e-4 && (sid - sid_a).abs() < 5e-5;
    }
    c.check(
        "Table 3: ID_A within 5e-4 and SID_A within 5e-5 of print",
        ok,
    );
    c.check(
        "Table 3: synchronization most imbalanced raw, demoted when scaled",
        report.findings.most_imbalanced_activity.map(|x| x.0)
            == Some(ActivityKind::Synchronization)
            && report.findings.most_imbalanced_activity_scaled.map(|x| x.0)
                == Some(ActivityKind::Computation),
    );

    // Table 4.
    let mut ok = true;
    for (i, &(id_c, sid_c)) in TABLE4.iter().enumerate() {
        let r = RegionId::new(i);
        let id = report
            .region_view
            .summary_of(r)
            .map(|s| s.id)
            .unwrap_or(f64::NAN);
        let sid = scaled
            .region_view
            .summary_of(r)
            .map(|s| s.sid)
            .unwrap_or(f64::NAN);
        ok &= (id - id_c).abs() < 5e-4 && (sid - sid_c).abs() < 5e-5;
    }
    c.check(
        "Table 4: ID_C within 5e-4 and SID_C within 5e-5 of print",
        ok,
    );
    c.check(
        "Table 4: loop 6 most imbalanced raw, loop 1 the tuning candidate",
        report.findings.most_imbalanced_region.map(|x| x.0) == Some(RegionId::new(5))
            && report
                .findings
                .tuning_candidates
                .first()
                .map(|t| t.name == "loop 1" && t.is_heaviest)
                .unwrap_or(false),
    );

    // Figures.
    let fig1 = report
        .pattern_for(ActivityKind::Computation)
        .expect("computes");
    c.check(
        "Figure 1: loop 4 has 5/16 upper and loop 6 has 11/16 lower",
        fig1.rows[3].upper_tail_count() == claims::FIG1_LOOP4_UPPER
            && fig1.rows[5].lower_tail_count() == claims::FIG1_LOOP6_LOWER,
    );
    let fig2 = report.pattern_for(ActivityKind::PointToPoint).expect("p2p");
    c.check(
        "Figure 2: exactly the p2p-performing loops 3,4,5,6 appear",
        fig2.rows
            .iter()
            .map(|r| r.region.index())
            .collect::<Vec<_>>()
            == vec![2, 3, 4, 5],
    );

    // Clustering.
    let clustering = report.clustering.as_ref().expect("clustering on");
    c.check(
        "Clustering: k-means groups {loop 1, loop 2} vs the rest",
        clustering.assignments == vec![0, 0, 1, 1, 1, 1, 1],
    );

    // Processor view.
    let f = &report.findings.processors;
    c.check(
        "Processor view: processor 1 most frequent (loops 3 and 7)",
        f.most_frequently_imbalanced == Some((ProcessorId::new(claims::MOST_FREQUENT_PROC), 2))
            && f.regions_per_processor[claims::MOST_FREQUENT_PROC]
                .iter()
                .map(|r| r.index())
                .collect::<Vec<_>>()
                == claims::MOST_FREQUENT_LOOPS.to_vec(),
    );
    c.check(
        "Processor view: processor 2 longest imbalanced via loop 1 only",
        f.longest_imbalanced.map(|x| x.0) == Some(ProcessorId::new(claims::LONGEST_PROC))
            && f.regions_per_processor[claims::LONGEST_PROC]
                .iter()
                .map(|r| r.index())
                .collect::<Vec<_>>()
                == vec![claims::LONGEST_LOOP],
    );

    // End-to-end simulated run (no calibration).
    let out = simulated_cfd(2);
    let m = out.reduce().expect("reduces").measurements;
    let sim = Analyzer::new().analyze(&m).expect("analyzes");
    c.check(
        "Simulated: loop 1 heaviest, computation dominant",
        sim.coarse.heaviest_region_name == "loop 1"
            && sim.coarse.dominant_activity == ActivityKind::Computation,
    );
    c.check(
        "Simulated: sync most imbalanced raw, demoted scaled, core is the candidate",
        sim.findings.most_imbalanced_activity.map(|x| x.0) == Some(ActivityKind::Synchronization)
            && sim.findings.most_imbalanced_activity_scaled.map(|x| x.0)
                != Some(ActivityKind::Synchronization)
            && sim
                .findings
                .tuning_candidates
                .first()
                .map(|t| t.is_heaviest)
                .unwrap_or(false),
    );

    println!("\n{} passed, {} failed", c.passed, c.failed);
    if c.failed > 0 {
        std::process::exit(1);
    }
}
