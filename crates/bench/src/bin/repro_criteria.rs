//! Criteria ablation (the paper's §5 future work: "define and test new
//! criteria"): how much do the severity criteria agree on which regions
//! deserve tuning, across the case study and all simulated workloads?

use limba_analysis::criteria::criteria_study;
use limba_analysis::Analyzer;
use limba_bench::simulated_cfd_measurements;
use limba_model::Measurements;
use limba_stats::rank::RankingCriterion;

fn candidates() -> Vec<(String, RankingCriterion)> {
    vec![
        ("maximum".into(), RankingCriterion::Maximum),
        ("top-2".into(), RankingCriterion::TopK(2)),
        ("top-3".into(), RankingCriterion::TopK(3)),
        ("p75".into(), RankingCriterion::Percentile(75.0)),
        ("p90".into(), RankingCriterion::Percentile(90.0)),
        ("sid>0.001".into(), RankingCriterion::Threshold(0.001)),
    ]
}

fn study(name: &str, m: &Measurements) {
    let report = Analyzer::new()
        .with_cluster_k(0)
        .analyze(m)
        .expect("analyzes");
    let scores: Vec<f64> = report.region_view.summaries.iter().map(|s| s.sid).collect();
    let criteria = candidates();
    let study = criteria_study(&scores, &criteria).expect("study runs");
    println!("\n=== {name} (SID_C over {} regions) ===", scores.len());
    print!("{:<12}", "");
    for l in &study.labels {
        print!("{l:>11}");
    }
    println!();
    for (i, row) in study.matrix.iter().enumerate() {
        print!("{:<12}", study.labels[i]);
        for v in row {
            print!("{v:>11.2}");
        }
        println!();
    }
    if let Some((i, j, v)) = study.most_divergent() {
        println!(
            "most divergent pair: {} vs {} (Jaccard {v:.2})",
            study.labels[i], study.labels[j]
        );
    }
}

fn main() {
    println!("=== Severity-criteria agreement study ===");
    let paper = limba_calibrate::paper::paper_measurements().expect("calibrates");
    study("paper case study", &paper);
    let simulated = simulated_cfd_measurements(2);
    study("simulated CFD proxy", &simulated);
}
