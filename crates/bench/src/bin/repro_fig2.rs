//! Regenerates Figure 2: patterns of point-to-point communication times.

use limba_bench::paper_report;
use limba_model::ActivityKind;
use limba_stats::describe::mean;

fn main() {
    println!("=== Figure 2: patterns of the times spent in point-to-point communications ===\n");
    let report = paper_report();
    let grid = report
        .pattern_for(ActivityKind::PointToPoint)
        .expect("p2p performed");
    print!("{}", limba_viz::pattern::render(grid));
    print!("\n{}", limba_viz::pattern::tail_summary(grid));
    // "the behavior of the processors executing point-to-point
    // communications is very balanced": quantify via the mean ID_ij of
    // the p2p column vs the other activities.
    let col = 1; // point-to-point column in the standard activity order
    let p2p: Vec<f64> = (0..7)
        .filter_map(|i| report.activity_view.id[i][col])
        .collect();
    let sync: Vec<f64> = (0..7)
        .filter_map(|i| report.activity_view.id[i][3])
        .collect();
    println!(
        "\nmean p2p ID_ij = {:.5}, mean sync ID_ij = {:.5} (paper: p2p 'very balanced' relative to sync)",
        mean(&p2p).expect("p2p rows exist"),
        mean(&sync).expect("sync rows exist"),
    );
    println!("rows shown: only the loops performing the activity, as in the paper.");
}
