//! Regenerates Table 2: indices of dispersion `ID_ij`.

use limba_bench::{compare_line, paper_report, simulated_cfd_measurements};
use limba_calibrate::paper::{LOOP_NAMES, TABLE1, TABLE2};
use limba_model::STANDARD_ACTIVITIES;
use limba_stats::dispersion::DispersionKind;

fn main() {
    println!("=== Table 2: indices of dispersion ID_ij ===\n");
    let report = paper_report();
    println!("-- calibrated reconstruction vs paper --");
    let mut worst: f64 = 0.0;
    for i in 0..LOOP_NAMES.len() {
        for (j, &kind) in STANDARD_ACTIVITIES.iter().enumerate() {
            if TABLE1[i][j] <= 0.0 {
                continue;
            }
            let measured = report.activity_view.id[i][j].expect("performed cell");
            worst = worst.max((measured - TABLE2[i][j]).abs());
            println!(
                "{}",
                compare_line(&format!("{} {kind}", LOOP_NAMES[i]), TABLE2[i][j], measured)
            );
        }
    }
    println!("\nlargest absolute deviation: {worst:.2e}");

    println!("\n-- simulated CFD proxy (shape check) --");
    let m = simulated_cfd_measurements(2);
    let av =
        limba_analysis::views::activity_view(&m, DispersionKind::Euclidean).expect("view computes");
    // The paper's qualitative claims: synchronization is the most
    // imbalanced activity per-cell; point-to-point in loop 3 is balanced.
    let sync_ids: Vec<f64> = (0..7).filter_map(|i| av.id[i][3]).collect();
    let comp_ids: Vec<f64> = (0..7).filter_map(|i| av.id[i][0]).collect();
    let max_sync = sync_ids.iter().copied().fold(0.0, f64::max);
    let max_comp = comp_ids.iter().copied().fold(0.0, f64::max);
    println!("max sync ID_ij = {max_sync:.5}, max computation ID_ij = {max_comp:.5}");
    println!(
        "sync more dispersed than computation: {} (paper: yes)",
        max_sync > max_comp
    );
}
