//! Benchmarks of the three analysis views over growing measurement
//! matrices (regions × 4 activities × processors).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use limba_bench::random_measurements;
use limba_stats::dispersion::DispersionKind;

fn bench_views(c: &mut Criterion) {
    let mut group = c.benchmark_group("views");
    for &(regions, procs) in &[(7usize, 16usize), (32, 64), (128, 256)] {
        let m = random_measurements(regions, procs, 7);
        let label = format!("{regions}x4x{procs}");
        group.bench_with_input(BenchmarkId::new("activity", &label), &m, |b, m| {
            b.iter(|| limba_analysis::views::activity_view(m, DispersionKind::Euclidean).unwrap());
        });
        let av = limba_analysis::views::activity_view(&m, DispersionKind::Euclidean).unwrap();
        group.bench_with_input(
            BenchmarkId::new("region", &label),
            &(&m, &av),
            |b, (m, av)| {
                b.iter(|| limba_analysis::views::region_view(m, av).unwrap());
            },
        );
        group.bench_with_input(BenchmarkId::new("processor", &label), &m, |b, m| {
            b.iter(|| limba_analysis::views::processor_view(m).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_views);
criterion_main!(benches);
