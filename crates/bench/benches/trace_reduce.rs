//! Benchmarks of tracefile encoding, decoding, and reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use limba_bench::simulated_cfd;

fn bench_codecs(c: &mut Criterion) {
    let trace = simulated_cfd(4).trace;
    let events = trace.events().len() as u64;
    let bin = limba_trace::binary::to_bytes(&trace);
    let txt = limba_trace::text::to_string(&trace);

    let mut group = c.benchmark_group("trace_codec");
    group.throughput(Throughput::Elements(events));
    group.bench_function("binary_encode", |b| {
        b.iter(|| limba_trace::binary::to_bytes(std::hint::black_box(&trace)));
    });
    group.bench_function("binary_decode", |b| {
        b.iter(|| limba_trace::binary::from_bytes(std::hint::black_box(&bin)).unwrap());
    });
    group.bench_function("text_encode", |b| {
        b.iter(|| limba_trace::text::to_string(std::hint::black_box(&trace)));
    });
    group.bench_function("text_decode", |b| {
        b.iter(|| limba_trace::text::from_str(std::hint::black_box(&txt)).unwrap());
    });
    group.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_reduce");
    for &iters in &[1usize, 4, 16] {
        let trace = simulated_cfd(iters).trace;
        group.throughput(Throughput::Elements(trace.events().len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("cfd_{iters}it")),
            &trace,
            |b, t| {
                b.iter(|| limba_trace::reduce(std::hint::black_box(t)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_windowed_reduce(c: &mut Criterion) {
    let trace = simulated_cfd(4).trace;
    let mut group = c.benchmark_group("trace_reduce_windows");
    group.throughput(Throughput::Elements(trace.events().len() as u64));
    for &windows in &[4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(windows), &trace, |b, t| {
            b.iter(|| limba_trace::reduce_windows(std::hint::black_box(t), windows).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codecs, bench_reduce, bench_windowed_reduce);
criterion_main!(benches);
