//! End-to-end pipeline benchmarks: simulate → trace → reduce → analyze,
//! and the analyze-only stage on the paper's case study.

use criterion::{criterion_group, criterion_main, Criterion};
use limba_analysis::Analyzer;
use limba_bench::simulated_cfd;
use limba_mpisim::{MachineConfig, Simulator};
use limba_workloads::{cfd::CfdConfig, Imbalance};

fn bench_pipeline(c: &mut Criterion) {
    let program = CfdConfig::new(16)
        .with_iterations(2)
        .with_imbalance(Imbalance::RandomJitter { amplitude: 0.25 })
        .with_seed(2003)
        .build_program()
        .unwrap();
    let sim = Simulator::new(MachineConfig::new(16));
    c.bench_function("pipeline_simulate_reduce_analyze", |b| {
        b.iter(|| {
            let out = sim.run(std::hint::black_box(&program)).unwrap();
            let reduced = out.reduce().unwrap();
            Analyzer::new().analyze(&reduced.measurements).unwrap()
        });
    });
}

fn bench_analyze_only(c: &mut Criterion) {
    let paper = limba_calibrate::paper::paper_measurements().unwrap();
    c.bench_function("analyze_paper_case_study", |b| {
        b.iter(|| {
            Analyzer::new()
                .analyze(std::hint::black_box(&paper))
                .unwrap()
        });
    });
    let simulated = simulated_cfd(2).reduce().unwrap().measurements;
    c.bench_function("analyze_simulated_cfd", |b| {
        b.iter(|| {
            Analyzer::new()
                .analyze(std::hint::black_box(&simulated))
                .unwrap()
        });
    });
}

fn bench_calibration(c: &mut Criterion) {
    c.bench_function("calibrate_paper_matrix", |b| {
        b.iter(|| limba_calibrate::paper::paper_measurements().unwrap());
    });
}

fn bench_drilldown(c: &mut Criterion) {
    use limba_analysis::hierarchy::{drilldown, RegionTree};
    use limba_workloads::amr::AmrConfig;
    let program = AmrConfig::new(16)
        .with_steps(3)
        .with_refinement(Imbalance::Hotspot {
            rank: 5,
            factor: 5.0,
        })
        .build_program()
        .unwrap();
    let out = Simulator::new(MachineConfig::new(16))
        .run(&program)
        .unwrap();
    let reduced = out.reduce().unwrap();
    let tree = RegionTree::from_parents(limba_trace::region_parents(&out.trace).unwrap()).unwrap();
    c.bench_function("hierarchical_drilldown_amr", |b| {
        b.iter(|| {
            drilldown(
                std::hint::black_box(&reduced.measurements),
                &tree,
                limba_stats::dispersion::DispersionKind::Euclidean,
                0.5,
            )
            .unwrap()
        });
    });
}

fn bench_evolution(c: &mut Criterion) {
    let trace = simulated_cfd(4).trace;
    let matrices: Vec<_> = limba_trace::reduce_windows(&trace, 16)
        .unwrap()
        .into_iter()
        .map(|w| w.measurements)
        .collect();
    c.bench_function("imbalance_evolution_16_windows", |b| {
        b.iter(|| {
            limba_analysis::evolution::imbalance_evolution(
                std::hint::black_box(&matrices),
                limba_stats::dispersion::DispersionKind::Euclidean,
                0.02,
            )
            .unwrap()
        });
    });
}

criterion_group!(
    benches,
    bench_pipeline,
    bench_analyze_only,
    bench_calibration,
    bench_drilldown,
    bench_evolution
);
criterion_main!(benches);
