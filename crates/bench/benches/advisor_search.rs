//! Benchmarks of the tuning advisor: catalog proposal, analytic
//! prediction, and the full propose → search → verify loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use limba_advisor::{propose, Advisor, BaselineModel, Scenario};
use limba_mpisim::{MachineConfig, Simulator};
use limba_workloads::{cfd::CfdConfig, Imbalance};

fn scenario(ranks: usize) -> Scenario {
    let program = CfdConfig::new(ranks)
        .with_iterations(2)
        .with_imbalance(Imbalance::LinearSkew { spread: 0.4 })
        .with_seed(2003)
        .build_program()
        .unwrap();
    Scenario::new(program, MachineConfig::new(ranks)).unwrap()
}

fn bench_propose_and_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("advisor_search");
    for ranks in [16usize, 64] {
        let s = scenario(ranks);
        group.bench_with_input(BenchmarkId::new("propose", ranks), &s, |b, s| {
            b.iter(|| propose(s));
        });
        let baseline = Simulator::new(s.config.clone())
            .run(&s.program)
            .unwrap()
            .stats
            .makespan;
        let model = BaselineModel::new(&s, baseline);
        let candidates: Vec<Scenario> = propose(&s).iter().map(|i| i.apply(&s).unwrap()).collect();
        group.bench_with_input(
            BenchmarkId::new("predict_catalog", ranks),
            &candidates,
            |b, candidates| {
                b.iter(|| {
                    candidates
                        .iter()
                        .map(|c| model.predict(c).makespan)
                        .sum::<f64>()
                });
            },
        );
    }
    group.finish();
}

fn bench_full_advise(c: &mut Criterion) {
    let mut group = c.benchmark_group("advisor_search");
    group.sample_size(10);
    let s = scenario(16);
    group.bench_function("advise_cfd_16r", |b| {
        b.iter(|| {
            Advisor::new()
                .with_top_k(3)
                .advise(&s)
                .unwrap()
                .candidates
                .len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_propose_and_predict, bench_full_advise);
criterion_main!(benches);
