//! Microbenchmarks of the indices of dispersion: cost per data set as the
//! processor count grows, and the relative cost of the index families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use limba_stats::dispersion::{DispersionIndex, DispersionKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn data(n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(n as u64);
    (0..n).map(|_| rng.gen_range(0.1..10.0)).collect()
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("euclidean_scaling");
    for &n in &[16usize, 64, 256, 1024, 4096] {
        let d = data(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &d, |b, d| {
            b.iter(|| {
                DispersionKind::Euclidean
                    .index(std::hint::black_box(d))
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_kinds(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_kinds_p256");
    let d = data(256);
    for kind in DispersionKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &d, |b, d| {
            b.iter(|| kind.index(std::hint::black_box(d)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_kinds);
criterion_main!(benches);
