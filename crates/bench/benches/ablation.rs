//! Ablation benchmarks over the methodology's design choices: the index
//! of dispersion, the ranking criterion, and the clustering feature
//! scaling — each timed on the same case-study data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use limba_analysis::cluster_regions::{cluster_regions, FeatureScaling};
use limba_analysis::Analyzer;
use limba_stats::dispersion::{DispersionIndex, DispersionKind};
use limba_stats::rank::RankingCriterion;

fn bench_dispersion_choice(c: &mut Criterion) {
    let m = limba_calibrate::paper::paper_measurements().unwrap();
    let mut group = c.benchmark_group("ablation_dispersion");
    for kind in DispersionKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &m, |b, m| {
            b.iter(|| {
                Analyzer::new()
                    .with_dispersion(kind)
                    .analyze(std::hint::black_box(m))
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_criterion_choice(c: &mut Criterion) {
    let m = limba_calibrate::paper::paper_measurements().unwrap();
    let criteria: Vec<(&str, RankingCriterion)> = vec![
        ("maximum", RankingCriterion::Maximum),
        ("top3", RankingCriterion::TopK(3)),
        ("p90", RankingCriterion::Percentile(90.0)),
        ("threshold", RankingCriterion::Threshold(0.001)),
    ];
    let mut group = c.benchmark_group("ablation_criterion");
    for (name, criterion) in criteria {
        group.bench_with_input(BenchmarkId::from_parameter(name), &m, |b, m| {
            b.iter(|| {
                Analyzer::new()
                    .with_criterion(criterion)
                    .analyze(std::hint::black_box(m))
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_feature_scaling(c: &mut Criterion) {
    let m = limba_calibrate::paper::paper_measurements().unwrap();
    let mut group = c.benchmark_group("ablation_feature_scaling");
    for (name, scaling) in [
        ("raw", FeatureScaling::Raw),
        ("zscore", FeatureScaling::ZScore),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &m, |b, m| {
            b.iter(|| cluster_regions(std::hint::black_box(m), 2, 0, scaling).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dispersion_choice,
    bench_criterion_choice,
    bench_feature_scaling
);
criterion_main!(benches);
