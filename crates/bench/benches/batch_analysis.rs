//! Batch-analysis benchmarks: a 16-trace corpus analyzed with 1 vs 4 vs
//! all-CPU worker threads, plus the memoization-cache fast path.
//!
//! The acceptance bar for the parallel execution layer is a >2× speedup
//! at 4 jobs over 1 job on the 16-trace batch; run with
//! `cargo bench -p limba-bench --bench batch_analysis` and compare the
//! `batch_16/jobs=1` and `batch_16/jobs=4` rates. Note the speedup needs
//! real cores: on a single-CPU machine the jobs>1 rows only measure the
//! (small) thread-pool overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use limba_analysis::{Analyzer, BatchAnalyzer, ReportCache};
use limba_bench::random_measurements;
use limba_model::Measurements;

/// A 16-trace corpus, sized so one analysis is substantial enough for
/// thread fan-out to pay (clustering dominates).
fn corpus() -> Vec<Measurements> {
    (0..16)
        .map(|i| random_measurements(48, 64, 0x5EED + i))
        .collect()
}

fn bench_batch(c: &mut Criterion) {
    let traces = corpus();
    let mut group = c.benchmark_group("batch_16");
    group.throughput(Throughput::Elements(traces.len() as u64));
    for jobs in [1usize, 2, 4, 0] {
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            let batch = BatchAnalyzer::new(Analyzer::new()).with_jobs(jobs);
            b.iter(|| batch.analyze_batch(std::hint::black_box(&traces)));
        });
    }
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let traces = corpus();
    let cache = ReportCache::new();
    let batch = BatchAnalyzer::new(Analyzer::new())
        .with_jobs(4)
        .with_cache(cache);
    // Warm the cache once; the measured iterations are all hits.
    batch.analyze_batch(&traces);
    c.bench_function("batch_16_warm_cache", |b| {
        b.iter(|| batch.analyze_batch(std::hint::black_box(&traces)));
    });
}

fn bench_intra_report(c: &mut Criterion) {
    let single = random_measurements(96, 128, 0xA11C);
    let mut group = c.benchmark_group("intra_report");
    for jobs in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            let analyzer = Analyzer::new().with_jobs(jobs);
            b.iter(|| analyzer.analyze(std::hint::black_box(&single)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch, bench_cache, bench_intra_report);
criterion_main!(benches);
