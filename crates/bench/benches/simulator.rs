//! Benchmarks of the message-passing simulator: ops-per-second on the
//! workload suite and scaling with rank count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use limba_mpisim::{MachineConfig, Simulator};
use limba_workloads::{
    cfd::CfdConfig, irregular::IrregularConfig, master_worker::MasterWorkerConfig,
    pipeline::PipelineConfig, stencil::StencilConfig, Imbalance,
};

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_workloads");
    let jitter = Imbalance::RandomJitter { amplitude: 0.2 };
    let programs = vec![
        (
            "cfd_16r_2it",
            CfdConfig::new(16)
                .with_iterations(2)
                .with_imbalance(jitter)
                .build_program()
                .unwrap(),
            16usize,
        ),
        (
            "stencil_4x4_10it",
            StencilConfig::new(4, 4)
                .with_imbalance(jitter)
                .build_program()
                .unwrap(),
            16,
        ),
        (
            "master_worker_16r",
            MasterWorkerConfig::new(16)
                .with_tasks(64)
                .with_imbalance(jitter)
                .build_program()
                .unwrap(),
            16,
        ),
        (
            "pipeline_16s_32i",
            PipelineConfig::new(16)
                .with_items(32)
                .with_imbalance(jitter)
                .build_program()
                .unwrap(),
            16,
        ),
        (
            "irregular_16r_8s",
            IrregularConfig::new(16)
                .with_steps(8)
                .with_imbalance(jitter)
                .build_program()
                .unwrap(),
            16,
        ),
    ];
    for (name, program, ranks) in programs {
        group.throughput(Throughput::Elements(program.total_ops() as u64));
        let sim = Simulator::new(MachineConfig::new(ranks));
        group.bench_with_input(BenchmarkId::from_parameter(name), &program, |b, p| {
            b.iter(|| sim.run(std::hint::black_box(p)).unwrap());
        });
    }
    group.finish();
}

fn bench_rank_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_rank_scaling");
    for &ranks in &[16usize, 64, 256] {
        let program = CfdConfig::new(ranks).build_program().unwrap();
        let sim = Simulator::new(MachineConfig::new(ranks));
        group.throughput(Throughput::Elements(program.total_ops() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &program, |b, p| {
            b.iter(|| sim.run(std::hint::black_box(p)).unwrap());
        });
    }
    group.finish();
}

/// Event-driven wakeup-list scheduler vs the reference polling scheduler
/// on the CFD proxy at growing rank counts. Both cores share the op
/// semantics and produce bit-identical traces, so the delta isolates the
/// scheduling cost: polling rescans all ranks every round, the event
/// engine only touches runnable ones.
fn bench_engine_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_engine");
    for &ranks in &[16usize, 64, 256] {
        let program = CfdConfig::new(ranks).build_program().unwrap();
        let sim = Simulator::new(MachineConfig::new(ranks));
        group.throughput(Throughput::Elements(program.total_ops() as u64));
        group.bench_with_input(BenchmarkId::new("event", ranks), &program, |b, p| {
            b.iter(|| sim.run(std::hint::black_box(p)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("polling", ranks), &program, |b, p| {
            b.iter(|| sim.run_polling(std::hint::black_box(p)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_workloads,
    bench_rank_scaling,
    bench_engine_comparison
);
criterion_main!(benches);
