//! Benchmarks of k-means clustering: the paper's tiny 7-point case and
//! larger region sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use limba_cluster::{KMeans, KMeansConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn points(n: usize, dim: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(42);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..100.0)).collect())
        .collect()
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans");
    for &(n, k) in &[(7usize, 2usize), (100, 4), (1000, 8)] {
        let pts = points(n, 4);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &pts,
            |b, pts| {
                b.iter(|| {
                    KMeans::new(KMeansConfig::new(k).with_seed(1).with_restarts(4))
                        .fit(std::hint::black_box(pts))
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_paper_clustering(c: &mut Criterion) {
    let m = limba_calibrate::paper::paper_measurements().unwrap();
    c.bench_function("paper_region_clustering", |b| {
        b.iter(|| {
            limba_analysis::cluster_regions::cluster_regions(
                std::hint::black_box(&m),
                2,
                0,
                limba_analysis::cluster_regions::FeatureScaling::ZScore,
            )
            .unwrap()
        });
    });
}

criterion_group!(benches, bench_kmeans, bench_paper_clustering);
criterion_main!(benches);
