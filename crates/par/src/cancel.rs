//! Cooperative cancellation.
//!
//! A [`CancelToken`] is a shared flag that long-running work polls at
//! safe points — between parallel work items, between simulator ops,
//! between search depths. Cancellation is *cooperative*: tripping the
//! token never interrupts a computation mid-step, it only stops new
//! steps from starting, so everything a cancelled run has already
//! produced is exactly what an uncancelled run would have produced for
//! the same units of work. That is the property the checkpoint/resume
//! layer builds on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Cloning yields another handle on the
/// *same* flag; cancelling any clone cancels them all.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trips the token. Idempotent; there is no way to un-cancel.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_trips_once_and_for_all_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(!clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        token.cancel(); // idempotent
        assert!(token.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }
}
