//! Deterministic parallel execution primitives.
//!
//! Everything in the limba suite that fans work across threads goes
//! through this crate, and everything here shares one design rule:
//! **results are a pure function of the inputs, never of the thread
//! count or the scheduling order.** That is what lets the test suite
//! prove that `--jobs 1`, `--jobs 4`, and `--jobs N` produce
//! byte-identical reports.
//!
//! The rule is enforced structurally:
//!
//! * [`par_map`] assigns every item an output *slot* by input index.
//!   Threads race only over *which* item they grab next (an atomic
//!   counter, i.e. bounded work-stealing over a shared queue); the
//!   result always lands in its own slot, so the returned `Vec` is in
//!   input order no matter how the work interleaved.
//! * There are no parallel reductions. Anything order-sensitive (float
//!   accumulation, error selection) happens sequentially over the
//!   slotted results.
//! * Random streams are never shared. [`derive_seed`] gives replication
//!   `i` its own statistically independent SplitMix64-derived seed from
//!   a root seed, so a seed-sweep is the same set of runs whether it
//!   executes on one thread or sixteen.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod cancel;

pub use cancel::CancelToken;

/// Resolves a requested job count: `0` means "one job per available CPU",
/// anything else is taken literally.
pub fn effective_jobs(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Splits `0..len` into at most `shards` contiguous, near-equal ranges
/// (sizes differ by at most one, larger shards first). The partition is
/// a pure function of `(len, shards)` — independent of thread count and
/// call order — so deterministic engines can fan sharded work out and
/// merge it back in a fixed order.
///
/// `shards == 0` is treated as 1; `len == 0` yields no ranges.
pub fn shard_ranges(len: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, len);
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// One step of the SplitMix64 generator (Steele, Lea, Flood 2014).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed of replication `index` under `root`: the `index`-th jump of
/// a SplitMix64 stream started at `root`, mixed once more so adjacent
/// indices share no low-bit structure.
///
/// The mapping is pure — independent of thread count, call order, and
/// platform — which makes seed-sweeps reproducible by construction.
pub fn derive_seed(root: u64, index: u64) -> u64 {
    let mut state = root ^ 0x6A09_E667_F3BC_C909; // √2 offset: keep root 0 non-degenerate
    state = state.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    splitmix64(&mut state)
}

/// Applies `f` to every item, using up to `jobs` worker threads, and
/// returns the results **in input order**.
///
/// `jobs == 0` uses one job per available CPU ([`effective_jobs`]);
/// `jobs == 1` (or a batch of one) runs inline with no threads at all,
/// so the single-threaded path is exactly the plain sequential loop.
/// Work is distributed dynamically: each worker claims the next
/// unclaimed index from an atomic counter, which balances uneven item
/// costs without affecting where results land.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = effective_jobs(jobs).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= items.len() {
                    break;
                }
                let result = f(index, &items[index]);
                *slots[index].lock().expect("slot lock") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every slot filled")
        })
        .collect()
}

/// A [`par_map`] that stops claiming new items once `cancel` trips.
///
/// Items already being processed when the token trips still complete
/// and land in their slots; items never started come back as `None`.
/// The *completed* slots are exactly what [`par_map`] would have
/// produced for those indices — cancellation changes *which* items ran,
/// never *what* an item produced — so a supervisor can checkpoint the
/// `Some` slots and re-run only the `None`s later with byte-identical
/// results.
///
/// With an untripped token this is equivalent to [`par_map`] (every
/// slot is `Some`).
pub fn par_map_cancellable<T, R, F>(
    jobs: usize,
    items: &[T],
    cancel: &CancelToken,
    f: F,
) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = effective_jobs(jobs).min(items.len().max(1));
    if jobs <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| {
                if cancel.is_cancelled() {
                    None
                } else {
                    Some(f(i, t))
                }
            })
            .collect();
    }
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                if cancel.is_cancelled() {
                    break;
                }
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= items.len() {
                    break;
                }
                let result = f(index, &items[index]);
                *slots[index].lock().expect("slot lock") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot lock"))
        .collect()
}

/// Runs two closures, concurrently when `parallel` is true, and returns
/// both results. The pairing `(a, b)` is positional, so the result is
/// identical either way.
pub fn join<A, B, FA, FB>(parallel: bool, fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if !parallel {
        let a = fa();
        let b = fb();
        return (a, b);
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(fb);
        let a = fa();
        let b = handle.join().expect("join closure panicked");
        (a, b)
    })
}

/// Three-way [`join`].
pub fn join3<A, B, C, FA, FB, FC>(parallel: bool, fa: FA, fb: FB, fc: FC) -> (A, B, C)
where
    A: Send,
    B: Send,
    C: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
    FC: FnOnce() -> C + Send,
{
    let (a, (b, c)) = join(parallel, fa, move || join(parallel, fb, fc));
    (a, b, c)
}

/// Four-way [`join`].
#[allow(clippy::type_complexity)]
pub fn join4<A, B, C, D, FA, FB, FC, FD>(
    parallel: bool,
    fa: FA,
    fb: FB,
    fc: FC,
    fd: FD,
) -> (A, B, C, D)
where
    A: Send,
    B: Send,
    C: Send,
    D: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
    FC: FnOnce() -> C + Send,
    FD: FnOnce() -> D + Send,
{
    let ((a, b), (c, d)) = join(
        parallel,
        move || join(parallel, fa, fb),
        move || join(parallel, fc, fd),
    );
    (a, b, c, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for jobs in [0, 1, 2, 3, 8, 64] {
            let got = par_map(jobs, &items, |_, &x| x * 3);
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn par_map_passes_matching_indices() {
        let items = vec![10u64, 20, 30, 40, 50];
        let got = par_map(3, &items, |i, &x| (i, x));
        assert_eq!(got, vec![(0, 10), (1, 20), (2, 30), (3, 40), (4, 50)]);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(4, &[] as &[u8], |_, &x| x), Vec::<u8>::new());
        assert_eq!(par_map(4, &[9u8], |_, &x| x), vec![9]);
    }

    #[test]
    fn par_map_is_identical_across_thread_counts_under_skewed_load() {
        // Heavily skewed per-item cost shuffles completion order; output
        // order must not care.
        let items: Vec<u64> = (0..64).collect();
        let reference = par_map(1, &items, |_, &x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x * x
        });
        for jobs in [2, 4, 16] {
            let got = par_map(jobs, &items, |_, &x| {
                if x % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                x * x
            });
            assert_eq!(got, reference, "jobs={jobs}");
        }
    }

    #[test]
    fn cancellable_par_map_without_cancellation_matches_par_map() {
        let items: Vec<usize> = (0..97).collect();
        let token = CancelToken::new();
        for jobs in [1, 3, 8] {
            let got = par_map_cancellable(jobs, &items, &token, |_, &x| x + 1);
            let want: Vec<Option<usize>> = items.iter().map(|&x| Some(x + 1)).collect();
            assert_eq!(got, want, "jobs={jobs}");
        }
    }

    #[test]
    fn cancelled_before_start_produces_only_none() {
        let items: Vec<usize> = (0..32).collect();
        let token = CancelToken::new();
        token.cancel();
        for jobs in [1, 4] {
            let got = par_map_cancellable(jobs, &items, &token, |_, &x| x);
            assert!(got.iter().all(Option::is_none), "jobs={jobs}");
        }
    }

    #[test]
    fn mid_run_cancellation_keeps_completed_slots_correct() {
        let items: Vec<usize> = (0..64).collect();
        let token = CancelToken::new();
        let trip_at = 10usize;
        let got = par_map_cancellable(1, &items, &token, |i, &x| {
            if i + 1 == trip_at {
                token.cancel();
            }
            x * 2
        });
        // Sequential path: exactly the first `trip_at` items ran.
        for (i, slot) in got.iter().enumerate() {
            if i < trip_at {
                assert_eq!(*slot, Some(i * 2));
            } else {
                assert_eq!(*slot, None);
            }
        }
    }

    #[test]
    fn join_matches_sequential() {
        assert_eq!(join(false, || 1, || 2), join(true, || 1, || 2));
        assert_eq!(join3(true, || "a", || "b", || "c"), ("a", "b", "c"));
        assert_eq!(join4(true, || 1, || 2, || 3, || 4), (1, 2, 3, 4));
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..1000 {
            assert!(seen.insert(derive_seed(42, i)), "collision at {i}");
        }
        // Pure function: same inputs, same seed, forever.
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        assert_ne!(derive_seed(42, 7), derive_seed(43, 7));
        assert_ne!(derive_seed(0, 0), 0);
    }

    #[test]
    fn effective_jobs_resolves_zero_to_cpus() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn shard_ranges_partitions_exactly() {
        for len in [0usize, 1, 2, 7, 64, 65, 1000] {
            for shards in [0usize, 1, 2, 3, 8, 64, 2000] {
                let ranges = shard_ranges(len, shards);
                // Contiguous cover of 0..len, in order, no empty shard.
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "len={len} shards={shards}");
                    assert!(r.end > r.start, "len={len} shards={shards}");
                    next = r.end;
                }
                assert_eq!(next, len, "len={len} shards={shards}");
                if len > 0 {
                    assert_eq!(ranges.len(), shards.clamp(1, len));
                    // Near-equal: sizes differ by at most one.
                    let sizes: Vec<usize> = ranges.iter().map(|r| r.end - r.start).collect();
                    let min = sizes.iter().min().unwrap();
                    let max = sizes.iter().max().unwrap();
                    assert!(max - min <= 1, "len={len} shards={shards}");
                }
            }
        }
    }
}
