//! Filesystem abstraction for durability under fire.
//!
//! Everything in the suite that claims to survive a crash — guard
//! checkpoints, serve spools and run metadata, streamed tracefile
//! writers — performs the same handful of filesystem operations:
//! create, append, read, rename, remove, fsync a file, fsync a
//! directory. This crate names that handful as the [`Vfs`] trait so
//! the durability-critical paths can be driven against three
//! interchangeable backends:
//!
//! * [`StdVfs`] — the real filesystem. `sync` maps to `sync_all`,
//!   `sync_dir` opens the directory and `sync_all`s it (the POSIX
//!   idiom that makes a rename or a new file durable on Linux).
//! * [`MemVfs`] — an in-memory filesystem implementing the *crash
//!   model* the POSIX contract actually guarantees: file content
//!   survives a power cut only up to the last file `sync`; a created
//!   or renamed *name* survives only after its parent directory was
//!   synced. [`MemVfs::crash`] discards everything else, so a test can
//!   cut the power at any point and restart the program on what a
//!   worst-case (but standards-compliant) disk would show.
//! * [`FaultVfs`] — a deterministic fault injector wrapping any other
//!   backend: seeded ENOSPC, EIO, short writes, failed renames, and
//!   power-cut points triggered by operation index, appended-byte
//!   budget, or path substring. Over [`MemVfs`] it drives the
//!   crash-consistency harness; over [`StdVfs`] it lets the CLI E2E
//!   tests fill a "disk" mid-ingest.
//!
//! The trait is deliberately tiny — it covers exactly the operations
//! whose ordering matters for crash consistency, nothing more. Code
//! that only ever reads (analysis, reports) keeps using `std::fs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::panic)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// An open file handle from a [`Vfs`].
pub trait VfsFile: Send {
    /// Appends `data` at the end of the file.
    ///
    /// # Errors
    ///
    /// Backend write failures; an injected fault may persist a prefix
    /// of `data` before failing (a short write).
    fn append(&mut self, data: &[u8]) -> io::Result<()>;

    /// Reads from the current position, advancing it; returns the
    /// byte count, 0 at end of file.
    ///
    /// # Errors
    ///
    /// Backend read failures.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;

    /// Flushes userspace buffers (no durability guarantee).
    ///
    /// # Errors
    ///
    /// Backend write failures.
    fn flush(&mut self) -> io::Result<()>;

    /// Forces the file's content to stable storage (`fsync`). After
    /// this returns, the *content* survives a power cut — the file's
    /// directory entry additionally needs [`Vfs::sync_dir`].
    ///
    /// # Errors
    ///
    /// Backend sync failures.
    fn sync(&mut self) -> io::Result<()>;
}

/// The filesystem operations whose ordering matters for crash
/// consistency. All methods take `&self`; implementations are
/// internally synchronized and handed around as `Arc<dyn Vfs>`.
pub trait Vfs: Send + Sync {
    /// Creates (or truncates) a file for writing.
    ///
    /// # Errors
    ///
    /// Backend open failures.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Opens a file for appending, creating it if missing.
    ///
    /// # Errors
    ///
    /// Backend open failures.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Opens a file for reading from the start.
    ///
    /// # Errors
    ///
    /// `NotFound` when missing, plus backend open failures.
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Renames `from` onto `to` (atomically replacing `to`). The
    /// rename itself is durable only after the parent directory is
    /// synced.
    ///
    /// # Errors
    ///
    /// `NotFound` when `from` is missing, plus backend failures.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// `NotFound` when missing, plus backend failures.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Truncates the file to `len` bytes (used by the recovery scrub
    /// to cut a torn tail back to a sealed boundary).
    ///
    /// # Errors
    ///
    /// `NotFound` when missing, plus backend failures.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;

    /// Forces the directory's entries to stable storage: after this,
    /// files created in / renamed into / removed from `dir` survive a
    /// power cut.
    ///
    /// # Errors
    ///
    /// Backend sync failures.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Creates the directory and its ancestors.
    ///
    /// # Errors
    ///
    /// Backend failures.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// The paths of the files directly inside `dir`, ascending.
    ///
    /// # Errors
    ///
    /// Backend failures.
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// The file's current length in bytes.
    ///
    /// # Errors
    ///
    /// `NotFound` when missing.
    fn len(&self, path: &Path) -> io::Result<u64>;

    /// Whether the file currently exists.
    fn exists(&self, path: &Path) -> bool;

    /// Reads the whole file.
    ///
    /// # Errors
    ///
    /// `NotFound` when missing, plus backend read failures.
    fn read_all(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut file = self.open_read(path)?;
        let mut out = Vec::new();
        let mut buf = [0u8; 64 * 1024];
        loop {
            let n = file.read(&mut buf)?;
            if n == 0 {
                return Ok(out);
            }
            out.extend_from_slice(&buf[..n]);
        }
    }

    /// Convenience: opens the file and syncs its content (`fsync` by
    /// path, for handles owned elsewhere).
    ///
    /// # Errors
    ///
    /// `NotFound` when missing, plus backend sync failures.
    fn sync_path(&self, path: &Path) -> io::Result<()> {
        self.open_append(path)?.sync()
    }
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("{}: no such file", path.display()),
    )
}

// ---------------------------------------------------------------------------
// StdVfs — the real filesystem
// ---------------------------------------------------------------------------

/// The real filesystem. `sync` is `File::sync_all`; `sync_dir` opens
/// the directory and `sync_all`s it.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdVfs;

struct StdFile(std::fs::File);

impl VfsFile for StdFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.0.write_all(data)
    }
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        use std::io::Read;
        self.0.read(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        use std::io::Write;
        self.0.flush()
    }
    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Vfs for StdVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(StdFile(f)))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)?;
        Ok(Box::new(StdFile(f)))
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile(std::fs::File::open(path)?)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing it is the POSIX
        // idiom for making its entries durable (Linux supports it;
        // platforms that don't simply report the error).
        std::fs::File::open(dir)?.sync_all()
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out: Vec<PathBuf> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn read_all(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
}

// ---------------------------------------------------------------------------
// MemVfs — the in-memory crash model
// ---------------------------------------------------------------------------

/// One in-memory file: the live content, the content snapshot at the
/// last file sync, and whether the *name* has reached the directory's
/// stable storage.
#[derive(Debug, Clone, Default)]
struct Node {
    data: Vec<u8>,
    synced: Vec<u8>,
    entry_durable: bool,
}

#[derive(Debug, Default)]
struct MemState {
    nodes: BTreeMap<PathBuf, Node>,
    /// Durable directory entries whose live file was renamed away or
    /// removed without a directory sync yet: a crash resurrects them
    /// with their last-synced content.
    ghosts: BTreeMap<PathBuf, Vec<u8>>,
}

/// An in-memory filesystem implementing the pessimistic POSIX crash
/// model. Clones share state, so the "disk" survives dropping and
/// rebuilding the program state around it; [`MemVfs::crash`] simulates
/// the power cut itself.
#[derive(Debug, Clone, Default)]
pub struct MemVfs {
    state: Arc<Mutex<MemState>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl MemVfs {
    /// An empty in-memory filesystem.
    pub fn new() -> Self {
        MemVfs::default()
    }

    /// Simulates a power cut: every file's content rolls back to its
    /// last-synced snapshot; files whose directory entry was never
    /// synced vanish; ghost entries (durable names renamed away or
    /// removed without a directory sync) reappear with their
    /// last-synced content.
    pub fn crash(&self) {
        let mut st = lock(&self.state);
        let mut survivors: BTreeMap<PathBuf, Node> = BTreeMap::new();
        for (path, node) in std::mem::take(&mut st.nodes) {
            if node.entry_durable {
                survivors.insert(
                    path,
                    Node {
                        data: node.synced.clone(),
                        synced: node.synced,
                        entry_durable: true,
                    },
                );
            }
        }
        for (path, bytes) in std::mem::take(&mut st.ghosts) {
            survivors.entry(path).or_insert_with(|| Node {
                data: bytes.clone(),
                synced: bytes,
                entry_durable: true,
            });
        }
        st.nodes = survivors;
    }

    /// The file's current (volatile) content, for assertions.
    pub fn contents(&self, path: &Path) -> Option<Vec<u8>> {
        lock(&self.state).nodes.get(path).map(|n| n.data.clone())
    }
}

struct MemFile {
    state: Arc<Mutex<MemState>>,
    path: PathBuf,
    pos: usize,
}

impl VfsFile for MemFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        let mut st = lock(&self.state);
        let node = st
            .nodes
            .get_mut(&self.path)
            .ok_or_else(|| not_found(&self.path))?;
        node.data.extend_from_slice(data);
        Ok(())
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let st = lock(&self.state);
        let node = st
            .nodes
            .get(&self.path)
            .ok_or_else(|| not_found(&self.path))?;
        let avail = node.data.len().saturating_sub(self.pos);
        let n = avail.min(buf.len());
        buf[..n].copy_from_slice(&node.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut st = lock(&self.state);
        let node = st
            .nodes
            .get_mut(&self.path)
            .ok_or_else(|| not_found(&self.path))?;
        node.synced = node.data.clone();
        Ok(())
    }
}

impl Vfs for MemVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut st = lock(&self.state);
        // Truncation is volatile like any write: until the next sync,
        // a crash rolls back to the previous synced content; until the
        // next directory sync, a brand-new name vanishes on crash.
        let node = st.nodes.entry(path.to_path_buf()).or_default();
        node.data.clear();
        Ok(Box::new(MemFile {
            state: Arc::clone(&self.state),
            path: path.to_path_buf(),
            pos: 0,
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut st = lock(&self.state);
        st.nodes.entry(path.to_path_buf()).or_default();
        Ok(Box::new(MemFile {
            state: Arc::clone(&self.state),
            path: path.to_path_buf(),
            pos: 0,
        }))
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let st = lock(&self.state);
        if !st.nodes.contains_key(path) {
            return Err(not_found(path));
        }
        Ok(Box::new(MemFile {
            state: Arc::clone(&self.state),
            path: path.to_path_buf(),
            pos: 0,
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = lock(&self.state);
        let node = st.nodes.remove(from).ok_or_else(|| not_found(from))?;
        // A durable old name survives the (not-yet-synced) rename as a
        // ghost: a crash before the directory sync shows the file
        // under its old name with its last-synced content.
        if node.entry_durable {
            st.ghosts.insert(from.to_path_buf(), node.synced.clone());
        }
        let overwritten = st
            .nodes
            .get(to)
            .filter(|old| old.entry_durable)
            .map(|old| old.synced.clone());
        if let Some(synced) = overwritten {
            st.ghosts.insert(to.to_path_buf(), synced);
        }
        st.nodes.insert(
            to.to_path_buf(),
            Node {
                data: node.data,
                // Content durability is per-inode and survives rename.
                synced: node.synced,
                entry_durable: false,
            },
        );
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = lock(&self.state);
        let node = st.nodes.remove(path).ok_or_else(|| not_found(path))?;
        if node.entry_durable {
            st.ghosts.insert(path.to_path_buf(), node.synced);
        }
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut st = lock(&self.state);
        let node = st.nodes.get_mut(path).ok_or_else(|| not_found(path))?;
        node.data.truncate(len as usize);
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut st = lock(&self.state);
        for (path, node) in st.nodes.iter_mut() {
            if path.parent() == Some(dir) {
                node.entry_durable = true;
            }
        }
        st.ghosts.retain(|path, _| path.parent() != Some(dir));
        Ok(())
    }

    fn create_dir_all(&self, _dir: &Path) -> io::Result<()> {
        // Directories are implicit (and treated as durable): the
        // crash model under test is file content and entries, not
        // mkdir itself.
        Ok(())
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let st = lock(&self.state);
        Ok(st
            .nodes
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect())
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        let st = lock(&self.state);
        st.nodes
            .get(path)
            .map(|n| n.data.len() as u64)
            .ok_or_else(|| not_found(path))
    }

    fn exists(&self, path: &Path) -> bool {
        lock(&self.state).nodes.contains_key(path)
    }
}

// ---------------------------------------------------------------------------
// FaultVfs — deterministic fault injection
// ---------------------------------------------------------------------------

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `ENOSPC` — the disk is full. Sticky when triggered by an
    /// appended-byte budget (the disk stays full), one-shot when
    /// triggered by operation index.
    Enospc,
    /// `EIO` — a transient device error on the targeted operation.
    Eio,
    /// A short write: a seeded prefix of the data persists, then the
    /// operation fails with `EIO`.
    ShortWrite,
    /// The targeted rename fails (the classic torn atomic-replace).
    RenameFail,
    /// A power cut: the fault point and *every* operation after it
    /// fail, modeling the process dying mid-sequence. Pair with
    /// [`MemVfs::crash`] to model what the disk shows on reboot.
    PowerCut,
}

impl FaultKind {
    fn parse(s: &str) -> Result<FaultKind, String> {
        match s {
            "enospc" => Ok(FaultKind::Enospc),
            "eio" => Ok(FaultKind::Eio),
            "short" | "short-write" => Ok(FaultKind::ShortWrite),
            "rename" | "rename-fail" => Ok(FaultKind::RenameFail),
            "powercut" | "power-cut" => Ok(FaultKind::PowerCut),
            other => Err(format!(
                "unknown fault kind {other:?} (try enospc, eio, short-write, \
                 rename-fail, power-cut)"
            )),
        }
    }
}

/// When and where a [`FaultVfs`] fires. Parsed from a spec string:
///
/// ```text
/// KIND[:at=N][:after=N][:match=SUBSTR][:seed=N]
/// ```
///
/// `at=N` fires on the N-th matching operation (0-based, counting
/// every operation on matching paths); `after=N` fires once `N` bytes
/// have been appended to matching paths (and keeps failing — a full
/// disk); `match=SUBSTR` restricts the plan to paths containing the
/// substring; `seed` varies the persisted prefix of a short write.
/// With neither `at` nor `after`, `rename-fail` fires on the first
/// rename and every other kind on the first matching operation.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// What happens at the fault point.
    pub kind: FaultKind,
    /// Fire on this 0-based matching-operation index.
    pub at_op: Option<u64>,
    /// Fire once this many bytes have been appended to matching paths.
    pub after_bytes: Option<u64>,
    /// Only operations on paths containing this substring count.
    pub matches: Option<String>,
    /// Seed for the short-write prefix length.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan firing `kind` at its default trigger (see type docs).
    pub fn new(kind: FaultKind) -> Self {
        FaultPlan {
            kind,
            at_op: None,
            after_bytes: None,
            matches: None,
            seed: 0,
        }
    }

    /// Fires on the N-th matching operation.
    #[must_use]
    pub fn at_op(mut self, n: u64) -> Self {
        self.at_op = Some(n);
        self
    }

    /// Fires once `n` bytes were appended to matching paths.
    #[must_use]
    pub fn after_bytes(mut self, n: u64) -> Self {
        self.after_bytes = Some(n);
        self
    }

    /// Restricts the plan to paths containing `substr`.
    #[must_use]
    pub fn matching(mut self, substr: &str) -> Self {
        self.matches = Some(substr.to_string());
        self
    }

    /// Sets the short-write seed.
    #[must_use]
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Parses the `KIND[:at=N][:after=N][:match=S][:seed=N]` spec.
    ///
    /// # Errors
    ///
    /// A description of the malformed part.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut parts = spec.split(':');
        let kind = FaultKind::parse(parts.next().unwrap_or(""))?;
        let mut plan = FaultPlan::new(kind);
        for part in parts {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault option {part:?} is not key=value"))?;
            match key {
                "at" => {
                    plan.at_op = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad operation index {value:?}"))?,
                    );
                }
                "after" => {
                    plan.after_bytes = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad byte budget {value:?}"))?,
                    );
                }
                "match" => plan.matches = Some(value.to_string()),
                "seed" => {
                    plan.seed = value.parse().map_err(|_| format!("bad seed {value:?}"))?;
                }
                other => return Err(format!("unknown fault option {other:?}")),
            }
        }
        Ok(plan)
    }

    fn matches(&self, path: &Path) -> bool {
        match &self.matches {
            Some(s) => path.to_string_lossy().contains(s.as_str()),
            None => true,
        }
    }
}

/// The operation class a [`FaultVfs`] gate call describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Append,
    Read,
    Sync,
    Rename,
    Other,
}

#[derive(Debug, Default)]
struct FaultState {
    ops: u64,
    appended: u64,
    dead: bool,
}

/// Deterministic I/O fault injection over any [`Vfs`] backend. Clones
/// share the operation counters, so every handle the wrapped
/// filesystem hands out advances the same plan.
#[derive(Clone)]
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    plan: FaultPlan,
    state: Arc<Mutex<FaultState>>,
}

/// SplitMix64 — the suite's standard seed mixer, for short-write
/// prefix lengths.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn enospc() -> io::Error {
    // Raw ENOSPC so callers see the real "No space left on device".
    io::Error::from_raw_os_error(28)
}

fn eio() -> io::Error {
    io::Error::from_raw_os_error(5)
}

fn power_cut() -> io::Error {
    io::Error::other("simulated power loss")
}

impl FaultVfs {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: Arc<dyn Vfs>, plan: FaultPlan) -> Self {
        FaultVfs {
            inner,
            plan,
            state: Arc::new(Mutex::new(FaultState::default())),
        }
    }

    /// How many matching operations have been gated so far — run a
    /// scenario once fault-free to enumerate its fault sites.
    pub fn ops(&self) -> u64 {
        lock(&self.state).ops
    }

    /// Whether an injected power cut has fired (all operations fail
    /// from then on).
    pub fn is_dead(&self) -> bool {
        lock(&self.state).dead
    }

    /// Decides the fate of one operation: how many bytes of an append
    /// may proceed (the full `data_len` when nothing fires) and the
    /// error to surface after the allowed prefix, if any.
    fn gate(&self, path: &Path, op: OpKind, data_len: usize) -> (usize, Option<io::Error>) {
        let mut st = lock(&self.state);
        if st.dead {
            return (0, Some(power_cut()));
        }
        if !self.plan.matches(path) {
            return (data_len, None);
        }
        let index = st.ops;
        st.ops += 1;

        let fires = match (self.plan.at_op, self.plan.after_bytes) {
            (Some(n), _) => index == n,
            (None, Some(budget)) => {
                op == OpKind::Append && st.appended.saturating_add(data_len as u64) > budget
            }
            (None, None) => match self.plan.kind {
                FaultKind::RenameFail => op == OpKind::Rename,
                _ => index == 0,
            },
        };
        if !fires {
            if op == OpKind::Append {
                st.appended += data_len as u64;
            }
            return (data_len, None);
        }

        match self.plan.kind {
            FaultKind::Enospc => {
                // Byte-budget mode persists exactly up to the budget —
                // the disk filled mid-write.
                let allowed = match self.plan.after_bytes {
                    Some(budget) if op == OpKind::Append => {
                        (budget.saturating_sub(st.appended) as usize).min(data_len)
                    }
                    _ => 0,
                };
                st.appended += allowed as u64;
                (allowed, Some(enospc()))
            }
            FaultKind::Eio => (0, Some(eio())),
            FaultKind::ShortWrite => {
                let keep = if op == OpKind::Append && data_len > 0 {
                    (mix(self.plan.seed ^ index) % data_len as u64) as usize
                } else {
                    0
                };
                st.appended += keep as u64;
                (keep, Some(eio()))
            }
            FaultKind::RenameFail => {
                if op == OpKind::Rename {
                    (0, Some(eio()))
                } else {
                    if op == OpKind::Append {
                        st.appended += data_len as u64;
                    }
                    (data_len, None)
                }
            }
            FaultKind::PowerCut => {
                st.dead = true;
                (0, Some(power_cut()))
            }
        }
    }

    /// Gate for operations that carry no data: any allowed prefix is
    /// meaningless, only pass/fail matters.
    fn check(&self, path: &Path, op: OpKind) -> io::Result<()> {
        match self.gate(path, op, 0) {
            (_, Some(e)) => Err(e),
            (_, None) => Ok(()),
        }
    }
}

impl std::fmt::Debug for FaultVfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultVfs").field("plan", &self.plan).finish()
    }
}

struct FaultFile {
    inner: Box<dyn VfsFile>,
    path: PathBuf,
    vfs: FaultVfs,
}

impl VfsFile for FaultFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        let (allowed, err) = self.vfs.gate(&self.path, OpKind::Append, data.len());
        // A short write persists its allowed prefix before the error
        // surfaces — exactly what a real torn write leaves on disk.
        if allowed > 0 {
            self.inner.append(&data[..allowed.min(data.len())])?;
        }
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.vfs.check(&self.path, OpKind::Read)?;
        self.inner.read(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    fn sync(&mut self) -> io::Result<()> {
        self.vfs.check(&self.path, OpKind::Sync)?;
        self.inner.sync()
    }
}

impl Vfs for FaultVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.check(path, OpKind::Other)?;
        Ok(Box::new(FaultFile {
            inner: self.inner.create(path)?,
            path: path.to_path_buf(),
            vfs: self.clone(),
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.check(path, OpKind::Other)?;
        Ok(Box::new(FaultFile {
            inner: self.inner.open_append(path)?,
            path: path.to_path_buf(),
            vfs: self.clone(),
        }))
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.check(path, OpKind::Other)?;
        Ok(Box::new(FaultFile {
            inner: self.inner.open_read(path)?,
            path: path.to_path_buf(),
            vfs: self.clone(),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.check(to, OpKind::Rename)?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.check(path, OpKind::Other)?;
        self.inner.remove_file(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.check(path, OpKind::Other)?;
        self.inner.truncate(path, len)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.check(dir, OpKind::Sync)?;
        self.inner.sync_dir(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.read_dir(dir)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        self.inner.len(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    // ---- MemVfs crash model ----

    #[test]
    fn unsynced_content_is_lost_on_crash() {
        let mem = MemVfs::new();
        let mut f = mem.create(&p("/d/a")).unwrap();
        f.append(b"hello").unwrap();
        f.sync().unwrap();
        mem.sync_dir(&p("/d")).unwrap();
        f.append(b" world").unwrap();
        // No sync after the second append.
        mem.crash();
        assert_eq!(mem.read_all(&p("/d/a")).unwrap(), b"hello");
    }

    #[test]
    fn file_without_dir_sync_vanishes_on_crash() {
        let mem = MemVfs::new();
        let mut f = mem.create(&p("/d/a")).unwrap();
        f.append(b"hello").unwrap();
        f.sync().unwrap();
        // Content synced, but the directory entry never was.
        mem.crash();
        assert!(!mem.exists(&p("/d/a")));
    }

    #[test]
    fn rename_without_dir_sync_rolls_back_on_crash() {
        let mem = MemVfs::new();
        // A durable original.
        let mut f = mem.create(&p("/d/ckpt")).unwrap();
        f.append(b"old").unwrap();
        f.sync().unwrap();
        mem.sync_dir(&p("/d")).unwrap();
        // Atomic-replace sequence, minus the final directory sync.
        let mut t = mem.create(&p("/d/ckpt.tmp")).unwrap();
        t.append(b"new").unwrap();
        t.sync().unwrap();
        mem.rename(&p("/d/ckpt.tmp"), &p("/d/ckpt")).unwrap();
        mem.crash();
        // The crash shows the *old* checkpoint — never a torn one.
        assert_eq!(mem.read_all(&p("/d/ckpt")).unwrap(), b"old");
        // With the directory sync, the rename is durable.
        let mut t = mem.create(&p("/d/ckpt.tmp")).unwrap();
        t.append(b"new").unwrap();
        t.sync().unwrap();
        mem.rename(&p("/d/ckpt.tmp"), &p("/d/ckpt")).unwrap();
        mem.sync_dir(&p("/d")).unwrap();
        mem.crash();
        assert_eq!(mem.read_all(&p("/d/ckpt")).unwrap(), b"new");
    }

    #[test]
    fn removed_durable_file_reappears_without_dir_sync() {
        let mem = MemVfs::new();
        let mut f = mem.create(&p("/d/a")).unwrap();
        f.append(b"x").unwrap();
        f.sync().unwrap();
        mem.sync_dir(&p("/d")).unwrap();
        mem.remove_file(&p("/d/a")).unwrap();
        mem.crash();
        assert_eq!(mem.read_all(&p("/d/a")).unwrap(), b"x");
        // Removing *and* syncing the directory makes the unlink stick.
        mem.remove_file(&p("/d/a")).unwrap();
        mem.sync_dir(&p("/d")).unwrap();
        mem.crash();
        assert!(!mem.exists(&p("/d/a")));
    }

    #[test]
    fn truncate_is_volatile_until_synced() {
        let mem = MemVfs::new();
        let mut f = mem.create(&p("/d/a")).unwrap();
        f.append(b"0123456789").unwrap();
        f.sync().unwrap();
        mem.sync_dir(&p("/d")).unwrap();
        mem.truncate(&p("/d/a"), 4).unwrap();
        assert_eq!(mem.len(&p("/d/a")).unwrap(), 4);
        mem.crash();
        assert_eq!(mem.read_all(&p("/d/a")).unwrap(), b"0123456789");
        mem.truncate(&p("/d/a"), 4).unwrap();
        mem.sync_path(&p("/d/a")).unwrap();
        mem.crash();
        assert_eq!(mem.read_all(&p("/d/a")).unwrap(), b"0123");
    }

    // ---- FaultVfs ----

    #[test]
    fn enospc_budget_persists_exactly_the_budget() {
        let mem = MemVfs::new();
        let vfs = FaultVfs::new(
            Arc::new(mem.clone()),
            FaultPlan::parse("enospc:after=10").unwrap(),
        );
        let mut f = vfs.create(&p("/d/a")).unwrap();
        f.append(b"0123456").unwrap();
        let err = f.append(b"789abcd").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28), "{err}");
        // The disk filled at exactly 10 bytes.
        assert_eq!(mem.len(&p("/d/a")).unwrap(), 10);
        // And stays full.
        assert!(f.append(b"x").is_err());
    }

    #[test]
    fn short_write_persists_a_seeded_prefix() {
        let mem = MemVfs::new();
        let vfs = FaultVfs::new(
            Arc::new(mem.clone()),
            FaultPlan::parse("short:at=2:seed=7").unwrap(),
        );
        let mut f = vfs.create(&p("/d/a")).unwrap();
        f.append(b"full-write-ok").unwrap();
        let before = mem.len(&p("/d/a")).unwrap();
        let err = f.append(b"torn-write").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(5), "{err}");
        let after = mem.len(&p("/d/a")).unwrap();
        assert!(after >= before && after < before + 10, "torn tail persisted");
        // Deterministic: the same plan tears at the same byte.
        let mem2 = MemVfs::new();
        let vfs2 = FaultVfs::new(
            Arc::new(mem2.clone()),
            FaultPlan::parse("short:at=2:seed=7").unwrap(),
        );
        let mut f2 = vfs2.create(&p("/d/a")).unwrap();
        f2.append(b"full-write-ok").unwrap();
        let _ = f2.append(b"torn-write");
        assert_eq!(mem2.len(&p("/d/a")).unwrap(), after);
    }

    #[test]
    fn power_cut_kills_every_subsequent_operation() {
        let vfs = FaultVfs::new(
            Arc::new(MemVfs::new()),
            FaultPlan::new(FaultKind::PowerCut).at_op(2),
        );
        let mut f = vfs.create(&p("/d/a")).unwrap(); // op 0
        f.append(b"x").unwrap(); // op 1
        assert!(f.append(b"y").is_err()); // op 2: cut
        assert!(vfs.is_dead());
        assert!(vfs.create(&p("/d/b")).is_err());
        assert!(vfs.sync_dir(&p("/d")).is_err());
    }

    #[test]
    fn match_filter_scopes_the_fault_to_one_path() {
        let mem = MemVfs::new();
        let vfs = FaultVfs::new(
            Arc::new(mem.clone()),
            FaultPlan::parse("enospc:after=0:match=unlucky").unwrap(),
        );
        let mut ok = vfs.create(&p("/d/fine")).unwrap();
        ok.append(b"all good").unwrap();
        let mut bad = vfs.create(&p("/d/unlucky")).unwrap();
        assert!(bad.append(b"nope").is_err());
        assert_eq!(mem.read_all(&p("/d/fine")).unwrap(), b"all good");
    }

    #[test]
    fn rename_fail_hits_only_renames() {
        let mem = MemVfs::new();
        let vfs = FaultVfs::new(Arc::new(mem.clone()), FaultPlan::new(FaultKind::RenameFail));
        let mut f = vfs.create(&p("/d/a.tmp")).unwrap();
        f.append(b"x").unwrap();
        f.sync().unwrap();
        assert!(vfs.rename(&p("/d/a.tmp"), &p("/d/a")).is_err());
        assert!(mem.exists(&p("/d/a.tmp")));
        assert!(!mem.exists(&p("/d/a")));
    }

    #[test]
    fn spec_parsing_rejects_garbage() {
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("whatever").is_err());
        assert!(FaultPlan::parse("enospc:at=x").is_err());
        assert!(FaultPlan::parse("eio:bogus=1").is_err());
        assert!(FaultPlan::parse("eio:at").is_err());
        let plan = FaultPlan::parse("short-write:at=3:match=t0:seed=9").unwrap();
        assert_eq!(plan.kind, FaultKind::ShortWrite);
        assert_eq!(plan.at_op, Some(3));
        assert_eq!(plan.matches.as_deref(), Some("t0"));
        assert_eq!(plan.seed, 9);
    }

    #[test]
    fn std_vfs_round_trips_on_the_real_filesystem() {
        let dir = std::env::temp_dir().join(format!("limba-vfs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let vfs = StdVfs;
        let path = dir.join("file.bin");
        let mut f = vfs.create(&path).unwrap();
        f.append(b"abc").unwrap();
        f.sync().unwrap();
        drop(f);
        let mut g = vfs.open_append(&path).unwrap();
        g.append(b"def").unwrap();
        g.sync().unwrap();
        drop(g);
        vfs.sync_dir(&dir).unwrap();
        assert_eq!(vfs.read_all(&path).unwrap(), b"abcdef");
        assert_eq!(vfs.len(&path).unwrap(), 6);
        vfs.truncate(&path, 4).unwrap();
        assert_eq!(vfs.read_all(&path).unwrap(), b"abcd");
        let renamed = dir.join("file2.bin");
        vfs.rename(&path, &renamed).unwrap();
        assert!(vfs.exists(&renamed) && !vfs.exists(&path));
        assert_eq!(vfs.read_dir(&dir).unwrap(), vec![renamed.clone()]);
        vfs.remove_file(&renamed).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
