//! Composable producer/consumer pipeline stages over zero-copy byte
//! frames.
//!
//! The materialized pipeline builds each stage's full output before the
//! next starts: simulate → [`Trace`] → tracefile → reduce. This crate
//! re-plumbs that as concurrent stages connected by *bounded* channels
//! of [`Bytes`] frames, so a 64k-rank run flows through windowed
//! reduction while holding only O(channel depth × frame) bytes of trace
//! in flight:
//!
//! * [`Stage`] — the contract: a stage consumes items from a
//!   [`StageRx`], produces items into a [`StageTx`], and composes with
//!   [`Stage::then`] into a [`Chain`] whose halves run concurrently.
//!   Channels are bounded ([`bounded`]), so a slow consumer
//!   *backpressures* the producer — the simulator blocks instead of
//!   buffering the trace — and a dropped consumer *cancels* it: sends
//!   fail, the failure latches into the producer's sink, and the
//!   simulation aborts at the next round boundary.
//! * [`FrameSink`] — the simulator-side producer: a
//!   [`TraceSink`] that encodes events into binary-format frames
//!   ([`StreamEncoder`], format version 3) as rounds retire and sends
//!   them downstream.
//! * [`drain_frames`] / [`FoldStage`] — the consumer side: decode
//!   frames ([`StreamDecoder`]) into any [`TraceSink`] fold — salvage
//!   reduction, windowed reduction — without ever holding the trace.
//! * [`stream_reduce`] — the turnkey two-pass driver the CLI and
//!   examples use: a first O(1)-memory pass scans the run's makespan
//!   and activity set (the two facts the reducing folds need up
//!   front), then the pipelined second pass folds frames into the
//!   salvaged and optional windowed reductions. The simulator is
//!   deterministic, so both passes see the identical event stream.
//!
//! Results are **bit-identical** to the materialized path — the folds
//! drive the same per-rank attribution state machines over the same
//! per-rank event orders — which `tests/stream_equivalence.rs` locks
//! across workloads × fault plans × balance plans × frame sizes × job
//! counts.
//!
//! [`Trace`]: limba_trace::Trace
//! [`StreamEncoder`]: limba_trace::StreamEncoder

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

use bytes::Bytes;

use limba_mpisim::{BalancePlan, FaultPlan, Program, RunBudget, SimError, Simulator, StreamOutput};
use limba_trace::stream::StreamScan;
use limba_trace::{
    ReducedTrace, SalvageSink, SalvagedTrace, ScanSink, StreamDecoder, StreamEncoder, TeeSink,
    TraceError, TraceSink, WindowSink,
};

/// Error of a streaming pipeline run.
#[derive(Debug)]
pub enum StreamError {
    /// The peer end of a stage's channel hung up. On its own this is a
    /// symptom, not a cause: [`Chain`] reports the peer's error
    /// instead whenever one exists.
    Disconnected,
    /// The simulation failed.
    Sim(SimError),
    /// Encoding, decoding, or folding the trace stream failed.
    Trace(TraceError),
    /// A stage failed for a reason of its own (e.g. a panic).
    Stage(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Disconnected => write!(f, "pipeline stage disconnected"),
            StreamError::Sim(e) => write!(f, "simulation failed: {e}"),
            StreamError::Trace(e) => write!(f, "trace stream failed: {e}"),
            StreamError::Stage(detail) => write!(f, "pipeline stage failed: {detail}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Sim(e) => Some(e),
            StreamError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for StreamError {
    fn from(e: SimError) -> Self {
        StreamError::Sim(e)
    }
}

impl From<TraceError> for StreamError {
    fn from(e: TraceError) -> Self {
        StreamError::Trace(e)
    }
}

/// Sending half of a bounded stage channel.
pub struct StageTx<T>(SyncSender<T>);

impl<T> Clone for StageTx<T> {
    /// Clones the sender: many producers may feed one consumer through
    /// the same bounded channel (e.g. one server socket per client,
    /// all draining into a shard worker). End-of-stream reaches the
    /// receiver when *every* clone has been dropped.
    fn clone(&self) -> Self {
        StageTx(self.0.clone())
    }
}

impl<T> StageTx<T> {
    /// Sends one item downstream, blocking while the channel is full —
    /// this block is the backpressure that bounds pipeline memory.
    ///
    /// # Errors
    ///
    /// [`StreamError::Disconnected`] when the receiving stage is gone;
    /// the producer must stop and unwind.
    pub fn send(&self, item: T) -> Result<(), StreamError> {
        self.0.send(item).map_err(|_| StreamError::Disconnected)
    }
}

/// Receiving half of a bounded stage channel.
pub struct StageRx<T>(Receiver<T>);

impl<T> StageRx<T> {
    /// Receives the next item, blocking until one arrives; `None` once
    /// the producing stage has finished (or failed) and the channel
    /// drained.
    pub fn recv(&self) -> Option<T> {
        self.0.recv().ok()
    }
}

impl<T> Iterator for StageRx<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.recv()
    }
}

/// Creates a bounded stage channel holding at most `depth` in-flight
/// items. `depth = 0` is a rendezvous channel (every send waits for
/// its recv).
pub fn bounded<T>(depth: usize) -> (StageTx<T>, StageRx<T>) {
    let (tx, rx) = sync_channel(depth);
    (StageTx(tx), StageRx(rx))
}

/// One stage of a streaming pipeline: consumes `In` items, produces
/// `Out` items, runs to completion on its own thread when chained.
///
/// The contract:
///
/// * a stage returns `Ok(())` after consuming its input to exhaustion
///   (or, for sources, producing all its output) and dropping/letting
///   go of its `tx` — which is what signals end-of-stream downstream;
/// * a stage that fails returns its error *without* draining its
///   input; the abandoned channel ends the upstream stage's next send
///   with [`StreamError::Disconnected`], propagating cancellation
///   backwards;
/// * a stage whose send fails with `Disconnected` stops immediately
///   and returns that error — [`Chain`] reports the downstream cause
///   in its place.
pub trait Stage: Send + Sized {
    /// Items consumed.
    type In: Send;
    /// Items produced.
    type Out: Send;

    /// Runs the stage to completion.
    ///
    /// # Errors
    ///
    /// Whatever the stage's work surfaces, per the contract above.
    fn run(self, rx: StageRx<Self::In>, tx: StageTx<Self::Out>) -> Result<(), StreamError>;

    /// Composes this stage with `next` over a bounded channel of
    /// `depth` items: `self` runs on a spawned thread, `next` on the
    /// calling thread, concurrently.
    fn then<S>(self, depth: usize, next: S) -> Chain<Self, S>
    where
        S: Stage<In = Self::Out>,
    {
        Chain {
            first: self,
            depth,
            second: next,
        }
    }
}

/// Two stages composed over a bounded channel — itself a [`Stage`],
/// so chains compose into longer chains.
pub struct Chain<A, B> {
    first: A,
    depth: usize,
    second: B,
}

impl<A, B> Stage for Chain<A, B>
where
    A: Stage,
    B: Stage<In = A::Out>,
{
    type In = A::In;
    type Out = B::Out;

    fn run(self, rx: StageRx<Self::In>, tx: StageTx<Self::Out>) -> Result<(), StreamError> {
        let Chain {
            first,
            depth,
            second,
        } = self;
        let (mid_tx, mid_rx) = bounded(depth);
        std::thread::scope(|s| {
            let producer = s.spawn(move || first.run(rx, mid_tx));
            let second_result = second.run(mid_rx, tx);
            let first_result = producer
                .join()
                .unwrap_or_else(|_| Err(StreamError::Stage("pipeline stage panicked".into())));
            // A `Disconnected` is the echo of the *other* stage's
            // failure — report the cause, not the symptom.
            match (first_result, second_result) {
                (Ok(()), Ok(())) => Ok(()),
                (Err(StreamError::Disconnected), Err(e)) => Err(e),
                (Err(e), _) => Err(e),
                (Ok(()), Err(e)) => Err(e),
            }
        })
    }
}

/// Drives a whole pipeline: a closed (immediately end-of-stream) input
/// and a drained output. The `stage` is typically a [`Chain`] whose
/// source ignores its input and whose sink produces nothing.
///
/// # Errors
///
/// Whatever the pipeline's stages surface.
pub fn run_pipeline<S: Stage>(stage: S) -> Result<(), StreamError> {
    let (src_tx, src_rx) = bounded::<S::In>(0);
    drop(src_tx);
    let (out_tx, out_rx) = bounded::<S::Out>(0);
    std::thread::scope(|s| {
        let drain = s.spawn(move || while out_rx.recv().is_some() {});
        let result = stage.run(src_rx, out_tx);
        let _ = drain.join();
        result
    })
}

/// The simulator-side frame producer: a [`TraceSink`] that encodes
/// the run into binary-format frames (format version 3) as the engine
/// retires rounds, and sends each frame downstream through a bounded
/// channel. One `events` call from the engine — one frame on the wire;
/// the engine's `frame_events` flush threshold is the frame size.
///
/// When the consumer hangs up, sends fail: the sink flags itself
/// [`disconnected`](FrameSink::disconnected) and returns an error the
/// engine latches, aborting the simulation at the next round boundary
/// — consumer cancellation reaching a running producer.
pub struct FrameSink {
    enc: StreamEncoder,
    tx: StageTx<Bytes>,
    disconnected: bool,
}

impl FrameSink {
    /// Creates a frame producer sending into `tx`.
    pub fn new(tx: StageTx<Bytes>) -> Self {
        FrameSink {
            enc: StreamEncoder::new(),
            tx,
            disconnected: false,
        }
    }

    /// Whether a send failed because the consumer hung up — in which
    /// case the simulation's error is an echo, not a cause.
    pub fn disconnected(&self) -> bool {
        self.disconnected
    }

    fn send(&mut self, frame: Bytes) -> Result<(), TraceError> {
        if frame.is_empty() {
            return Ok(());
        }
        self.tx.send(frame).map_err(|_| {
            self.disconnected = true;
            TraceError::Io(std::io::Error::other("stream consumer disconnected"))
        })
    }
}

impl TraceSink for FrameSink {
    fn begin(&mut self, processors: usize, region_names: &[String]) -> Result<(), TraceError> {
        let header = self.enc.header(processors, region_names)?;
        self.send(header)
    }

    fn events(&mut self, events: &[limba_trace::Event]) -> Result<(), TraceError> {
        let frame = self.enc.frame(events);
        self.send(frame)
    }

    fn finish(&mut self) -> Result<(), TraceError> {
        let trailer = self.enc.finish();
        self.send(trailer)
    }
}

/// Decodes a channel of byte frames into `sink`, verifying the stream
/// end-to-end — the consumer-side counterpart of [`FrameSink`].
///
/// # Errors
///
/// Decoder errors (truncation, corruption, trailing bytes) and
/// whatever `sink` returns.
pub fn drain_frames(rx: StageRx<Bytes>, sink: &mut dyn TraceSink) -> Result<(), TraceError> {
    let mut decoder = StreamDecoder::new();
    while let Some(frame) = rx.recv() {
        decoder.feed(&frame, sink)?;
    }
    decoder.finish(sink)
}

/// Tuning knobs of a streaming run.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Events per emitted frame (the engine's flush threshold).
    pub frame_events: usize,
    /// Bounded channel depth, in frames. In-flight trace bytes are
    /// bounded by roughly `(depth + 2) × frame_events × event size`.
    pub depth: usize,
    /// Worker threads for the simulation engine (1 = sequential event
    /// engine, 0 = all CPUs; same meaning as everywhere else).
    pub jobs: usize,
    /// Fold into this many equal time windows as well (the streaming
    /// [`reduce_windows`](limba_trace::reduce_windows)).
    pub windows: Option<usize>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            frame_events: 4096,
            depth: 8,
            jobs: 1,
            windows: None,
        }
    }
}

/// Everything a streamed simulate→reduce run produces — without the
/// trace, which never existed in one piece.
#[derive(Debug, Clone)]
pub struct StreamedReduction {
    /// Simulation statistics and fault/balance reports.
    pub output: StreamOutput,
    /// The salvaged full reduction with per-rank coverage — identical
    /// to materializing the trace and calling
    /// [`reduce_checked`](limba_trace::reduce_checked).
    pub salvaged: SalvagedTrace,
    /// The windowed reductions, when [`StreamConfig::windows`] asked
    /// for them — identical to the materialized
    /// [`reduce_windows`](limba_trace::reduce_windows).
    pub windows: Option<Vec<ReducedTrace>>,
    /// The first pass's scan: makespan, activity set, event count.
    pub scan: StreamScan,
}

/// The source stage: runs the simulation, producing binary frames.
/// `'t` is the tee's trait-object lifetime, kept separate from the
/// borrows of the run's inputs and outputs (trait-object lifetimes are
/// invariant, so sharing one lifetime would force the caller's tee to
/// live exactly as long as this call's locals).
struct SimulateStage<'a, 't> {
    sim: &'a Simulator,
    program: &'a Program,
    faults: Option<&'a FaultPlan>,
    balance: Option<&'a BalancePlan>,
    budget: Option<&'a RunBudget>,
    frame_events: usize,
    jobs: usize,
    out: &'a mut Option<StreamOutput>,
    /// Extra sink the producer tees the identical event stream into
    /// (e.g. a [`WriteSink`](limba_trace::WriteSink) persisting the
    /// tracefile alongside the pipelined reduction).
    tee: Option<&'a mut (dyn TraceSink + Send + 't)>,
}

impl Stage for SimulateStage<'_, '_> {
    type In = ();
    type Out = Bytes;

    fn run(self, _rx: StageRx<()>, tx: StageTx<Bytes>) -> Result<(), StreamError> {
        let mut sink = FrameSink::new(tx);
        let result = match self.tee {
            Some(tee) => {
                let mut teed = TeeSink::new(tee, &mut sink);
                self.sim.run_streaming_parallel_configured(
                    self.program,
                    self.faults,
                    self.balance,
                    self.budget,
                    self.jobs,
                    &mut teed,
                    self.frame_events,
                )
            }
            None => self.sim.run_streaming_parallel_configured(
                self.program,
                self.faults,
                self.balance,
                self.budget,
                self.jobs,
                &mut sink,
                self.frame_events,
            ),
        };
        match result {
            Ok(output) => {
                *self.out = Some(output);
                Ok(())
            }
            // The sink's send failed: the real error is downstream.
            Err(_) if sink.disconnected() => Err(StreamError::Disconnected),
            Err(e) => Err(StreamError::Sim(e)),
        }
    }
}

/// The sink stage: decodes frames and folds them into the salvaged
/// (and optionally windowed) reductions.
struct FoldStage<'a> {
    scan: &'a StreamScan,
    windows: Option<usize>,
    salvaged: &'a mut Option<SalvagedTrace>,
    windowed: &'a mut Option<Vec<ReducedTrace>>,
}

impl Stage for FoldStage<'_> {
    type In = Bytes;
    type Out = ();

    fn run(self, rx: StageRx<Bytes>, _tx: StageTx<()>) -> Result<(), StreamError> {
        let mut salvage = SalvageSink::new(self.scan.activities.clone());
        let mut windowed = match self.windows {
            Some(w) => Some(WindowSink::new(
                w,
                self.scan.makespan,
                self.scan.activities.clone(),
            )?),
            None => None,
        };
        match &mut windowed {
            Some(ws) => {
                let mut tee = TeeSink::new(&mut salvage, ws);
                drain_frames(rx, &mut tee)?;
            }
            None => drain_frames(rx, &mut salvage)?,
        }
        *self.salvaged = salvage.into_salvaged();
        *self.windowed = windowed.and_then(WindowSink::into_windows);
        Ok(())
    }
}

/// The turnkey streaming driver: simulate → frames → salvaged (and
/// optionally windowed) reduction, never materializing the trace.
///
/// Two passes, exploiting the simulator's determinism (both see the
/// identical event stream):
///
/// 1. a direct, channel-free O(1)-memory pass through a
///    [`ScanSink`], learning the makespan and activity set the
///    reducing folds need at construction;
/// 2. the pipelined pass — [`FrameSink`] producer chained over a
///    bounded channel to the decoding fold — where backpressure keeps
///    at most `depth + 2` frames of trace alive at once.
///
/// The results are bit-identical to materializing the trace and
/// reducing it, per the differential harness.
///
/// # Errors
///
/// Simulation errors (including budget interruption and cancellation
/// via [`RunBudget`]), stream codec errors, and the same degenerate
/// window requests as [`reduce_windows`](limba_trace::reduce_windows).
pub fn stream_reduce(
    sim: &Simulator,
    program: &Program,
    faults: Option<&FaultPlan>,
    balance: Option<&BalancePlan>,
    budget: Option<&RunBudget>,
    cfg: &StreamConfig,
) -> Result<StreamedReduction, StreamError> {
    stream_reduce_tee(sim, program, faults, balance, budget, cfg, None)
}

/// [`stream_reduce`] with an optional producer-side tee: the second
/// (pipelined) pass feeds the identical event stream into `tee` as well
/// — e.g. a [`WriteSink`](limba_trace::WriteSink) persisting the
/// chunked tracefile while the reduction folds it, still without ever
/// materializing the trace. The first (scan) pass does not touch the
/// tee, so the tee sees the stream exactly once.
///
/// # Errors
///
/// As [`stream_reduce`], plus whatever the tee surfaces (an error from
/// the tee aborts the simulation like a fold error would).
pub fn stream_reduce_tee(
    sim: &Simulator,
    program: &Program,
    faults: Option<&FaultPlan>,
    balance: Option<&BalancePlan>,
    budget: Option<&RunBudget>,
    cfg: &StreamConfig,
    tee: Option<&mut (dyn TraceSink + Send)>,
) -> Result<StreamedReduction, StreamError> {
    // Pass 1: scan.
    let mut scan_sink = ScanSink::new();
    sim.run_streaming_parallel_configured(
        program,
        faults,
        balance,
        budget,
        cfg.jobs,
        &mut scan_sink,
        cfg.frame_events,
    )?;
    let scan = scan_sink
        .into_scan()
        .ok_or_else(|| StreamError::Stage("scan pass ended before finish".into()))?;

    // Pass 2: pipelined fold.
    let mut output = None;
    let mut salvaged = None;
    let mut windowed = None;
    let source = SimulateStage {
        sim,
        program,
        faults,
        balance,
        budget,
        frame_events: cfg.frame_events,
        jobs: cfg.jobs,
        out: &mut output,
        tee,
    };
    let fold = FoldStage {
        scan: &scan,
        windows: cfg.windows,
        salvaged: &mut salvaged,
        windowed: &mut windowed,
    };
    run_pipeline(source.then(cfg.depth, fold))?;

    let output =
        output.ok_or_else(|| StreamError::Stage("simulation produced no output".into()))?;
    let salvaged =
        salvaged.ok_or_else(|| StreamError::Stage("fold stage produced no reduction".into()))?;
    if cfg.windows.is_some() && windowed.is_none() {
        return Err(StreamError::Stage("fold stage produced no windows".into()));
    }
    Ok(StreamedReduction {
        output,
        salvaged,
        windows: windowed,
        scan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_mpisim::MachineConfig;

    fn machine(ranks: usize) -> Simulator {
        Simulator::new(MachineConfig::new(ranks))
    }

    fn sample_program(ranks: usize) -> Program {
        use limba_mpisim::ProgramBuilder;
        let mut b = ProgramBuilder::new(ranks);
        let work = b.add_region("work");
        b.spmd(|rank, mut ops| {
            ops.enter(work);
            ops.compute(1.0 + rank as f64 * 0.25);
            if ranks > 1 {
                let peer = (rank + 1) % ranks;
                ops.isend(peer, 1024, 0);
                ops.recv((rank + ranks - 1) % ranks);
                ops.wait(0);
            }
            ops.barrier();
            ops.leave(work);
        });
        b.build().expect("valid program")
    }

    #[test]
    fn streamed_reduction_matches_materialized() {
        let ranks = 8;
        let sim = machine(ranks);
        let program = sample_program(ranks);
        let materialized = sim.run(&program).expect("materialized run");
        let batch = materialized.reduce_checked().expect("batch reduce");
        let windows = limba_trace::reduce_windows(&materialized.trace, 4).expect("batch windows");

        for frame_events in [1, 7, 4096] {
            let cfg = StreamConfig {
                frame_events,
                windows: Some(4),
                ..StreamConfig::default()
            };
            let streamed = stream_reduce(&sim, &program, None, None, None, &cfg).expect("streamed");
            assert_eq!(streamed.output.stats, materialized.stats);
            assert_eq!(streamed.salvaged.coverage, batch.coverage);
            assert_eq!(
                streamed.salvaged.reduced.measurements,
                batch.reduced.measurements
            );
            assert_eq!(streamed.salvaged.reduced.counts, batch.reduced.counts);
            let streamed_windows = streamed.windows.expect("windows requested");
            assert_eq!(streamed_windows.len(), windows.len());
            for (s, b) in streamed_windows.iter().zip(&windows) {
                assert_eq!(s.measurements, b.measurements);
                assert_eq!(s.counts, b.counts);
            }
        }
    }

    #[test]
    fn consumer_failure_cancels_the_producer() {
        /// A consumer that dies after one frame.
        struct QuitStage;
        impl Stage for QuitStage {
            type In = Bytes;
            type Out = ();
            fn run(self, rx: StageRx<Bytes>, _tx: StageTx<()>) -> Result<(), StreamError> {
                let _ = rx.recv();
                Err(StreamError::Stage("consumer gave up".into()))
            }
        }

        let ranks = 4;
        let sim = machine(ranks);
        let program = sample_program(ranks);
        let mut out = None;
        let source = SimulateStage {
            sim: &sim,
            program: &program,
            faults: None,
            balance: None,
            budget: None,
            frame_events: 1,
            jobs: 1,
            out: &mut out,
            tee: None,
        };
        let err = run_pipeline(source.then(0, QuitStage)).expect_err("pipeline must fail");
        // The consumer's own error survives; the producer's
        // disconnection echo does not mask it.
        assert!(
            matches!(err, StreamError::Stage(ref d) if d == "consumer gave up"),
            "{err}"
        );
        assert!(out.is_none(), "cancelled run must not produce output");
    }

    #[test]
    fn windowing_an_empty_run_fails_like_the_batch_path() {
        let sim = machine(1);
        let program = {
            let mut b = limba_mpisim::ProgramBuilder::new(1);
            b.rank(0);
            b.build().expect("empty program")
        };
        let cfg = StreamConfig {
            windows: Some(3),
            ..StreamConfig::default()
        };
        let err = stream_reduce(&sim, &program, None, None, None, &cfg).expect_err("no time");
        assert!(err.to_string().contains("spans no time"), "{err}");
    }
}
