//! `limba timeline`: render a tracefile as an SVG timeline.

use std::fs;

use crate::args::parse;

/// Runs `limba timeline <tracefile> [--out PATH] [--width PX]`.
pub fn run(argv: &[String]) -> Result<crate::CmdOutcome, String> {
    let parsed = parse(argv)?;
    let path = parsed
        .positional
        .first()
        .ok_or("timeline needs a tracefile path")?;
    let out = parsed.get("out").unwrap_or("timeline.svg");
    let width: usize = parsed.get_or("width", 1200)?;

    let data = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let trace = if data.starts_with(b"LIMBATRC") {
        limba_trace::binary::from_bytes(&data).map_err(|e| e.to_string())?
    } else {
        let s = std::str::from_utf8(&data).map_err(|e| e.to_string())?;
        limba_trace::text::from_str(s).map_err(|e| e.to_string())?
    };
    let svg = limba_viz::timeline::timeline_svg(&trace, width).map_err(|e| e.to_string())?;
    fs::write(out, svg).map_err(|e| e.to_string())?;
    println!("timeline written to {out}");
    Ok(crate::CmdOutcome::Complete)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_a_simulated_trace() {
        use limba_mpisim::{MachineConfig, Simulator};
        use limba_workloads::cfd::CfdConfig;
        let program = CfdConfig::new(4).build_program().unwrap();
        let out = Simulator::new(MachineConfig::new(4)).run(&program).unwrap();
        let dir = std::env::temp_dir();
        let trace_path = dir.join("limba-timeline-test.trace");
        limba_trace::binary::write(&out.trace, std::fs::File::create(&trace_path).unwrap())
            .unwrap();
        let svg_path = dir.join("limba-timeline-test.svg");
        run(&[
            trace_path.to_str().unwrap().to_string(),
            "--out".to_string(),
            svg_path.to_str().unwrap().to_string(),
        ])
        .unwrap();
        let svg = std::fs::read_to_string(&svg_path).unwrap();
        assert!(svg.starts_with("<svg"));
        std::fs::remove_file(trace_path).ok();
        std::fs::remove_file(svg_path).ok();
    }

    #[test]
    fn missing_file_is_reported() {
        assert!(run(&["/nonexistent.trace".to_string()]).is_err());
    }
}
