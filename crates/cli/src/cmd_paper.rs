//! `limba paper`: regenerate the paper's case study.

use std::fs;
use std::path::Path;

use limba_analysis::Analyzer;
use limba_calibrate::paper::{paper_measurements, paper_measurements_with_tail};
use limba_model::ActivityKind;

use crate::args::{parse, Parsed};

/// Runs `limba paper [--svg DIR]`.
pub fn run(argv: &[String]) -> Result<crate::CmdOutcome, String> {
    let parsed: Parsed = parse(argv)?;
    let loops_only = paper_measurements().map_err(|e| e.to_string())?;
    let with_tail = paper_measurements_with_tail().map_err(|e| e.to_string())?;
    let analyzer = Analyzer::new();
    let report = analyzer.analyze(&loops_only).map_err(|e| e.to_string())?;
    let scaled = analyzer.analyze(&with_tail).map_err(|e| e.to_string())?;

    println!("Reconstruction of the PACT 2003 case study (16-processor CFD code)\n");
    println!("Table 1 — wall clock breakdown:");
    print!("{}", limba_viz::report::render_profile(&report));
    println!("\nTable 2 — indices of dispersion ID_ij:");
    print!("{}", limba_viz::report::render_dispersions(&report));
    // The paper weights ID over the measured loops but scales SID by the
    // whole-program time, so the two columns come from different runs.
    println!("\nTable 3 — activity view:");
    let mut t3 =
        limba_viz::table::TextTable::new(vec!["activity".into(), "ID_A".into(), "SID_A".into()]);
    for s in &report.activity_view.summaries {
        let sid = scaled
            .activity_view
            .summaries
            .iter()
            .find(|x| x.kind == s.kind)
            .map(|x| x.sid)
            .unwrap_or(0.0);
        t3.row(vec![
            s.kind.to_string(),
            format!("{:.5}", s.id),
            format!("{sid:.5}"),
        ]);
    }
    print!("{}", t3.render());
    println!("\nTable 4 — code region view:");
    let mut t4 =
        limba_viz::table::TextTable::new(vec!["loop".into(), "ID_C".into(), "SID_C".into()]);
    for s in &report.region_view.summaries {
        let sid = scaled
            .region_view
            .summary_of(s.region)
            .map(|x| x.sid)
            .unwrap_or(0.0);
        t4.row(vec![
            s.name.clone(),
            format!("{:.5}", s.id),
            format!("{sid:.5}"),
        ]);
    }
    print!("{}", t4.render());
    println!("\nFigure 1 — computation patterns:");
    let fig1 = report
        .pattern_for(ActivityKind::Computation)
        .ok_or("missing computation pattern")?;
    print!("{}", limba_viz::pattern::render(fig1));
    println!("\nFigure 2 — point-to-point patterns:");
    let fig2 = report
        .pattern_for(ActivityKind::PointToPoint)
        .ok_or("missing point-to-point pattern")?;
    print!("{}", limba_viz::pattern::render(fig2));
    println!("\nProcessor view findings:");
    if let Some((p, n)) = report.findings.processors.most_frequently_imbalanced {
        println!(
            "  most frequently imbalanced: processor {} ({n} loops)",
            p.index() + 1
        );
    }
    if let Some((p, t)) = report.findings.processors.longest_imbalanced {
        println!(
            "  imbalanced for the longest time: processor {} ({t:.2} s)",
            p.index() + 1
        );
    }

    if let Some(dir) = parsed.get("svg") {
        let dir = Path::new(dir);
        fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        for (grid, name) in [(fig1, "figure1.svg"), (fig2, "figure2.svg")] {
            let svg = limba_viz::svg::pattern_svg(grid);
            fs::write(dir.join(name), svg).map_err(|e| e.to_string())?;
        }
        let heatmap = limba_viz::svg::processor_heatmap_svg(&report);
        fs::write(dir.join("processor_view.svg"), heatmap).map_err(|e| e.to_string())?;
        println!("\nSVG figures written to {}", dir.display());
    }
    Ok(crate::CmdOutcome::Complete)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_command_runs_and_writes_svgs() {
        let dir = std::env::temp_dir().join("limba-paper-svg-test");
        let args = vec!["--svg".to_string(), dir.to_str().unwrap().to_string()];
        run(&args).unwrap();
        assert!(dir.join("figure1.svg").exists());
        assert!(dir.join("figure2.svg").exists());
        fs::remove_dir_all(&dir).ok();
    }
}
