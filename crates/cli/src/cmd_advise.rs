//! `limba advise`.
//!
//! The closed-loop end of the tool: analyze a scenario, propose typed
//! interventions, predict their gains analytically, and verify the top
//! candidates by re-simulation on both engines. The output is the
//! baseline analysis report with a ranked "recommended interventions"
//! section appended — or, with `--json`, a machine-readable digest.

use limba_advisor::{Advice, Advisor, Scenario};
use limba_analysis::Analyzer;
use limba_mpisim::Simulator;
use limba_workloads::Imbalance;

use crate::args::{parse, parse_imbalance, Parsed};
use crate::cmd_analyze::load_trace_auto;
use crate::cmd_simulate::{build_program, load_fault_plan, render_fault_presets, Engine};

/// Runs `limba advise <tracefile | --workload NAME> [options]`.
pub fn run(argv: &[String]) -> Result<(), String> {
    // `--json` is a bare switch; every other flag takes a value.
    let mut argv = argv.to_vec();
    let json = match argv.iter().position(|a| a == "--json") {
        Some(i) => {
            argv.remove(i);
            true
        }
        None => false,
    };
    let parsed: Parsed = parse(&argv)?;
    if parsed.get("faults") == Some("list") {
        print!("{}", render_fault_presets());
        return Ok(());
    }
    let budget: usize = parsed.get_or("budget", 64)?;
    let top: usize = parsed.get_or("top", 3)?;
    let beam: usize = parsed.get_or("beam", 8)?;
    let depth: usize = parsed.get_or("depth", 2)?;
    let jobs: usize = parsed.get_or("jobs", 1)?;
    let clusters: usize = parsed.get_or("clusters", 2)?;
    let engine = Engine::parse(parsed.get("engine").unwrap_or("event"))?;

    let scenario = match (parsed.get("workload"), parsed.positional.first()) {
        (Some(_), Some(_)) => return Err("advise takes a tracefile or --workload, not both".into()),
        (None, None) => return Err("advise needs a tracefile path or --workload".into()),
        (Some(workload), None) => {
            let ranks: usize = parsed.get_or("ranks", 16)?;
            let iterations: Option<usize> = match parsed.get("iterations") {
                Some(v) => Some(v.parse().map_err(|_| "invalid --iterations")?),
                None => None,
            };
            // Unlike `simulate`, the advisor demo defaults to the
            // paper-style linear skew: a perfectly balanced workload
            // has nothing to advise about.
            let imbalance = match parsed.get("imbalance") {
                Some(spec) => parse_imbalance(spec)?,
                None => Imbalance::LinearSkew { spread: 0.4 },
            };
            let seed: u64 = parsed.get_or("seed", 0)?;
            let program = build_program(workload, ranks, iterations, imbalance, seed)?;
            Scenario::new(program, limba_mpisim::MachineConfig::new(ranks))
                .map_err(|e| e.to_string())?
        }
        (None, Some(path)) => {
            // Close the loop on a recorded trace: rebuild a proxy
            // scenario from its measured computation marginals.
            let trace = load_trace_auto(path)?;
            let salvaged = limba_trace::reduce_checked(&trace).map_err(|e| e.to_string())?;
            Scenario::from_measurements(&salvaged.reduced.measurements)
                .map_err(|e| e.to_string())?
        }
    };

    let faults = match parsed.get("faults") {
        Some(spec) => Some(load_fault_plan(
            spec,
            &scenario.program,
            scenario.program.ranks(),
            engine,
        )?),
        None => None,
    };

    let mut advisor = Advisor::new()
        .with_budget(budget)
        .with_top_k(top)
        .with_beam_width(beam)
        .with_max_depth(depth)
        .with_jobs(jobs)
        .with_analyzer(Analyzer::new().with_cluster_k(clusters));
    if let Some(plan) = faults {
        advisor = advisor.with_faults(plan);
    }
    let advice = advisor.advise(&scenario).map_err(|e| e.to_string())?;

    if json {
        println!("{}", advice_json(&advice));
        return Ok(());
    }

    // The baseline analysis report the recommendations refer to. Both
    // engines produce bit-identical traces, so the report — like the
    // advice — does not depend on the engine choice.
    let sim = Simulator::new(scenario.config.clone());
    let output = match engine {
        Engine::Event => sim.run(&scenario.program),
        Engine::Polling => sim.run_polling(&scenario.program),
    }
    .map_err(|e| e.to_string())?;
    let salvaged = output.reduce_checked().map_err(|e| e.to_string())?;
    let report = Analyzer::new()
        .with_cluster_k(clusters)
        .analyze(&salvaged.reduced.measurements)
        .map_err(|e| e.to_string())?;
    print!("{}", limba_viz::report::render(&report));
    println!();
    print!("{}", limba_viz::advice::render_advice(&advice));
    Ok(())
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Full-precision JSON rendering of an [`Advice`] — floats use Rust's
/// shortest round-trip `Display`, so the bytes are deterministic.
fn advice_json(advice: &Advice) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"baseline_makespan\":{},\"catalog_size\":{},\"evaluated\":{},\"budget\":{},\"candidates\":[",
        advice.baseline_makespan, advice.catalog_size, advice.evaluated, advice.budget
    ));
    for (i, c) in advice.candidates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let labels: Vec<String> = c.labels.iter().map(|l| json_string(l)).collect();
        out.push_str(&format!(
            "{{\"rank\":{},\"labels\":[{}],\"signature\":{},\"predicted\":{{\"makespan\":{},\"lower_bound\":{},\"upper_bound\":{},\"gain\":{},\"submajorized\":{}}}",
            i + 1,
            labels.join(","),
            json_string(&c.signature),
            c.prediction.makespan,
            c.prediction.lower_bound,
            c.prediction.upper_bound,
            c.predicted_gain,
            c.prediction.submajorized
        ));
        match &c.verification {
            Some(v) => {
                let region = match &v.heaviest_region {
                    Some(r) => json_string(r),
                    None => "null".into(),
                };
                out.push_str(&format!(
                    ",\"measured\":{{\"event_makespan\":{},\"polling_makespan\":{},\"gain\":{},\"within_bounds\":{},\"mispredicted\":{},\"heaviest_region\":{}}}}}",
                    v.event_makespan,
                    v.polling_makespan,
                    v.measured_gain,
                    v.within_bounds,
                    v.mispredicted,
                    region
                ));
            }
            None => out.push_str(",\"measured\":null}"),
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_mpisim::{MachineConfig, ProgramBuilder};

    fn small_advice() -> Advice {
        let mut pb = ProgramBuilder::new(4);
        let r = pb.add_region("solve");
        pb.spmd(|rank, mut ops| {
            ops.enter(r)
                .compute(0.3 + 0.3 * rank as f64)
                .barrier()
                .leave(r);
        });
        let scenario = Scenario::new(pb.build().unwrap(), MachineConfig::new(4)).unwrap();
        Advisor::new()
            .with_top_k(1)
            .with_analyzer(Analyzer::new().with_cluster_k(2))
            .advise(&scenario)
            .unwrap()
    }

    #[test]
    fn json_digest_is_well_formed_and_complete() {
        let advice = small_advice();
        let json = advice_json(&advice);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(
            json.matches("\"rank\":").count(),
            advice.candidates.len(),
            "{json}"
        );
        assert!(json.contains("\"baseline_makespan\":"));
        assert!(json.contains("\"within_bounds\":true"), "{json}");
        // Balanced braces and brackets (no string content interferes:
        // labels are plain prose).
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "{json}");
    }

    #[test]
    fn json_strings_escape_control_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
