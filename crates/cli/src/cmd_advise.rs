//! `limba advise`.
//!
//! The closed-loop end of the tool: analyze a scenario, propose typed
//! interventions, predict their gains analytically, and verify the top
//! candidates by re-simulation on both engines. The output is the
//! baseline analysis report with a ranked "recommended interventions"
//! section appended — or, with `--json`, a machine-readable digest.

use std::sync::Arc;

use limba_advisor::{Advice, AdviseError, Advisor, Scenario};
use limba_analysis::Analyzer;
use limba_guard::{CheckpointVerifyCache, RunManifest, StopReason};
use limba_mpisim::Simulator;
use limba_par::CancelToken;
use limba_workloads::Imbalance;

use crate::args::{parse_imbalance, parse_with_switches, Parsed};
use crate::cmd_analyze::load_trace_auto;
use crate::cmd_simulate::{build_program, load_fault_plan, render_fault_presets, Engine};
use crate::supervise::Supervision;

/// Runs `limba advise <tracefile | --workload NAME> [options]`.
pub fn run(argv: &[String]) -> Result<crate::CmdOutcome, String> {
    let parsed: Parsed = parse_with_switches(argv, crate::supervise::SWITCHES)?;
    let json = parsed.has("json");
    if parsed.get("faults") == Some("list") {
        print!("{}", render_fault_presets());
        return Ok(crate::CmdOutcome::Complete);
    }
    let supervision = Supervision::from_args(&parsed)?;
    let budget: usize = parsed.get_or("budget", 64)?;
    let top: usize = parsed.get_or("top", 3)?;
    let beam: usize = parsed.get_or("beam", 8)?;
    let depth: usize = parsed.get_or("depth", 2)?;
    let jobs: usize = parsed.get_or("jobs", 1)?;
    let clusters: usize = parsed.get_or("clusters", 2)?;
    let engine = Engine::parse(parsed.get("engine").unwrap_or("event"))?;

    // `source` identifies the scenario for the verification-cache
    // fingerprint: the full workload spec, or the tracefile's content
    // hash (so an overwritten trace never replays a stale cache).
    let (scenario, source) = match (parsed.get("workload"), parsed.positional.first()) {
        (Some(_), Some(_)) => return Err("advise takes a tracefile or --workload, not both".into()),
        (None, None) => return Err("advise needs a tracefile path or --workload".into()),
        (Some(workload), None) => {
            let ranks: usize = parsed.get_or("ranks", 16)?;
            let iterations: Option<usize> = match parsed.get("iterations") {
                Some(v) => Some(v.parse().map_err(|_| "invalid --iterations")?),
                None => None,
            };
            // Unlike `simulate`, the advisor demo defaults to the
            // paper-style linear skew: a perfectly balanced workload
            // has nothing to advise about.
            let imbalance = match parsed.get("imbalance") {
                Some(spec) => parse_imbalance(spec)?,
                None => Imbalance::LinearSkew { spread: 0.4 },
            };
            let seed: u64 = parsed.get_or("seed", 0)?;
            let program = build_program(workload, ranks, iterations, imbalance, seed)?;
            let source = format!(
                "workload={workload}|ranks={ranks}|iterations={iterations:?}|imbalance={imbalance:?}|seed={seed}"
            );
            let scenario = Scenario::new(program, limba_mpisim::MachineConfig::new(ranks))
                .map_err(|e| e.to_string())?;
            (scenario, source)
        }
        (None, Some(path)) => {
            // Close the loop on a recorded trace: rebuild a proxy
            // scenario from its measured computation marginals.
            let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let source = format!("trace-content=0x{:016x}", limba_guard::fnv1a(&bytes));
            let trace = load_trace_auto(path)?;
            let salvaged = limba_trace::reduce_checked(&trace).map_err(|e| e.to_string())?;
            let scenario = Scenario::from_measurements(&salvaged.reduced.measurements)
                .map_err(|e| e.to_string())?;
            (scenario, source)
        }
    };

    let faults = match parsed.get("faults") {
        Some(spec) => Some(load_fault_plan(
            spec,
            &scenario.program,
            scenario.program.ranks(),
            engine,
        )?),
        None => None,
    };

    // The fingerprint covers everything that affects which verifications
    // run and what they measure; `jobs` and `engine` are excluded (the
    // advice is byte-identical under both).
    let fingerprint = limba_guard::config_fingerprint(&format!(
        "advise|{source}|budget={budget}|top={top}|beam={beam}|depth={depth}|clusters={clusters}|faults={:?}",
        parsed.get("faults")
    ));

    let mut advisor = Advisor::new()
        .with_budget(budget)
        .with_top_k(top)
        .with_beam_width(beam)
        .with_max_depth(depth)
        .with_jobs(jobs)
        .with_analyzer(Analyzer::new().with_cluster_k(clusters));
    if let Some(plan) = faults {
        advisor = advisor.with_faults(plan);
    }

    // Supervision: a deadline watchdog trips the advisor's cancel token,
    // and `--checkpoint` persists each finished verification so a resumed
    // run replays it instead of re-simulating.
    let cancel = CancelToken::new();
    if supervision.deadline.is_some() || supervision.max_units.is_some() {
        advisor = advisor.with_cancel(cancel.clone());
    }
    if let Some(deadline) = supervision.deadline {
        let token = cancel.clone();
        std::thread::spawn(move || {
            std::thread::sleep(deadline);
            token.cancel();
        });
    }
    let cache = match &supervision.checkpoint {
        Some(path) => {
            let mut cache = CheckpointVerifyCache::open(path, fingerprint, supervision.resume)
                .map_err(|e| e.to_string())?;
            if let Some(cap) = supervision.max_units {
                cache = cache.with_interrupt_after(cap, cancel.clone());
            }
            let cache = Arc::new(cache);
            advisor = advisor.with_verify_cache(cache.clone());
            Some(cache)
        }
        None => {
            if supervision.max_units.is_some() {
                return Err("advise honors --max-units only with --checkpoint".into());
            }
            None
        }
    };

    let advice = match advisor.advise(&scenario) {
        Ok(advice) => advice,
        Err(AdviseError::Interrupted { detail }) => {
            let stopped = if supervision.deadline.is_some() && supervision.max_units.is_none() {
                StopReason::DeadlineExpired
            } else if supervision.max_units.is_some() {
                StopReason::UnitCapReached
            } else {
                StopReason::Cancelled
            };
            let (completed, cached) = cache
                .as_ref()
                .map(|c| (c.puts(), c.hits()))
                .unwrap_or((0, 0));
            eprintln!(
                "advise interrupted ({detail}): {completed} verification(s) finished this run, {cached} replayed from the checkpoint{}",
                if supervision.checkpoint.is_some() {
                    " — rerun with --resume to continue"
                } else {
                    ""
                }
            );
            supervision.write_manifest(&advise_manifest(
                fingerprint,
                top,
                completed,
                cached,
                Some(stopped),
            ))?;
            if let Some(cache) = &cache {
                if let Some(e) = cache.take_save_error() {
                    return Err(format!("checkpoint save failed: {e}"));
                }
            }
            return Ok(crate::CmdOutcome::Partial);
        }
        Err(e) => return Err(e.to_string()),
    };
    if let Some(cache) = &cache {
        if let Some(e) = cache.take_save_error() {
            return Err(format!("checkpoint save failed: {e}"));
        }
    }
    let (completed, cached) = cache
        .as_ref()
        .map(|c| (c.puts(), c.hits()))
        .unwrap_or((0, 0));
    supervision.write_manifest(&advise_manifest(fingerprint, top, completed, cached, None))?;

    if json {
        println!("{}", advice_json(&advice));
        return Ok(crate::CmdOutcome::Complete);
    }

    // The baseline analysis report the recommendations refer to. Both
    // engines produce bit-identical traces, so the report — like the
    // advice — does not depend on the engine choice.
    let sim = Simulator::new(scenario.config.clone());
    let output = match engine {
        Engine::Event => sim.run(&scenario.program),
        Engine::EventPar => sim.run_event_parallel(&scenario.program, jobs),
        Engine::Polling => sim.run_polling(&scenario.program),
    }
    .map_err(|e| e.to_string())?;
    let salvaged = output.reduce_checked().map_err(|e| e.to_string())?;
    let report = Analyzer::new()
        .with_cluster_k(clusters)
        .analyze(&salvaged.reduced.measurements)
        .map_err(|e| e.to_string())?;
    print!("{}", limba_viz::report::render(&report));
    println!();
    print!("{}", limba_viz::advice::render_advice(&advice));
    Ok(crate::CmdOutcome::Complete)
}

/// The run manifest for an advise invocation: units are simulate-verify
/// jobs, `completed` the verifications run fresh this invocation and
/// `cached` the ones replayed from the checkpoint.
fn advise_manifest(
    fingerprint: u64,
    top: usize,
    completed: usize,
    cached: usize,
    stopped: Option<StopReason>,
) -> RunManifest {
    RunManifest {
        kind: limba_guard::VERIFY_KIND.to_string(),
        fingerprint,
        total: if stopped.is_some() {
            top.max(completed + cached)
        } else {
            completed + cached
        },
        completed,
        cached,
        failures: Vec::new(),
        skipped: if stopped.is_some() {
            top.saturating_sub(completed + cached)
        } else {
            0
        },
        retries: 0,
        stopped,
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Full-precision JSON rendering of an [`Advice`] — floats use Rust's
/// shortest round-trip `Display`, so the bytes are deterministic.
fn advice_json(advice: &Advice) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"baseline_makespan\":{},\"catalog_size\":{},\"evaluated\":{},\"budget\":{},\"candidates\":[",
        advice.baseline_makespan, advice.catalog_size, advice.evaluated, advice.budget
    ));
    for (i, c) in advice.candidates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let labels: Vec<String> = c.labels.iter().map(|l| json_string(l)).collect();
        out.push_str(&format!(
            "{{\"rank\":{},\"labels\":[{}],\"signature\":{},\"predicted\":{{\"makespan\":{},\"lower_bound\":{},\"upper_bound\":{},\"gain\":{},\"submajorized\":{}}}",
            i + 1,
            labels.join(","),
            json_string(&c.signature),
            c.prediction.makespan,
            c.prediction.lower_bound,
            c.prediction.upper_bound,
            c.predicted_gain,
            c.prediction.submajorized
        ));
        match &c.verification {
            Some(v) => {
                let region = match &v.heaviest_region {
                    Some(r) => json_string(r),
                    None => "null".into(),
                };
                out.push_str(&format!(
                    ",\"measured\":{{\"event_makespan\":{},\"polling_makespan\":{},\"gain\":{},\"within_bounds\":{},\"mispredicted\":{},\"heaviest_region\":{}}}}}",
                    v.event_makespan,
                    v.polling_makespan,
                    v.measured_gain,
                    v.within_bounds,
                    v.mispredicted,
                    region
                ));
            }
            None => out.push_str(",\"measured\":null}"),
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_mpisim::{MachineConfig, ProgramBuilder};

    fn small_advice() -> Advice {
        let mut pb = ProgramBuilder::new(4);
        let r = pb.add_region("solve");
        pb.spmd(|rank, mut ops| {
            ops.enter(r)
                .compute(0.3 + 0.3 * rank as f64)
                .barrier()
                .leave(r);
        });
        let scenario = Scenario::new(pb.build().unwrap(), MachineConfig::new(4)).unwrap();
        Advisor::new()
            .with_top_k(1)
            .with_analyzer(Analyzer::new().with_cluster_k(2))
            .advise(&scenario)
            .unwrap()
    }

    #[test]
    fn json_digest_is_well_formed_and_complete() {
        let advice = small_advice();
        let json = advice_json(&advice);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(
            json.matches("\"rank\":").count(),
            advice.candidates.len(),
            "{json}"
        );
        assert!(json.contains("\"baseline_makespan\":"));
        assert!(json.contains("\"within_bounds\":true"), "{json}");
        // Balanced braces and brackets (no string content interferes:
        // labels are plain prose).
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "{json}");
    }

    #[test]
    fn json_strings_escape_control_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
