//! `limba analyze`.

use std::fs;
use std::io::Read as _;

use limba_analysis::Analyzer;
use limba_stats::dispersion::DispersionKind;
use limba_stats::rank::RankingCriterion;
use limba_trace::stream::StreamScan;
use limba_trace::{
    ReducedTrace, SalvageSink, SalvagedTrace, ScanSink, StreamDecoder, Trace, TraceSink, WindowSink,
};

use crate::args::{parse_with_switches, Parsed};

/// Chunk size for `--from-stream` file reads: the analysis never holds
/// more than this much of the tracefile (plus fold state) at once.
const STREAM_CHUNK: usize = 64 * 1024;

pub(crate) fn parse_dispersion(name: &str) -> Result<DispersionKind, String> {
    DispersionKind::ALL
        .into_iter()
        .find(|k| {
            use limba_stats::dispersion::DispersionIndex;
            k.name() == name
        })
        .ok_or_else(|| format!("unknown dispersion index {name:?}"))
}

pub(crate) fn parse_criterion(spec: &str) -> Result<RankingCriterion, String> {
    let bad = || format!("invalid criterion spec {spec:?}");
    match spec.split_once(':') {
        None if spec == "max" => Ok(RankingCriterion::Maximum),
        Some(("topk", n)) => Ok(RankingCriterion::TopK(n.parse().map_err(|_| bad())?)),
        Some(("threshold", x)) => Ok(RankingCriterion::Threshold(x.parse().map_err(|_| bad())?)),
        Some(("percentile", p)) => Ok(RankingCriterion::Percentile(p.parse().map_err(|_| bad())?)),
        _ => Err(bad()),
    }
}

/// Loads a tracefile with format auto-detection (shared with `compare`).
pub(crate) fn load_trace_auto(path: &str) -> Result<Trace, String> {
    load_trace(path, "auto")
}

fn load_trace(path: &str, format: &str) -> Result<Trace, String> {
    let data = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let as_binary = |d: &[u8]| limba_trace::binary::from_bytes(d).map_err(|e| e.to_string());
    let as_text = |d: &[u8]| {
        let s = std::str::from_utf8(d).map_err(|e| e.to_string())?;
        limba_trace::text::from_str(s).map_err(|e| e.to_string())
    };
    match format {
        "binary" => as_binary(&data),
        "text" => as_text(&data),
        "auto" => {
            if data.starts_with(b"LIMBATRC") {
                as_binary(&data)
            } else {
                as_text(&data)
            }
        }
        other => Err(format!("unknown trace format {other:?}")),
    }
}

/// Fails the analysis when a salvaged trace recovered no measured time.
///
/// Salvage is for partially damaged runs (crashes, interruptions):
/// truncated ranks keep their lower-bound data and get flagged in
/// the coverage section. But when the salvage recovered no measured
/// time at all, a report would be all zeros dressed up as data —
/// fail with the trace diagnosis instead.
pub(crate) fn guard_salvage(salvaged: &SalvagedTrace) -> Result<(), String> {
    let SalvagedTrace { reduced, coverage } = salvaged;
    if coverage.iter().any(|c| !c.complete) && reduced.measurements.total_time() <= 0.0 {
        let truncated = coverage.iter().filter(|c| !c.complete).count();
        return Err(limba_trace::TraceError::Malformed {
            detail: format!(
                "unsalvageable trace: {truncated} of {} ranks truncated and no measured time survives",
                coverage.len()
            ),
        }
        .to_string());
    }
    Ok(())
}

/// Builds the analysis report for a reduction. Counting parameters
/// (message/byte distributions) render as part of the report when the
/// trace recorded any.
pub(crate) fn build_report(
    reduced: &ReducedTrace,
    dispersion: DispersionKind,
    criterion: RankingCriterion,
    clusters: usize,
) -> Result<limba_analysis::Report, String> {
    Analyzer::new()
        .with_dispersion(dispersion)
        .with_criterion(criterion)
        .with_cluster_k(clusters)
        .analyze_with_counts(&reduced.measurements, &reduced.counts)
        .map_err(|e| e.to_string())
}

fn write_csv(parsed: &Parsed, report: &limba_analysis::Report) -> Result<(), String> {
    if let Some(dir) = parsed.get("csv") {
        let dir = std::path::Path::new(dir);
        fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        let files = [
            ("profile.csv", limba_viz::csv::profile_csv(report)),
            ("dispersions.csv", limba_viz::csv::dispersions_csv(report)),
            ("summaries.csv", limba_viz::csv::summaries_csv(report)),
            (
                "processor_view.csv",
                limba_viz::csv::processor_view_csv(report),
            ),
        ];
        for (name, content) in files {
            fs::write(dir.join(name), content).map_err(|e| e.to_string())?;
        }
        println!("\ncsv tables written to {}", dir.display());
    }
    Ok(())
}

/// Prints the imbalance-evolution section from pre-sliced windows.
pub(crate) fn print_evolution(
    sliced: Vec<ReducedTrace>,
    dispersion: DispersionKind,
    windows: usize,
) -> Result<(), String> {
    let matrices: Vec<_> = sliced.into_iter().map(|w| w.measurements).collect();
    let evolution = limba_analysis::evolution::imbalance_evolution(&matrices, dispersion, 0.02)
        .map_err(|e| e.to_string())?;
    print!(
        "{}",
        limba_viz::report::render_evolution(&evolution, windows)
    );
    Ok(())
}

/// Feeds a binary tracefile through a [`TraceSink`] in bounded chunks.
///
/// Memory held at once is one `STREAM_CHUNK` read buffer plus whatever
/// fold state the sink keeps — the tracefile itself is never resident.
fn feed_stream_file(path: &str, sink: &mut dyn TraceSink) -> Result<(), String> {
    let mut file = fs::File::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut decoder = StreamDecoder::new();
    let mut buf = vec![0u8; STREAM_CHUNK];
    loop {
        let n = file
            .read(&mut buf)
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        if n == 0 {
            break;
        }
        decoder.feed(&buf[..n], sink).map_err(|e| e.to_string())?;
    }
    decoder.finish(sink).map_err(|e| e.to_string())
}

/// Pass 1 of the streamed analysis: scan the tracefile for the trace
/// preamble the folds need up front (makespan for window boundaries,
/// the activity universe for matrix shape).
fn scan_stream_file(path: &str) -> Result<StreamScan, String> {
    let mut scan = ScanSink::new();
    feed_stream_file(path, &mut scan)?;
    scan.into_scan()
        .ok_or_else(|| "stream scan did not complete".to_string())
}

/// Pass 2 of the streamed analysis: fold the tracefile into a salvaged
/// reduction without ever materializing the event list.
fn fold_stream_file(path: &str, scan: &StreamScan) -> Result<SalvagedTrace, String> {
    let mut salvage = SalvageSink::new(scan.activities.clone());
    feed_stream_file(path, &mut salvage)?;
    salvage
        .into_salvaged()
        .ok_or_else(|| "stream fold did not complete".to_string())
}

/// `--from-stream`: bounded-memory passes over the tracefile (scan,
/// salvage fold, and — when requested — window fold), then the same
/// report path as the materialized analysis, in the same order, so the
/// two modes print byte-identical output and fail at the same points.
fn run_from_stream(
    parsed: &Parsed,
    path: &str,
    dispersion: DispersionKind,
    criterion: RankingCriterion,
    clusters: usize,
    windows: usize,
) -> Result<crate::CmdOutcome, String> {
    if parsed.get("drilldown").map(|v| v != "off").unwrap_or(false) {
        return Err("--drilldown needs the materialized trace; drop --from-stream".into());
    }
    match parsed.get("format").unwrap_or("auto") {
        "auto" | "binary" => {}
        other => return Err(format!("--from-stream reads binary traces, not {other:?}")),
    }
    let scan = scan_stream_file(path)?;
    let salvaged = fold_stream_file(path, &scan)?;
    guard_salvage(&salvaged)?;
    let report = build_report(&salvaged.reduced, dispersion, criterion, clusters)?;
    print!(
        "{}",
        limba_viz::report::render_with_coverage(&report, &salvaged.coverage)
    );
    write_csv(parsed, &report)?;
    if windows > 0 {
        // Separate pass, placed after the report like the materialized
        // windows section — a stream that cannot be windowed (e.g. a
        // crash-truncated run) fails here with the batch path's error,
        // after the salvageable part of the analysis has printed.
        let mut windowed = WindowSink::new(windows, scan.makespan, scan.activities.clone())
            .map_err(|e| e.to_string())?;
        feed_stream_file(path, &mut windowed)?;
        let sliced = windowed
            .into_windows()
            .ok_or_else(|| "stream fold did not complete".to_string())?;
        print_evolution(sliced, dispersion, windows)?;
    }
    Ok(crate::CmdOutcome::Complete)
}

/// Runs `limba analyze <tracefile> [options]`.
pub fn run(argv: &[String]) -> Result<crate::CmdOutcome, String> {
    let parsed: Parsed = parse_with_switches(argv, &["from-stream"])?;
    let path = parsed
        .positional
        .first()
        .ok_or("analyze needs a tracefile path")?;
    let format = parsed.get("format").unwrap_or("auto");
    let dispersion = parse_dispersion(parsed.get("dispersion").unwrap_or("euclidean"))?;
    let criterion = parse_criterion(parsed.get("criterion").unwrap_or("max"))?;
    let clusters: usize = parsed.get_or("clusters", 2)?;

    let windows: usize = parsed.get_or("windows", 0)?;

    if path == "-" {
        // The streamed analysis makes several bounded-memory passes
        // (scan, fold, optional windows), and stdin only plays once —
        // spool it to a temp file, analyze that, clean up. Memory
        // stays bounded; disk holds the trace exactly once.
        if !parsed.has("from-stream") {
            return Err("analyze - reads a trace stream from stdin; add --from-stream".into());
        }
        let spool = std::env::temp_dir().join(format!("limba-stdin-{}.trc", std::process::id()));
        let copy = (|| -> Result<(), String> {
            let mut file = fs::File::create(&spool)
                .map_err(|e| format!("cannot create {}: {e}", spool.display()))?;
            std::io::copy(&mut std::io::stdin().lock(), &mut file)
                .map_err(|e| format!("cannot spool stdin: {e}"))?;
            Ok(())
        })();
        let result = copy.and_then(|()| {
            run_from_stream(
                &parsed,
                &spool.to_string_lossy(),
                dispersion,
                criterion,
                clusters,
                windows,
            )
        });
        let _ = fs::remove_file(&spool);
        return result;
    }

    if parsed.has("from-stream") {
        return run_from_stream(&parsed, path, dispersion, criterion, clusters, windows);
    }

    let trace = load_trace(path, format)?;
    // Salvaging reduction: truncated ranks (crashed / interrupted runs)
    // are closed out at their last event and flagged in a coverage
    // section instead of failing the whole analysis.
    let salvaged = limba_trace::reduce_checked(&trace).map_err(|e| e.to_string())?;
    guard_salvage(&salvaged)?;
    let SalvagedTrace { reduced, coverage } = salvaged;
    let report = build_report(&reduced, dispersion, criterion, clusters)?;
    print!(
        "{}",
        limba_viz::report::render_with_coverage(&report, &coverage)
    );

    write_csv(&parsed, &report)?;

    if parsed.get("drilldown").map(|v| v != "off").unwrap_or(false) {
        use limba_analysis::hierarchy::{drilldown, RegionTree};
        let parents = limba_trace::region_parents(&trace).map_err(|e| e.to_string())?;
        let tree = RegionTree::from_parents(parents).map_err(|e| e.to_string())?;
        let dd =
            drilldown(&reduced.measurements, &tree, dispersion, 0.5).map_err(|e| e.to_string())?;
        println!("\n== drill-down ==");
        if dd.path.is_empty() {
            println!("no imbalanced region found");
        }
        for (depth, step) in dd.path.iter().enumerate() {
            println!(
                "{}-> {} (inclusive SID_C {:.5}, {:.0}% of program)",
                "  ".repeat(depth),
                step.name,
                step.sid,
                step.fraction_of_program * 100.0
            );
        }
    }

    if windows > 0 {
        let sliced = limba_trace::reduce_windows(&trace, windows).map_err(|e| e.to_string())?;
        print_evolution(sliced, dispersion, windows)?;
    }
    Ok(crate::CmdOutcome::Complete)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispersion_names_round_trip() {
        use limba_stats::dispersion::DispersionIndex;
        for k in DispersionKind::ALL {
            assert_eq!(parse_dispersion(k.name()).unwrap(), k);
        }
        assert!(parse_dispersion("zeta").is_err());
    }

    #[test]
    fn criterion_specs() {
        assert_eq!(parse_criterion("max").unwrap(), RankingCriterion::Maximum);
        assert_eq!(
            parse_criterion("topk:3").unwrap(),
            RankingCriterion::TopK(3)
        );
        assert_eq!(
            parse_criterion("threshold:0.5").unwrap(),
            RankingCriterion::Threshold(0.5)
        );
        assert_eq!(
            parse_criterion("percentile:90").unwrap(),
            RankingCriterion::Percentile(90.0)
        );
        assert!(parse_criterion("best").is_err());
        assert!(parse_criterion("topk:x").is_err());
    }

    #[test]
    fn auto_format_detection() {
        use limba_trace::{Event, TraceBuilder};
        let mut b = TraceBuilder::new(1);
        let r = b.add_region("r");
        b.push(Event::enter(0.0, 0, r));
        b.push(Event::leave(1.0, 0, r));
        let trace = b.build();
        let dir = std::env::temp_dir();

        let bin_path = dir.join("limba-auto.bin");
        fs::write(&bin_path, limba_trace::binary::to_bytes(&trace)).unwrap();
        let got = load_trace(bin_path.to_str().unwrap(), "auto").unwrap();
        assert_eq!(got, trace);

        let txt_path = dir.join("limba-auto.txt");
        fs::write(&txt_path, limba_trace::text::to_string(&trace)).unwrap();
        let got = load_trace(txt_path.to_str().unwrap(), "auto").unwrap();
        assert_eq!(got, trace);

        fs::remove_file(bin_path).ok();
        fs::remove_file(txt_path).ok();
    }

    #[test]
    fn missing_file_is_reported() {
        assert!(load_trace("/nonexistent/limba.trace", "auto")
            .unwrap_err()
            .contains("cannot read"));
    }
}
