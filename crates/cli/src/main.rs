//! `limba` — the load-imbalance performance tool.
//!
//! The paper's conclusion calls for integrating the methodology "into a
//! performance tool": this binary is that tool. It simulates workloads on
//! the message-passing machine model, writes tracefiles, analyzes them,
//! and regenerates the paper's tables and figures.

use std::process::ExitCode;

mod args;
mod cmd_advise;
mod cmd_analyze;
mod cmd_compare;
mod cmd_paper;
mod cmd_serve;
mod cmd_simulate;
mod cmd_suite;
mod cmd_timeline;
mod supervise;

/// How a subcommand finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CmdOutcome {
    /// Everything the command was asked to produce was produced.
    Complete,
    /// The command produced *some* results but was interrupted (deadline,
    /// unit cap, cancellation) or had failing units. The process exits
    /// with [`PARTIAL_EXIT_CODE`] so scripts can distinguish "resume me"
    /// from success and from hard errors.
    Partial,
}

/// Exit code for runs that finished with partial results.
pub(crate) const PARTIAL_EXIT_CODE: u8 = 3;

const USAGE: &str = "\
limba — load-imbalance analysis of parallel programs

USAGE:
  limba simulate <workload> [OPTIONS]   run a workload, write a tracefile
  limba analyze <tracefile> [OPTIONS]   analyze a tracefile, print the report
  limba advise <tracefile> [OPTIONS]    recommend, predict, and simulate-verify fixes
  limba advise --workload W [OPTIONS]   same, on a synthetic workload scenario
  limba compare <before> <after>        verify a tuning change between two traces
  limba paper [OPTIONS]                 regenerate the paper's case study
  limba suite [--ranks N] [--jobs N]    sweep all workloads × injectors, print a summary
  limba timeline <tracefile> [OPTIONS]  render a tracefile as an SVG timeline
  limba serve [OPTIONS]                 run the live multi-tenant trace-ingestion
                                        service with online imbalance detection
  limba push [<tracefile>] [OPTIONS]    stream a tracefile (or a live simulation
                                        via --workload) into a serving tenant
  limba query <words...> [--to ADDR]    query a running server (STATUS, TENANTS,
                                        RUNS t, REPORT t r, DIGEST t r,
                                        ALERTS t r, EVOLUTION t r n, SHUTDOWN)
  limba demo                            simulate the CFD proxy and analyze it

WORKLOADS (simulate):
  cfd | stencil | master-worker | pipeline | irregular | fft | sweep | amr

OPTIONS (simulate):
  --ranks N              number of MPI ranks (default 16)
  --iterations N         iterations / steps / items (default workload-specific)
  --imbalance SPEC       none | linear:SPREAD | block:HEAVY,FACTOR |
                         jitter:AMPLITUDE | hotspot:RANK,FACTOR
  --seed N               RNG seed for stochastic injectors (default 0)
  --replications N       run N independent replications with SplitMix64-derived
                         seeds and print summary statistics (default 1)
  --jobs N               worker threads for --replications and for
                         --engine event-par; results are byte-identical
                         for every N, 0 = all CPUs (default 1)
  --faults SPEC          inject a deterministic fault plan (TOML file,
                         preset:<name>, or list to print the presets)
  --balance SPEC         rebalance load dynamically mid-run (TOML file,
                         preset:<name>, or list to print the policies)
  --out PATH             tracefile path (default trace.limba)
  --format FMT           binary | text (default binary)
  --engine ENGINE        event | event-par | polling — execution core; all
                         produce bit-identical traces (default event;
                         event-par shards rank execution over --jobs threads)
  --stream-reduce        fold the run into the analysis report as it
                         simulates: bounded memory, no tracefile; accepts
                         the analyze knobs (--dispersion/--criterion/
                         --clusters/--windows) and needs an event engine
  --stream-out PATH      stream the chunked-v3 trace to PATH as rounds retire
                         instead of materializing it; `-` writes the container
                         to stdout (status moves to stderr) so it pipes into
                         `limba analyze - --from-stream`; composes with
                         --stream-reduce to tee the trace while reducing
  --stream-frame-events N  events per streamed frame (default 4096)

OPTIONS (serve):
  --listen ADDR          bind address (default 127.0.0.1:7979; port 0 = any)
  --max-tenants N        admission cap on distinct active tenants (default 8;
                         completed/failed runs stop counting toward the cap)
  --max-sessions N       cap on concurrent connections; excess connections are
                         dropped at accept (default 64)
  --shards N             ingestion shards — folds for different tenants
                         proceed on N worker threads (default 2)
  --window SECS          online detector window width in seconds (default 0.25)
  --checkpoint-dir DIR   persist spools + run metadata under DIR; a restarted
                         server resumes every tenant byte-identically (torn
                         spool tails are scrubbed back to the last sealed
                         chunk boundary at startup)
  --io-faults SPEC       inject deterministic disk faults into every durable
                         write (chaos testing): KIND[:at=N][:after=BYTES]
                         [:match=SUBSTR][:seed=N] with KIND one of enospc,
                         eio, short-write, rename-fail, power-cut; a faulting
                         run degrades to a resumable partial, other tenants
                         keep serving

OPTIONS (push):
  --to ADDR              server address (default 127.0.0.1:7979)
  --tenant NAME          tenant to ingest under (default `default`)
  --run NAME             run id (default: tracefile stem or workload name)
  --workload W           stream a live simulation instead of a tracefile
                         (simulate's --ranks/--iterations/--imbalance/--seed/
                         --jobs/--engine/--stream-frame-events apply)
  exits 0 when the run completed, 3 when the stream ended early or a disk
  fault degraded it and the server salvaged a partial run (reconnect to
  resume from the server's durable offset)

OPTIONS (analyze):
  --dispersion KIND      euclidean | variance | cv | mad | max-excess |
                         range | gini (default euclidean)
  --criterion SPEC       max | topk:N | threshold:X | percentile:P
  --clusters N           number of region clusters, 0 disables (default 2)
  --drilldown on         also run the hierarchical top-down localization
  --csv DIR              also export the tables as CSV files into DIR
  --windows N            also slice the run into N windows and report how
                         each activity's imbalance evolves (default off)
  --format FMT           tracefile format: auto | binary | text (default auto)
  --from-stream          decode the tracefile through the streaming folds in
                         bounded 64 KiB chunks instead of loading it whole;
                         same report byte for byte (binary traces only,
                         incompatible with --drilldown); with `-` as the
                         tracefile, reads the trace stream from stdin

OPTIONS (advise):
  --workload W           advise on a synthetic workload instead of a tracefile
                         (same names as simulate; --ranks/--iterations/--seed
                         apply; --imbalance defaults to linear:0.4 here)
  --budget N             max intervention combos to predict (default 64)
  --top K                candidates to simulate-verify and report (default 3)
  --beam N               beam width of the combo search (default 8)
  --depth N              max interventions per combo (default 2)
  --jobs N               worker threads; output is byte-identical for every N
  --faults SPEC          verify under a fault plan (TOML file, preset:<name>,
                         or list to print the presets)
  --engine ENGINE        event | event-par | polling — advice is identical
                         under all three (event-par uses --jobs)
  --json                 machine-readable digest instead of the text report

OPTIONS (timeline):
  --out PATH             output SVG path (default timeline.svg)
  --width PX             image width in pixels (default 1200)

OPTIONS (paper):
  --svg DIR              also write figure SVGs into DIR

SUPERVISION (simulate --replications N, suite, advise):
  --deadline SECS        stop starting new units once SECS seconds have
                         elapsed; completed units are kept
  --max-units N          start at most N new units this invocation (a
                         deterministic interruption point at --jobs 1)
  --checkpoint PATH      persist each completed unit to PATH (checksummed,
                         atomic write-rename) as the run progresses
  --resume               load PATH first and run only the missing units; the
                         resumed output is byte-identical to an uninterrupted
                         run at any --jobs
  --max-retries N        retry transiently failing units up to N times with
                         exponential backoff (default 0; panics never retry)
  --manifest PATH        write a machine-readable JSON run manifest to PATH

EXIT CODES:
  0  complete   1  error   3  partial results (interrupted or failing units;
                              rerun with --resume to continue)
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "simulate" => cmd_simulate::run(rest),
        "analyze" => cmd_analyze::run(rest),
        "advise" => cmd_advise::run(rest),
        "compare" => cmd_compare::run(rest),
        "paper" => cmd_paper::run(rest),
        "suite" => cmd_suite::run(rest),
        "timeline" => cmd_timeline::run(rest),
        "serve" => cmd_serve::serve(rest),
        "push" => cmd_serve::push(rest),
        "query" => cmd_serve::query(rest),
        "demo" => cmd_simulate::demo(),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(CmdOutcome::Complete)
        }
        other => Err(format!("unknown command {other:?}; see `limba help`")),
    };
    match result {
        Ok(CmdOutcome::Complete) => ExitCode::SUCCESS,
        Ok(CmdOutcome::Partial) => ExitCode::from(PARTIAL_EXIT_CODE),
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
