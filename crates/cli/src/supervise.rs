//! Shared supervision plumbing: the `--deadline` / `--max-units` /
//! `--checkpoint` / `--resume` / `--max-retries` / `--manifest` flags,
//! their translation into a [`Supervisor`], and the partial-result
//! exit-code protocol.

use std::path::PathBuf;
use std::time::Duration;

use limba_guard::{RetryPolicy, RunManifest, Supervisor};

use crate::args::Parsed;
use crate::CmdOutcome;

/// The bare switches shared by every supervised subcommand.
pub(crate) const SWITCHES: &[&str] = &["resume", "json"];

/// Supervision options parsed from the command line.
#[derive(Debug, Clone, Default)]
pub(crate) struct Supervision {
    pub deadline: Option<Duration>,
    pub max_units: Option<usize>,
    pub checkpoint: Option<PathBuf>,
    pub resume: bool,
    pub max_retries: u32,
    pub manifest: Option<PathBuf>,
}

impl Supervision {
    /// No supervision at all — the defaults the tests use.
    #[cfg(test)]
    pub fn none() -> Self {
        Supervision::default()
    }

    /// Extracts the supervision flags from a parsed command line.
    pub fn from_args(parsed: &Parsed) -> Result<Self, String> {
        let deadline = match parsed.get("deadline") {
            Some(v) => {
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("invalid value {v:?} for --deadline"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(format!("--deadline must be a non-negative number, got {v}"));
                }
                Some(Duration::from_secs_f64(secs))
            }
            None => None,
        };
        let max_units = match parsed.get("max-units") {
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("invalid value {v:?} for --max-units"))?,
            ),
            None => None,
        };
        let checkpoint = parsed.get("checkpoint").map(PathBuf::from);
        let resume = parsed.has("resume");
        if resume && checkpoint.is_none() {
            return Err("--resume needs --checkpoint <path>".into());
        }
        let max_retries: u32 = parsed.get_or("max-retries", 0)?;
        let manifest = parsed.get("manifest").map(PathBuf::from);
        Ok(Supervision {
            deadline,
            max_units,
            checkpoint,
            resume,
            max_retries,
            manifest,
        })
    }

    /// Builds the [`Supervisor`] these options describe.
    pub fn supervisor(&self, jobs: usize) -> Supervisor {
        let mut supervisor =
            Supervisor::new(jobs).with_retry(RetryPolicy::with_max_retries(self.max_retries));
        if let Some(deadline) = self.deadline {
            supervisor = supervisor.with_deadline(deadline);
        }
        if let Some(cap) = self.max_units {
            supervisor = supervisor.with_max_units(cap);
        }
        if let Some(path) = &self.checkpoint {
            supervisor = supervisor.with_checkpoint(path, self.resume);
        }
        supervisor
    }

    /// Writes the run manifest when `--manifest` was given.
    pub fn write_manifest(&self, manifest: &RunManifest) -> Result<(), String> {
        if let Some(path) = &self.manifest {
            std::fs::write(path, manifest.to_json())
                .map_err(|e| format!("cannot write manifest {}: {e}", path.display()))?;
        }
        Ok(())
    }

    /// The command outcome a manifest maps to: complete runs exit 0,
    /// anything that left work undone or failed exits with the partial
    /// code.
    pub fn outcome_of(manifest: &RunManifest) -> CmdOutcome {
        if manifest.is_complete() {
            CmdOutcome::Complete
        } else {
            CmdOutcome::Partial
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_with_switches;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_the_full_flag_set() {
        let parsed = parse_with_switches(
            &strs(&[
                "--deadline",
                "2.5",
                "--max-units",
                "7",
                "--checkpoint",
                "run.ckpt",
                "--resume",
                "--max-retries",
                "3",
                "--manifest",
                "run.json",
            ]),
            SWITCHES,
        )
        .unwrap();
        let s = Supervision::from_args(&parsed).unwrap();
        assert_eq!(s.deadline, Some(Duration::from_secs_f64(2.5)));
        assert_eq!(s.max_units, Some(7));
        assert_eq!(
            s.checkpoint.as_deref(),
            Some(std::path::Path::new("run.ckpt"))
        );
        assert!(s.resume);
        assert_eq!(s.max_retries, 3);
        assert_eq!(
            s.manifest.as_deref(),
            Some(std::path::Path::new("run.json"))
        );
    }

    #[test]
    fn resume_requires_a_checkpoint() {
        let parsed = parse_with_switches(&strs(&["--resume"]), SWITCHES).unwrap();
        assert!(Supervision::from_args(&parsed)
            .unwrap_err()
            .contains("--checkpoint"));
    }

    #[test]
    fn bad_deadlines_are_rejected() {
        for bad in ["-1", "nan", "inf", "x"] {
            let parsed = parse_with_switches(&strs(&["--deadline", bad]), SWITCHES).unwrap();
            assert!(Supervision::from_args(&parsed).is_err(), "{bad}");
        }
    }

    #[test]
    fn absent_flags_mean_no_supervision() {
        let parsed = parse_with_switches(&[], SWITCHES).unwrap();
        let s = Supervision::from_args(&parsed).unwrap();
        assert!(s.deadline.is_none());
        assert!(s.max_units.is_none());
        assert!(s.checkpoint.is_none());
        assert!(!s.resume);
        assert_eq!(s.max_retries, 0);
    }
}
