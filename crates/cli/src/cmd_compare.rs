//! `limba compare`: verify a tuning change by comparing two tracefiles.

use limba_analysis::compare::compare_runs;
use limba_stats::dispersion::DispersionKind;

use crate::args::parse;
use crate::cmd_analyze::load_trace_auto;

/// Runs `limba compare <before.trace> <after.trace> [--tolerance F]`.
pub fn run(argv: &[String]) -> Result<crate::CmdOutcome, String> {
    let parsed = parse(argv)?;
    let [before_path, after_path] = parsed.positional.as_slice() else {
        return Err("compare needs exactly two tracefile paths".into());
    };
    let tolerance: f64 = parsed.get_or("tolerance", 0.02)?;

    let before = limba_trace::reduce(&load_trace_auto(before_path)?)
        .map_err(|e| e.to_string())?
        .measurements;
    let after = limba_trace::reduce(&load_trace_auto(after_path)?)
        .map_err(|e| e.to_string())?
        .measurements;
    let cmp = compare_runs(&before, &after, DispersionKind::Euclidean, tolerance)
        .map_err(|e| e.to_string())?;

    println!("whole-program speedup: {:.3}x", cmp.total_speedup);
    println!(
        "\n{:<20} {:>10} {:>10} {:>8} {:>9} {:>9}  verdict",
        "region", "before", "after", "speedup", "ID before", "ID after"
    );
    for d in &cmp.regions {
        println!(
            "{:<20} {:>9.3}s {:>9.3}s {:>7.2}x {:>9.4} {:>9.4}  {:?}",
            d.name,
            d.before_seconds,
            d.after_seconds,
            d.speedup,
            d.before_id,
            d.after_id,
            d.verdict
        );
    }
    println!("\nactivity dispersion (weighted ID_A):");
    for (kind, b, a) in &cmp.activity_ids {
        println!("  {kind:<16} {b:.5} -> {a:.5}");
    }
    let regressions = cmp.regressions();
    if regressions.is_empty() {
        println!("\nno regressions.");
    } else {
        println!("\nREGRESSIONS:");
        for d in regressions {
            println!("  {} ({:.2}x)", d.name, d.speedup);
        }
    }
    Ok(crate::CmdOutcome::Complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_mpisim::{MachineConfig, Simulator};
    use limba_workloads::{cfd::CfdConfig, Imbalance};

    fn write_run(imbalance: Imbalance, name: &str) -> std::path::PathBuf {
        let program = CfdConfig::new(4)
            .with_imbalance(imbalance)
            .build_program()
            .unwrap();
        let out = Simulator::new(MachineConfig::new(4)).run(&program).unwrap();
        let path = std::env::temp_dir().join(name);
        limba_trace::binary::write(&out.trace, std::fs::File::create(&path).unwrap()).unwrap();
        path
    }

    #[test]
    fn compares_two_traces() {
        let before = write_run(
            Imbalance::Hotspot {
                rank: 1,
                factor: 3.0,
            },
            "limba-cmp-b.trace",
        );
        let after = write_run(Imbalance::None, "limba-cmp-a.trace");
        run(&[
            before.to_str().unwrap().to_string(),
            after.to_str().unwrap().to_string(),
        ])
        .unwrap();
        std::fs::remove_file(before).ok();
        std::fs::remove_file(after).ok();
    }

    #[test]
    fn wrong_arity_rejected() {
        assert!(run(&["only-one.trace".to_string()]).is_err());
    }
}
