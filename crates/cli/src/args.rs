//! Minimal `--flag value` argument parsing shared by the subcommands.

use std::collections::{BTreeMap, BTreeSet};

use limba_workloads::Imbalance;

/// Parsed positional arguments, `--flag value` options, and bare
/// `--flag` switches.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    pub positional: Vec<String>,
    pub options: BTreeMap<String, String>,
    pub switches: BTreeSet<String>,
}

/// Splits `args` into positionals and `--flag value` pairs.
pub fn parse(args: &[String]) -> Result<Parsed, String> {
    parse_with_switches(args, &[])
}

/// Like [`parse`], but any flag named in `switches` is a bare switch
/// that takes no value (e.g. `--resume`, `--json`).
pub fn parse_with_switches(args: &[String], switches: &[&str]) -> Result<Parsed, String> {
    let mut parsed = Parsed::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(flag) = arg.strip_prefix("--") {
            if switches.contains(&flag) {
                parsed.switches.insert(flag.to_string());
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{flag} expects a value"))?;
                parsed.options.insert(flag.to_string(), value.clone());
            }
        } else {
            parsed.positional.push(arg.clone());
        }
    }
    Ok(parsed)
}

impl Parsed {
    /// The option's value parsed as `T`, or `default` when absent.
    pub fn get_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String> {
        match self.options.get(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value {v:?} for --{flag}")),
        }
    }

    /// The option's raw value, if present.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.options.get(flag).map(|s| s.as_str())
    }

    /// Whether a bare switch was given.
    pub fn has(&self, flag: &str) -> bool {
        self.switches.contains(flag)
    }
}

/// Parses an imbalance spec such as `linear:0.4` or `block:3,2.5`.
pub fn parse_imbalance(spec: &str) -> Result<Imbalance, String> {
    let (kind, params) = match spec.split_once(':') {
        Some((k, p)) => (k, p),
        None => (spec, ""),
    };
    let bad = || format!("invalid imbalance spec {spec:?}");
    match kind {
        "none" => Ok(Imbalance::None),
        "linear" => Ok(Imbalance::LinearSkew {
            spread: params.parse().map_err(|_| bad())?,
        }),
        "jitter" => Ok(Imbalance::RandomJitter {
            amplitude: params.parse().map_err(|_| bad())?,
        }),
        "block" => {
            let (heavy, factor) = params.split_once(',').ok_or_else(bad)?;
            Ok(Imbalance::BlockSkew {
                heavy: heavy.parse().map_err(|_| bad())?,
                factor: factor.parse().map_err(|_| bad())?,
            })
        }
        "hotspot" => {
            let (rank, factor) = params.split_once(',').ok_or_else(bad)?;
            Ok(Imbalance::Hotspot {
                rank: rank.parse().map_err(|_| bad())?,
                factor: factor.parse().map_err(|_| bad())?,
            })
        }
        _ => Err(bad()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let p = parse(&strs(&["cfd", "--ranks", "8", "extra"])).unwrap();
        assert_eq!(p.positional, vec!["cfd", "extra"]);
        assert_eq!(p.get("ranks"), Some("8"));
        assert_eq!(p.get_or("ranks", 16usize).unwrap(), 8);
        assert_eq!(p.get_or("iterations", 3usize).unwrap(), 3);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&strs(&["--ranks"])).is_err());
        let p = parse(&strs(&["--ranks", "x"])).unwrap();
        assert!(p.get_or::<usize>("ranks", 1).is_err());
    }

    #[test]
    fn switches_take_no_value() {
        let p = parse_with_switches(
            &strs(&["--resume", "--ranks", "8", "--json"]),
            &["resume", "json"],
        )
        .unwrap();
        assert!(p.has("resume"));
        assert!(p.has("json"));
        assert!(!p.has("verbose"));
        assert_eq!(p.get("ranks"), Some("8"));
        // A trailing switch needs no value.
        assert!(parse_with_switches(&strs(&["--resume"]), &["resume"]).is_ok());
        // Without registration the same flag would consume the next arg.
        let p = parse(&strs(&["--resume", "x"])).unwrap();
        assert_eq!(p.get("resume"), Some("x"));
    }

    #[test]
    fn imbalance_specs() {
        assert_eq!(parse_imbalance("none").unwrap(), Imbalance::None);
        assert_eq!(
            parse_imbalance("linear:0.4").unwrap(),
            Imbalance::LinearSkew { spread: 0.4 }
        );
        assert_eq!(
            parse_imbalance("block:3,2.5").unwrap(),
            Imbalance::BlockSkew {
                heavy: 3,
                factor: 2.5
            }
        );
        assert_eq!(
            parse_imbalance("hotspot:5,4").unwrap(),
            Imbalance::Hotspot {
                rank: 5,
                factor: 4.0
            }
        );
        assert_eq!(
            parse_imbalance("jitter:0.2").unwrap(),
            Imbalance::RandomJitter { amplitude: 0.2 }
        );
        assert!(parse_imbalance("zigzag:1").is_err());
        assert!(parse_imbalance("block:3").is_err());
        assert!(parse_imbalance("linear:x").is_err());
    }
}
