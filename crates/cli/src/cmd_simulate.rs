//! `limba simulate` and `limba demo`.

use std::fs::File;
use std::io::BufWriter;

use limba_mpisim::{BalancePlan, FaultPlan, MachineConfig, Program, Simulator};
use limba_trace::Trace;
use limba_workloads::{
    amr::AmrConfig, cfd::CfdConfig, fft::FftConfig, irregular::IrregularConfig,
    master_worker::MasterWorkerConfig, pipeline::PipelineConfig, stencil::StencilConfig,
    sweep::SweepConfig, Imbalance,
};

use crate::args::{parse_imbalance, parse_with_switches, Parsed};
use crate::supervise::Supervision;

/// Bare switches `simulate` accepts: the supervision switches (kept in
/// sync with [`crate::supervise::SWITCHES`] by a test below) plus the
/// streaming-reduction mode.
const SIM_SWITCHES: &[&str] = &["resume", "json", "stream-reduce"];

pub(crate) fn build_program(
    workload: &str,
    ranks: usize,
    iterations: Option<usize>,
    imbalance: Imbalance,
    seed: u64,
) -> Result<Program, String> {
    let program = match workload {
        "cfd" => CfdConfig::new(ranks)
            .with_iterations(iterations.unwrap_or(1))
            .with_imbalance(imbalance)
            .with_seed(seed)
            .build_program(),
        "stencil" => {
            // Squarest grid for the rank count.
            let px = (1..=ranks)
                .filter(|d| ranks.is_multiple_of(*d))
                .min_by_key(|&d| (d as i64 - (ranks as f64).sqrt() as i64).abs())
                .unwrap_or(1);
            StencilConfig::new(px, ranks / px)
                .with_iterations(iterations.unwrap_or(10))
                .with_imbalance(imbalance)
                .with_seed(seed)
                .build_program()
        }
        "master-worker" => MasterWorkerConfig::new(ranks)
            .with_tasks(iterations.unwrap_or(2 * ranks.saturating_sub(1)))
            .with_imbalance(imbalance)
            .with_seed(seed)
            .build_program(),
        "pipeline" => PipelineConfig::new(ranks)
            .with_items(iterations.unwrap_or(8))
            .with_imbalance(imbalance)
            .with_seed(seed)
            .build_program(),
        "irregular" => IrregularConfig::new(ranks)
            .with_steps(iterations.unwrap_or(4))
            .with_imbalance(imbalance)
            .with_seed(seed)
            .build_program(),
        "fft" => FftConfig::new(ranks)
            .with_iterations(iterations.unwrap_or(2))
            .with_imbalance(imbalance)
            .with_seed(seed)
            .build_program(),
        "amr" => AmrConfig::new(ranks)
            .with_steps(iterations.unwrap_or(2))
            .with_refinement(imbalance)
            .with_seed(seed)
            .build_program(),
        "sweep" => SweepConfig::new(ranks)
            .with_sweeps(iterations.unwrap_or(2))
            .with_imbalance(imbalance)
            .with_seed(seed)
            .build_program(),
        other => return Err(format!("unknown workload {other:?}")),
    };
    program.map_err(|e| e.to_string())
}

/// Which execution core advances the simulated ranks.
#[derive(Clone, Copy, PartialEq, Debug)]
pub(crate) enum Engine {
    /// Event-driven wakeup-list scheduler (default).
    Event,
    /// Rank-sharded parallel event scheduler; byte-identical output to
    /// [`Engine::Event`], `--jobs` controls the worker count.
    EventPar,
    /// Reference polling scheduler, kept for cross-checking.
    Polling,
}

impl Engine {
    pub(crate) fn parse(spec: &str) -> Result<Engine, String> {
        match spec {
            "event" => Ok(Engine::Event),
            "event-par" => Ok(Engine::EventPar),
            "polling" => Ok(Engine::Polling),
            other => Err(format!(
                "unknown engine {other:?} (expected \"event\", \"event-par\", or \"polling\")"
            )),
        }
    }
}

fn simulate(program: &Program, ranks: usize) -> Result<limba_mpisim::SimOutput, String> {
    simulate_with(program, ranks, Engine::Event, None, None, 1)
}

fn simulate_with(
    program: &Program,
    ranks: usize,
    engine: Engine,
    faults: Option<&FaultPlan>,
    balance: Option<&BalancePlan>,
    jobs: usize,
) -> Result<limba_mpisim::SimOutput, String> {
    let sim = Simulator::new(MachineConfig::new(ranks));
    match engine {
        Engine::Event => sim.run_configured(program, faults, balance, None),
        Engine::EventPar => sim.run_parallel_configured(program, faults, balance, None, jobs),
        Engine::Polling => sim.run_polling_configured(program, faults, balance, None),
    }
    .map_err(|e| e.to_string())
}

/// Resolves `--faults`: either a TOML plan file or `preset:<name>` from
/// [`limba_workloads::faults`]. Presets are scaled to the makespan of a
/// fault-free run of the same program (both runs are deterministic, so
/// the recipe reproduces exactly).
pub(crate) fn load_fault_plan(
    spec: &str,
    program: &Program,
    ranks: usize,
    engine: Engine,
) -> Result<FaultPlan, String> {
    let plan = if let Some(name) = spec.strip_prefix("preset:") {
        let horizon = simulate_with(program, ranks, engine, None, None, 1)?
            .stats
            .makespan;
        limba_workloads::faults::preset(name, ranks, horizon).ok_or_else(|| {
            format!(
                "unknown fault preset {name:?} (available: {})",
                limba_workloads::faults::PRESETS.join(", ")
            )
        })?
    } else {
        let text = std::fs::read_to_string(spec).map_err(|e| format!("cannot read {spec}: {e}"))?;
        FaultPlan::parse_toml(&text).map_err(|e| e.to_string())?
    };
    plan.validate(ranks).map_err(|e| e.to_string())?;
    Ok(plan)
}

/// Resolves `--balance`: either a TOML plan file or `preset:<name>`
/// from [`limba_workloads::balance`]. Unlike the fault presets, balance
/// presets need no horizon — every policy triggers on relative load.
pub(crate) fn load_balance_plan(spec: &str) -> Result<BalancePlan, String> {
    let plan = if let Some(name) = spec.strip_prefix("preset:") {
        limba_workloads::balance::preset(name).ok_or_else(|| {
            format!(
                "unknown balance preset {name:?} (available: {})",
                limba_workloads::balance::PRESETS.join(", ")
            )
        })?
    } else {
        let text = std::fs::read_to_string(spec).map_err(|e| format!("cannot read {spec}: {e}"))?;
        BalancePlan::parse_toml(&text).map_err(|e| e.to_string())?
    };
    plan.validate().map_err(|e| e.to_string())?;
    Ok(plan)
}

/// The `--balance list` listing: every preset with its one-line summary.
pub(crate) fn render_balance_presets() -> String {
    let mut out = String::from("available balance presets (use --balance preset:<name>):\n");
    let width = limba_workloads::balance::PRESET_SUMMARIES
        .iter()
        .map(|&(name, _)| name.len())
        .max()
        .unwrap_or(0);
    for &(name, summary) in limba_workloads::balance::PRESET_SUMMARIES {
        out.push_str(&format!("  {name:<width$}  {summary}\n"));
    }
    out.push_str("or pass a TOML balance-plan file path (see DESIGN.md)\n");
    out
}

/// One-line summary of what a balance plan did to a run.
fn describe_balance(report: &limba_mpisim::BalanceReport) -> String {
    let policy = report.policy.as_deref().unwrap_or("none");
    if report.migrations == 0 {
        return format!("rebalancing: {policy} policy active, no migrations triggered");
    }
    format!(
        "rebalancing: {policy} moved {:.4} nominal s in {} migrations ({} declined)",
        report.moved_seconds, report.migrations, report.declined
    )
}

/// The `--faults list` listing: every preset with its one-line summary.
pub(crate) fn render_fault_presets() -> String {
    let mut out = String::from("available fault presets (use --faults preset:<name>):\n");
    let width = limba_workloads::faults::PRESET_SUMMARIES
        .iter()
        .map(|&(name, _)| name.len())
        .max()
        .unwrap_or(0);
    for &(name, summary) in limba_workloads::faults::PRESET_SUMMARIES {
        out.push_str(&format!("  {name:<width$}  {summary}\n"));
    }
    out.push_str("or pass a TOML fault-plan file path (see DESIGN.md)\n");
    out
}

/// One-line summary of what a fault plan did to a run.
fn describe_faults(report: &limba_mpisim::FaultReport) -> String {
    if report.is_clean() {
        return "faults: none took effect (timing perturbations only)".into();
    }
    let crashes: Vec<String> = report
        .crashes
        .iter()
        .map(|&(r, t)| format!("{r}@{t:.4}s"))
        .collect();
    format!(
        "faults: {} crashed [{}], {} interrupted, {} dropped attempts, {} retried messages",
        report.crashes.len(),
        crashes.join(", "),
        report.interrupted.len(),
        report.dropped_attempts,
        report.retried_messages
    )
}

fn write_trace(trace: &Trace, path: &str, format: &str) -> Result<(), String> {
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let writer = BufWriter::new(file);
    match format {
        "binary" => limba_trace::binary::write(trace, writer).map_err(|e| e.to_string()),
        "text" => limba_trace::text::write(trace, writer).map_err(|e| e.to_string()),
        other => Err(format!("unknown trace format {other:?}")),
    }
}

/// Everything that defines a replication sweep's output. The
/// fingerprint of this spec guards checkpoint compatibility: two specs
/// with equal fingerprints produce identical replication rows.
pub(crate) struct SweepSpec<'a> {
    pub workload: &'a str,
    pub ranks: usize,
    pub iterations: Option<usize>,
    pub imbalance: Imbalance,
    pub root_seed: u64,
    pub replications: usize,
    pub jobs: usize,
    pub faults: Option<&'a FaultPlan>,
    pub balance: Option<&'a BalancePlan>,
}

impl SweepSpec<'_> {
    /// Canonical fingerprint input: every field that affects a row's
    /// bytes (`jobs` deliberately excluded — output is jobs-invariant).
    /// The balance component is appended only when a plan is present,
    /// so checkpoints of unbalanced sweeps written before balancing
    /// existed keep their fingerprints.
    fn fingerprint(&self) -> u64 {
        let mut input = format!(
            "sweep|workload={}|ranks={}|iterations={:?}|imbalance={:?}|root_seed={}|replications={}|faults={:?}",
            self.workload,
            self.ranks,
            self.iterations,
            self.imbalance,
            self.root_seed,
            self.replications,
            self.faults,
        );
        if let Some(plan) = self.balance {
            input.push_str(&format!("|balance={plan:?}"));
        }
        limba_guard::config_fingerprint(&input)
    }
}

/// One rendered row of a sweep: exactly the values the table prints,
/// checkpointable so a resumed sweep replays rather than re-simulates.
struct SweepRow {
    index: u64,
    seed: u64,
    makespan: f64,
    messages: u64,
    bytes: u64,
    migrations: u64,
    moved: f64,
}

/// The sweep checkpoint codec. Balanced sweeps append the migration
/// columns to each payload; unbalanced sweeps keep the original layout,
/// so their existing checkpoints stay readable. The two can never mix:
/// the sweep fingerprint includes the balance plan.
struct SweepCodec {
    balanced: bool,
}

impl limba_guard::PayloadCodec<SweepRow> for SweepCodec {
    fn encode(&self, row: &SweepRow) -> Vec<u8> {
        let mut w = limba_guard::codec::ByteWriter::new();
        w.put_u64(row.index);
        w.put_u64(row.seed);
        w.put_f64(row.makespan);
        w.put_u64(row.messages);
        w.put_u64(row.bytes);
        if self.balanced {
            w.put_u64(row.migrations);
            w.put_f64(row.moved);
        }
        w.into_bytes()
    }

    fn decode(&self, bytes: &[u8]) -> Result<SweepRow, limba_guard::GuardError> {
        let mut r = limba_guard::codec::ByteReader::new(bytes);
        let mut row = SweepRow {
            index: r.get_u64("replication index")?,
            seed: r.get_u64("replication seed")?,
            makespan: r.get_f64("makespan")?,
            messages: r.get_u64("message count")?,
            bytes: r.get_u64("byte count")?,
            migrations: 0,
            moved: 0.0,
        };
        if self.balanced {
            row.migrations = r.get_u64("migration count")?;
            row.moved = r.get_f64("moved seconds")?;
        }
        r.expect_end("sweep row")?;
        Ok(row)
    }
}

/// Renders a replication sweep under supervision: `replications`
/// independent runs with SplitMix64-derived seeds on up to `jobs`
/// worker threads, optionally bounded by a deadline / unit cap and
/// checkpointed for resume. The table is byte-identical for every
/// `jobs` value, and an interrupted-then-resumed sweep renders
/// byte-identically to an uninterrupted one.
///
/// A failing replication occupies its own error row instead of
/// aborting the sweep; the summary then covers the completed rows.
fn render_sweep(
    spec: &SweepSpec,
    supervision: &Supervision,
) -> Result<(String, limba_guard::RunManifest), String> {
    use std::fmt::Write as _;
    let sim = Simulator::new(MachineConfig::new(spec.ranks));
    let items: Vec<usize> = (0..spec.replications).collect();
    let run = supervision
        .supervisor(spec.jobs)
        .run(
            "sweep",
            spec.fingerprint(),
            &items,
            &SweepCodec {
                balanced: spec.balance.is_some(),
            },
            |index, _| {
                // Mirrors `Simulator::run_replications[_with_faults]`:
                // the same seed derivation, the same per-replication
                // fault-plan reseeding.
                let seed = limba_par::derive_seed(spec.root_seed, index as u64);
                let program = build_program(
                    spec.workload,
                    spec.ranks,
                    spec.iterations,
                    spec.imbalance,
                    seed,
                )
                .map_err(limba_guard::JobError::Fatal)?;
                let rep_faults = spec.faults.map(|plan| {
                    plan.clone()
                        .with_seed(limba_par::derive_seed(plan.seed, index as u64))
                });
                let rep_balance = spec.balance.map(|plan| {
                    plan.clone()
                        .with_seed(limba_par::derive_seed(plan.seed(), index as u64))
                });
                let output = sim
                    .run_configured(&program, rep_faults.as_ref(), rep_balance.as_ref(), None)
                    .map_err(|e| limba_guard::JobError::Fatal(e.to_string()))?;
                Ok(SweepRow {
                    index: index as u64,
                    seed,
                    makespan: output.stats.makespan,
                    messages: output.stats.messages,
                    bytes: output.stats.bytes,
                    migrations: output.balance.migrations as u64,
                    moved: output.balance.moved_seconds,
                })
            },
        )
        .map_err(|e| e.to_string())?;
    if let Some(e) = &run.checkpoint_error {
        return Err(format!("checkpoint save failed: {e}"));
    }

    let mut out = String::new();
    writeln!(
        out,
        "{} on {} ranks, {} replications (root seed {})",
        spec.workload, spec.ranks, spec.replications, spec.root_seed
    )
    .unwrap();
    if let Some(plan) = spec.balance {
        writeln!(out, "balance policy: {}", plan.summary()).unwrap();
    }
    write!(
        out,
        "{:>4} {:>20} {:>12} {:>10} {:>12}",
        "rep", "seed", "makespan", "messages", "bytes"
    )
    .unwrap();
    if spec.balance.is_some() {
        write!(out, " {:>10} {:>10}", "migrations", "moved s").unwrap();
    }
    out.push('\n');
    let mut makespans = Vec::with_capacity(spec.replications);
    let mut total_migrations = 0u64;
    let mut total_moved = 0.0f64;
    for (index, slot) in run.results.iter().enumerate() {
        // The seed is a pure function of the root, so even failed or
        // never-started replications print theirs.
        let seed = limba_par::derive_seed(spec.root_seed, index as u64);
        match slot {
            Some(Ok(row)) => {
                write!(
                    out,
                    "{:>4} {:>20} {:>11.4}s {:>10} {:>12}",
                    row.index, row.seed, row.makespan, row.messages, row.bytes
                )
                .unwrap();
                if spec.balance.is_some() {
                    write!(out, " {:>10} {:>9.4}s", row.migrations, row.moved).unwrap();
                }
                out.push('\n');
                makespans.push(row.makespan);
                total_migrations += row.migrations;
                total_moved += row.moved;
            }
            Some(Err(failure)) => {
                writeln!(
                    out,
                    "{index:>4} {seed:>20} error: {}",
                    failure.kind.message()
                )
                .unwrap();
            }
            None => {
                writeln!(out, "{index:>4} {seed:>20} not run (interrupted)").unwrap();
            }
        }
    }
    // Sequential reduction in replication order: deterministic floats.
    if makespans.is_empty() {
        writeln!(out, "no replications completed").unwrap();
    } else {
        let mean = makespans.iter().sum::<f64>() / makespans.len() as f64;
        let min = makespans.iter().copied().fold(f64::INFINITY, f64::min);
        let max = makespans.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if run.manifest.is_complete() {
            writeln!(
                out,
                "makespan mean {mean:.4} s, min {min:.4} s, max {max:.4} s"
            )
            .unwrap();
        } else {
            writeln!(
                out,
                "makespan mean {mean:.4} s, min {min:.4} s, max {max:.4} s \
                 ({} of {} replications)",
                makespans.len(),
                spec.replications
            )
            .unwrap();
        }
        if spec.balance.is_some() {
            writeln!(
                out,
                "rebalancing: {total_migrations} migrations moved {total_moved:.4} nominal s \
                 across completed replications"
            )
            .unwrap();
        }
    }
    if !run.manifest.is_complete() {
        writeln!(
            out,
            "partial sweep: {} completed, {} cached, {} failed, {} not run{}",
            run.manifest.completed,
            run.manifest.cached,
            run.manifest.failures.len(),
            run.manifest.skipped,
            if supervision.checkpoint.is_some() && run.manifest.skipped > 0 {
                " — rerun with --resume to continue"
            } else {
                ""
            }
        )
        .unwrap();
    }
    Ok((out, run.manifest))
}

/// `--stream-reduce`: pipe the simulation through the streaming
/// reduction pipeline and print the analysis directly — the trace is
/// never materialized and no tracefile is written.
#[allow(clippy::too_many_arguments)]
fn run_stream_reduce(
    parsed: &Parsed,
    workload: &str,
    program: &Program,
    ranks: usize,
    engine: Engine,
    faults: Option<&FaultPlan>,
    balance: Option<&BalancePlan>,
    jobs: usize,
    replications: usize,
) -> Result<crate::CmdOutcome, String> {
    if replications > 1 {
        return Err("--stream-reduce streams a single run; drop --replications".into());
    }
    if parsed.get("out").is_some() || parsed.get("format").is_some() {
        return Err("--stream-reduce writes no tracefile; drop --out/--format".into());
    }
    // The polling engine retires the whole run before recording, so it
    // has nothing to stream; the event engines emit frames as rounds
    // retire.
    let stream_jobs = match engine {
        Engine::Event => 1,
        Engine::EventPar => jobs,
        Engine::Polling => {
            return Err("--stream-reduce needs --engine event or event-par".into());
        }
    };
    let windows: usize = parsed.get_or("windows", 0)?;
    let frame_events: usize = parsed.get_or("stream-frame-events", 4096)?;
    if frame_events == 0 {
        return Err("--stream-frame-events must be positive".into());
    }
    let dispersion =
        crate::cmd_analyze::parse_dispersion(parsed.get("dispersion").unwrap_or("euclidean"))?;
    let criterion = crate::cmd_analyze::parse_criterion(parsed.get("criterion").unwrap_or("max"))?;
    let clusters: usize = parsed.get_or("clusters", 2)?;

    let cfg = limba_stream::StreamConfig {
        frame_events,
        jobs: stream_jobs,
        windows: (windows > 0).then_some(windows),
        ..limba_stream::StreamConfig::default()
    };
    let sim = Simulator::new(MachineConfig::new(ranks));
    // `--stream-out` composes: the reduction still streams, but the
    // frames are teed to a chunked-v3 file on the way past.
    let stream_out = match parsed.get("stream-out") {
        Some("-") => {
            // The analysis report owns stdout in this mode.
            return Err(
                "--stream-out - writes the trace to stdout; that clashes with the \
                 --stream-reduce report — give a file path instead"
                    .into(),
            );
        }
        Some(path) => Some(path.to_string()),
        None => None,
    };
    // The teed tracefile goes through the durable sink: fsync on
    // finish (file, then directory entry) so a power cut after the
    // command returns cannot lose or tear the container.
    let mut tee_sink = match &stream_out {
        Some(path) => Some(
            limba_trace::DurableSink::create(
                std::sync::Arc::new(limba_vfs::StdVfs),
                std::path::Path::new(path),
            )
            .map_err(|e| format!("cannot create {path}: {e}"))?,
        ),
        None => None,
    };
    let streamed = limba_stream::stream_reduce_tee(
        &sim,
        program,
        faults,
        balance,
        None,
        &cfg,
        tee_sink
            .as_mut()
            .map(|s| s as &mut (dyn limba_trace::TraceSink + Send)),
    )
    .map_err(|e| e.to_string())?;
    drop(tee_sink);

    println!(
        "simulated {workload} on {ranks} ranks: makespan {:.4} s, {} messages, {} bytes",
        streamed.output.stats.makespan, streamed.output.stats.messages, streamed.output.stats.bytes
    );
    if faults.is_some() {
        println!("{}", describe_faults(&streamed.output.faults));
    }
    if balance.is_some() {
        println!("{}", describe_balance(&streamed.output.balance));
        print!(
            "{}",
            limba_viz::report::render_balance(&streamed.output.balance)
        );
    }
    match &stream_out {
        Some(path) => println!(
            "streamed reduce: {} events in frames of {frame_events}, trace teed to {path}",
            streamed.scan.events
        ),
        None => println!(
            "streamed reduce: {} events in frames of {frame_events}, no tracefile written",
            streamed.scan.events
        ),
    }
    crate::cmd_analyze::guard_salvage(&streamed.salvaged)?;
    let report = crate::cmd_analyze::build_report(
        &streamed.salvaged.reduced,
        dispersion,
        criterion,
        clusters,
    )?;
    print!(
        "{}",
        limba_viz::report::render_with_coverage(&report, &streamed.salvaged.coverage)
    );
    if let Some(sliced) = streamed.windows {
        crate::cmd_analyze::print_evolution(sliced, dispersion, windows)?;
    }
    Ok(crate::CmdOutcome::Complete)
}

/// `--stream-out` without `--stream-reduce`: run the streaming
/// simulator with a [`WriteSink`](limba_trace::WriteSink) so the
/// chunked-v3 trace is written as rounds retire — the trace is never
/// resident. `-` writes the container to stdout (status lines move to
/// stderr), which is what makes
/// `limba simulate ... --stream-out - | limba analyze - --from-stream`
/// a real pipe.
#[allow(clippy::too_many_arguments)]
fn run_stream_out(
    parsed: &Parsed,
    workload: &str,
    program: &Program,
    ranks: usize,
    engine: Engine,
    faults: Option<&FaultPlan>,
    balance: Option<&BalancePlan>,
    jobs: usize,
    replications: usize,
) -> Result<crate::CmdOutcome, String> {
    if replications > 1 {
        return Err("--stream-out streams a single run; drop --replications".into());
    }
    if parsed.get("out").is_some() || parsed.get("format").is_some() {
        return Err("--stream-out names the tracefile itself; drop --out/--format".into());
    }
    if matches!(engine, Engine::Polling) {
        return Err("--stream-out needs --engine event or event-par".into());
    }
    let frame_events: usize = parsed.get_or("stream-frame-events", 4096)?;
    if frame_events == 0 {
        return Err("--stream-frame-events must be positive".into());
    }
    let path = parsed.get("stream-out").unwrap_or("-");
    let sim = Simulator::new(MachineConfig::new(ranks));

    let run_into = |sink: &mut dyn limba_trace::TraceSink| match engine {
        Engine::Event => sim
            .run_streaming_configured(program, faults, balance, None, sink, frame_events)
            .map_err(|e| e.to_string()),
        Engine::EventPar => sim
            .run_streaming_parallel_configured(
                program,
                faults,
                balance,
                None,
                jobs,
                sink,
                frame_events,
            )
            .map_err(|e| e.to_string()),
        Engine::Polling => unreachable!("rejected above"),
    };

    let (output, to_stdout) = if path == "-" {
        let stdout = std::io::stdout();
        let mut sink = limba_trace::WriteSink::new(std::io::BufWriter::new(stdout.lock()));
        (run_into(&mut sink)?, true)
    } else {
        // Durable on finish: the container is fsynced (file + parent
        // directory) before the command reports success.
        let mut sink = limba_trace::DurableSink::create(
            std::sync::Arc::new(limba_vfs::StdVfs),
            std::path::Path::new(path),
        )
        .map_err(|e| format!("cannot create {path}: {e}"))?;
        (run_into(&mut sink)?, false)
    };

    // When the trace owns stdout, the human-readable summary moves to
    // stderr so the pipe stays clean binary.
    let mut status = String::new();
    use std::fmt::Write as _;
    writeln!(
        status,
        "simulated {workload} on {ranks} ranks: makespan {:.4} s, {} messages, {} bytes",
        output.stats.makespan, output.stats.messages, output.stats.bytes
    )
    .unwrap();
    if faults.is_some() {
        writeln!(status, "{}", describe_faults(&output.faults)).unwrap();
    }
    if balance.is_some() {
        writeln!(status, "{}", describe_balance(&output.balance)).unwrap();
        write!(
            status,
            "{}",
            limba_viz::report::render_balance(&output.balance)
        )
        .unwrap();
    }
    writeln!(
        status,
        "trace streamed to {} (chunked v3, frames of {frame_events} events)",
        if to_stdout { "stdout" } else { path }
    )
    .unwrap();
    if to_stdout {
        eprint!("{status}");
    } else {
        print!("{status}");
    }
    Ok(crate::CmdOutcome::Complete)
}

/// Runs `limba simulate <workload> [options]`.
pub fn run(argv: &[String]) -> Result<crate::CmdOutcome, String> {
    let parsed: Parsed = parse_with_switches(argv, SIM_SWITCHES)?;
    // `--faults list` is a query, not a run: answer it even without a
    // workload on the command line.
    if parsed.get("faults") == Some("list") {
        print!("{}", render_fault_presets());
        return Ok(crate::CmdOutcome::Complete);
    }
    // Same for `--balance list`.
    if parsed.get("balance") == Some("list") {
        print!("{}", render_balance_presets());
        return Ok(crate::CmdOutcome::Complete);
    }
    let workload = parsed
        .positional
        .first()
        .ok_or("simulate needs a workload name")?
        .clone();
    let ranks: usize = parsed.get_or("ranks", 16)?;
    let iterations: Option<usize> = match parsed.get("iterations") {
        Some(v) => Some(v.parse().map_err(|_| "invalid --iterations")?),
        None => None,
    };
    let imbalance = match parsed.get("imbalance") {
        Some(spec) => parse_imbalance(spec)?,
        None => Imbalance::None,
    };
    let seed: u64 = parsed.get_or("seed", 0)?;
    let replications: usize = parsed.get_or("replications", 1)?;
    let jobs: usize = parsed.get_or("jobs", 1)?;
    let out = parsed.get("out").unwrap_or("trace.limba").to_string();
    let format = parsed.get("format").unwrap_or("binary").to_string();
    let engine = Engine::parse(parsed.get("engine").unwrap_or("event"))?;
    let supervision = Supervision::from_args(&parsed)?;

    let program = build_program(&workload, ranks, iterations, imbalance, seed)?;
    let faults = match parsed.get("faults") {
        Some(spec) => Some(load_fault_plan(spec, &program, ranks, engine)?),
        None => None,
    };
    let balance = match parsed.get("balance") {
        Some(spec) => Some(load_balance_plan(spec)?),
        None => None,
    };

    if parsed.has("stream-reduce") {
        return run_stream_reduce(
            &parsed,
            &workload,
            &program,
            ranks,
            engine,
            faults.as_ref(),
            balance.as_ref(),
            jobs,
            replications,
        );
    }

    if parsed.get("stream-out").is_some() {
        return run_stream_out(
            &parsed,
            &workload,
            &program,
            ranks,
            engine,
            faults.as_ref(),
            balance.as_ref(),
            jobs,
            replications,
        );
    }

    if replications > 1 {
        // Replication sweep: summary statistics only, no tracefile.
        let spec = SweepSpec {
            workload: &workload,
            ranks,
            iterations,
            imbalance,
            root_seed: seed,
            replications,
            jobs,
            faults: faults.as_ref(),
            balance: balance.as_ref(),
        };
        let (table, manifest) = render_sweep(&spec, &supervision)?;
        print!("{table}");
        supervision.write_manifest(&manifest)?;
        return Ok(Supervision::outcome_of(&manifest));
    }

    let output = simulate_with(
        &program,
        ranks,
        engine,
        faults.as_ref(),
        balance.as_ref(),
        jobs,
    )?;
    write_trace(&output.trace, &out, &format)?;
    println!(
        "simulated {workload} on {ranks} ranks: makespan {:.4} s, {} messages, {} bytes",
        output.stats.makespan, output.stats.messages, output.stats.bytes
    );
    if faults.is_some() {
        println!("{}", describe_faults(&output.faults));
    }
    if balance.is_some() {
        println!("{}", describe_balance(&output.balance));
        // The full per-rank migration ledger, rendered by the same viz
        // section the balanced report snapshots lock.
        print!("{}", limba_viz::report::render_balance(&output.balance));
    }
    println!(
        "trace written to {out} ({format}, {} events)",
        output.trace.events().len()
    );
    Ok(crate::CmdOutcome::Complete)
}

/// Runs `limba demo`: CFD proxy with injected skew, analyzed in memory.
pub fn demo() -> Result<crate::CmdOutcome, String> {
    let program = CfdConfig::new(16)
        .with_iterations(2)
        .with_imbalance(Imbalance::LinearSkew { spread: 0.4 })
        .build_program()
        .map_err(|e| e.to_string())?;
    let output = simulate(&program, 16)?;
    let reduced = output.reduce().map_err(|e| e.to_string())?;
    let report = limba_analysis::Analyzer::new()
        .analyze(&reduced.measurements)
        .map_err(|e| e.to_string())?;
    print!("{}", limba_viz::report::render(&report));
    Ok(crate::CmdOutcome::Complete)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_workload() {
        for w in [
            "cfd",
            "stencil",
            "master-worker",
            "pipeline",
            "irregular",
            "fft",
            "sweep",
            "amr",
        ] {
            let p = build_program(w, 8, None, Imbalance::None, 0).unwrap();
            assert!(p.total_ops() > 0, "{w} is empty");
        }
        assert!(build_program("nope", 8, None, Imbalance::None, 0).is_err());
    }

    fn jitter_spec(jobs: usize) -> SweepSpec<'static> {
        SweepSpec {
            workload: "cfd",
            ranks: 4,
            iterations: Some(1),
            imbalance: Imbalance::RandomJitter { amplitude: 0.2 },
            root_seed: 42,
            replications: 6,
            jobs,
            faults: None,
            balance: None,
        }
    }

    #[test]
    fn sweep_output_is_byte_identical_across_job_counts() {
        let (reference, manifest) = render_sweep(&jitter_spec(1), &Supervision::none()).unwrap();
        assert!(reference.contains("6 replications"));
        assert!(manifest.is_complete());
        for jobs in [2, 4, 8] {
            let (sweep, _) = render_sweep(&jitter_spec(jobs), &Supervision::none()).unwrap();
            assert_eq!(sweep, reference, "jobs={jobs}");
        }
    }

    #[test]
    fn faulted_sweep_is_byte_identical_across_job_counts() {
        let plan = FaultPlan::new(3).with_message_loss(0.2, 3, 1e-4, 2.0);
        let spec = |jobs| SweepSpec {
            workload: "cfd",
            ranks: 4,
            iterations: Some(1),
            imbalance: Imbalance::None,
            root_seed: 9,
            replications: 4,
            jobs,
            faults: Some(&plan),
            balance: None,
        };
        let (reference, _) = render_sweep(&spec(1), &Supervision::none()).unwrap();
        for jobs in [2, 8] {
            let (sweep, _) = render_sweep(&spec(jobs), &Supervision::none()).unwrap();
            assert_eq!(sweep, reference, "jobs={jobs}");
        }
    }

    #[test]
    fn sweep_matches_the_replication_api() {
        // The supervised sweep must reproduce run_replications exactly:
        // same derived seeds, same outputs.
        let spec = jitter_spec(1);
        let sim = Simulator::new(MachineConfig::new(spec.ranks));
        let reference = sim.run_replications(spec.replications, spec.root_seed, 1, |_, seed| {
            build_program(
                spec.workload,
                spec.ranks,
                spec.iterations,
                spec.imbalance,
                seed,
            )
            .map_err(|detail| limba_mpisim::SimError::BuildFailed { detail })
        });
        let (table, _) = render_sweep(&spec, &Supervision::none()).unwrap();
        for rep in reference.iter().map(|r| r.as_ref().unwrap()) {
            let row = format!(
                "{:>4} {:>20} {:>11.4}s {:>10} {:>12}",
                rep.index,
                rep.seed,
                rep.output.stats.makespan,
                rep.output.stats.messages,
                rep.output.stats.bytes
            );
            assert!(table.contains(&row), "missing row: {row}\n{table}");
        }
    }

    #[test]
    fn failing_replication_becomes_an_error_row_not_an_abort() {
        // An unknown workload fails every replication's build step; the
        // sweep still renders, one error row per seed.
        let spec = SweepSpec {
            workload: "nope",
            ranks: 4,
            iterations: None,
            imbalance: Imbalance::None,
            root_seed: 0,
            replications: 3,
            jobs: 2,
            faults: None,
            balance: None,
        };
        let (table, manifest) = render_sweep(&spec, &Supervision::none()).unwrap();
        assert_eq!(manifest.failures.len(), 3);
        assert!(!manifest.is_complete());
        assert_eq!(table.matches("error:").count(), 3, "{table}");
        assert!(table.contains("no replications completed"), "{table}");
        assert!(table.contains("3 failed"), "{table}");
    }

    #[test]
    fn interrupted_sweep_resumes_to_byte_identical_output() {
        let (reference, _) = render_sweep(&jitter_spec(1), &Supervision::none()).unwrap();
        for jobs in [1usize, 4] {
            let path = std::env::temp_dir().join(format!("limba-cli-sweep-resume-{jobs}.ckpt"));
            std::fs::remove_file(&path).ok();
            // Interrupt after 2 of 6 replications.
            let interrupted = Supervision {
                max_units: Some(2),
                checkpoint: Some(path.clone()),
                ..Supervision::none()
            };
            let (partial, manifest) = render_sweep(&jitter_spec(1), &interrupted).unwrap();
            assert!(!manifest.is_complete(), "jobs={jobs}");
            assert_eq!(manifest.completed, 2, "jobs={jobs}");
            assert!(partial.contains("not run (interrupted)"), "{partial}");
            assert!(partial.contains("--resume"), "{partial}");
            // Resume to completion at this jobs count.
            let resumed = Supervision {
                checkpoint: Some(path.clone()),
                resume: true,
                ..Supervision::none()
            };
            let (full, manifest) = render_sweep(&jitter_spec(jobs), &resumed).unwrap();
            assert!(manifest.is_complete(), "jobs={jobs}");
            assert_eq!(manifest.cached, 2, "jobs={jobs}");
            assert_eq!(full, reference, "jobs={jobs}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn sweep_rejects_unknown_workload_checkpoint_mismatch() {
        // A checkpoint written under one spec is refused by another.
        let path = std::env::temp_dir().join("limba-cli-sweep-fpr.ckpt");
        std::fs::remove_file(&path).ok();
        let sup = Supervision {
            checkpoint: Some(path.clone()),
            ..Supervision::none()
        };
        render_sweep(&jitter_spec(1), &sup).unwrap();
        let resume = Supervision {
            checkpoint: Some(path.clone()),
            resume: true,
            ..Supervision::none()
        };
        let mut other = jitter_spec(1);
        other.root_seed = 43;
        let err = render_sweep(&other, &resume).unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn engine_flag_parses_and_engines_agree() {
        assert_eq!(Engine::parse("event").unwrap(), Engine::Event);
        assert_eq!(Engine::parse("event-par").unwrap(), Engine::EventPar);
        assert_eq!(Engine::parse("polling").unwrap(), Engine::Polling);
        assert!(Engine::parse("turbo").is_err());

        let p = build_program("cfd", 6, Some(1), Imbalance::LinearSkew { spread: 0.3 }, 7).unwrap();
        let event = simulate_with(&p, 6, Engine::Event, None, None, 1).unwrap();
        let polling = simulate_with(&p, 6, Engine::Polling, None, None, 1).unwrap();
        assert_eq!(event.trace, polling.trace);
        for jobs in [1, 2, 4] {
            let par = simulate_with(&p, 6, Engine::EventPar, None, None, jobs).unwrap();
            assert_eq!(par.trace, event.trace, "jobs={jobs}");
            assert_eq!(par.stats, event.stats, "jobs={jobs}");
        }
    }

    #[test]
    fn fault_plans_load_from_toml_and_presets() {
        let p = build_program("cfd", 4, Some(1), Imbalance::None, 0).unwrap();

        // TOML file path.
        let path = std::env::temp_dir().join("limba-cli-faults.toml");
        std::fs::write(&path, "seed = 5\n[[crash]]\nrank = 3\ntime = 0.001\n").unwrap();
        let plan = load_fault_plan(path.to_str().unwrap(), &p, 4, Engine::Event).unwrap();
        assert_eq!(plan.crashes.len(), 1);
        std::fs::remove_file(&path).ok();

        // Preset scaled to the clean run's makespan.
        let plan = load_fault_plan("preset:straggler", &p, 4, Engine::Event).unwrap();
        assert_eq!(plan.slowdowns.len(), 1);
        assert!(load_fault_plan("preset:hurricane", &p, 4, Engine::Event)
            .unwrap_err()
            .contains("unknown fault preset"));

        // A plan referencing ranks outside the machine is rejected here.
        let path = std::env::temp_dir().join("limba-cli-bad-faults.toml");
        std::fs::write(&path, "[[crash]]\nrank = 9\ntime = 1.0\n").unwrap();
        assert!(load_fault_plan(path.to_str().unwrap(), &p, 4, Engine::Event).is_err());
        std::fs::remove_file(&path).ok();

        // All three engines honor the same plan identically.
        let plan = load_fault_plan("preset:chaos", &p, 4, Engine::Event).unwrap();
        let event = simulate_with(&p, 4, Engine::Event, Some(&plan), None, 1).unwrap();
        let polling = simulate_with(&p, 4, Engine::Polling, Some(&plan), None, 1).unwrap();
        let par = simulate_with(&p, 4, Engine::EventPar, Some(&plan), None, 4).unwrap();
        assert_eq!(event.trace, polling.trace);
        assert_eq!(event.stats, polling.stats);
        assert_eq!(event.faults, polling.faults);
        assert_eq!(par.trace, event.trace);
        assert_eq!(par.faults, event.faults);
        assert!(!event.faults.is_clean());
        assert!(describe_faults(&event.faults).contains("crashed"));
    }

    #[test]
    fn balance_plans_load_from_toml_and_presets() {
        // TOML file path.
        let path = std::env::temp_dir().join("limba-cli-balance.toml");
        std::fs::write(&path, "policy = \"stealing\"\nseed = 5\nthreshold = 1.2\n").unwrap();
        let plan = load_balance_plan(path.to_str().unwrap()).unwrap();
        assert_eq!(plan.policy_name(), "stealing");
        assert_eq!(plan.seed(), 5);
        std::fs::remove_file(&path).ok();

        // Presets.
        let plan = load_balance_plan("preset:diffusion").unwrap();
        assert_eq!(plan.policy_name(), "diffusion");
        assert!(load_balance_plan("preset:hurricane")
            .unwrap_err()
            .contains("unknown balance preset"));

        // Out-of-range parameters are rejected at load time.
        let path = std::env::temp_dir().join("limba-cli-bad-balance.toml");
        std::fs::write(&path, "policy = \"stealing\"\nthreshold = 0.2\n").unwrap();
        assert!(load_balance_plan(path.to_str().unwrap()).is_err());
        std::fs::remove_file(&path).ok();

        // Both engines honor the same plan identically, and balancing
        // improves an imbalanced run.
        let p = build_program("cfd", 6, Some(2), Imbalance::LinearSkew { spread: 0.4 }, 7).unwrap();
        let base = simulate_with(&p, 6, Engine::Event, None, None, 1).unwrap();
        let plan = load_balance_plan("preset:stealing").unwrap();
        let event = simulate_with(&p, 6, Engine::Event, None, Some(&plan), 1).unwrap();
        let polling = simulate_with(&p, 6, Engine::Polling, None, Some(&plan), 1).unwrap();
        let par = simulate_with(&p, 6, Engine::EventPar, None, Some(&plan), 4).unwrap();
        assert_eq!(event.trace, polling.trace);
        assert_eq!(event.stats, polling.stats);
        assert_eq!(event.balance, polling.balance);
        assert_eq!(par.trace, event.trace);
        assert_eq!(par.balance, event.balance);
        assert!(event.balance.migrations > 0);
        assert!(event.stats.makespan < base.stats.makespan);
        assert!(describe_balance(&event.balance).contains("migrations"));
    }

    #[test]
    fn balance_preset_listing_names_every_preset() {
        let listing = render_balance_presets();
        for &name in limba_workloads::balance::PRESETS {
            assert!(listing.contains(name), "missing {name}");
        }
        assert!(listing.contains("preset:<name>"));
    }

    #[test]
    fn balanced_sweep_is_byte_identical_across_job_counts() {
        let plan = limba_workloads::balance::preset("stealing").unwrap();
        let spec = |jobs| SweepSpec {
            workload: "cfd",
            ranks: 4,
            iterations: Some(1),
            imbalance: Imbalance::RandomJitter { amplitude: 0.3 },
            root_seed: 11,
            replications: 4,
            jobs,
            faults: None,
            balance: Some(&plan),
        };
        let (reference, _) = render_sweep(&spec(1), &Supervision::none()).unwrap();
        for jobs in [2, 8] {
            let (sweep, _) = render_sweep(&spec(jobs), &Supervision::none()).unwrap();
            assert_eq!(sweep, reference, "jobs={jobs}");
        }
        // Balancing is part of the fingerprint: a balanced sweep's
        // checkpoint is not interchangeable with an unbalanced one.
        let mut unbalanced = spec(1);
        unbalanced.balance = None;
        assert_ne!(spec(1).fingerprint(), unbalanced.fingerprint());
    }

    #[test]
    fn fault_preset_listing_names_every_preset() {
        let listing = render_fault_presets();
        for &name in limba_workloads::faults::PRESETS {
            assert!(listing.contains(name), "missing {name}");
        }
        assert!(listing.contains("preset:<name>"));
    }

    #[test]
    fn stencil_grid_factors_rank_count() {
        // 12 ranks → 3×4 or 4×3; must build and simulate.
        let p = build_program("stencil", 12, Some(2), Imbalance::None, 0).unwrap();
        simulate(&p, 12).unwrap();
    }

    #[test]
    fn sim_switches_cover_supervision() {
        for s in crate::supervise::SWITCHES {
            assert!(
                SIM_SWITCHES.contains(s),
                "supervision switch --{s} missing from SIM_SWITCHES"
            );
        }
    }

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn stream_reduce_rejects_incompatible_flags() {
        let err = run(&args(&["cfd", "--stream-reduce", "--engine", "polling"])).unwrap_err();
        assert!(err.contains("event or event-par"), "{err}");
        let err = run(&args(&["cfd", "--stream-reduce", "--replications", "3"])).unwrap_err();
        assert!(err.contains("single run"), "{err}");
        let err = run(&args(&["cfd", "--stream-reduce", "--out", "t.limba"])).unwrap_err();
        assert!(err.contains("no tracefile"), "{err}");
        let err = run(&args(&[
            "cfd",
            "--stream-reduce",
            "--stream-frame-events",
            "0",
        ]))
        .unwrap_err();
        assert!(err.contains("positive"), "{err}");
    }

    #[test]
    fn stream_reduce_runs_end_to_end() {
        // Both engines, with windows, without a tracefile in sight.
        for engine in ["event", "event-par"] {
            let outcome = run(&args(&[
                "cfd",
                "--ranks",
                "4",
                "--stream-reduce",
                "--engine",
                engine,
                "--jobs",
                "2",
                "--windows",
                "3",
                "--stream-frame-events",
                "7",
            ]))
            .unwrap();
            assert!(matches!(outcome, crate::CmdOutcome::Complete));
        }
    }

    #[test]
    fn stream_out_rejects_incompatible_flags() {
        let err = run(&args(&[
            "cfd",
            "--stream-out",
            "t.trc",
            "--engine",
            "polling",
        ]))
        .unwrap_err();
        assert!(err.contains("event or event-par"), "{err}");
        let err = run(&args(&[
            "cfd",
            "--stream-out",
            "t.trc",
            "--replications",
            "3",
        ]))
        .unwrap_err();
        assert!(err.contains("single run"), "{err}");
        let err = run(&args(&["cfd", "--stream-out", "t.trc", "--out", "t.limba"])).unwrap_err();
        assert!(err.contains("drop --out"), "{err}");
        // Teeing to stdout while the report also prints there is refused.
        let err = run(&args(&["cfd", "--stream-out", "-", "--stream-reduce"])).unwrap_err();
        assert!(err.contains("clashes"), "{err}");
    }

    #[test]
    fn stream_out_writes_the_materialized_bytes() {
        // The streamed container must be byte-identical to encoding the
        // materialized trace of the same run.
        let dir = std::env::temp_dir();
        let program = build_program("cfd", 4, Some(1), Imbalance::None, 0).unwrap();
        let reference = simulate(&program, 4).unwrap();
        let mut expect = Vec::new();
        {
            use limba_trace::TraceSink;
            let mut sink = limba_trace::WriteSink::new(&mut expect);
            sink.begin(reference.trace.processors(), reference.trace.region_names())
                .unwrap();
            sink.events(reference.trace.events()).unwrap();
            sink.finish().unwrap();
        }
        for (label, extra) in [
            ("event", vec![]),
            ("event-par", vec!["--jobs", "2"]),
            ("tee", vec!["--stream-reduce"]),
        ] {
            let path = dir.join(format!("limba-cli-stream-out-{label}.trc"));
            let mut argv = vec![
                "cfd",
                "--ranks",
                "4",
                "--stream-out",
                path.to_str().unwrap(),
            ];
            if label == "event-par" {
                argv.extend(["--engine", "event-par"]);
            }
            argv.extend(extra);
            run(&args(&argv)).unwrap();
            let got = std::fs::read(&path).unwrap();
            // The tee writes whole frames as the reducer sees them; the
            // standalone path frames by --stream-frame-events. Frame
            // boundaries differ but the decoded trace must not, and for
            // equal framing the bytes are identical.
            if label == "event" {
                assert_eq!(got, expect, "streamed bytes diverge ({label})");
            }
            let decoded = limba_trace::binary::from_bytes(&got).unwrap();
            assert_eq!(decoded.events(), reference.trace.events(), "{label}");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn trace_round_trips_through_files() {
        let dir = std::env::temp_dir();
        let program = build_program("cfd", 4, Some(1), Imbalance::None, 0).unwrap();
        let out = simulate(&program, 4).unwrap();
        for format in ["binary", "text"] {
            let path = dir.join(format!("limba-cli-test.{format}"));
            let path = path.to_str().unwrap();
            write_trace(&out.trace, path, format).unwrap();
            let data = std::fs::File::open(path).unwrap();
            let back = match format {
                "binary" => limba_trace::binary::read(data).unwrap(),
                _ => limba_trace::text::read(data).unwrap(),
            };
            assert_eq!(back, out.trace);
            std::fs::remove_file(path).ok();
        }
    }
}
