//! `limba suite`: a tracefile-testbed-style sweep — run every workload
//! under every imbalance injector, analyze each run, and print a summary
//! table. (In the spirit of the Tracefile Testbed the paper's authors
//! co-built: a corpus of runs to compare methodologies on.)

use limba_analysis::Analyzer;
use limba_mpisim::{MachineConfig, Program, Simulator};
use limba_workloads::{
    cfd::CfdConfig, fft::FftConfig, irregular::IrregularConfig, master_worker::MasterWorkerConfig,
    pipeline::PipelineConfig, stencil::StencilConfig, sweep::SweepConfig, Imbalance,
};

use crate::args::{parse, Parsed};

fn programs(ranks: usize, imbalance: Imbalance) -> Vec<(&'static str, Program)> {
    vec![
        (
            "cfd",
            CfdConfig::new(ranks)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
        ),
        (
            "stencil",
            StencilConfig::new(ranks / 2, 2)
                .with_iterations(4)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
        ),
        (
            "master-worker",
            MasterWorkerConfig::new(ranks)
                .with_tasks(ranks * 3)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
        ),
        (
            "pipeline",
            PipelineConfig::new(ranks)
                .with_items(12)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
        ),
        (
            "irregular",
            IrregularConfig::new(ranks)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
        ),
        (
            "fft",
            FftConfig::new(ranks)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
        ),
        (
            "sweep",
            SweepConfig::new(ranks)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
        ),
    ]
}

/// Runs `limba suite [--ranks N]`.
pub fn run(argv: &[String]) -> Result<(), String> {
    let parsed: Parsed = parse(argv)?;
    let ranks: usize = parsed.get_or("ranks", 8)?;
    if ranks < 4 || ranks % 2 != 0 {
        return Err("suite needs an even rank count of at least 4".into());
    }
    let injectors: Vec<(&str, Imbalance)> = vec![
        ("none", Imbalance::None),
        ("linear:0.4", Imbalance::LinearSkew { spread: 0.4 }),
        (
            "block:2,2.5",
            Imbalance::BlockSkew {
                heavy: 2,
                factor: 2.5,
            },
        ),
        (
            "hotspot:1,3",
            Imbalance::Hotspot {
                rank: 1,
                factor: 3.0,
            },
        ),
        ("jitter:0.25", Imbalance::RandomJitter { amplitude: 0.25 }),
    ];
    let sim = Simulator::new(MachineConfig::new(ranks));
    println!(
        "{:<14} {:<14} {:>10} {:>10} {:>22}",
        "workload", "imbalance", "makespan", "max SID_C", "top candidate"
    );
    println!("{}", "-".repeat(74));
    for (iname, imbalance) in &injectors {
        for (wname, program) in programs(ranks, *imbalance) {
            let out = sim
                .run(&program)
                .map_err(|e| format!("{wname}/{iname}: {e}"))?;
            let reduced = out.reduce().map_err(|e| e.to_string())?;
            let report = Analyzer::new()
                .with_cluster_k(0)
                .analyze(&reduced.measurements)
                .map_err(|e| e.to_string())?;
            let (sid, top) = report
                .findings
                .tuning_candidates
                .first()
                .map(|c| (c.sid, c.name.clone()))
                .unwrap_or((0.0, "-".into()));
            println!(
                "{wname:<14} {iname:<14} {:>9.3}s {sid:>10.5} {top:>22}",
                out.stats.makespan
            );
        }
        println!();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_on_small_machine() {
        run(&["--ranks".to_string(), "4".to_string()]).unwrap();
    }

    #[test]
    fn odd_or_tiny_rank_counts_rejected() {
        assert!(run(&["--ranks".to_string(), "3".to_string()]).is_err());
        assert!(run(&["--ranks".to_string(), "2".to_string()]).is_err());
    }
}
