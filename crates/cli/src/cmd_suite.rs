//! `limba suite`: a tracefile-testbed-style sweep — run every workload
//! under every imbalance injector, analyze each run, and print a summary
//! table. (In the spirit of the Tracefile Testbed the paper's authors
//! co-built: a corpus of runs to compare methodologies on.)
//!
//! With `--jobs N` the sweep fans out over a thread pool: simulations
//! run through [`limba_par::par_map`] and the analyses through
//! [`BatchAnalyzer`], both of which slot results by input index — so the
//! rendered table is byte-identical for every job count (locked by the
//! workspace test-suite).

use std::fmt::Write as _;

use limba_analysis::{Analyzer, BatchAnalyzer};
use limba_model::Measurements;
use limba_mpisim::{MachineConfig, Program, Simulator};
use limba_workloads::{
    cfd::CfdConfig, fft::FftConfig, irregular::IrregularConfig, master_worker::MasterWorkerConfig,
    pipeline::PipelineConfig, stencil::StencilConfig, sweep::SweepConfig, Imbalance,
};

use crate::args::{parse, Parsed};

fn programs(ranks: usize, imbalance: Imbalance) -> Vec<(&'static str, Program)> {
    vec![
        (
            "cfd",
            CfdConfig::new(ranks)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
        ),
        (
            "stencil",
            StencilConfig::new(ranks / 2, 2)
                .with_iterations(4)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
        ),
        (
            "master-worker",
            MasterWorkerConfig::new(ranks)
                .with_tasks(ranks * 3)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
        ),
        (
            "pipeline",
            PipelineConfig::new(ranks)
                .with_items(12)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
        ),
        (
            "irregular",
            IrregularConfig::new(ranks)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
        ),
        (
            "fft",
            FftConfig::new(ranks)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
        ),
        (
            "sweep",
            SweepConfig::new(ranks)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
        ),
    ]
}

fn injectors() -> Vec<(&'static str, Imbalance)> {
    vec![
        ("none", Imbalance::None),
        ("linear:0.4", Imbalance::LinearSkew { spread: 0.4 }),
        (
            "block:2,2.5",
            Imbalance::BlockSkew {
                heavy: 2,
                factor: 2.5,
            },
        ),
        (
            "hotspot:1,3",
            Imbalance::Hotspot {
                rank: 1,
                factor: 3.0,
            },
        ),
        ("jitter:0.25", Imbalance::RandomJitter { amplitude: 0.25 }),
    ]
}

/// Renders the full suite table for `ranks` ranks using up to `jobs`
/// worker threads. The output is byte-identical for every `jobs` value.
pub fn render(ranks: usize, jobs: usize) -> Result<String, String> {
    if ranks < 4 || !ranks.is_multiple_of(2) {
        return Err("suite needs an even rank count of at least 4".into());
    }
    // Flatten the injector × workload grid into an indexed case list so
    // parallel stages can slot their results deterministically.
    let cases: Vec<(&str, &str, Program)> = injectors()
        .into_iter()
        .flat_map(|(iname, imbalance)| {
            programs(ranks, imbalance)
                .into_iter()
                .map(move |(wname, program)| (iname, wname, program))
        })
        .collect();

    // Stage 1: simulate + reduce every case in parallel.
    let sim = Simulator::new(MachineConfig::new(ranks));
    let simulated: Vec<Result<(f64, Measurements), String>> =
        limba_par::par_map(jobs, &cases, |_, (iname, wname, program)| {
            let out = sim
                .run(program)
                .map_err(|e| format!("{wname}/{iname}: {e}"))?;
            let reduced = out.reduce().map_err(|e| e.to_string())?;
            Ok((out.stats.makespan, reduced.measurements))
        });
    // Deterministic error selection: the first failing case in input
    // order wins, regardless of completion order.
    let mut makespans = Vec::with_capacity(cases.len());
    let mut traces = Vec::with_capacity(cases.len());
    for result in simulated {
        let (makespan, measurements) = result?;
        makespans.push(makespan);
        traces.push(measurements);
    }

    // Stage 2: analyze the whole corpus as one batch.
    let batch = BatchAnalyzer::new(Analyzer::new().with_cluster_k(0)).with_jobs(jobs);
    let reports = batch.analyze_batch(&traces);

    let mut table = String::new();
    writeln!(
        table,
        "{:<14} {:<14} {:>10} {:>10} {:>22}",
        "workload", "imbalance", "makespan", "max SID_C", "top candidate"
    )
    .unwrap();
    writeln!(table, "{}", "-".repeat(74)).unwrap();
    let mut previous_injector = None;
    for (((iname, wname, _), makespan), report) in cases.iter().zip(&makespans).zip(&reports) {
        if previous_injector.is_some_and(|p| p != iname) {
            writeln!(table).unwrap();
        }
        previous_injector = Some(iname);
        let report = report
            .as_ref()
            .map_err(|e| format!("{wname}/{iname}: {e}"))?;
        let (sid, top) = report
            .findings
            .tuning_candidates
            .first()
            .map(|c| (c.sid, c.name.clone()))
            .unwrap_or((0.0, "-".into()));
        writeln!(
            table,
            "{wname:<14} {iname:<14} {makespan:>9.3}s {sid:>10.5} {top:>22}"
        )
        .unwrap();
    }
    writeln!(table).unwrap();
    Ok(table)
}

/// Runs `limba suite [--ranks N] [--jobs N]`.
pub fn run(argv: &[String]) -> Result<(), String> {
    let parsed: Parsed = parse(argv)?;
    let ranks: usize = parsed.get_or("ranks", 8)?;
    let jobs: usize = parsed.get_or("jobs", 1)?;
    print!("{}", render(ranks, jobs)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_on_small_machine() {
        run(&["--ranks".to_string(), "4".to_string()]).unwrap();
    }

    #[test]
    fn odd_or_tiny_rank_counts_rejected() {
        assert!(run(&["--ranks".to_string(), "3".to_string()]).is_err());
        assert!(run(&["--ranks".to_string(), "2".to_string()]).is_err());
    }

    #[test]
    fn suite_table_is_byte_identical_across_job_counts() {
        let reference = render(4, 1).unwrap();
        assert!(reference.contains("workload"));
        for jobs in [2, 4, 8] {
            assert_eq!(render(4, jobs).unwrap(), reference, "jobs={jobs}");
        }
    }
}
