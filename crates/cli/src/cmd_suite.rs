//! `limba suite`: a tracefile-testbed-style sweep — run every workload
//! under every imbalance injector, analyze each run, and print a summary
//! table. (In the spirit of the Tracefile Testbed the paper's authors
//! co-built: a corpus of runs to compare methodologies on.)
//!
//! With `--jobs N` the sweep fans out over a thread pool: simulations
//! run through [`limba_par::par_map`] and the analyses through
//! [`BatchAnalyzer`], both of which slot results by input index — so the
//! rendered table is byte-identical for every job count (locked by the
//! workspace test-suite).

use std::fmt::Write as _;

use limba_analysis::Analyzer;
use limba_mpisim::{MachineConfig, Program, Simulator};
use limba_workloads::{
    cfd::CfdConfig, fft::FftConfig, irregular::IrregularConfig, master_worker::MasterWorkerConfig,
    pipeline::PipelineConfig, stencil::StencilConfig, sweep::SweepConfig, Imbalance,
};

use crate::args::{parse_with_switches, Parsed};
use crate::supervise::Supervision;

fn programs(ranks: usize, imbalance: Imbalance) -> Vec<(&'static str, Program)> {
    vec![
        (
            "cfd",
            CfdConfig::new(ranks)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
        ),
        (
            "stencil",
            StencilConfig::new(ranks / 2, 2)
                .with_iterations(4)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
        ),
        (
            "master-worker",
            MasterWorkerConfig::new(ranks)
                .with_tasks(ranks * 3)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
        ),
        (
            "pipeline",
            PipelineConfig::new(ranks)
                .with_items(12)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
        ),
        (
            "irregular",
            IrregularConfig::new(ranks)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
        ),
        (
            "fft",
            FftConfig::new(ranks)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
        ),
        (
            "sweep",
            SweepConfig::new(ranks)
                .with_imbalance(imbalance)
                .build_program()
                .unwrap(),
        ),
    ]
}

fn injectors() -> Vec<(&'static str, Imbalance)> {
    vec![
        ("none", Imbalance::None),
        ("linear:0.4", Imbalance::LinearSkew { spread: 0.4 }),
        (
            "block:2,2.5",
            Imbalance::BlockSkew {
                heavy: 2,
                factor: 2.5,
            },
        ),
        (
            "hotspot:1,3",
            Imbalance::Hotspot {
                rank: 1,
                factor: 3.0,
            },
        ),
        ("jitter:0.25", Imbalance::RandomJitter { amplitude: 0.25 }),
    ]
}

/// One rendered suite case: exactly the values its table row prints.
struct SuiteRow {
    makespan: f64,
    sid: f64,
    top: String,
}

struct SuiteCodec;

impl limba_guard::PayloadCodec<SuiteRow> for SuiteCodec {
    fn encode(&self, row: &SuiteRow) -> Vec<u8> {
        let mut w = limba_guard::codec::ByteWriter::new();
        w.put_f64(row.makespan);
        w.put_f64(row.sid);
        w.put_str(&row.top);
        w.into_bytes()
    }

    fn decode(&self, bytes: &[u8]) -> Result<SuiteRow, limba_guard::GuardError> {
        let mut r = limba_guard::codec::ByteReader::new(bytes);
        let row = SuiteRow {
            makespan: r.get_f64("makespan")?,
            sid: r.get_f64("max SID")?,
            top: r.get_str("top candidate")?,
        };
        r.expect_end("suite row")?;
        Ok(row)
    }
}

/// Renders the full suite table for `ranks` ranks using up to `jobs`
/// worker threads, under the given supervision (deadline, unit cap,
/// checkpoint/resume). The table is byte-identical for every `jobs`
/// value, and an interrupted-then-resumed suite renders byte-identically
/// to an uninterrupted one. A failing case occupies its own error row
/// instead of aborting the sweep.
pub(crate) fn render(
    ranks: usize,
    jobs: usize,
    supervision: &Supervision,
) -> Result<(String, limba_guard::RunManifest), String> {
    if ranks < 4 || !ranks.is_multiple_of(2) {
        return Err("suite needs an even rank count of at least 4".into());
    }
    // Flatten the injector × workload grid into an indexed case list so
    // parallel stages can slot their results deterministically.
    let cases: Vec<(&str, &str, Program)> = injectors()
        .into_iter()
        .flat_map(|(iname, imbalance)| {
            programs(ranks, imbalance)
                .into_iter()
                .map(move |(wname, program)| (iname, wname, program))
        })
        .collect();

    // One unit per case: simulate, reduce, analyze. The checkpoint
    // fingerprint covers everything that affects a row (`jobs` does
    // not — the output is jobs-invariant).
    let fingerprint =
        limba_guard::config_fingerprint(&format!("suite|ranks={ranks}|cases={}", cases.len()));
    let sim = Simulator::new(MachineConfig::new(ranks));
    let run = supervision
        .supervisor(jobs)
        .run(
            "suite",
            fingerprint,
            &cases,
            &SuiteCodec,
            |_, (iname, wname, program)| {
                let fatal =
                    |e: String| limba_guard::JobError::Fatal(format!("{wname}/{iname}: {e}"));
                let out = sim.run(program).map_err(|e| fatal(e.to_string()))?;
                let reduced = out.reduce().map_err(|e| fatal(e.to_string()))?;
                let report = Analyzer::new()
                    .with_cluster_k(0)
                    .analyze(&reduced.measurements)
                    .map_err(|e| fatal(e.to_string()))?;
                let (sid, top) = report
                    .findings
                    .tuning_candidates
                    .first()
                    .map(|c| (c.sid, c.name.clone()))
                    .unwrap_or((0.0, "-".into()));
                Ok(SuiteRow {
                    makespan: out.stats.makespan,
                    sid,
                    top,
                })
            },
        )
        .map_err(|e| e.to_string())?;
    if let Some(e) = &run.checkpoint_error {
        return Err(format!("checkpoint save failed: {e}"));
    }

    let mut table = String::new();
    writeln!(
        table,
        "{:<14} {:<14} {:>10} {:>10} {:>22}",
        "workload", "imbalance", "makespan", "max SID_C", "top candidate"
    )
    .unwrap();
    writeln!(table, "{}", "-".repeat(74)).unwrap();
    let mut previous_injector = None;
    for ((iname, wname, _), slot) in cases.iter().zip(&run.results) {
        if previous_injector.is_some_and(|p| p != iname) {
            writeln!(table).unwrap();
        }
        previous_injector = Some(iname);
        match slot {
            Some(Ok(row)) => writeln!(
                table,
                "{wname:<14} {iname:<14} {:>9.3}s {:>10.5} {:>22}",
                row.makespan, row.sid, row.top
            )
            .unwrap(),
            Some(Err(failure)) => writeln!(
                table,
                "{wname:<14} {iname:<14} error: {}",
                failure.kind.message()
            )
            .unwrap(),
            None => writeln!(table, "{wname:<14} {iname:<14} not run (interrupted)").unwrap(),
        }
    }
    writeln!(table).unwrap();
    if !run.manifest.is_complete() {
        writeln!(
            table,
            "partial suite: {} completed, {} cached, {} failed, {} not run{}",
            run.manifest.completed,
            run.manifest.cached,
            run.manifest.failures.len(),
            run.manifest.skipped,
            if supervision.checkpoint.is_some() && run.manifest.skipped > 0 {
                " — rerun with --resume to continue"
            } else {
                ""
            }
        )
        .unwrap();
    }
    Ok((table, run.manifest))
}

/// Runs `limba suite [--ranks N] [--jobs N] [supervision flags]`.
pub fn run(argv: &[String]) -> Result<crate::CmdOutcome, String> {
    let parsed: Parsed = parse_with_switches(argv, crate::supervise::SWITCHES)?;
    let ranks: usize = parsed.get_or("ranks", 8)?;
    let jobs: usize = parsed.get_or("jobs", 1)?;
    let supervision = Supervision::from_args(&parsed)?;
    let (table, manifest) = render(ranks, jobs, &supervision)?;
    print!("{table}");
    supervision.write_manifest(&manifest)?;
    Ok(Supervision::outcome_of(&manifest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_on_small_machine() {
        run(&["--ranks".to_string(), "4".to_string()]).unwrap();
    }

    #[test]
    fn odd_or_tiny_rank_counts_rejected() {
        assert!(run(&["--ranks".to_string(), "3".to_string()]).is_err());
        assert!(run(&["--ranks".to_string(), "2".to_string()]).is_err());
    }

    #[test]
    fn suite_table_is_byte_identical_across_job_counts() {
        let (reference, manifest) = render(4, 1, &Supervision::none()).unwrap();
        assert!(reference.contains("workload"));
        assert!(manifest.is_complete());
        for jobs in [2, 4, 8] {
            let (table, _) = render(4, jobs, &Supervision::none()).unwrap();
            assert_eq!(table, reference, "jobs={jobs}");
        }
    }

    #[test]
    fn interrupted_suite_resumes_to_byte_identical_output() {
        let (reference, _) = render(4, 1, &Supervision::none()).unwrap();
        let path = std::env::temp_dir().join("limba-cli-suite-resume.ckpt");
        std::fs::remove_file(&path).ok();
        let interrupted = Supervision {
            max_units: Some(9),
            checkpoint: Some(path.clone()),
            ..Supervision::none()
        };
        let (partial, manifest) = render(4, 1, &interrupted).unwrap();
        assert!(!manifest.is_complete());
        assert_eq!(manifest.completed, 9);
        assert!(partial.contains("not run (interrupted)"));
        let resumed = Supervision {
            checkpoint: Some(path.clone()),
            resume: true,
            ..Supervision::none()
        };
        let (full, manifest) = render(4, 4, &resumed).unwrap();
        assert!(manifest.is_complete());
        assert_eq!(manifest.cached, 9);
        assert_eq!(full, reference);
        std::fs::remove_file(&path).ok();
    }
}
