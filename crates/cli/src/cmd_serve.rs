//! `limba serve` / `limba push` / `limba query` — the live ingestion
//! service and its clients.
//!
//! `serve` runs the multi-tenant trace-ingestion server: concurrent
//! chunked-v3 streams spool to disk and fold incrementally through the
//! online imbalance detector; a completed run's report is byte-identical
//! to `limba analyze <spool> --from-stream`. `push` streams a tracefile
//! — or a live simulation that is never materialized — into a serving
//! tenant. `query` speaks the one-line text protocol (STATUS, TENANTS,
//! RUNS, REPORT, DIGEST, ALERTS, EVOLUTION, SHUTDOWN).

use limba_mpisim::{MachineConfig, Simulator};
use limba_serve::client::{self, PushStatus};
use limba_serve::{DetectorConfig, PushSession, ServeConfig, Server};

use crate::args::{parse, parse_imbalance, Parsed};
use crate::cmd_simulate::{build_program, Engine};
use limba_workloads::Imbalance;

/// Default listen / connect address for the serving protocol.
const DEFAULT_ADDR: &str = "127.0.0.1:7979";

/// Runs `limba serve [OPTIONS]`.
pub fn serve(argv: &[String]) -> Result<crate::CmdOutcome, String> {
    let parsed: Parsed = parse(argv)?;
    if let Some(extra) = parsed.positional.first() {
        return Err(format!(
            "serve takes no positional arguments, got {extra:?}"
        ));
    }
    let listen = parsed.get("listen").unwrap_or(DEFAULT_ADDR).to_string();
    let mut cfg = ServeConfig {
        max_tenants: parsed.get_or("max-tenants", 8)?,
        shards: parsed.get_or("shards", 2)?,
        ..ServeConfig::default()
    };
    cfg.max_sessions = parsed.get_or("max-sessions", cfg.max_sessions)?;
    if cfg.max_tenants == 0 {
        return Err("--max-tenants must be positive".into());
    }
    if cfg.max_sessions == 0 {
        return Err("--max-sessions must be positive".into());
    }
    if cfg.shards == 0 {
        return Err("--shards must be positive".into());
    }
    let window: f64 = parsed.get_or("window", DetectorConfig::default().window)?;
    if window.is_nan() || window <= 0.0 {
        return Err("--window must be a positive number of seconds".into());
    }
    cfg.detector = DetectorConfig {
        window,
        ..DetectorConfig::default()
    };
    if let Some(dir) = parsed.get("checkpoint-dir") {
        cfg.checkpoint_dir = Some(dir.into());
    }
    if let Some(spec) = parsed.get("io-faults") {
        // Deterministic fault injection for chaos testing: every
        // durable artifact (spools, run metadata) goes through the
        // faulting layer, while sockets stay untouched.
        let plan = limba_vfs::FaultPlan::parse(spec).map_err(|e| format!("--io-faults: {e}"))?;
        cfg.vfs = std::sync::Arc::new(limba_vfs::FaultVfs::new(
            std::sync::Arc::new(limba_vfs::StdVfs),
            plan,
        ));
        eprintln!("limba-serve: injecting I/O faults ({spec})");
    }

    let persistent = cfg.checkpoint_dir.is_some();
    let server = Server::start(&listen, cfg).map_err(|e| e.to_string())?;
    println!(
        "limba-serve listening on {} ({})",
        server.addr(),
        if persistent {
            "checkpointed: runs survive restarts"
        } else {
            "ephemeral: no --checkpoint-dir"
        }
    );
    println!("stop with `limba query SHUTDOWN --to {}`", server.addr());
    server.wait_cancelled();
    server.shutdown().map_err(|e| e.to_string())?;
    println!("limba-serve stopped");
    Ok(crate::CmdOutcome::Complete)
}

/// Runs `limba push [<tracefile>] [OPTIONS]`.
pub fn push(argv: &[String]) -> Result<crate::CmdOutcome, String> {
    let parsed: Parsed = parse(argv)?;
    let addr = parsed.get("to").unwrap_or(DEFAULT_ADDR).to_string();
    let tenant = parsed.get("tenant").unwrap_or("default").to_string();

    let tracefile = parsed.positional.first();
    let workload = parsed.get("workload");
    let (source, default_run): (Source, String) = match (tracefile, workload) {
        (Some(path), None) => {
            let stem = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("run")
                .to_string();
            (Source::File(path.clone()), stem)
        }
        (None, Some(w)) => (Source::Workload(w.to_string()), w.to_string()),
        (Some(_), Some(_)) => {
            return Err("push takes a tracefile or --workload, not both".into());
        }
        (None, None) => {
            return Err("push needs a tracefile path or --workload <name>".into());
        }
    };
    let run = parsed.get("run").unwrap_or(&default_run).to_string();

    let session = PushSession::connect(&addr, &tenant, &run).map_err(|e| e.to_string())?;
    if session.offset() > 0 {
        println!(
            "resuming {tenant}/{run}: server holds {} bytes, skipping",
            session.offset()
        );
    }
    let outcome = match source {
        Source::File(path) => session
            .push_file(std::path::Path::new(&path))
            .map_err(|e| e.to_string())?,
        Source::Workload(w) => {
            let ranks: usize = parsed.get_or("ranks", 16)?;
            let iterations: Option<usize> = match parsed.get("iterations") {
                Some(v) => Some(v.parse().map_err(|_| "invalid --iterations")?),
                None => None,
            };
            let imbalance = match parsed.get("imbalance") {
                Some(spec) => parse_imbalance(spec)?,
                None => Imbalance::None,
            };
            let seed: u64 = parsed.get_or("seed", 0)?;
            let jobs: usize = parsed.get_or("jobs", 1)?;
            let frame_events: usize = parsed.get_or("stream-frame-events", 4096)?;
            if frame_events == 0 {
                return Err("--stream-frame-events must be positive".into());
            }
            let engine = Engine::parse(parsed.get("engine").unwrap_or("event"))?;
            let program = build_program(&w, ranks, iterations, imbalance, seed)?;
            let sim = Simulator::new(MachineConfig::new(ranks));
            // The simulation streams straight into the socket; on
            // resume the first `offset` bytes are regenerated and
            // discarded client-side, so the server appends the exact
            // missing suffix.
            session
                .push_sink(|sink| {
                    let res = match engine {
                        Engine::Event => sim.run_streaming_configured(
                            &program,
                            None,
                            None,
                            None,
                            sink,
                            frame_events,
                        ),
                        Engine::EventPar => sim.run_streaming_parallel_configured(
                            &program,
                            None,
                            None,
                            None,
                            jobs,
                            sink,
                            frame_events,
                        ),
                        Engine::Polling => {
                            return Err(limba_serve::ServeError::State(
                                "push --workload needs --engine event or event-par".into(),
                            ));
                        }
                    };
                    res.map(|_| ())
                        .map_err(|e| limba_serve::ServeError::State(e.to_string()))
                })
                .map_err(|e| e.to_string())?
        }
    };
    match outcome.status {
        PushStatus::Complete => {
            println!("run {tenant}/{run} complete; final report:");
            print!("{}", outcome.report);
            Ok(crate::CmdOutcome::Complete)
        }
        PushStatus::Salvaged => {
            println!("run {tenant}/{run} ended early; salvaged report:");
            print!("{}", outcome.report);
            Ok(crate::CmdOutcome::Partial)
        }
    }
}

/// What `push` streams.
enum Source {
    /// An existing chunked-v3 tracefile.
    File(String),
    /// A live simulation of the named workload.
    Workload(String),
}

/// Runs `limba query <words...> [--to ADDR]`.
pub fn query(argv: &[String]) -> Result<crate::CmdOutcome, String> {
    let parsed: Parsed = parse(argv)?;
    if parsed.positional.is_empty() {
        return Err(
            "query needs a request, e.g. `limba query STATUS` or `limba query REPORT t r`".into(),
        );
    }
    let addr = parsed.get("to").unwrap_or(DEFAULT_ADDR).to_string();
    let line = parsed.positional.join(" ");
    let response = client::query(&addr, &line).map_err(|e| e.to_string())?;
    print!("{response}");
    Ok(crate::CmdOutcome::Complete)
}
