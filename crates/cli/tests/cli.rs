//! Integration tests driving the `limba` binary end to end.

use std::path::PathBuf;
use std::process::{Command, Output};

fn limba(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_limba"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("limba-cli-it-{name}"))
}

#[test]
fn help_prints_usage() {
    let out = limba(&["help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("simulate"));
}

#[test]
fn no_args_fails_with_usage() {
    let out = limba(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = limba(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown command"));
}

#[test]
fn simulate_then_analyze_round_trip() {
    let trace = temp_path("roundtrip.trace");
    let out = limba(&[
        "simulate",
        "cfd",
        "--ranks",
        "8",
        "--imbalance",
        "linear:0.4",
        "--out",
        trace.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("trace written"));

    let out = limba(&["analyze", trace.to_str().unwrap(), "--criterion", "topk:3"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("== findings =="));
    assert!(stdout.contains("tuning candidate"));
    assert!(stdout.contains("loop 1"));
    std::fs::remove_file(&trace).ok();
}

#[test]
fn text_format_traces_analyze_too() {
    let trace = temp_path("text.trace");
    let out = limba(&[
        "simulate",
        "pipeline",
        "--ranks",
        "4",
        "--format",
        "text",
        "--out",
        trace.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let content = std::fs::read_to_string(&trace).unwrap();
    assert!(content.starts_with("limba-trace v1"));
    let out = limba(&["analyze", trace.to_str().unwrap(), "--clusters", "0"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&trace).ok();
}

#[test]
fn analyze_with_alternative_dispersion() {
    let trace = temp_path("gini.trace");
    assert!(limba(&[
        "simulate",
        "irregular",
        "--ranks",
        "4",
        "--imbalance",
        "hotspot:2,3",
        "--out",
        trace.to_str().unwrap(),
    ])
    .status
    .success());
    let out = limba(&["analyze", trace.to_str().unwrap(), "--dispersion", "gini"]);
    assert!(out.status.success());
    std::fs::remove_file(&trace).ok();
}

#[test]
fn paper_command_prints_tables() {
    let out = limba(&["paper"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for needle in [
        "Table 1", "Table 2", "Table 3", "Table 4", "Figure 1", "Figure 2",
    ] {
        assert!(stdout.contains(needle), "missing {needle}");
    }
    // Spot-check two published numbers.
    assert!(stdout.contains("0.30571")); // loop 5 sync ID
    assert!(stdout.contains("19.051")); // loop 1 overall
}

#[test]
fn demo_runs_the_full_pipeline() {
    let out = limba(&["demo"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("== coarse grain =="));
}

#[test]
fn analyze_with_windows_reports_evolution() {
    let trace = temp_path("windows.trace");
    assert!(limba(&[
        "simulate",
        "fft",
        "--ranks",
        "4",
        "--iterations",
        "3",
        "--imbalance",
        "jitter:0.3",
        "--out",
        trace.to_str().unwrap(),
    ])
    .status
    .success());
    let out = limba(&[
        "analyze",
        trace.to_str().unwrap(),
        "--windows",
        "4",
        "--clusters",
        "0",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("imbalance evolution (4 windows)"));
    assert!(stdout.contains("slope"));
    std::fs::remove_file(&trace).ok();
}

#[test]
fn amr_drilldown_localizes_nested_culprit() {
    let trace = temp_path("amr.trace");
    assert!(limba(&[
        "simulate",
        "amr",
        "--ranks",
        "8",
        "--imbalance",
        "hotspot:3,5",
        "--out",
        trace.to_str().unwrap(),
    ])
    .status
    .success());
    let out = limba(&[
        "analyze",
        trace.to_str().unwrap(),
        "--drilldown",
        "on",
        "--clusters",
        "0",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("== drill-down =="));
    assert!(stdout.contains("flux"));
    std::fs::remove_file(&trace).ok();
}

#[test]
fn sweep_workload_simulates() {
    let trace = temp_path("sweep.trace");
    let out = limba(&[
        "simulate",
        "sweep",
        "--ranks",
        "6",
        "--out",
        trace.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    std::fs::remove_file(&trace).ok();
}

#[test]
fn faults_list_prints_presets_instead_of_erroring() {
    let out = limba(&["simulate", "--faults", "list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for name in [
        "straggler",
        "degraded-link",
        "flaky-network",
        "crash",
        "chaos",
    ] {
        assert!(stdout.contains(name), "missing {name}");
    }
}

#[test]
fn analyze_rejects_an_unsalvageable_trace_with_nonzero_exit() {
    // Structurally malformed: leave without enter.
    let bad = temp_path("malformed.trace");
    std::fs::write(
        &bad,
        "limba-trace v1\nprocessors 1\nregion 0 r\nevent 1 0 leave 0\n",
    )
    .unwrap();
    let out = limba(&["analyze", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(out.stdout.is_empty(), "partial report on stdout");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("malformed"), "{stderr}");
    std::fs::remove_file(&bad).ok();

    // Salvage recovered nothing: a single truncated rank with no
    // measured time. No partial report, no exit 0.
    let empty = temp_path("unsalvageable.trace");
    std::fs::write(
        &empty,
        "limba-trace v1\nprocessors 1\nregion 0 r\nevent 0 0 enter 0\n",
    )
    .unwrap();
    let out = limba(&["analyze", empty.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(out.stdout.is_empty(), "partial report on stdout");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unsalvageable"), "{stderr}");
    std::fs::remove_file(&empty).ok();
}

#[test]
fn advise_recommends_a_verified_improvement_on_cfd() {
    let out = limba(&["advise", "--workload", "cfd", "--top", "3"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    // The full analysis report, then the appended advice section.
    assert!(stdout.contains("== findings =="));
    assert!(stdout.contains("== recommended interventions =="));
    assert!(stdout.contains("#1  "));
    assert!(stdout.contains("measured  +"), "no verified improvement");
    assert!(stdout.contains("predicted +"));
}

#[test]
fn advise_is_byte_identical_across_jobs_and_engines() {
    let reference = limba(&["advise", "--workload", "cfd", "--ranks", "8", "--top", "2"]);
    assert!(reference.status.success());
    for extra in [["--jobs", "4"], ["--jobs", "8"], ["--engine", "polling"]] {
        let mut args = vec!["advise", "--workload", "cfd", "--ranks", "8", "--top", "2"];
        args.extend(extra);
        let out = limba(&args);
        assert!(out.status.success());
        assert_eq!(out.stdout, reference.stdout, "{extra:?}");
    }
}

#[test]
fn advise_analyzes_a_recorded_trace_and_emits_json() {
    let trace = temp_path("advise.trace");
    assert!(limba(&[
        "simulate",
        "cfd",
        "--ranks",
        "8",
        "--imbalance",
        "linear:0.4",
        "--out",
        trace.to_str().unwrap(),
    ])
    .status
    .success());
    let out = limba(&["advise", trace.to_str().unwrap(), "--top", "2", "--json"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with('{'));
    assert!(stdout.contains("\"baseline_makespan\":"));
    assert!(stdout.contains("\"within_bounds\":true"));
    std::fs::remove_file(&trace).ok();
}

#[test]
fn bad_flags_are_reported() {
    let out = limba(&["simulate", "cfd", "--ranks"]);
    assert!(!out.status.success());
    let out = limba(&["simulate", "cfd", "--imbalance", "zigzag:3"]);
    assert!(!out.status.success());
    let out = limba(&["analyze", "/nonexistent.trace"]);
    assert!(!out.status.success());
}
