//! Integration tests driving the `limba` binary end to end.

use std::path::PathBuf;
use std::process::{Command, Output};

fn limba(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_limba"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("limba-cli-it-{name}"))
}

#[test]
fn help_prints_usage() {
    let out = limba(&["help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("simulate"));
}

#[test]
fn no_args_fails_with_usage() {
    let out = limba(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = limba(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown command"));
}

#[test]
fn simulate_then_analyze_round_trip() {
    let trace = temp_path("roundtrip.trace");
    let out = limba(&[
        "simulate",
        "cfd",
        "--ranks",
        "8",
        "--imbalance",
        "linear:0.4",
        "--out",
        trace.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("trace written"));

    let out = limba(&["analyze", trace.to_str().unwrap(), "--criterion", "topk:3"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("== findings =="));
    assert!(stdout.contains("tuning candidate"));
    assert!(stdout.contains("loop 1"));
    std::fs::remove_file(&trace).ok();
}

#[test]
fn text_format_traces_analyze_too() {
    let trace = temp_path("text.trace");
    let out = limba(&[
        "simulate",
        "pipeline",
        "--ranks",
        "4",
        "--format",
        "text",
        "--out",
        trace.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let content = std::fs::read_to_string(&trace).unwrap();
    assert!(content.starts_with("limba-trace v1"));
    let out = limba(&["analyze", trace.to_str().unwrap(), "--clusters", "0"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&trace).ok();
}

#[test]
fn analyze_with_alternative_dispersion() {
    let trace = temp_path("gini.trace");
    assert!(limba(&[
        "simulate",
        "irregular",
        "--ranks",
        "4",
        "--imbalance",
        "hotspot:2,3",
        "--out",
        trace.to_str().unwrap(),
    ])
    .status
    .success());
    let out = limba(&["analyze", trace.to_str().unwrap(), "--dispersion", "gini"]);
    assert!(out.status.success());
    std::fs::remove_file(&trace).ok();
}

#[test]
fn paper_command_prints_tables() {
    let out = limba(&["paper"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for needle in [
        "Table 1", "Table 2", "Table 3", "Table 4", "Figure 1", "Figure 2",
    ] {
        assert!(stdout.contains(needle), "missing {needle}");
    }
    // Spot-check two published numbers.
    assert!(stdout.contains("0.30571")); // loop 5 sync ID
    assert!(stdout.contains("19.051")); // loop 1 overall
}

#[test]
fn demo_runs_the_full_pipeline() {
    let out = limba(&["demo"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("== coarse grain =="));
}

#[test]
fn analyze_with_windows_reports_evolution() {
    let trace = temp_path("windows.trace");
    assert!(limba(&[
        "simulate",
        "fft",
        "--ranks",
        "4",
        "--iterations",
        "3",
        "--imbalance",
        "jitter:0.3",
        "--out",
        trace.to_str().unwrap(),
    ])
    .status
    .success());
    let out = limba(&[
        "analyze",
        trace.to_str().unwrap(),
        "--windows",
        "4",
        "--clusters",
        "0",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("imbalance evolution (4 windows)"));
    assert!(stdout.contains("slope"));
    std::fs::remove_file(&trace).ok();
}

#[test]
fn amr_drilldown_localizes_nested_culprit() {
    let trace = temp_path("amr.trace");
    assert!(limba(&[
        "simulate",
        "amr",
        "--ranks",
        "8",
        "--imbalance",
        "hotspot:3,5",
        "--out",
        trace.to_str().unwrap(),
    ])
    .status
    .success());
    let out = limba(&[
        "analyze",
        trace.to_str().unwrap(),
        "--drilldown",
        "on",
        "--clusters",
        "0",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("== drill-down =="));
    assert!(stdout.contains("flux"));
    std::fs::remove_file(&trace).ok();
}

#[test]
fn sweep_workload_simulates() {
    let trace = temp_path("sweep.trace");
    let out = limba(&[
        "simulate",
        "sweep",
        "--ranks",
        "6",
        "--out",
        trace.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    std::fs::remove_file(&trace).ok();
}

#[test]
fn bad_flags_are_reported() {
    let out = limba(&["simulate", "cfd", "--ranks"]);
    assert!(!out.status.success());
    let out = limba(&["simulate", "cfd", "--imbalance", "zigzag:3"]);
    assert!(!out.status.success());
    let out = limba(&["analyze", "/nonexistent.trace"]);
    assert!(!out.status.success());
}
