//! Integration tests driving the `limba` binary end to end.

use std::path::PathBuf;
use std::process::{Command, Output};

fn limba(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_limba"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("limba-cli-it-{name}"))
}

#[test]
fn help_prints_usage() {
    let out = limba(&["help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("simulate"));
}

#[test]
fn no_args_fails_with_usage() {
    let out = limba(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = limba(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown command"));
}

#[test]
fn simulate_then_analyze_round_trip() {
    let trace = temp_path("roundtrip.trace");
    let out = limba(&[
        "simulate",
        "cfd",
        "--ranks",
        "8",
        "--imbalance",
        "linear:0.4",
        "--out",
        trace.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("trace written"));

    let out = limba(&["analyze", trace.to_str().unwrap(), "--criterion", "topk:3"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("== findings =="));
    assert!(stdout.contains("tuning candidate"));
    assert!(stdout.contains("loop 1"));
    std::fs::remove_file(&trace).ok();
}

#[test]
fn text_format_traces_analyze_too() {
    let trace = temp_path("text.trace");
    let out = limba(&[
        "simulate",
        "pipeline",
        "--ranks",
        "4",
        "--format",
        "text",
        "--out",
        trace.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let content = std::fs::read_to_string(&trace).unwrap();
    assert!(content.starts_with("limba-trace v1"));
    let out = limba(&["analyze", trace.to_str().unwrap(), "--clusters", "0"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&trace).ok();
}

#[test]
fn analyze_with_alternative_dispersion() {
    let trace = temp_path("gini.trace");
    assert!(limba(&[
        "simulate",
        "irregular",
        "--ranks",
        "4",
        "--imbalance",
        "hotspot:2,3",
        "--out",
        trace.to_str().unwrap(),
    ])
    .status
    .success());
    let out = limba(&["analyze", trace.to_str().unwrap(), "--dispersion", "gini"]);
    assert!(out.status.success());
    std::fs::remove_file(&trace).ok();
}

#[test]
fn paper_command_prints_tables() {
    let out = limba(&["paper"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for needle in [
        "Table 1", "Table 2", "Table 3", "Table 4", "Figure 1", "Figure 2",
    ] {
        assert!(stdout.contains(needle), "missing {needle}");
    }
    // Spot-check two published numbers.
    assert!(stdout.contains("0.30571")); // loop 5 sync ID
    assert!(stdout.contains("19.051")); // loop 1 overall
}

#[test]
fn demo_runs_the_full_pipeline() {
    let out = limba(&["demo"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("== coarse grain =="));
}

#[test]
fn analyze_with_windows_reports_evolution() {
    let trace = temp_path("windows.trace");
    assert!(limba(&[
        "simulate",
        "fft",
        "--ranks",
        "4",
        "--iterations",
        "3",
        "--imbalance",
        "jitter:0.3",
        "--out",
        trace.to_str().unwrap(),
    ])
    .status
    .success());
    let out = limba(&[
        "analyze",
        trace.to_str().unwrap(),
        "--windows",
        "4",
        "--clusters",
        "0",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("imbalance evolution (4 windows)"));
    assert!(stdout.contains("slope"));
    std::fs::remove_file(&trace).ok();
}

#[test]
fn amr_drilldown_localizes_nested_culprit() {
    let trace = temp_path("amr.trace");
    assert!(limba(&[
        "simulate",
        "amr",
        "--ranks",
        "8",
        "--imbalance",
        "hotspot:3,5",
        "--out",
        trace.to_str().unwrap(),
    ])
    .status
    .success());
    let out = limba(&[
        "analyze",
        trace.to_str().unwrap(),
        "--drilldown",
        "on",
        "--clusters",
        "0",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("== drill-down =="));
    assert!(stdout.contains("flux"));
    std::fs::remove_file(&trace).ok();
}

#[test]
fn sweep_workload_simulates() {
    let trace = temp_path("sweep.trace");
    let out = limba(&[
        "simulate",
        "sweep",
        "--ranks",
        "6",
        "--out",
        trace.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    std::fs::remove_file(&trace).ok();
}

#[test]
fn faults_list_prints_presets_instead_of_erroring() {
    let out = limba(&["simulate", "--faults", "list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for name in [
        "straggler",
        "degraded-link",
        "flaky-network",
        "crash",
        "chaos",
    ] {
        assert!(stdout.contains(name), "missing {name}");
    }
}

#[test]
fn analyze_rejects_an_unsalvageable_trace_with_nonzero_exit() {
    // Structurally malformed: leave without enter.
    let bad = temp_path("malformed.trace");
    std::fs::write(
        &bad,
        "limba-trace v1\nprocessors 1\nregion 0 r\nevent 1 0 leave 0\n",
    )
    .unwrap();
    let out = limba(&["analyze", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(out.stdout.is_empty(), "partial report on stdout");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("malformed"), "{stderr}");
    std::fs::remove_file(&bad).ok();

    // Salvage recovered nothing: a single truncated rank with no
    // measured time. No partial report, no exit 0.
    let empty = temp_path("unsalvageable.trace");
    std::fs::write(
        &empty,
        "limba-trace v1\nprocessors 1\nregion 0 r\nevent 0 0 enter 0\n",
    )
    .unwrap();
    let out = limba(&["analyze", empty.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(out.stdout.is_empty(), "partial report on stdout");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unsalvageable"), "{stderr}");
    std::fs::remove_file(&empty).ok();
}

#[test]
fn advise_recommends_a_verified_improvement_on_cfd() {
    let out = limba(&["advise", "--workload", "cfd", "--top", "3"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    // The full analysis report, then the appended advice section.
    assert!(stdout.contains("== findings =="));
    assert!(stdout.contains("== recommended interventions =="));
    assert!(stdout.contains("#1  "));
    assert!(stdout.contains("measured  +"), "no verified improvement");
    assert!(stdout.contains("predicted +"));
}

#[test]
fn advise_is_byte_identical_across_jobs_and_engines() {
    let reference = limba(&["advise", "--workload", "cfd", "--ranks", "8", "--top", "2"]);
    assert!(reference.status.success());
    for extra in [["--jobs", "4"], ["--jobs", "8"], ["--engine", "polling"]] {
        let mut args = vec!["advise", "--workload", "cfd", "--ranks", "8", "--top", "2"];
        args.extend(extra);
        let out = limba(&args);
        assert!(out.status.success());
        assert_eq!(out.stdout, reference.stdout, "{extra:?}");
    }
}

#[test]
fn advise_analyzes_a_recorded_trace_and_emits_json() {
    let trace = temp_path("advise.trace");
    assert!(limba(&[
        "simulate",
        "cfd",
        "--ranks",
        "8",
        "--imbalance",
        "linear:0.4",
        "--out",
        trace.to_str().unwrap(),
    ])
    .status
    .success());
    let out = limba(&["advise", trace.to_str().unwrap(), "--top", "2", "--json"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with('{'));
    assert!(stdout.contains("\"baseline_makespan\":"));
    assert!(stdout.contains("\"within_bounds\":true"));
    std::fs::remove_file(&trace).ok();
}

#[test]
fn balance_list_prints_presets_instead_of_erroring() {
    let out = limba(&["simulate", "--balance", "list"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("available balance presets"));
    for name in ["stealing", "diffusion", "anticipatory"] {
        assert!(stdout.contains(name), "missing preset {name}: {stdout}");
    }
}

#[test]
fn simulate_with_balance_reports_migrations_and_is_engine_invariant() {
    let args = |engine: &'static str| {
        vec![
            "simulate",
            "cfd",
            "--ranks",
            "8",
            "--iterations",
            "3",
            "--imbalance",
            "linear:0.5",
            "--balance",
            "preset:stealing",
            "--engine",
            engine,
        ]
    };
    let event = limba(&args("event"));
    assert!(
        event.status.success(),
        "{}",
        String::from_utf8_lossy(&event.stderr)
    );
    let stdout = String::from_utf8(event.stdout.clone()).unwrap();
    assert!(
        stdout.contains("rebalancing: stealing moved"),
        "no migration summary: {stdout}"
    );
    assert!(stdout.contains("== rebalancing actions =="), "{stdout}");
    let polling = limba(&args("polling"));
    assert!(polling.status.success());
    assert_eq!(
        event.stdout, polling.stdout,
        "engines diverge under --balance"
    );
}

#[test]
fn unknown_balance_preset_is_a_named_error() {
    let out = limba(&["simulate", "cfd", "--balance", "preset:psychic"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown balance preset"), "{stderr}");
    assert!(stderr.contains("stealing"), "no preset listing: {stderr}");
}

#[test]
fn advise_surfaces_a_dynamic_balancing_recommendation() {
    // On an imbalanced CFD workload the catalog proposes the balance
    // policies alongside the static refactors, and at least one
    // surfaced candidate enables dynamic balancing — with a verified
    // (simulated on both engines) gain.
    let out = limba(&[
        "advise",
        "--workload",
        "cfd",
        "--ranks",
        "8",
        "--imbalance",
        "linear:0.6",
        "--top",
        "3",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("enable dynamic load balancing"),
        "no balancing recommendation surfaced:\n{stdout}"
    );
    assert!(stdout.contains("measured  +"), "no verified gain: {stdout}");
}

#[test]
fn bad_flags_are_reported() {
    let out = limba(&["simulate", "cfd", "--ranks"]);
    assert!(!out.status.success());
    let out = limba(&["simulate", "cfd", "--imbalance", "zigzag:3"]);
    assert!(!out.status.success());
    let out = limba(&["analyze", "/nonexistent.trace"]);
    assert!(!out.status.success());
}

/// The shared sweep arguments for the kill-resume E2E locks.
fn sweep_args<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    let mut args = vec![
        "simulate",
        "cfd",
        "--ranks",
        "4",
        "--iterations",
        "1",
        "--imbalance",
        "jitter:0.2",
        "--replications",
        "8",
    ];
    args.extend_from_slice(extra);
    args
}

/// [`sweep_args`] plus a stealing balance policy — the balanced
/// variants of the kill-resume locks.
fn balanced_sweep_args<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    let mut args = sweep_args(&["--balance", "preset:stealing"]);
    args.extend_from_slice(extra);
    args
}

#[test]
fn interrupted_sweep_exits_partial_and_resumes_byte_identically() {
    let reference = limba(&sweep_args(&[]));
    assert!(reference.status.success());
    let reference = String::from_utf8(reference.stdout).unwrap();

    for jobs in ["1", "4"] {
        let ckpt = temp_path(&format!("e2e-sweep-{jobs}.ckpt"));
        std::fs::remove_file(&ckpt).ok();
        let interrupted = limba(&sweep_args(&[
            "--max-units",
            "3",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ]));
        assert_eq!(
            interrupted.status.code(),
            Some(3),
            "partial runs exit with the partial code: {}",
            String::from_utf8_lossy(&interrupted.stderr)
        );
        let stdout = String::from_utf8(interrupted.stdout).unwrap();
        assert!(stdout.contains("not run (interrupted)"), "{stdout}");
        assert!(stdout.contains("rerun with --resume"), "{stdout}");

        let resumed = limba(&sweep_args(&[
            "--jobs",
            jobs,
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--resume",
        ]));
        assert!(
            resumed.status.success(),
            "{}",
            String::from_utf8_lossy(&resumed.stderr)
        );
        assert_eq!(
            String::from_utf8(resumed.stdout).unwrap(),
            reference,
            "jobs={jobs}"
        );
        std::fs::remove_file(&ckpt).ok();
    }
}

#[test]
fn interrupted_balanced_sweep_resumes_byte_identically() {
    // The guard composes with dynamic balancing: a replication sweep
    // under `--balance preset:stealing` killed mid-run resumes from its
    // checkpoint to the exact bytes of an uninterrupted run — the
    // per-replication balance seeds derive from the replication index,
    // not from how many processes it took to finish the sweep.
    let reference = limba(&balanced_sweep_args(&[]));
    assert!(
        reference.status.success(),
        "{}",
        String::from_utf8_lossy(&reference.stderr)
    );
    let reference = String::from_utf8(reference.stdout).unwrap();
    assert!(
        reference.contains("rebalancing"),
        "balanced sweep reports no rebalancing: {reference}"
    );

    let ckpt = temp_path("e2e-balanced-sweep.ckpt");
    std::fs::remove_file(&ckpt).ok();
    let interrupted = limba(&balanced_sweep_args(&[
        "--max-units",
        "3",
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ]));
    assert_eq!(
        interrupted.status.code(),
        Some(3),
        "partial balanced runs exit with the partial code: {}",
        String::from_utf8_lossy(&interrupted.stderr)
    );
    let stdout = String::from_utf8(interrupted.stdout).unwrap();
    assert!(stdout.contains("rerun with --resume"), "{stdout}");

    for jobs in ["1", "4"] {
        let resumed = limba(&balanced_sweep_args(&[
            "--jobs",
            jobs,
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--resume",
        ]));
        assert!(
            resumed.status.success(),
            "{}",
            String::from_utf8_lossy(&resumed.stderr)
        );
        assert_eq!(
            String::from_utf8(resumed.stdout).unwrap(),
            reference,
            "jobs={jobs}"
        );
    }
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn unbalanced_checkpoint_refuses_a_balanced_resume() {
    // The sweep fingerprint includes the balance plan: resuming a
    // checkpoint written without `--balance` under a policy (or vice
    // versa) is a configuration mismatch, not a silent mixed sweep.
    let ckpt = temp_path("e2e-balance-mismatch.ckpt");
    std::fs::remove_file(&ckpt).ok();
    let interrupted = limba(&sweep_args(&[
        "--max-units",
        "3",
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ]));
    assert_eq!(interrupted.status.code(), Some(3));

    let mut args = sweep_args(&["--balance", "preset:stealing", "--resume", "--checkpoint"]);
    args.push(ckpt.to_str().unwrap());
    let mismatched = limba(&args);
    assert!(
        !mismatched.status.success(),
        "balanced resume of an unbalanced checkpoint must fail"
    );
    let stderr = String::from_utf8(mismatched.stderr).unwrap();
    assert!(
        stderr.contains("checkpoint") || stderr.contains("fingerprint"),
        "unnamed error: {stderr}"
    );
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn sweep_manifest_records_the_interruption() {
    let ckpt = temp_path("e2e-manifest.ckpt");
    let manifest = temp_path("e2e-manifest.json");
    std::fs::remove_file(&ckpt).ok();
    let out = limba(&sweep_args(&[
        "--max-units",
        "2",
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--manifest",
        manifest.to_str().unwrap(),
    ]));
    assert_eq!(out.status.code(), Some(3));
    let json = std::fs::read_to_string(&manifest).unwrap();
    assert!(json.contains("\"completed\": 2"), "{json}");
    assert!(json.contains("\"skipped\": 6"), "{json}");
    assert!(json.contains("\"stopped\": \"unit-cap-reached\""), "{json}");
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(&manifest).ok();
}

#[test]
fn corrupted_checkpoint_is_a_named_error_not_a_panic() {
    let ckpt = temp_path("e2e-corrupt.ckpt");
    std::fs::remove_file(&ckpt).ok();
    assert_eq!(
        limba(&sweep_args(&[
            "--max-units",
            "2",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ]))
        .status
        .code(),
        Some(3)
    );
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&ckpt, &bytes).unwrap();
    let out = limba(&sweep_args(&[
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--resume",
    ]));
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("checksum") || stderr.contains("corrupt"),
        "{stderr}"
    );
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn interrupted_suite_exits_partial_and_resumes_byte_identically() {
    let reference = limba(&["suite", "--ranks", "4"]);
    assert!(reference.status.success());
    let reference = String::from_utf8(reference.stdout).unwrap();

    let ckpt = temp_path("e2e-suite.ckpt");
    std::fs::remove_file(&ckpt).ok();
    let interrupted = limba(&[
        "suite",
        "--ranks",
        "4",
        "--max-units",
        "10",
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(interrupted.status.code(), Some(3));
    let resumed = limba(&[
        "suite",
        "--ranks",
        "4",
        "--jobs",
        "4",
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--resume",
    ]);
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(String::from_utf8(resumed.stdout).unwrap(), reference);
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn interrupted_advise_exits_partial_and_resumes_byte_identically() {
    let base = [
        "advise",
        "--workload",
        "cfd",
        "--ranks",
        "4",
        "--iterations",
        "1",
        "--top",
        "2",
    ];
    let reference = limba(&base);
    assert!(reference.status.success());
    let reference = String::from_utf8(reference.stdout).unwrap();

    for jobs in ["1", "4"] {
        let ckpt = temp_path(&format!("e2e-advise-{jobs}.ckpt"));
        std::fs::remove_file(&ckpt).ok();
        let mut args = base.to_vec();
        args.extend_from_slice(&["--max-units", "1", "--checkpoint", ckpt.to_str().unwrap()]);
        let interrupted = limba(&args);
        assert_eq!(
            interrupted.status.code(),
            Some(3),
            "{}",
            String::from_utf8_lossy(&interrupted.stderr)
        );
        let stderr = String::from_utf8(interrupted.stderr).unwrap();
        assert!(stderr.contains("advise interrupted"), "{stderr}");
        assert!(stderr.contains("rerun with --resume"), "{stderr}");

        let mut args = base.to_vec();
        args.extend_from_slice(&[
            "--jobs",
            jobs,
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--resume",
        ]);
        let resumed = limba(&args);
        assert!(
            resumed.status.success(),
            "{}",
            String::from_utf8_lossy(&resumed.stderr)
        );
        assert_eq!(
            String::from_utf8(resumed.stdout).unwrap(),
            reference,
            "jobs={jobs}"
        );
        std::fs::remove_file(&ckpt).ok();
    }
}

#[test]
fn advise_refuses_a_checkpoint_from_a_different_configuration() {
    let ckpt = temp_path("e2e-advise-foreign.ckpt");
    std::fs::remove_file(&ckpt).ok();
    assert_eq!(
        limba(&[
            "advise",
            "--workload",
            "cfd",
            "--ranks",
            "4",
            "--iterations",
            "1",
            "--top",
            "2",
            "--max-units",
            "1",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ])
        .status
        .code(),
        Some(3)
    );
    // Same checkpoint, different scenario: the fingerprint must refuse.
    let out = limba(&[
        "advise",
        "--workload",
        "stencil",
        "--ranks",
        "4",
        "--top",
        "2",
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--resume",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("fingerprint"));
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn deadline_zero_stops_before_any_unit() {
    let out = limba(&sweep_args(&["--deadline", "0"]));
    assert_eq!(out.status.code(), Some(3));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("no replications completed"), "{stdout}");
}
