//! Aligned text tables.

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use limba_viz::table::TextTable;
/// let mut t = TextTable::new(vec!["a".into(), "b".into()]);
/// t.row(vec!["1".into(), "22".into()]);
/// let s = t.render();
/// assert!(s.lines().count() >= 3); // header, separator, one row
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows
    /// extend the column count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with single-space-padded, left-aligned header
    /// and right-aligned numeric-looking cells.
    pub fn render(&self) -> String {
        let columns = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; columns];
        fn cell(row: &[String], c: usize) -> &str {
            row.get(c).map(|s| s.as_str()).unwrap_or("")
        }
        for (c, width) in widths.iter_mut().enumerate() {
            *width = self
                .rows
                .iter()
                .map(|r| cell(r, c).chars().count())
                .chain([cell(&self.header, c).chars().count()])
                .max()
                .unwrap_or(0);
        }
        let mut out = String::new();
        let render_row = |out: &mut String, row: &[String], pad_left: bool| {
            for (c, &width) in widths.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                let text = cell(row, c);
                let pad = width.saturating_sub(text.chars().count());
                if pad_left {
                    out.extend(std::iter::repeat_n(' ', pad));
                    out.push_str(text);
                } else {
                    out.push_str(text);
                    out.extend(std::iter::repeat_n(' ', pad));
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header, false);
        let total: usize = widths.iter().sum::<usize>() + 2 * columns.saturating_sub(1);
        out.extend(std::iter::repeat_n('-', total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row, true);
        }
        out
    }
}

/// Formats a time or index for table display: five significant decimals,
/// or `"-"` for absent values.
pub fn cell(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.5}"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name".into(), "value".into()]);
        t.row(vec!["x".into(), "1.5".into()]);
        t.row(vec!["longer".into(), "10".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header left-aligned, data right-aligned in each column.
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec![]);
        let s = t.render();
        assert!(s.contains('3'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn cell_formats_presence_and_absence() {
        assert_eq!(cell(Some(0.123456789)), "0.12346");
        assert_eq!(cell(None), "-");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(vec!["h".into()]);
        let s = t.render();
        assert_eq!(s.lines().count(), 2);
        assert!(t.is_empty());
    }
}
