//! Standalone SVG renderings.

use limba_analysis::patterns::{PatternBin, PatternGrid};

fn bin_color(bin: PatternBin) -> &'static str {
    match bin {
        PatternBin::Max => "#b2182b",
        PatternBin::UpperTail => "#ef8a62",
        PatternBin::Mid => "#f7f7f7",
        PatternBin::LowerTail => "#67a9cf",
        PatternBin::Min => "#2166ac",
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders a pattern grid as a standalone SVG document: one row of
/// colored cells per region, in the style of the paper's Figures 1–2.
pub fn pattern_svg(grid: &PatternGrid) -> String {
    const CELL: usize = 18;
    const LABEL: usize = 140;
    const ROW_GAP: usize = 6;
    const TOP: usize = 30;
    let procs = grid.rows.iter().map(|r| r.bins.len()).max().unwrap_or(0);
    let width = LABEL + procs * CELL + 10;
    let height = TOP + grid.rows.len() * (CELL + ROW_GAP) + 10;
    let mut out = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
         font-family=\"sans-serif\" font-size=\"12\">\n"
    );
    out.push_str(&format!(
        "  <text x=\"{LABEL}\" y=\"18\" font-weight=\"bold\">{} patterns</text>\n",
        escape(&grid.activity.to_string())
    ));
    for (i, row) in grid.rows.iter().enumerate() {
        let y = TOP + i * (CELL + ROW_GAP);
        out.push_str(&format!(
            "  <text x=\"4\" y=\"{}\">{}</text>\n",
            y + CELL - 4,
            escape(&row.name)
        ));
        for (p, &bin) in row.bins.iter().enumerate() {
            let x = LABEL + p * CELL;
            out.push_str(&format!(
                "  <rect x=\"{x}\" y=\"{y}\" width=\"{CELL}\" height=\"{CELL}\" \
                 fill=\"{}\" stroke=\"#333\"/>\n",
                bin_color(bin)
            ));
        }
    }
    out.push_str("</svg>\n");
    out
}

/// Renders the processor-view matrix `ID_P_ip` as a heatmap SVG: one row
/// per region, one cell per processor, shaded by the index of dispersion
/// (darker = more deviant activity mix). Cells for processors that never
/// touch the region are crossed out.
pub fn processor_heatmap_svg(report: &limba_analysis::Report) -> String {
    const CELL: usize = 18;
    const LABEL: usize = 140;
    const ROW_GAP: usize = 4;
    const TOP: usize = 30;
    let pv = &report.processor_view;
    let max_id = pv
        .id
        .iter()
        .flatten()
        .flatten()
        .copied()
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let procs = pv.id.first().map(|r| r.len()).unwrap_or(0);
    let width = LABEL + procs * CELL + 10;
    let height = TOP + pv.id.len() * (CELL + ROW_GAP) + 10;
    let mut out = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
         font-family=\"sans-serif\" font-size=\"12\">\n"
    );
    out.push_str(&format!(
        "  <text x=\"{LABEL}\" y=\"18\" font-weight=\"bold\">processor view ID_P heatmap</text>\n"
    ));
    for (i, row) in pv.id.iter().enumerate() {
        let y = TOP + i * (CELL + ROW_GAP);
        let name = &report.profile.regions[i].name;
        out.push_str(&format!(
            "  <text x=\"4\" y=\"{}\">{}</text>\n",
            y + CELL - 4,
            escape(name)
        ));
        for (p, id) in row.iter().enumerate() {
            let x = LABEL + p * CELL;
            match id {
                Some(id) => {
                    // Linear white→red shade.
                    let t = (id / max_id).clamp(0.0, 1.0);
                    let g = (255.0 * (1.0 - 0.8 * t)) as u8;
                    out.push_str(&format!(
                        "  <rect x=\"{x}\" y=\"{y}\" width=\"{CELL}\" height=\"{CELL}\" \
                         fill=\"rgb(255,{g},{g})\" stroke=\"#333\"/>\n"
                    ));
                }
                None => {
                    out.push_str(&format!(
                        "  <rect x=\"{x}\" y=\"{y}\" width=\"{CELL}\" height=\"{CELL}\" \
                         fill=\"#ddd\" stroke=\"#333\"/>\n  <line x1=\"{x}\" y1=\"{y}\" \
                         x2=\"{}\" y2=\"{}\" stroke=\"#999\"/>\n",
                        x + CELL,
                        y + CELL
                    ));
                }
            }
        }
    }
    out.push_str("</svg>\n");
    out
}

/// Renders a Lorenz curve (points from
/// `limba_stats::majorization::lorenz_curve`) with the equality
/// diagonal, as a standalone SVG document.
pub fn lorenz_svg(points: &[(f64, f64)], title: &str) -> String {
    const SIZE: f64 = 320.0;
    const MARGIN: f64 = 30.0;
    let scale = SIZE - 2.0 * MARGIN;
    let map = |x: f64, y: f64| (MARGIN + x * scale, SIZE - MARGIN - y * scale);
    let mut out = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{SIZE}\" height=\"{SIZE}\" \
         font-family=\"sans-serif\" font-size=\"12\">\n"
    );
    out.push_str(&format!(
        "  <text x=\"{MARGIN}\" y=\"18\" font-weight=\"bold\">{}</text>\n",
        escape(title)
    ));
    let (x0, y0) = map(0.0, 0.0);
    let (x1, y1) = map(1.0, 1.0);
    out.push_str(&format!(
        "  <line x1=\"{x0}\" y1=\"{y0}\" x2=\"{x1}\" y2=\"{y1}\" stroke=\"#999\" \
         stroke-dasharray=\"4 3\"/>\n"
    ));
    let path: Vec<String> = points
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| {
            let (px, py) = map(x, y);
            format!("{}{px:.1},{py:.1}", if i == 0 { "M" } else { "L" })
        })
        .collect();
    out.push_str(&format!(
        "  <path d=\"{}\" fill=\"none\" stroke=\"#b2182b\" stroke-width=\"2\"/>\n",
        path.join(" ")
    ));
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_analysis::patterns::pattern_grid;
    use limba_model::{ActivityKind, MeasurementsBuilder};
    use limba_stats::majorization::lorenz_curve;

    #[test]
    fn pattern_svg_is_well_formed_and_colored() {
        let mut b = MeasurementsBuilder::new(4);
        let r = b.add_region("solve & <go>");
        for (p, t) in [(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)] {
            b.record(r, ActivityKind::Computation, p, t).unwrap();
        }
        let grid = pattern_grid(&b.build().unwrap(), ActivityKind::Computation);
        let svg = pattern_svg(&grid);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<rect").count(), 4);
        assert!(svg.contains("#b2182b")); // the max cell
        assert!(svg.contains("#2166ac")); // the min cell
        assert!(svg.contains("&amp;") && svg.contains("&lt;go&gt;"));
    }

    #[test]
    fn lorenz_svg_contains_diagonal_and_path() {
        let pts = lorenz_curve(&[1.0, 2.0, 5.0]).unwrap();
        let svg = lorenz_svg(&pts, "loop 6 computation");
        assert!(svg.contains("<line"));
        assert!(svg.contains("<path"));
        assert!(svg.contains("loop 6 computation"));
        assert!(svg.matches('M').count() >= 1);
    }

    #[test]
    fn processor_heatmap_shades_and_crosses() {
        let mut b = MeasurementsBuilder::new(3);
        let r = b.add_region("r");
        // Processor 2 idle; 0 and 1 have different mixes.
        b.record(r, ActivityKind::Computation, 0, 1.0).unwrap();
        b.record(r, ActivityKind::PointToPoint, 0, 1.0).unwrap();
        b.record(r, ActivityKind::Computation, 1, 2.0).unwrap();
        let report = limba_analysis::Analyzer::new()
            .with_cluster_k(0)
            .analyze(&b.build().unwrap())
            .unwrap();
        let svg = processor_heatmap_svg(&report);
        assert!(svg.contains("heatmap"));
        assert_eq!(svg.matches("<rect").count(), 3);
        assert!(svg.contains("<line")); // the idle processor's cross
        assert!(svg.contains("fill=\"#ddd\""));
    }

    #[test]
    fn empty_grid_svg_renders() {
        let grid = PatternGrid {
            activity: ActivityKind::Io,
            rows: vec![],
        };
        let svg = pattern_svg(&grid);
        assert!(svg.contains("io patterns"));
    }
}
