//! ASCII renderings of pattern diagrams (the paper's Figures 1 and 2).

use limba_analysis::patterns::{PatternBin, PatternGrid};

/// Legend line explaining the glyphs.
pub const LEGEND: &str =
    "legend: M = maximum, + = upper 15%, . = middle, - = lower 15%, m = minimum";

/// Renders one pattern grid: one line per region, one glyph per
/// processor, mirroring the row-per-loop layout of the paper's figures.
///
/// # Example
///
/// ```
/// use limba_analysis::patterns::pattern_grid;
/// use limba_model::{ActivityKind, MeasurementsBuilder};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = MeasurementsBuilder::new(3);
/// let r = b.add_region("solve");
/// for (p, t) in [(0, 1.0), (1, 2.0), (2, 3.0)] {
///     b.record(r, ActivityKind::Computation, p, t)?;
/// }
/// let grid = pattern_grid(&b.build()?, ActivityKind::Computation);
/// let text = limba_viz::pattern::render(&grid);
/// assert!(text.contains("m.M"));
/// # Ok(())
/// # }
/// ```
pub fn render(grid: &PatternGrid) -> String {
    let name_width = grid
        .rows
        .iter()
        .map(|r| r.name.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = format!("{} patterns\n{LEGEND}\n", grid.activity);
    for row in &grid.rows {
        out.push_str(&format!("{:<name_width$}  ", row.name));
        for &bin in &row.bins {
            out.push(bin.glyph());
        }
        out.push('\n');
    }
    out
}

/// Renders a one-line summary of tail occupancy per region, e.g.
/// `"loop 4: 5/16 upper, 11/16 lower"` — the counts the paper reads off
/// its figures.
pub fn tail_summary(grid: &PatternGrid) -> String {
    let mut out = String::new();
    for row in &grid.rows {
        let n = row.bins.len();
        out.push_str(&format!(
            "{}: {}/{} upper, {}/{} lower\n",
            row.name,
            row.upper_tail_count(),
            n,
            row.lower_tail_count(),
            n
        ));
    }
    out
}

/// Renders the share of each bin over the whole grid, for balance
/// eyeballing.
pub fn bin_histogram(grid: &PatternGrid) -> Vec<(PatternBin, usize)> {
    let bins = [
        PatternBin::Max,
        PatternBin::UpperTail,
        PatternBin::Mid,
        PatternBin::LowerTail,
        PatternBin::Min,
    ];
    bins.into_iter()
        .map(|b| (b, grid.rows.iter().map(|r| r.count(b)).sum()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_analysis::patterns::pattern_grid;
    use limba_model::{ActivityKind, MeasurementsBuilder};

    fn grid() -> PatternGrid {
        let mut b = MeasurementsBuilder::new(4);
        let r0 = b.add_region("loop 1");
        let r1 = b.add_region("much longer name");
        for (p, t) in [(0, 1.0), (1, 5.0), (2, 2.0), (3, 4.6)] {
            b.record(r0, ActivityKind::Computation, p, t).unwrap();
        }
        for p in 0..4 {
            b.record(r1, ActivityKind::Computation, p, 2.0).unwrap();
        }
        pattern_grid(&b.build().unwrap(), ActivityKind::Computation)
    }

    #[test]
    fn render_contains_legend_and_rows() {
        let text = render(&grid());
        assert!(text.contains(LEGEND));
        assert!(text.contains("loop 1"));
        // Row 0: min, max, lower-ish?, upper tail: 1→m, 5→M, 2→.(range 4,
        // 2 is 0.25 into range → mid), 4.6 → + (0.9 into range).
        assert!(text.contains("mM.+"));
        // Balanced row renders all Mid.
        assert!(text.contains("...."));
    }

    #[test]
    fn tail_summary_counts() {
        let s = tail_summary(&grid());
        assert!(s.contains("loop 1: 2/4 upper, 1/4 lower"));
        assert!(s.contains("much longer name: 0/4 upper, 0/4 lower"));
    }

    #[test]
    fn histogram_sums_to_cells() {
        let g = grid();
        let h = bin_histogram(&g);
        let total: usize = h.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn empty_grid_renders_header() {
        let g = PatternGrid {
            activity: ActivityKind::Io,
            rows: vec![],
        };
        let text = render(&g);
        assert!(text.contains("io patterns"));
    }
}
