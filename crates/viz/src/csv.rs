//! CSV export of the analysis tables, for spreadsheets and plotting.

use limba_analysis::Report;
use limba_model::ActivityKind;

fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Table 1 as CSV: `region, overall, <activity columns…>`; absent cells
/// are empty.
pub fn profile_csv(report: &Report) -> String {
    let kinds: Vec<ActivityKind> = report.profile.activity_totals.iter().map(|t| t.0).collect();
    let mut out = String::from("region,overall");
    for k in &kinds {
        out.push(',');
        out.push_str(k.label());
    }
    out.push('\n');
    for r in &report.profile.regions {
        out.push_str(&escape(&r.name));
        out.push_str(&format!(",{}", r.seconds));
        for b in &r.breakdown {
            out.push(',');
            if b.performed {
                out.push_str(&b.seconds.to_string());
            }
        }
        out.push('\n');
    }
    out
}

/// Table 2 as CSV: the `ID_ij` matrix with empty cells where an activity
/// is not performed.
pub fn dispersions_csv(report: &Report) -> String {
    let kinds: Vec<ActivityKind> = report.profile.activity_totals.iter().map(|t| t.0).collect();
    let mut out = String::from("region");
    for k in &kinds {
        out.push(',');
        out.push_str(k.label());
    }
    out.push('\n');
    for r in &report.profile.regions {
        out.push_str(&escape(&r.name));
        for col in 0..kinds.len() {
            out.push(',');
            if let Some(id) = report.activity_view.id[r.region.index()][col] {
                out.push_str(&id.to_string());
            }
        }
        out.push('\n');
    }
    out
}

/// Tables 3 and 4 as one CSV: `view, name, seconds, fraction, id, sid`.
pub fn summaries_csv(report: &Report) -> String {
    let mut out = String::from("view,name,seconds,fraction,id,sid\n");
    for s in &report.activity_view.summaries {
        out.push_str(&format!(
            "activity,{},{},{},{},{}\n",
            s.kind.label(),
            s.seconds,
            s.fraction_of_program,
            s.id,
            s.sid
        ));
    }
    for s in &report.region_view.summaries {
        out.push_str(&format!(
            "region,{},{},{},{},{}\n",
            escape(&s.name),
            s.seconds,
            s.fraction_of_program,
            s.id,
            s.sid
        ));
    }
    out
}

/// The processor view as CSV: `region, processor, id_p, wall_clock`.
pub fn processor_view_csv(report: &Report) -> String {
    let mut out = String::from("region,processor,id_p\n");
    for (i, row) in report.processor_view.id.iter().enumerate() {
        let name = &report.profile.regions[i].name;
        for (p, id) in row.iter().enumerate() {
            if let Some(id) = id {
                out.push_str(&format!("{},{p},{id}\n", escape(name)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_analysis::Analyzer;
    use limba_model::MeasurementsBuilder;

    fn report() -> Report {
        let mut b = MeasurementsBuilder::new(2);
        let r = b.add_region("core, hot"); // comma forces escaping
        b.record(r, ActivityKind::Computation, 0, 1.0).unwrap();
        b.record(r, ActivityKind::Computation, 1, 3.0).unwrap();
        Analyzer::new()
            .with_cluster_k(0)
            .analyze(&b.build().unwrap())
            .unwrap()
    }

    #[test]
    fn profile_csv_escapes_and_blanks() {
        let csv = profile_csv(&report());
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "region,overall,computation,point-to-point,collective,synchronization"
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("\"core, hot\",2,2,"));
        assert!(row.ends_with(",,")); // three unperformed activities blank
    }

    #[test]
    fn dispersions_csv_has_values_only_where_performed() {
        let csv = dispersions_csv(&report());
        let row = csv.lines().nth(1).unwrap();
        let fields: Vec<&str> = row.split(',').collect();
        // "core, hot" splits into 2 quoted pieces + 4 activity columns.
        assert!(fields[2].parse::<f64>().is_ok());
        assert_eq!(fields[3], "");
    }

    #[test]
    fn summaries_and_processor_view_emit_rows() {
        let r = report();
        let s = summaries_csv(&r);
        assert!(s.contains("activity,computation"));
        assert!(s.contains("region,\"core, hot\""));
        let p = processor_view_csv(&r);
        assert_eq!(p.lines().count(), 3); // header + 2 processors
    }
}
