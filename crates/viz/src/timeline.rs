//! Per-processor activity timelines (a miniature Jumpshot).
//!
//! The paper's related work visualizes executions as per-processor
//! timelines; this renderer produces that classic view from a limba
//! trace: one lane per processor, segments colored by activity, time on
//! the x axis.

use limba_model::ActivityKind;
use limba_trace::{EventPayload, Trace, TraceError};

fn activity_color(kind: Option<ActivityKind>) -> &'static str {
    match kind {
        None => "#e8e8e8", // outside all regions
        Some(ActivityKind::Computation) => "#4daf4a",
        Some(ActivityKind::PointToPoint) => "#377eb8",
        Some(ActivityKind::Collective) => "#ff7f00",
        Some(ActivityKind::Synchronization) => "#e41a1c",
        Some(ActivityKind::Io) => "#984ea3",
        Some(ActivityKind::MemoryAccess) => "#a65628",
    }
}

/// One colored segment of a processor's lane.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Segment {
    start: f64,
    end: f64,
    kind: Option<ActivityKind>,
}

/// Extracts the activity segments of one processor: inside regions, time
/// between explicit activities is computation; outside regions it is
/// idle (`None`).
fn segments_of(trace: &Trace, proc: u32) -> Vec<Segment> {
    let mut segments = Vec::new();
    let mut depth = 0usize;
    let mut mark = 0.0f64;
    let mut current: Option<(ActivityKind, f64)> = None;
    let mut push = |start: f64, end: f64, kind: Option<ActivityKind>| {
        if end > start {
            segments.push(Segment { start, end, kind });
        }
    };
    for e in trace.events_by_processor(proc) {
        match e.payload {
            EventPayload::EnterRegion { .. } => {
                if depth == 0 {
                    push(mark, e.time, None);
                    mark = e.time;
                }
                depth += 1;
            }
            EventPayload::LeaveRegion { .. } => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    push(mark, e.time, Some(ActivityKind::Computation));
                    mark = e.time;
                }
            }
            EventPayload::BeginActivity { kind } => {
                push(mark, e.time, Some(ActivityKind::Computation));
                current = Some((kind, e.time));
                mark = e.time;
            }
            EventPayload::EndActivity { .. } => {
                if let Some((kind, start)) = current.take() {
                    push(start, e.time, Some(kind));
                    mark = e.time;
                }
            }
            _ => {}
        }
    }
    segments
}

/// Renders the trace as an SVG timeline: one lane per processor, colored
/// by activity (green computation, blue point-to-point, orange
/// collective, red synchronization, grey idle).
///
/// # Errors
///
/// Propagates validation errors for malformed traces and rejects traces
/// that span no time.
pub fn timeline_svg(trace: &Trace, width_px: usize) -> Result<String, TraceError> {
    trace.validate()?;
    let makespan = trace.events().iter().map(|e| e.time).fold(0.0f64, f64::max);
    if makespan <= 0.0 {
        return Err(TraceError::Malformed {
            detail: "trace spans no time, nothing to draw".into(),
        });
    }
    const LANE: usize = 16;
    const GAP: usize = 4;
    const LABEL: usize = 60;
    const TOP: usize = 40;
    let width_px = width_px.max(200);
    let procs = trace.processors();
    let height = TOP + procs * (LANE + GAP) + 10;
    let scale = (width_px - LABEL - 10) as f64 / makespan;
    let mut out = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width_px}\" height=\"{height}\" \
         font-family=\"sans-serif\" font-size=\"11\">\n"
    );
    out.push_str(&format!(
        "  <text x=\"{LABEL}\" y=\"16\" font-weight=\"bold\">timeline ({makespan:.4} s)</text>\n"
    ));
    // Legend.
    let legend = [
        ("comp", Some(ActivityKind::Computation)),
        ("p2p", Some(ActivityKind::PointToPoint)),
        ("coll", Some(ActivityKind::Collective)),
        ("sync", Some(ActivityKind::Synchronization)),
    ];
    for (i, (label, kind)) in legend.iter().enumerate() {
        let x = LABEL + i * 70;
        out.push_str(&format!(
            "  <rect x=\"{x}\" y=\"22\" width=\"10\" height=\"10\" fill=\"{}\"/>\n  \
             <text x=\"{}\" y=\"31\">{label}</text>\n",
            activity_color(*kind),
            x + 14
        ));
    }
    for proc in 0..procs as u32 {
        let y = TOP + proc as usize * (LANE + GAP);
        out.push_str(&format!(
            "  <text x=\"4\" y=\"{}\">p{proc}</text>\n",
            y + LANE - 4
        ));
        for seg in segments_of(trace, proc) {
            let x = LABEL as f64 + seg.start * scale;
            let w = ((seg.end - seg.start) * scale).max(0.5);
            out.push_str(&format!(
                "  <rect x=\"{x:.1}\" y=\"{y}\" width=\"{w:.1}\" height=\"{LANE}\" fill=\"{}\"/>\n",
                activity_color(seg.kind)
            ));
        }
    }
    out.push_str("</svg>\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_trace::{Event, TraceBuilder};

    fn sample() -> Trace {
        let mut b = TraceBuilder::new(2);
        let r = b.add_region("r");
        for p in 0..2 {
            b.push(Event::enter(0.0, p, r));
            b.push(Event::begin_activity(0.4, p, ActivityKind::Collective));
            b.push(Event::end_activity(0.6, p, ActivityKind::Collective));
            b.push(Event::leave(1.0, p, r));
        }
        b.build()
    }

    #[test]
    fn renders_lanes_and_segments() {
        let svg = timeline_svg(&sample(), 800).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains(">p0<") && svg.contains(">p1<"));
        // Each proc: comp, coll, comp = 3 segments; plus 4 legend rects.
        assert_eq!(svg.matches("<rect").count(), 2 * 3 + 4);
        assert!(svg.contains(activity_color(Some(ActivityKind::Collective))));
    }

    #[test]
    fn segments_classify_gaps_correctly() {
        let segs = segments_of(&sample(), 0);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].kind, Some(ActivityKind::Computation));
        assert_eq!(segs[1].kind, Some(ActivityKind::Collective));
        assert_eq!(segs[2].kind, Some(ActivityKind::Computation));
        assert_eq!(segs[0].start, 0.0);
        assert_eq!(segs[2].end, 1.0);
    }

    #[test]
    fn idle_time_outside_regions_is_grey() {
        let mut b = TraceBuilder::new(1);
        let r = b.add_region("r");
        b.push(Event::enter(1.0, 0, r)); // idle [0, 1)
        b.push(Event::leave(2.0, 0, r));
        let svg = timeline_svg(&b.build(), 400).unwrap();
        assert!(svg.contains(activity_color(None)));
    }

    #[test]
    fn degenerate_traces_rejected() {
        let empty = TraceBuilder::new(1).build();
        assert!(timeline_svg(&empty, 400).is_err());

        let mut b = TraceBuilder::new(1);
        let r = b.add_region("r");
        b.push(Event::enter(0.0, 0, r)); // unbalanced
        assert!(timeline_svg(&b.build(), 400).is_err());
    }
}
