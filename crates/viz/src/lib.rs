//! Renderings of load-imbalance analyses.
//!
//! * [`table`] — aligned text tables (the paper's Tables 1–4);
//! * [`pattern`] — ASCII pattern diagrams (Figures 1 and 2);
//! * [`report`] — a full text report from an
//!   [`Report`](limba_analysis::Report);
//! * [`advice`] — the ranked "recommended interventions" section from
//!   an advisor run;
//! * [`svg`] — standalone SVG renderings of pattern grids and Lorenz
//!   curves.
//!
//! # Example
//!
//! ```
//! use limba_viz::table::TextTable;
//!
//! let mut t = TextTable::new(vec!["loop".into(), "seconds".into()]);
//! t.row(vec!["loop 1".into(), "19.051".into()]);
//! let rendered = t.render();
//! assert!(rendered.contains("loop 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advice;
pub mod csv;
pub mod pattern;
pub mod report;
pub mod svg;
pub mod table;
pub mod timeline;
