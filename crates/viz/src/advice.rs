//! Rendering of advisor recommendations.
//!
//! The section the CLI appends to an analysis report when `limba
//! advise` runs: one ranked entry per verified candidate, showing the
//! intervention labels, the analytic prediction with its majorization
//! bounds, and the simulate-verified outcome with the
//! predicted-vs-measured comparison.

use limba_advisor::Advice;

/// Renders the ranked "recommended interventions" section.
///
/// The output is a pure function of the advice: the advisor guarantees
/// the advice itself is identical across `--jobs` settings and both
/// engines, so the rendered bytes are too.
pub fn render_advice(advice: &Advice) -> String {
    let mut out = String::from("== recommended interventions ==\n");
    out.push_str(&format!(
        "baseline makespan {:.6} s; search evaluated {} combo(s) (catalog {}, budget {})\n",
        advice.baseline_makespan, advice.evaluated, advice.catalog_size, advice.budget
    ));
    if advice.candidates.is_empty() {
        out.push_str("no interventions to recommend: the catalog is empty for this scenario\n");
        return out;
    }
    let pct = |gain: f64| {
        if advice.baseline_makespan > 0.0 {
            format!("{:+.2}%", 100.0 * gain / advice.baseline_makespan)
        } else {
            "n/a".to_string()
        }
    };
    for (i, c) in advice.candidates.iter().enumerate() {
        out.push_str(&format!("#{}", i + 1));
        for (j, label) in c.labels.iter().enumerate() {
            if j == 0 {
                out.push_str(&format!("  {label}\n"));
            } else {
                out.push_str(&format!("    + {label}\n"));
            }
        }
        out.push_str(&format!(
            "    predicted {} (makespan {:.6} s, bounds [{:.6}, {:.6}] s{})\n",
            pct(c.predicted_gain),
            c.prediction.makespan,
            c.prediction.lower_bound,
            c.prediction.upper_bound,
            if c.prediction.submajorized {
                ", load weakly submajorized by baseline"
            } else {
                ""
            }
        ));
        if let Some(v) = &c.verification {
            out.push_str(&format!(
                "    measured  {} (makespan {:.6} s, both engines)\n",
                pct(v.measured_gain),
                v.event_makespan
            ));
            let bounds = if v.within_bounds {
                "measurement within predicted bounds"
            } else {
                "measurement OUTSIDE predicted bounds"
            };
            let fidelity = if v.mispredicted {
                "; MISPREDICTED (point estimate off by more than 5%)"
            } else {
                "; prediction confirmed"
            };
            out.push_str(&format!("    {bounds}{fidelity}\n"));
            if let Some(region) = &v.heaviest_region {
                out.push_str(&format!("    heaviest region after fix: \"{region}\"\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_advisor::{Advisor, Scenario};
    use limba_analysis::Analyzer;
    use limba_mpisim::{MachineConfig, ProgramBuilder};

    fn advice() -> Advice {
        let mut pb = ProgramBuilder::new(4);
        let r = pb.add_region("solve");
        pb.spmd(|rank, mut ops| {
            ops.enter(r)
                .compute(0.5 + 0.5 * rank as f64)
                .barrier()
                .leave(r);
        });
        let scenario = Scenario::new(pb.build().unwrap(), MachineConfig::new(4)).unwrap();
        Advisor::new()
            .with_top_k(2)
            .with_analyzer(Analyzer::new().with_cluster_k(2))
            .advise(&scenario)
            .unwrap()
    }

    #[test]
    fn section_lists_ranked_candidates_with_both_gains() {
        let text = render_advice(&advice());
        assert!(text.starts_with("== recommended interventions ==\n"));
        assert!(text.contains("#1  "));
        assert!(text.contains("predicted +"));
        assert!(text.contains("measured  +"));
        assert!(text.contains("solve"));
        assert!(text.contains("within predicted bounds"));
    }

    #[test]
    fn empty_advice_renders_gracefully() {
        let mut a = advice();
        a.candidates.clear();
        let text = render_advice(&a);
        assert!(text.contains("no interventions to recommend"));
    }
}
