//! Full text report rendering.

use limba_analysis::Report;
use limba_model::ActivityKind;
use limba_mpisim::BalanceReport;
use limba_trace::RankCoverage;

use crate::pattern;
use crate::table::{cell, TextTable};

/// Canonical order of every section a rendered report can contain.
/// Optional sections (clustering, counting parameters, rebalancing
/// actions, data coverage) are simply absent when they don't apply;
/// present sections always appear in this order. [`assemble`] enforces
/// it, so a new section cannot silently shuffle existing report bytes —
/// extend this list (and the rendering lock test) to add one.
pub const SECTION_ORDER: &[&str] = &[
    "coarse grain",
    "clustering",
    "wall clock breakdown",
    "indices of dispersion ID_ij",
    "activity view",
    "code region view",
    "processor view",
    "patterns",
    "counting parameters",
    "findings",
    "rebalancing actions",
    "data coverage",
];

/// Concatenates `(section id, verbatim text)` pairs, checking that the
/// ids form a subsequence of [`SECTION_ORDER`]. Each section's text
/// carries its own separators, so assembly is pure concatenation and
/// existing reports keep their exact bytes.
///
/// # Panics
///
/// Panics on an unknown section id or an out-of-order pair — both are
/// programming errors in this crate, locked by the rendering tests.
fn assemble(sections: &[(&str, String)]) -> String {
    let mut next = 0;
    let mut out = String::new();
    for (id, text) in sections {
        let at = SECTION_ORDER[next..]
            .iter()
            .position(|s| s == id)
            .unwrap_or_else(|| panic!("section {id:?} unknown or out of order"));
        next += at + 1;
        out.push_str(text);
    }
    out
}

/// Renders the Table-1-style wall-clock breakdown.
pub fn render_profile(report: &Report) -> String {
    let kinds: Vec<ActivityKind> = report.profile.activity_totals.iter().map(|t| t.0).collect();
    let mut header = vec!["region".to_string(), "overall".to_string()];
    header.extend(kinds.iter().map(|k| k.to_string()));
    let mut t = TextTable::new(header);
    for r in &report.profile.regions {
        let mut row = vec![r.name.clone(), format!("{:.3}", r.seconds)];
        for b in &r.breakdown {
            row.push(if b.performed {
                format!("{:.3}", b.seconds)
            } else {
                "-".into()
            });
        }
        t.row(row);
    }
    t.render()
}

/// Renders the `ID_ij` dispersion matrix (Table 2).
pub fn render_dispersions(report: &Report) -> String {
    let kinds: Vec<ActivityKind> = report.profile.activity_totals.iter().map(|t| t.0).collect();
    let mut header = vec!["region".to_string()];
    header.extend(kinds.iter().map(|k| k.to_string()));
    let mut t = TextTable::new(header);
    for r in &report.profile.regions {
        let mut row = vec![r.name.clone()];
        for col in 0..kinds.len() {
            row.push(cell(report.activity_view.id[r.region.index()][col]));
        }
        t.row(row);
    }
    t.render()
}

/// Renders the activity-view summary (Table 3).
pub fn render_activity_summary(report: &Report) -> String {
    let mut t = TextTable::new(vec!["activity".into(), "ID_A".into(), "SID_A".into()]);
    for s in &report.activity_view.summaries {
        t.row(vec![
            s.kind.to_string(),
            cell(Some(s.id)),
            cell(Some(s.sid)),
        ]);
    }
    t.render()
}

/// Renders the region-view summary (Table 4).
pub fn render_region_summary(report: &Report) -> String {
    let mut t = TextTable::new(vec!["region".into(), "ID_C".into(), "SID_C".into()]);
    for s in &report.region_view.summaries {
        t.row(vec![s.name.clone(), cell(Some(s.id)), cell(Some(s.sid))]);
    }
    t.render()
}

/// Renders the per-region most-imbalanced-processor table of the
/// processor view.
pub fn render_processor_view(report: &Report) -> String {
    let mut t = TextTable::new(vec![
        "region".into(),
        "worst processor".into(),
        "ID_P".into(),
        "wall clock".into(),
    ]);
    for (i, entry) in report
        .processor_view
        .most_imbalanced_per_region
        .iter()
        .enumerate()
    {
        let name = report.profile.regions[i].name.clone();
        match entry {
            Some((p, id, wall)) => {
                t.row(vec![
                    name,
                    p.to_string(),
                    cell(Some(*id)),
                    format!("{wall:.3}"),
                ]);
            }
            None => {
                t.row(vec![name, "-".into(), "-".into(), "-".into()]);
            }
        }
    }
    t.render()
}

/// Renders the whole report as plain text: coarse findings, the four
/// tables, the pattern diagrams, and the processor findings. Sections
/// appear in [`SECTION_ORDER`].
pub fn render(report: &Report) -> String {
    assemble(&report_sections(report))
}

/// Builds the report's `(section id, text)` pairs; every `render*`
/// entry point shares this list and [`assemble`], so the section order
/// is enforced in exactly one place.
fn report_sections(report: &Report) -> Vec<(&'static str, String)> {
    let mut sections = Vec::new();
    let mut out = String::new();
    out.push_str("== coarse grain ==\n");
    out.push_str(&format!(
        "program wall clock: {:.3} s\ndominant activity: {} ({:.3} s)\nheaviest region: {} ({:.1}% of program)\n",
        report.coarse.total_seconds,
        report.coarse.dominant_activity,
        report.coarse.dominant_activity_seconds,
        report.coarse.heaviest_region_name,
        report.coarse.heaviest_region_fraction * 100.0,
    ));
    for e in &report.coarse.extremes {
        out.push_str(&format!(
            "{}: worst {} ({:.3} s), best {} ({:.3} s)\n",
            e.kind, e.worst.1, e.worst.2, e.best.1, e.best.2
        ));
    }
    sections.push(("coarse grain", out));
    if let Some(c) = &report.clustering {
        let mut out = format!("\n== clustering (k = {}) ==\n", c.k);
        for (g, members) in c.groups.iter().enumerate() {
            let names: Vec<&str> = members
                .iter()
                .map(|&r| report.profile.regions[r.index()].name.as_str())
                .collect();
            out.push_str(&format!("group {g}: {}\n", names.join(", ")));
        }
        sections.push(("clustering", out));
    }
    sections.push((
        "wall clock breakdown",
        format!("\n== wall clock breakdown ==\n{}", render_profile(report)),
    ));
    sections.push((
        "indices of dispersion ID_ij",
        format!(
            "\n== indices of dispersion ID_ij ==\n{}",
            render_dispersions(report)
        ),
    ));
    sections.push((
        "activity view",
        format!("\n== activity view ==\n{}", render_activity_summary(report)),
    ));
    sections.push((
        "code region view",
        format!(
            "\n== code region view ==\n{}",
            render_region_summary(report)
        ),
    ));
    sections.push((
        "processor view",
        format!("\n== processor view ==\n{}", render_processor_view(report)),
    ));
    let mut out = String::from("\n== patterns ==\n");
    for grid in &report.patterns {
        out.push_str(&pattern::render(grid));
        out.push('\n');
    }
    sections.push(("patterns", out));
    if let Some(counts) = &report.counts {
        if !counts.summaries.is_empty() {
            let mut out = String::from("== counting parameters ==\n");
            let mut t = TextTable::new(vec![
                "quantity".into(),
                "total".into(),
                "weighted ID".into(),
            ]);
            for s in &counts.summaries {
                t.row(vec![
                    s.kind.to_string(),
                    format!("{:.0}", s.total),
                    cell(Some(s.id)),
                ]);
            }
            out.push_str(&t.render());
            if let Some(worst) = counts.most_imbalanced_cell() {
                out.push_str(&format!(
                    "most uneven cell: {} in {} (ID {:.5})\n",
                    worst.kind,
                    report.profile.regions[worst.region.index()].name,
                    worst.id
                ));
            }
            out.push('\n');
            sections.push(("counting parameters", out));
        }
    }
    let mut out = String::from("== findings ==\n");
    let f = &report.findings;
    if let Some((p, n)) = f.processors.most_frequently_imbalanced {
        out.push_str(&format!("most frequently imbalanced: {p} ({n} regions)\n"));
    }
    if let Some((p, t)) = f.processors.longest_imbalanced {
        out.push_str(&format!("longest imbalanced: {p} ({t:.3} s)\n"));
    }
    if let Some((k, v)) = f.most_imbalanced_activity {
        out.push_str(&format!("most imbalanced activity: {k} (ID_A = {v:.5})\n"));
    }
    if let Some((k, v)) = f.most_imbalanced_activity_scaled {
        out.push_str(&format!(
            "most imbalanced activity (scaled): {k} (SID_A = {v:.5})\n"
        ));
    }
    for c in &f.tuning_candidates {
        out.push_str(&format!(
            "tuning candidate: {} (ID_C = {:.5}, SID_C = {:.5}{})\n",
            c.name,
            c.id,
            c.sid,
            if c.is_heaviest { ", program core" } else { "" }
        ));
    }
    sections.push(("findings", out));
    sections
}

/// Renders the per-rank data-coverage section for a salvaged trace (see
/// [`limba_trace::reduce_checked`]): which ranks' streams were truncated
/// and how far their data reaches.
pub fn render_coverage(coverage: &[RankCoverage]) -> String {
    let mut out = String::from("== data coverage ==\n");
    let incomplete: Vec<&RankCoverage> = coverage.iter().filter(|c| !c.complete).collect();
    if incomplete.is_empty() {
        out.push_str(&format!("all {} ranks complete\n", coverage.len()));
        return out;
    }
    out.push_str(&format!(
        "{} of {} ranks have truncated data; their measurements are lower bounds\n",
        incomplete.len(),
        coverage.len()
    ));
    let mut t = TextTable::new(vec![
        "rank".into(),
        "events".into(),
        "data up to".into(),
        "open regions".into(),
        "open activity".into(),
    ]);
    for c in incomplete {
        t.row(vec![
            c.proc.to_string(),
            c.events.to_string(),
            format!("{:.3} s", c.last_time),
            c.open_regions.to_string(),
            if c.open_activity { "yes" } else { "no" }.into(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Renders the full report, appending the data-coverage section when
/// any rank's stream was truncated — complete traces render exactly as
/// [`render`].
pub fn render_with_coverage(report: &Report, coverage: &[RankCoverage]) -> String {
    let mut sections = report_sections(report);
    if coverage.iter().any(|c| !c.complete) {
        sections.push(("data coverage", format!("\n{}", render_coverage(coverage))));
    }
    assemble(&sections)
}

/// Renders the imbalance-evolution section for a windowed analysis:
/// one line per activity with the per-window weighted dispersion, the
/// fitted slope, and the trend classification. Shared by
/// `limba analyze --windows` and `limba-serve`'s evolution query, so
/// the two surfaces print byte-identical sections.
pub fn render_evolution(
    evolution: &limba_analysis::evolution::Evolution,
    windows: usize,
) -> String {
    let mut out = format!("\n== imbalance evolution ({windows} windows) ==\n");
    for series in &evolution.series {
        let values: Vec<String> = series
            .values
            .iter()
            .map(|v| v.map(|v| format!("{v:.3}")).unwrap_or_else(|| "-".into()))
            .collect();
        out.push_str(&format!(
            "{:<16} [{}] slope {:+.4} → {:?}\n",
            series.activity.to_string(),
            values.join(" "),
            series.slope,
            series.trend
        ));
    }
    out
}

/// Renders the rebalancing-actions section for a balanced run (see
/// [`limba_mpisim::BalancePlan`]): the active policy, the migration
/// totals, and the per-rank nominal-seconds ledger (work executed
/// locally, donated away, taken on for others).
pub fn render_balance(balance: &BalanceReport) -> String {
    let mut out = String::from("== rebalancing actions ==\n");
    let Some(policy) = &balance.policy else {
        out.push_str("no balancing policy active\n");
        return out;
    };
    if balance.migrations == 0 {
        out.push_str(&format!(
            "policy {policy}: no migrations triggered ({} declined by the profitability guard)\n",
            balance.declined
        ));
        return out;
    }
    out.push_str(&format!(
        "policy {policy}: {} migrations moved {:.3} nominal s ({} declined)\n",
        balance.migrations, balance.moved_seconds, balance.declined
    ));
    let mut t = TextTable::new(vec![
        "rank".into(),
        "local s".into(),
        "donated s".into(),
        "received s".into(),
    ]);
    for rank in 0..balance.local_seconds.len() {
        t.row(vec![
            rank.to_string(),
            format!("{:.3}", balance.local_seconds[rank]),
            format!("{:.3}", balance.donated_seconds[rank]),
            format!("{:.3}", balance.received_seconds[rank]),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Renders the full report of a balanced run: [`render`] plus the
/// rebalancing-actions section when a policy was active, plus the
/// data-coverage section when any rank's stream was truncated. Runs
/// without a balance plan render exactly as [`render_with_coverage`].
pub fn render_with_balance(
    report: &Report,
    balance: &BalanceReport,
    coverage: &[RankCoverage],
) -> String {
    let mut sections = report_sections(report);
    if !balance.is_inactive() {
        sections.push((
            "rebalancing actions",
            format!("\n{}", render_balance(balance)),
        ));
    }
    if coverage.iter().any(|c| !c.complete) {
        sections.push(("data coverage", format!("\n{}", render_coverage(coverage))));
    }
    assemble(&sections)
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_analysis::Analyzer;
    use limba_model::MeasurementsBuilder;

    fn report() -> Report {
        let mut b = MeasurementsBuilder::new(4);
        let r0 = b.add_region("core");
        let r1 = b.add_region("halo");
        for p in 0..4 {
            b.record(r0, ActivityKind::Computation, p, 2.0 + p as f64)
                .unwrap();
            b.record(r0, ActivityKind::Collective, p, 1.0).unwrap();
            b.record(r1, ActivityKind::PointToPoint, p, 0.25).unwrap();
        }
        Analyzer::new().analyze(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn full_report_mentions_every_section() {
        let text = render(&report());
        for needle in [
            "== coarse grain ==",
            "== clustering",
            "== wall clock breakdown ==",
            "== processor view ==",
            "== indices of dispersion ID_ij ==",
            "== activity view ==",
            "== code region view ==",
            "== patterns ==",
            "== findings ==",
            "dominant activity: computation",
            "heaviest region: core",
            "tuning candidate",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in report");
        }
        // Counting section only appears when counts are attached.
        assert!(!text.contains("== counting parameters =="));
    }

    #[test]
    fn counting_section_renders_when_counts_present() {
        use limba_model::{CountKind, CountMatrixBuilder, RegionId};
        let mut b = MeasurementsBuilder::new(2);
        let core = b.add_region("core");
        b.record(core, ActivityKind::Computation, 0, 1.0).unwrap();
        b.record(core, ActivityKind::Computation, 1, 1.0).unwrap();
        let m = b.build().unwrap();
        let mut cb = CountMatrixBuilder::new(2);
        cb.record(RegionId::new(0), CountKind::MessagesSent, 0, 5.0)
            .unwrap();
        let report = Analyzer::new()
            .with_cluster_k(0)
            .analyze_with_counts(&m, &cb.build())
            .unwrap();
        let text = render(&report);
        assert!(text.contains("== counting parameters =="));
        assert!(text.contains("msgs-sent"));
        assert!(text.contains("most uneven cell: msgs-sent in core"));
    }

    #[test]
    fn coverage_section_flags_truncated_ranks() {
        let full = RankCoverage {
            proc: 0,
            events: 10,
            complete: true,
            open_regions: 0,
            open_activity: false,
            last_time: 4.0,
        };
        let cut = RankCoverage {
            proc: 1,
            events: 3,
            complete: false,
            open_regions: 2,
            open_activity: true,
            last_time: 1.5,
        };
        let text = render_coverage(&[full, cut]);
        assert!(text.contains("== data coverage =="));
        assert!(text.contains("1 of 2 ranks"));
        assert!(text.contains("1.500 s"));
        // Clean coverage renders a one-liner.
        assert!(render_coverage(&[full]).contains("all 1 ranks complete"));

        // render_with_coverage only appends the section when needed.
        let r = report();
        assert!(!render_with_coverage(&r, &[full]).contains("== data coverage =="));
        assert!(render_with_coverage(&r, &[full, cut]).contains("== data coverage =="));
    }

    #[test]
    fn section_order_is_explicit_and_enforced() {
        // Every header that appears in the rendered report must occur in
        // SECTION_ORDER order — this locks the layout so a new section
        // (e.g. rebalancing actions) cannot shuffle existing goldens.
        let r = report();
        for text in [render(&r), render_with_balance(&r, &stealing_report(), &[])] {
            let headers: Vec<&str> = text
                .lines()
                .filter(|l| l.starts_with("== ") && l.ends_with(" =="))
                .map(|l| l.trim_start_matches("== ").trim_end_matches(" =="))
                .map(|h| h.split(" (").next().unwrap())
                .collect();
            let mut next = 0usize;
            for h in &headers {
                let at = SECTION_ORDER[next..]
                    .iter()
                    .position(|id| id == h)
                    .unwrap_or_else(|| panic!("section {h:?} out of order in {headers:?}"));
                next += at + 1;
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn assemble_rejects_out_of_order_sections() {
        assemble(&[("findings", String::new()), ("coarse grain", String::new())]);
    }

    fn stealing_report() -> BalanceReport {
        BalanceReport {
            policy: Some("stealing".into()),
            migrations: 3,
            declined: 1,
            moved_seconds: 0.75,
            local_seconds: vec![2.0, 1.25],
            donated_seconds: vec![0.0, 0.75],
            received_seconds: vec![0.75, 0.0],
        }
    }

    #[test]
    fn balance_section_renders_policy_and_ledger() {
        let text = render_balance(&stealing_report());
        assert!(text.contains("== rebalancing actions =="));
        assert!(text.contains("policy stealing: 3 migrations moved 0.750 nominal s (1 declined)"));
        assert!(text.contains("received s"));
        assert!(text.contains("0.750"));

        let idle = BalanceReport {
            policy: Some("diffusion".into()),
            ..BalanceReport::default()
        };
        assert!(render_balance(&idle).contains("no migrations triggered"));
    }

    #[test]
    fn balanced_render_appends_section_only_when_active() {
        let r = report();
        let inactive = render_with_balance(&r, &BalanceReport::default(), &[]);
        assert_eq!(
            inactive,
            render(&r),
            "inactive balance must not alter the report"
        );
        let active = render_with_balance(&r, &stealing_report(), &[]);
        assert!(active.starts_with(&render(&r)));
        assert!(active.contains("== rebalancing actions =="));
    }

    #[test]
    fn dispersion_table_uses_dashes_for_absent_cells() {
        let text = render_dispersions(&report());
        assert!(text.contains('-'));
        assert!(text.contains("core"));
    }

    #[test]
    fn profile_table_has_overall_column() {
        let text = render_profile(&report());
        assert!(text.lines().next().unwrap().contains("overall"));
        // core overall = mean comp 3.5 + coll 1.0 = 4.5
        assert!(text.contains("4.500"));
    }

    #[test]
    fn summaries_render_numbers() {
        let r = report();
        assert!(render_activity_summary(&r).contains("computation"));
        assert!(render_region_summary(&r).contains("halo"));
    }
}
