//! Collective operations and their cost models.

use std::fmt;

use crate::MachineConfig;

/// The collective operations the simulator models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// `MPI_REDUCE` to a root.
    Reduce,
    /// `MPI_ALLREDUCE`.
    Allreduce,
    /// `MPI_BCAST` from a root.
    Broadcast,
    /// `MPI_ALLTOALL` (`bytes` is the per-pair payload).
    Alltoall,
    /// `MPI_BARRIER`.
    Barrier,
    /// `MPI_GATHER` to a root (`bytes` is the per-rank contribution).
    Gather,
    /// `MPI_SCATTER` from a root (`bytes` is the per-rank share).
    Scatter,
    /// `MPI_ALLGATHER` (`bytes` is the per-rank contribution).
    Allgather,
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CollectiveKind::Reduce => "reduce",
            CollectiveKind::Allreduce => "allreduce",
            CollectiveKind::Broadcast => "broadcast",
            CollectiveKind::Alltoall => "alltoall",
            CollectiveKind::Barrier => "barrier",
            CollectiveKind::Gather => "gather",
            CollectiveKind::Scatter => "scatter",
            CollectiveKind::Allgather => "allgather",
        };
        f.write_str(s)
    }
}

/// The algorithm a collective is costed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveAlgorithm {
    /// Binomial tree: `ceil(log2 P)` rounds, each one message deep
    /// (reduce, broadcast).
    BinomialTree,
    /// Recursive doubling: `ceil(log2 P)` rounds of pairwise exchanges
    /// (allreduce, dissemination barrier).
    RecursiveDoubling,
    /// Pairwise exchange: `P − 1` rounds, each exchanging the per-pair
    /// payload (alltoall).
    Pairwise,
    /// Binomial tree with the *total* payload crossing the root's link:
    /// `ceil(log2 P)` latency rounds plus `(P − 1) × bytes` of transfer
    /// (gather, scatter).
    BinomialScaled,
    /// Ring: `P − 1` rounds, each forwarding one rank's contribution
    /// (allgather).
    Ring,
}

impl CollectiveAlgorithm {
    /// Every algorithm the cost model knows, in a fixed order — the
    /// candidate set the advisor's collective-swap intervention
    /// enumerates.
    pub const ALL: [CollectiveAlgorithm; 5] = [
        CollectiveAlgorithm::BinomialTree,
        CollectiveAlgorithm::RecursiveDoubling,
        CollectiveAlgorithm::Pairwise,
        CollectiveAlgorithm::BinomialScaled,
        CollectiveAlgorithm::Ring,
    ];
}

impl fmt::Display for CollectiveAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CollectiveAlgorithm::BinomialTree => "binomial-tree",
            CollectiveAlgorithm::RecursiveDoubling => "recursive-doubling",
            CollectiveAlgorithm::Pairwise => "pairwise",
            CollectiveAlgorithm::BinomialScaled => "binomial-scaled",
            CollectiveAlgorithm::Ring => "ring",
        };
        f.write_str(s)
    }
}

impl CollectiveKind {
    /// The algorithm the simulator uses for this collective.
    pub fn algorithm(self) -> CollectiveAlgorithm {
        match self {
            CollectiveKind::Reduce | CollectiveKind::Broadcast => CollectiveAlgorithm::BinomialTree,
            CollectiveKind::Allreduce | CollectiveKind::Barrier => {
                CollectiveAlgorithm::RecursiveDoubling
            }
            CollectiveKind::Alltoall => CollectiveAlgorithm::Pairwise,
            CollectiveKind::Gather | CollectiveKind::Scatter => CollectiveAlgorithm::BinomialScaled,
            CollectiveKind::Allgather => CollectiveAlgorithm::Ring,
        }
    }
}

fn log2_ceil(p: usize) -> usize {
    debug_assert!(p > 0);
    (usize::BITS - (p - 1).leading_zeros()) as usize
}

/// Time a collective of `kind` over `procs` ranks with `bytes` payload
/// takes once all ranks have arrived, under `config`'s network parameters.
///
/// The algorithm is the machine's choice for the kind
/// ([`MachineConfig::collective_algorithm`]), which defaults to
/// [`CollectiveKind::algorithm`]. Per round the cost is
/// `overhead + latency + bytes / bandwidth` (no payload term for
/// barriers, whichever algorithm costs them). A single-rank collective
/// is free.
pub fn collective_cost(
    kind: CollectiveKind,
    procs: usize,
    bytes: u64,
    config: &MachineConfig,
) -> f64 {
    if procs <= 1 {
        return 0.0;
    }
    let per_msg = config.overhead() + config.latency();
    let payload = if kind == CollectiveKind::Barrier {
        0.0
    } else {
        config.transfer_time(bytes)
    };
    match config.collective_algorithm(kind) {
        CollectiveAlgorithm::BinomialTree => log2_ceil(procs) as f64 * (per_msg + payload),
        CollectiveAlgorithm::RecursiveDoubling => log2_ceil(procs) as f64 * (per_msg + payload),
        CollectiveAlgorithm::Pairwise => (procs - 1) as f64 * (per_msg + payload),
        CollectiveAlgorithm::BinomialScaled => {
            log2_ceil(procs) as f64 * per_msg + (procs - 1) as f64 * payload
        }
        CollectiveAlgorithm::Ring => (procs - 1) as f64 * (per_msg + payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::new(16)
            .with_overhead(1e-6)
            .with_latency(9e-6)
            .with_bandwidth(1e8)
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(16), 4);
        assert_eq!(log2_ceil(17), 5);
    }

    #[test]
    fn barrier_cost_is_log_rounds_of_latency() {
        let c = collective_cost(CollectiveKind::Barrier, 16, 0, &cfg());
        assert!((c - 4.0 * 10e-6).abs() < 1e-12);
    }

    #[test]
    fn barrier_ignores_payload() {
        let a = collective_cost(CollectiveKind::Barrier, 8, 0, &cfg());
        let b = collective_cost(CollectiveKind::Barrier, 8, 1 << 20, &cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn reduce_cost_scales_with_bytes() {
        let small = collective_cost(CollectiveKind::Reduce, 16, 1024, &cfg());
        let large = collective_cost(CollectiveKind::Reduce, 16, 1 << 20, &cfg());
        assert!(large > small);
        // 4 rounds × (10 µs + 1 MiB / 100 MB/s)
        let expected = 4.0 * (10e-6 + (1u64 << 20) as f64 / 1e8);
        assert!((large - expected).abs() < 1e-9);
    }

    #[test]
    fn alltoall_cost_is_linear_in_procs() {
        let p8 = collective_cost(CollectiveKind::Alltoall, 8, 4096, &cfg());
        let p16 = collective_cost(CollectiveKind::Alltoall, 16, 4096, &cfg());
        assert!((p16 / p8 - 15.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn single_rank_collectives_are_free() {
        for kind in [
            CollectiveKind::Reduce,
            CollectiveKind::Allreduce,
            CollectiveKind::Broadcast,
            CollectiveKind::Alltoall,
            CollectiveKind::Barrier,
            CollectiveKind::Gather,
            CollectiveKind::Scatter,
            CollectiveKind::Allgather,
        ] {
            assert_eq!(collective_cost(kind, 1, 1024, &cfg()), 0.0);
        }
    }

    #[test]
    fn gather_pays_total_payload_but_log_latency() {
        // 16 ranks, 1 KiB each: 4 latency rounds + 15 KiB of transfer.
        let c = collective_cost(CollectiveKind::Gather, 16, 1024, &cfg());
        let expected = 4.0 * 10e-6 + 15.0 * 1024.0 / 1e8;
        assert!((c - expected).abs() < 1e-12);
        assert_eq!(
            c,
            collective_cost(CollectiveKind::Scatter, 16, 1024, &cfg())
        );
    }

    #[test]
    fn allgather_is_ring_shaped() {
        let c = collective_cost(CollectiveKind::Allgather, 8, 2048, &cfg());
        let expected = 7.0 * (10e-6 + 2048.0 / 1e8);
        assert!((c - expected).abs() < 1e-12);
    }

    #[test]
    fn config_override_switches_the_cost_model() {
        // Allreduce costed as a ring: P−1 rounds instead of log2 P.
        let ring =
            cfg().with_collective_algorithm(CollectiveKind::Allreduce, CollectiveAlgorithm::Ring);
        let c = collective_cost(CollectiveKind::Allreduce, 16, 1024, &ring);
        let expected = 15.0 * (10e-6 + 1024.0 / 1e8);
        assert!((c - expected).abs() < 1e-12);
        // Other kinds on the same machine keep their defaults.
        assert_eq!(
            collective_cost(CollectiveKind::Reduce, 16, 1024, &ring),
            collective_cost(CollectiveKind::Reduce, 16, 1024, &cfg())
        );
        // Barriers stay payload-free under every algorithm.
        for algo in CollectiveAlgorithm::ALL {
            let b = cfg().with_collective_algorithm(CollectiveKind::Barrier, algo);
            assert_eq!(
                collective_cost(CollectiveKind::Barrier, 8, 1 << 20, &b),
                collective_cost(CollectiveKind::Barrier, 8, 0, &b)
            );
        }
    }

    #[test]
    fn algorithms_are_as_documented() {
        assert_eq!(
            CollectiveKind::Reduce.algorithm(),
            CollectiveAlgorithm::BinomialTree
        );
        assert_eq!(
            CollectiveKind::Allreduce.algorithm(),
            CollectiveAlgorithm::RecursiveDoubling
        );
        assert_eq!(
            CollectiveKind::Alltoall.algorithm(),
            CollectiveAlgorithm::Pairwise
        );
    }
}
