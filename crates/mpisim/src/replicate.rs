//! Parallel replication sweeps.
//!
//! A replication sweep runs the same experiment `n` times with `n`
//! statistically independent seeds and collects every run's output. The
//! simulator itself is deterministic — randomness lives in the *program*
//! (workload generators take seeds) — so a sweep is parameterized by a
//! program-builder closure invoked once per replication with that
//! replication's index and derived seed.
//!
//! Determinism guarantees, locked by the workspace test-suite:
//!
//! * replication `i`'s seed is [`limba_par::derive_seed`]`(root, i)` — a
//!   pure function, so the seed set never depends on thread count or
//!   completion order;
//! * results are returned **in replication order** (slot-indexed, see
//!   [`limba_par::par_map`]), so the output `Vec` is identical whether
//!   the sweep ran on one thread or sixteen;
//! * one failing replication occupies its own `Err` slot and never
//!   aborts the rest of the sweep.

use crate::balance::BalancePlan;
use crate::engine::{SimOutput, Simulator};
use crate::error::SimError;
use crate::faults::FaultPlan;
use crate::ops::Program;

/// One completed replication of a sweep.
#[derive(Debug, Clone)]
pub struct Replication {
    /// Index of this replication within the sweep, `0..n`.
    pub index: usize,
    /// The SplitMix64-derived seed the program was built with.
    pub seed: u64,
    /// The simulation output.
    pub output: SimOutput,
}

impl Simulator {
    /// Runs `replications` independent simulations on up to `jobs`
    /// worker threads (`0` = one per CPU) and returns the outputs in
    /// replication order.
    ///
    /// `build(index, seed)` constructs the program of each replication;
    /// the seed is derived from `root_seed` via SplitMix64, so distinct
    /// replications get statistically independent randomness while the
    /// whole sweep stays reproducible from the single root.
    ///
    /// # Errors
    ///
    /// Failures are isolated per replication: a builder or simulation
    /// error lands as `Err` at that replication's position while every
    /// other replication still completes.
    pub fn run_replications<F>(
        &self,
        replications: usize,
        root_seed: u64,
        jobs: usize,
        build: F,
    ) -> Vec<Result<Replication, SimError>>
    where
        F: Fn(usize, u64) -> Result<Program, SimError> + Sync,
    {
        let indices: Vec<usize> = (0..replications).collect();
        limba_par::par_map(jobs, &indices, |_, &index| {
            let seed = limba_par::derive_seed(root_seed, index as u64);
            let program = build(index, seed)?;
            let output = self.run(&program)?;
            Ok(Replication {
                index,
                seed,
                output,
            })
        })
    }

    /// Like [`Simulator::run_replications`], with every replication
    /// perturbed by `plan`. Replication `i` runs under
    /// `plan.with_seed(derive_seed(plan.seed, i))` — the deterministic
    /// faults (slowdowns, link windows, crashes) are identical across
    /// the sweep while the message-loss pattern varies independently
    /// per replication, and the whole sweep reproduces from the plan's
    /// single root seed at any thread count.
    ///
    /// # Errors
    ///
    /// Same isolation as [`Simulator::run_replications`]; an invalid
    /// plan fails every replication with
    /// [`SimError::InvalidFaultPlan`].
    pub fn run_replications_with_faults<F>(
        &self,
        replications: usize,
        root_seed: u64,
        jobs: usize,
        plan: &FaultPlan,
        build: F,
    ) -> Vec<Result<Replication, SimError>>
    where
        F: Fn(usize, u64) -> Result<Program, SimError> + Sync,
    {
        let indices: Vec<usize> = (0..replications).collect();
        limba_par::par_map(jobs, &indices, |_, &index| {
            let seed = limba_par::derive_seed(root_seed, index as u64);
            let program = build(index, seed)?;
            let rep_plan = plan
                .clone()
                .with_seed(limba_par::derive_seed(plan.seed, index as u64));
            let output = self.run_with_faults(&program, &rep_plan)?;
            Ok(Replication {
                index,
                seed,
                output,
            })
        })
    }

    /// The fully general sweep: every replication optionally perturbed
    /// by a fault plan *and* rebalanced by a balance plan. Both plans'
    /// seeds are re-derived per replication exactly as in
    /// [`Simulator::run_replications_with_faults`], so sweeps reproduce
    /// from their root seeds at any `--jobs` level, balanced or not.
    ///
    /// `(None, None)` is identical to [`Simulator::run_replications`].
    ///
    /// # Errors
    ///
    /// Same isolation as [`Simulator::run_replications`]; an invalid
    /// plan fails every replication with
    /// [`SimError::InvalidFaultPlan`] or
    /// [`SimError::InvalidBalancePlan`].
    pub fn run_replications_configured<F>(
        &self,
        replications: usize,
        root_seed: u64,
        jobs: usize,
        faults: Option<&FaultPlan>,
        balance: Option<&BalancePlan>,
        build: F,
    ) -> Vec<Result<Replication, SimError>>
    where
        F: Fn(usize, u64) -> Result<Program, SimError> + Sync,
    {
        let indices: Vec<usize> = (0..replications).collect();
        limba_par::par_map(jobs, &indices, |_, &index| {
            let seed = limba_par::derive_seed(root_seed, index as u64);
            let program = build(index, seed)?;
            let rep_faults = faults.map(|plan| {
                plan.clone()
                    .with_seed(limba_par::derive_seed(plan.seed, index as u64))
            });
            let rep_balance = balance.map(|plan| {
                plan.clone()
                    .with_seed(limba_par::derive_seed(plan.seed(), index as u64))
            });
            let output =
                self.run_configured(&program, rep_faults.as_ref(), rep_balance.as_ref(), None)?;
            Ok(Replication {
                index,
                seed,
                output,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MachineConfig, ProgramBuilder};

    /// A two-rank program whose compute times depend on the seed.
    fn seeded_program(ranks: usize, seed: u64) -> Result<Program, SimError> {
        let mut pb = ProgramBuilder::new(ranks);
        let step = pb.add_region("step");
        for rank in 0..ranks {
            // Deterministic seed-dependent imbalance.
            let work = 1.0 + ((seed >> (rank % 8)) & 0xFF) as f64 / 256.0;
            pb.rank(rank)
                .enter(step)
                .compute(work)
                .barrier()
                .leave(step);
        }
        pb.build()
    }

    fn makespans(results: &[Result<Replication, SimError>]) -> Vec<f64> {
        results
            .iter()
            .map(|r| r.as_ref().unwrap().output.stats.makespan)
            .collect()
    }

    #[test]
    fn sweep_is_identical_across_thread_counts() {
        let sim = Simulator::new(MachineConfig::new(4));
        let reference = sim.run_replications(12, 42, 1, |_, seed| seeded_program(4, seed));
        assert_eq!(reference.len(), 12);
        for jobs in [2, 4, 8] {
            let sweep = sim.run_replications(12, 42, jobs, |_, seed| seeded_program(4, seed));
            assert_eq!(makespans(&sweep), makespans(&reference), "jobs={jobs}");
        }
    }

    #[test]
    fn replications_get_distinct_derived_seeds_in_order() {
        let sim = Simulator::new(MachineConfig::new(2));
        let sweep = sim.run_replications(8, 7, 3, |_, seed| seeded_program(2, seed));
        let mut seen = std::collections::BTreeSet::new();
        for (i, r) in sweep.iter().enumerate() {
            let r = r.as_ref().unwrap();
            assert_eq!(r.index, i);
            assert_eq!(r.seed, limba_par::derive_seed(7, i as u64));
            assert!(seen.insert(r.seed), "duplicate seed at {i}");
        }
    }

    #[test]
    fn one_failing_replication_does_not_abort_the_sweep() {
        let sim = Simulator::new(MachineConfig::new(2));
        let sweep = sim.run_replications(5, 0, 4, |index, seed| {
            if index == 2 {
                Err(SimError::BuildFailed {
                    detail: "synthetic failure".into(),
                })
            } else {
                seeded_program(2, seed)
            }
        });
        for (i, r) in sweep.iter().enumerate() {
            if i == 2 {
                assert!(matches!(r, Err(SimError::BuildFailed { .. })));
            } else {
                assert!(r.is_ok(), "replication {i} failed");
            }
        }
    }

    #[test]
    fn faulted_sweep_is_identical_across_thread_counts() {
        // A ring exchange so message-loss faults actually fire.
        fn ring_program(ranks: usize, seed: u64) -> Result<Program, SimError> {
            let mut pb = ProgramBuilder::new(ranks);
            let step = pb.add_region("step");
            for rank in 0..ranks {
                let work = 0.5 + ((seed >> (rank % 8)) & 0xFF) as f64 / 512.0;
                pb.rank(rank)
                    .enter(step)
                    .isend((rank + 1) % ranks, 256, 1)
                    .irecv((rank + ranks - 1) % ranks, 2)
                    .compute(work)
                    .wait(1)
                    .wait(2)
                    .barrier()
                    .leave(step);
            }
            pb.build()
        }
        let sim = Simulator::new(MachineConfig::new(4));
        let plan = crate::FaultPlan::new(13)
            .with_slowdown(1, 0.0, 0.4, 3.0)
            .with_message_loss(0.4, 3, 1e-3, 2.0);
        let reference =
            sim.run_replications_with_faults(8, 42, 1, &plan, |_, seed| ring_program(4, seed));
        let reports: Vec<_> = reference
            .iter()
            .map(|r| r.as_ref().unwrap().output.faults.clone())
            .collect();
        // Loss fired somewhere in the sweep and varies by replication seed.
        assert!(reports.iter().any(|f| f.retried_messages > 0));
        for jobs in [2, 8] {
            let sweep = sim
                .run_replications_with_faults(8, 42, jobs, &plan, |_, seed| ring_program(4, seed));
            assert_eq!(makespans(&sweep), makespans(&reference), "jobs={jobs}");
            for (r, want) in sweep.iter().zip(&reports) {
                assert_eq!(&r.as_ref().unwrap().output.faults, want, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn different_roots_give_different_sweeps() {
        let sim = Simulator::new(MachineConfig::new(4));
        let a = sim.run_replications(4, 1, 2, |_, seed| seeded_program(4, seed));
        let b = sim.run_replications(4, 2, 2, |_, seed| seeded_program(4, seed));
        assert_ne!(makespans(&a), makespans(&b));
    }
}
