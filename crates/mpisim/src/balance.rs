//! In-loop dynamic load balancing.
//!
//! The paper diagnoses load imbalance *post mortem*; this module lets
//! the simulator act on it *mid-run*. A [`BalancePlan`] attaches one
//! rebalancing policy to a simulation: at every `Op::Compute` boundary
//! the policy may migrate a fraction of the op's nominal work to less
//! loaded ranks, modeled in the timing domain — the donor's compute op
//! finishes when both its local remainder and the offloaded chunks
//! (including deterministic migration transfer costs) are done.
//!
//! Three concrete [`BalancePolicy`] implementations are provided:
//!
//! * [`WorkStealing`] — threshold-triggered: a rank whose projected
//!   cumulative load exceeds `threshold ×` the mean sheds its excess to
//!   the least-loaded alive rank;
//! * [`Diffusion`] — nearest-neighbor flow over the machine's network
//!   topology (the link-override graph when one is configured, a ring
//!   otherwise), after Demirel & Sbalzarini's diffusion scheme;
//! * [`Anticipatory`] — driven by the windowed least-squares trend
//!   detector ([`limba_stats::describe::least_squares_slope`], the same
//!   engine behind the imbalance-evolution analysis): a rank whose load
//!   is *trending* away from the pack sheds work before the imbalance
//!   materializes, after Boulmier et al.'s informed criteria.
//!
//! # Determinism rules
//!
//! The hook contract mirrors [`crate::faults::FaultState`] exactly:
//!
//! * decisions are pure functions of the plan and the shared per-run
//!   load accounts — no RNG stream; tie-breaks hash logical coordinates
//!   (seed, donor, donor's op count) through SplitMix64;
//! * both engines execute the same compute ops in the same global
//!   order, so the shared [`BalanceState`] observes identical decision
//!   sequences and the two engines stay bit-identical;
//! * each simulation is single-threaded, so replicated sweeps are
//!   `--jobs`-invariant by construction;
//! * every proposed migration passes a *profitability guard* — it is
//!   applied only if it strictly lowers the deciding op's completion
//!   time given current state — so enabling a policy never slows the
//!   op it fires on (declined proposals are counted, not applied);
//! * a policy that never fires is bit-identical to no policy at all:
//!   the no-migration arithmetic is the exact unbalanced expression.
//!
//! Migrations compose with fault plans: a crashed rank is never chosen
//! as a migration target, and work a rank donated before crashing was
//! executed exactly once on the target — accounted in the
//! [`BalanceReport`], never resurrected.

use crate::config::MachineConfig;
use crate::error::SimError;
use crate::faults::{mix, FaultState};

/// Recent-sample capacity of the per-rank trend windows.
const WINDOW_CAP: usize = 16;

/// Default cap on the fraction of one compute op a policy may migrate.
pub const DEFAULT_MAX_FRACTION: f64 = 0.5;

/// Default migration payload model: bytes shipped per nominal second of
/// migrated work (state that must travel with the work).
pub const DEFAULT_PAYLOAD_BYTES_PER_SECOND: f64 = 1e6;

/// One proposed migration: `seconds` of nominal work to `target`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Move {
    /// Receiving rank.
    pub target: usize,
    /// Nominal (pre-speed) seconds of work to move.
    pub seconds: f64,
}

/// A rebalancing policy: decides, at each compute-op boundary, which
/// chunks of the op's work should migrate where. The executor performs
/// the migrations (timing, accounting, profitability guard); the policy
/// only proposes.
///
/// Implementations must be pure functions of the [`LoadView`] — no
/// interior mutability, no ambient randomness — or the two engines
/// diverge and every differential test fails.
pub trait BalancePolicy {
    /// Short policy name used in reports, signatures, and TOML.
    fn name(&self) -> &'static str;

    /// Proposes migrations for the compute op of `nominal` seconds that
    /// `donor` is about to execute. Targets must be alive and distinct
    /// from the donor; proposals exceeding the op's work are clamped by
    /// the executor.
    fn decide(&self, donor: usize, nominal: f64, view: &LoadView<'_>) -> Vec<Move>;
}

/// Threshold-triggered work stealing: when the donor's projected
/// cumulative load exceeds `threshold ×` the alive-mean, the excess
/// (capped at `max_fraction` of the op) moves to the least-loaded alive
/// rank, ties broken by a SplitMix64 hash of the decision coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkStealing {
    /// Relative trigger: a projected load above `threshold × mean`
    /// sheds work. Must be ≥ 1.
    pub threshold: f64,
    /// Cap on the migrated fraction of one compute op, in `(0, 1]`.
    pub max_fraction: f64,
}

impl BalancePolicy for WorkStealing {
    fn name(&self) -> &'static str {
        "stealing"
    }

    fn decide(&self, donor: usize, nominal: f64, view: &LoadView<'_>) -> Vec<Move> {
        if view.min_alive_samples() == 0 {
            return Vec::new(); // warmup: every rank establishes a baseline first
        }
        let n_alive = view.alive_count();
        if n_alive < 2 {
            return Vec::new();
        }
        let projected = view.load(donor) + nominal;
        let mean = view.mean_alive_load() + nominal / n_alive as f64;
        if projected <= self.threshold * mean {
            return Vec::new();
        }
        let seconds = (projected - mean).min(nominal * self.max_fraction);
        if seconds <= 0.0 {
            return Vec::new();
        }
        match view.least_loaded_alive(donor) {
            Some(target) => vec![Move { target, seconds }],
            None => Vec::new(),
        }
    }
}

/// Diffusion balancing over the machine's network topology: the donor
/// pushes `rate`-scaled flows toward every less-loaded alive neighbor,
/// proportional to the load difference — Demirel & Sbalzarini's scheme
/// restricted to one exchange per compute op.
#[derive(Debug, Clone, PartialEq)]
pub struct Diffusion {
    /// Diffusion coefficient in `(0, 1]`: the fraction of each pairwise
    /// load difference that flows per decision.
    pub rate: f64,
    /// Cap on the migrated fraction of one compute op, in `(0, 1]`.
    pub max_fraction: f64,
}

impl BalancePolicy for Diffusion {
    fn name(&self) -> &'static str {
        "diffusion"
    }

    fn decide(&self, donor: usize, nominal: f64, view: &LoadView<'_>) -> Vec<Move> {
        if view.min_alive_samples() == 0 {
            return Vec::new();
        }
        let neighbors: Vec<usize> = view
            .neighbors(donor)
            .iter()
            .copied()
            .filter(|&t| view.alive(t))
            .collect();
        if neighbors.is_empty() {
            return Vec::new();
        }
        let projected = view.load(donor) + nominal;
        let scale = self.rate / (neighbors.len() + 1) as f64;
        let mut moves: Vec<Move> = neighbors
            .into_iter()
            .filter(|&t| view.load(t) < projected)
            .map(|t| Move {
                target: t,
                seconds: scale * (projected - view.load(t)),
            })
            .filter(|m| m.seconds > nominal * 1e-12)
            .collect();
        let total: f64 = moves.iter().map(|m| m.seconds).sum();
        let cap = nominal * self.max_fraction;
        if total > cap {
            let shrink = cap / total;
            for m in &mut moves {
                m.seconds *= shrink;
            }
        }
        moves
    }
}

/// Anticipatory rebalancing: watches each rank's load *trend* through
/// the windowed least-squares slope detector and sheds the predicted
/// excess of a rank pulling away from the pack before the imbalance
/// materializes — Boulmier et al.'s informed/anticipatory criterion.
#[derive(Debug, Clone, PartialEq)]
pub struct Anticipatory {
    /// Trend window length in compute-op samples, ≥ 2 (capped at 16).
    pub window: usize,
    /// Minimum predicted drift, relative to the mean per-op cost, that
    /// triggers a migration. ≥ 0; larger is more conservative.
    pub sensitivity: f64,
    /// Cap on the migrated fraction of one compute op, in `(0, 1]`.
    pub max_fraction: f64,
}

impl BalancePolicy for Anticipatory {
    fn name(&self) -> &'static str {
        "anticipatory"
    }

    fn decide(&self, donor: usize, nominal: f64, view: &LoadView<'_>) -> Vec<Move> {
        if view.window_len(donor) < self.window.min(WINDOW_CAP) {
            return Vec::new();
        }
        let slope = view.trend(donor, self.window);
        let predicted_drift = slope * self.window as f64;
        let mean_op = view.mean_op_cost();
        if predicted_drift <= self.sensitivity * mean_op {
            return Vec::new();
        }
        let seconds = predicted_drift.min(nominal * self.max_fraction);
        if seconds <= 0.0 {
            return Vec::new();
        }
        match view.least_loaded_alive(donor) {
            Some(target) => vec![Move { target, seconds }],
            None => Vec::new(),
        }
    }
}

/// The policy attached to a plan.
#[derive(Debug, Clone, PartialEq)]
enum PolicyKind {
    Stealing(WorkStealing),
    Diffusion(Diffusion),
    Anticipatory(Anticipatory),
}

/// A deterministic rebalancing plan: one [`BalancePolicy`] plus the
/// migration cost model, serializable to the same TOML subset as
/// [`crate::FaultPlan`]. Built via the policy constructors and `with_*`
/// modifiers; attach it to a run with
/// [`Simulator::run_with_balance`](crate::Simulator::run_with_balance)
/// or the `run_configured` family.
#[derive(Debug, Clone, PartialEq)]
pub struct BalancePlan {
    seed: u64,
    /// Bytes shipped per nominal second of migrated work.
    payload_bytes_per_second: f64,
    kind: PolicyKind,
}

impl BalancePlan {
    /// A work-stealing plan with trigger `threshold` (≥ 1).
    pub fn stealing(seed: u64, threshold: f64) -> BalancePlan {
        BalancePlan {
            seed,
            payload_bytes_per_second: DEFAULT_PAYLOAD_BYTES_PER_SECOND,
            kind: PolicyKind::Stealing(WorkStealing {
                threshold,
                max_fraction: DEFAULT_MAX_FRACTION,
            }),
        }
    }

    /// A diffusion plan with coefficient `rate` in `(0, 1]`.
    pub fn diffusion(seed: u64, rate: f64) -> BalancePlan {
        BalancePlan {
            seed,
            payload_bytes_per_second: DEFAULT_PAYLOAD_BYTES_PER_SECOND,
            kind: PolicyKind::Diffusion(Diffusion {
                rate,
                max_fraction: DEFAULT_MAX_FRACTION,
            }),
        }
    }

    /// An anticipatory plan watching `window` samples with trigger
    /// `sensitivity`.
    pub fn anticipatory(seed: u64, window: usize, sensitivity: f64) -> BalancePlan {
        BalancePlan {
            seed,
            payload_bytes_per_second: DEFAULT_PAYLOAD_BYTES_PER_SECOND,
            kind: PolicyKind::Anticipatory(Anticipatory {
                window,
                sensitivity,
                max_fraction: DEFAULT_MAX_FRACTION,
            }),
        }
    }

    /// Replaces the tie-break seed (see `seed` in the TOML format).
    /// Replicated sweeps derive a per-replication seed exactly as fault
    /// plans do.
    pub fn with_seed(mut self, seed: u64) -> BalancePlan {
        self.seed = seed;
        self
    }

    /// Caps the fraction of one compute op a single decision may move.
    pub fn with_max_fraction(mut self, max_fraction: f64) -> BalancePlan {
        match &mut self.kind {
            PolicyKind::Stealing(p) => p.max_fraction = max_fraction,
            PolicyKind::Diffusion(p) => p.max_fraction = max_fraction,
            PolicyKind::Anticipatory(p) => p.max_fraction = max_fraction,
        }
        self
    }

    /// Sets the migration payload model: bytes shipped per nominal
    /// second of migrated work.
    pub fn with_payload_bytes_per_second(mut self, bytes: f64) -> BalancePlan {
        self.payload_bytes_per_second = bytes;
        self
    }

    /// The tie-break seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The attached policy's short name: `stealing`, `diffusion`, or
    /// `anticipatory`.
    pub fn policy_name(&self) -> &'static str {
        self.policy().name()
    }

    /// A compact parameter signature, e.g. `stealing:1.15:0.5` — stable
    /// input for advisor intervention signatures and checkpoints.
    pub fn signature(&self) -> String {
        match &self.kind {
            PolicyKind::Stealing(p) => format!("stealing:{}:{}", p.threshold, p.max_fraction),
            PolicyKind::Diffusion(p) => format!("diffusion:{}:{}", p.rate, p.max_fraction),
            PolicyKind::Anticipatory(p) => format!(
                "anticipatory:{}:{}:{}",
                p.window, p.sensitivity, p.max_fraction
            ),
        }
    }

    /// A human-readable one-liner, e.g. `stealing (threshold 1.15)`.
    pub fn summary(&self) -> String {
        match &self.kind {
            PolicyKind::Stealing(p) => format!("stealing (threshold {})", p.threshold),
            PolicyKind::Diffusion(p) => format!("diffusion (rate {})", p.rate),
            PolicyKind::Anticipatory(p) => format!(
                "anticipatory (window {}, sensitivity {})",
                p.window, p.sensitivity
            ),
        }
    }

    fn policy(&self) -> &dyn BalancePolicy {
        match &self.kind {
            PolicyKind::Stealing(p) => p,
            PolicyKind::Diffusion(p) => p,
            PolicyKind::Anticipatory(p) => p,
        }
    }

    /// The policy's migration cap: the largest fraction of one compute
    /// op that may migrate away. At least `1 − max_fraction` of every
    /// op always executes locally — the sound floor prediction models
    /// build on.
    pub fn max_fraction(&self) -> f64 {
        match &self.kind {
            PolicyKind::Stealing(p) => p.max_fraction,
            PolicyKind::Diffusion(p) => p.max_fraction,
            PolicyKind::Anticipatory(p) => p.max_fraction,
        }
    }

    /// Checks every parameter range. Called by the simulator before a
    /// run; call it yourself after [`BalancePlan::parse_toml`] on
    /// untrusted input.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidBalancePlan`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |detail: String| Err(SimError::InvalidBalancePlan { detail });
        let fraction_ok = |f: f64| f.is_finite() && f > 0.0 && f <= 1.0;
        if !self.payload_bytes_per_second.is_finite() || self.payload_bytes_per_second < 0.0 {
            return bad(format!(
                "payload_bytes_per_second must be finite and >= 0, got {}",
                self.payload_bytes_per_second
            ));
        }
        if !fraction_ok(self.max_fraction()) {
            return bad(format!(
                "max_fraction must be in (0, 1], got {}",
                self.max_fraction()
            ));
        }
        match &self.kind {
            PolicyKind::Stealing(p) => {
                if !p.threshold.is_finite() || p.threshold < 1.0 {
                    return bad(format!(
                        "stealing threshold must be finite and >= 1, got {}",
                        p.threshold
                    ));
                }
            }
            PolicyKind::Diffusion(p) => {
                if !fraction_ok(p.rate) {
                    return bad(format!("diffusion rate must be in (0, 1], got {}", p.rate));
                }
            }
            PolicyKind::Anticipatory(p) => {
                if p.window < 2 {
                    return bad(format!(
                        "anticipatory window must be >= 2 samples, got {}",
                        p.window
                    ));
                }
                if !p.sensitivity.is_finite() || p.sensitivity < 0.0 {
                    return bad(format!(
                        "anticipatory sensitivity must be finite and >= 0, got {}",
                        p.sensitivity
                    ));
                }
            }
        }
        Ok(())
    }

    /// Serializes the plan to the TOML subset [`BalancePlan::parse_toml`]
    /// reads. Round-trips exactly: floats print in shortest-round-trip
    /// form.
    pub fn to_toml(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "policy = \"{}\"", self.policy_name());
        let _ = writeln!(out, "seed = {}", self.seed);
        let _ = writeln!(
            out,
            "payload_bytes_per_second = {}",
            self.payload_bytes_per_second
        );
        let _ = writeln!(out, "max_fraction = {}", self.max_fraction());
        match &self.kind {
            PolicyKind::Stealing(p) => {
                let _ = writeln!(out, "threshold = {}", p.threshold);
            }
            PolicyKind::Diffusion(p) => {
                let _ = writeln!(out, "rate = {}", p.rate);
            }
            PolicyKind::Anticipatory(p) => {
                let _ = writeln!(out, "window = {}", p.window);
                let _ = writeln!(out, "sensitivity = {}", p.sensitivity);
            }
        }
        out
    }

    /// Parses the flat `key = value` TOML subset: a required
    /// `policy = "<name>"` line plus numeric parameters, `#` comments
    /// and blank lines ignored. Unknown keys are rejected (typos should
    /// fail loudly, not silently no-op). Call
    /// [`BalancePlan::validate`] on the result.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidBalancePlan`] naming the offending
    /// line for malformed input.
    pub fn parse_toml(text: &str) -> Result<BalancePlan, SimError> {
        let bad = |detail: String| SimError::InvalidBalancePlan { detail };
        let mut policy: Option<String> = None;
        let mut fields: Vec<(String, f64)> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                Some(cut) => &raw[..cut],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| bad(format!("line {}: expected `key = value`", idx + 1)))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "policy" {
                let name = value
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| {
                        bad(format!("line {}: policy must be a quoted string", idx + 1))
                    })?;
                policy = Some(name.to_string());
            } else {
                let number: f64 = value
                    .parse()
                    .map_err(|_| bad(format!("line {}: `{value}` is not a number", idx + 1)))?;
                fields.push((key.to_string(), number));
            }
        }
        let policy = policy.ok_or_else(|| bad("missing `policy = \"<name>\"`".to_string()))?;
        let mut take = |name: &str| -> Option<f64> {
            let at = fields.iter().position(|(k, _)| k == name)?;
            Some(fields.remove(at).1)
        };
        let seed = take("seed").unwrap_or(0.0) as u64;
        let payload = take("payload_bytes_per_second").unwrap_or(DEFAULT_PAYLOAD_BYTES_PER_SECOND);
        let max_fraction = take("max_fraction").unwrap_or(DEFAULT_MAX_FRACTION);
        let mut plan = match policy.as_str() {
            "stealing" => BalancePlan::stealing(seed, take("threshold").unwrap_or(1.15)),
            "diffusion" => BalancePlan::diffusion(seed, take("rate").unwrap_or(0.5)),
            "anticipatory" => {
                let window = take("window").unwrap_or(8.0) as usize;
                BalancePlan::anticipatory(seed, window, take("sensitivity").unwrap_or(0.25))
            }
            other => return Err(bad(format!("unknown policy `{other}`"))),
        };
        plan = plan
            .with_payload_bytes_per_second(payload)
            .with_max_fraction(max_fraction);
        if let Some((key, _)) = fields.first() {
            return Err(bad(format!("unknown key `{key}` for policy `{policy}`")));
        }
        Ok(plan)
    }

    /// The analytic load-smoothing this plan is predicted to achieve,
    /// used by the advisor's prediction model: per-rank effective loads
    /// in, smoothed loads out (total conserved). The real run decides
    /// migration by migration; this is the closed-form approximation of
    /// the steady state each policy drives toward.
    pub fn predicted_loads(&self, loads: &[f64], config: &MachineConfig) -> Vec<f64> {
        let n = loads.len();
        if n < 2 {
            return loads.to_vec();
        }
        let mean = loads.iter().sum::<f64>() / n as f64;
        match &self.kind {
            // Stealing trims every rank to threshold × mean and hands
            // the excess to below-cap ranks proportional to headroom.
            PolicyKind::Stealing(p) => {
                let cap = p.threshold * mean;
                let excess: f64 = loads.iter().map(|&l| (l - cap).max(0.0)).sum();
                let headroom: f64 = loads.iter().map(|&l| (cap - l).max(0.0)).sum();
                loads
                    .iter()
                    .map(|&l| {
                        if l > cap {
                            cap
                        } else if headroom > 0.0 {
                            l + excess * (cap - l) / headroom
                        } else {
                            l
                        }
                    })
                    .collect()
            }
            // One symmetric diffusion sweep over the topology.
            PolicyKind::Diffusion(p) => {
                let neighbors = topology_neighbors(config, n);
                let mut out = loads.to_vec();
                for (r, nbrs) in neighbors.iter().enumerate() {
                    for &t in nbrs {
                        if t <= r {
                            continue; // each undirected edge once
                        }
                        let deg = neighbors[r].len().max(neighbors[t].len());
                        let flow = p.rate * (loads[r] - loads[t]) / (deg + 1) as f64;
                        out[r] -= flow;
                        out[t] += flow;
                    }
                }
                out
            }
            // Anticipation converges close to the mean; the residual
            // models trigger latency and migration overhead.
            PolicyKind::Anticipatory(_) => {
                const EFFICIENCY: f64 = 0.85;
                loads.iter().map(|&l| l + EFFICIENCY * (mean - l)).collect()
            }
        }
    }
}

/// The neighbor lists the diffusion policy exchanges over: the
/// symmetric closure of the machine's link overrides when any exist, a
/// ring otherwise.
pub(crate) fn topology_neighbors(config: &MachineConfig, n: usize) -> Vec<Vec<usize>> {
    let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); n];
    if config.has_link_overrides() {
        for (src, dst) in config.link_override_pairs() {
            if src < n && dst < n && src != dst {
                if !neighbors[src].contains(&dst) {
                    neighbors[src].push(dst);
                }
                if !neighbors[dst].contains(&src) {
                    neighbors[dst].push(src);
                }
            }
        }
        for list in &mut neighbors {
            list.sort_unstable();
        }
    } else if n > 1 {
        for (r, list) in neighbors.iter_mut().enumerate() {
            let left = (r + n - 1) % n;
            let right = (r + 1) % n;
            list.push(left.min(right));
            if left != right {
                list.push(left.max(right));
            }
        }
    }
    neighbors
}

/// What the rebalancing did to one run; attached to every
/// [`SimOutput`](crate::SimOutput) and empty (`policy: None`) for runs
/// without a balance plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BalanceReport {
    /// Name of the active policy, `None` when balancing was off.
    pub policy: Option<String>,
    /// Migrations applied (proposals that passed the guard).
    pub migrations: u64,
    /// Proposals declined by the profitability guard.
    pub declined: u64,
    /// Total nominal seconds migrated.
    pub moved_seconds: f64,
    /// Per-rank nominal seconds each rank executed from its *own*
    /// program. `local + donated` per rank equals the compute the rank's
    /// program actually reached — work is conserved across migrations.
    pub local_seconds: Vec<f64>,
    /// Per-rank nominal seconds given away.
    pub donated_seconds: Vec<f64>,
    /// Per-rank nominal seconds taken on for others.
    pub received_seconds: Vec<f64>,
}

impl BalanceReport {
    /// True when no balance plan was active.
    pub fn is_inactive(&self) -> bool {
        self.policy.is_none()
    }
}

/// The policy's read-only view of the shared load accounts at one
/// decision point.
pub struct LoadView<'a> {
    donor: usize,
    seed: u64,
    load: &'a [f64],
    samples: &'a [u64],
    windows: &'a [Vec<f64>],
    neighbors: &'a [Vec<usize>],
    alive: &'a [bool],
    total_ops: u64,
}

impl LoadView<'_> {
    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.load.len()
    }

    /// Cumulative nominal seconds `rank` has executed so far (its own
    /// work plus received migrations).
    pub fn load(&self, rank: usize) -> f64 {
        self.load[rank]
    }

    /// Compute ops `rank` has executed so far.
    pub fn samples(&self, rank: usize) -> u64 {
        self.samples[rank]
    }

    /// Whether `rank` has not crashed (always true without faults).
    pub fn alive(&self, rank: usize) -> bool {
        self.alive[rank]
    }

    /// Alive ranks.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Smallest sample count over alive ranks (0 while any alive rank
    /// has yet to execute a compute op — the policies' warmup gate).
    pub fn min_alive_samples(&self) -> u64 {
        (0..self.n())
            .filter(|&r| self.alive[r])
            .map(|r| self.samples[r])
            .min()
            .unwrap_or(0)
    }

    /// Mean cumulative load over alive ranks.
    pub fn mean_alive_load(&self) -> f64 {
        let alive = self.alive_count();
        if alive == 0 {
            return 0.0;
        }
        (0..self.n())
            .filter(|&r| self.alive[r])
            .map(|r| self.load[r])
            .sum::<f64>()
            / alive as f64
    }

    /// Mean nominal cost per compute op over the whole run so far.
    pub fn mean_op_cost(&self) -> f64 {
        if self.total_ops == 0 {
            return 0.0;
        }
        self.load.iter().sum::<f64>() / self.total_ops as f64
    }

    /// Topology neighbors of `rank` (see the diffusion policy docs).
    pub fn neighbors(&self, rank: usize) -> &[usize] {
        &self.neighbors[rank]
    }

    /// Samples currently in `rank`'s trend window.
    pub fn window_len(&self, rank: usize) -> usize {
        self.windows[rank].len()
    }

    /// Least-squares slope of `rank`'s relative load (load minus the
    /// alive-mean at sample time) over its last `window` samples — the
    /// windowed trend detector. Positive: the rank is pulling away from
    /// the pack.
    pub fn trend(&self, rank: usize, window: usize) -> f64 {
        let w = &self.windows[rank];
        let take = window.min(w.len());
        let points: Vec<(f64, f64)> = w[w.len() - take..]
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64, v))
            .collect();
        limba_stats::describe::least_squares_slope(&points)
    }

    /// The least-loaded alive rank other than `donor`, ties broken by a
    /// SplitMix64 hash of `(seed, donor, samples(donor))` — a pure
    /// decision, not an RNG stream.
    pub fn least_loaded_alive(&self, donor: usize) -> Option<usize> {
        let min = (0..self.n())
            .filter(|&r| r != donor && self.alive[r])
            .map(|r| self.load[r])
            .min_by(f64::total_cmp)?;
        let ties: Vec<usize> = (0..self.n())
            .filter(|&r| r != donor && self.alive[r] && self.load[r] == min)
            .collect();
        let pick = self.unit(0) * ties.len() as f64;
        Some(ties[(pick as usize).min(ties.len() - 1)])
    }

    /// Uniform `[0, 1)` tie-break value `k` for this decision point: a
    /// pure SplitMix64 hash of `(seed, donor, samples(donor), k)`.
    pub fn unit(&self, k: u64) -> f64 {
        let mut h = mix(self.seed ^ 0x517c_c1b7_2722_0a95);
        h = mix(h ^ (self.donor as u64).wrapping_mul(0xff51_afd7_ed55_8ccd));
        h = mix(h ^ self.samples[self.donor]);
        h = mix(h ^ k);
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// What the executor exposes to the balancing layer: machine speeds and
/// link costs, plus the fault-adjusted compute integration and
/// liveness. Both engines construct an identical view, which is what
/// keeps migration timing bit-identical between them.
pub(crate) struct HostView<'a> {
    pub(crate) config: &'a MachineConfig,
    pub(crate) faults: Option<&'a FaultState>,
}

impl HostView<'_> {
    fn speed(&self, rank: usize) -> f64 {
        self.config.cpu_speed(rank)
    }

    /// Wall-clock end of `duration` seconds of work on `rank` starting
    /// at `begin` — the exact expression the engines use, fault
    /// slowdown windows included.
    fn compute_end(&self, rank: usize, begin: f64, duration: f64) -> f64 {
        match self.faults {
            None => begin + duration,
            Some(fs) => fs.compute_end(rank, begin, duration),
        }
    }

    fn alive(&self, rank: usize) -> bool {
        !self.faults.is_some_and(|fs| fs.has_crashed(rank))
    }
}

/// Per-run mutable balancing state shared (in structure, not instance)
/// by both engines — the balancing counterpart of
/// [`FaultState`](crate::faults::FaultState). Created once per run from
/// a validated plan; all decisions are pure functions of this state,
/// which both engines mutate in the same global compute-op order.
#[derive(Debug)]
pub(crate) struct BalanceState {
    plan: BalancePlan,
    /// Cumulative nominal seconds executed per rank (own + received).
    load: Vec<f64>,
    /// Compute ops executed per rank.
    samples: Vec<u64>,
    /// Per-rank trend window: relative load (load − alive mean) after
    /// each of the rank's recent compute ops, oldest first.
    windows: Vec<Vec<f64>>,
    /// When each rank's auxiliary server (spare cycles executing
    /// migrated chunks) is next free.
    aux_free: Vec<f64>,
    /// Scratch liveness mask rebuilt per decision.
    alive: Vec<bool>,
    neighbors: Vec<Vec<usize>>,
    total_ops: u64,
    report: BalanceReport,
}

impl BalanceState {
    pub(crate) fn new(plan: &BalancePlan, n: usize, config: &MachineConfig) -> BalanceState {
        BalanceState {
            plan: plan.clone(),
            load: vec![0.0; n],
            samples: vec![0; n],
            windows: vec![Vec::new(); n],
            aux_free: vec![0.0; n],
            alive: vec![true; n],
            neighbors: topology_neighbors(config, n),
            total_ops: 0,
            report: BalanceReport {
                policy: Some(plan.policy_name().to_string()),
                local_seconds: vec![0.0; n],
                donated_seconds: vec![0.0; n],
                received_seconds: vec![0.0; n],
                ..BalanceReport::default()
            },
        }
    }

    /// Executes the compute op of `nominal` seconds that `rank` starts
    /// at `begin`: asks the policy for migrations, applies every
    /// proposal that passes the profitability guard, updates the load
    /// accounts, and returns the op's completion time.
    ///
    /// With no (accepted) proposals this returns the exact unbalanced
    /// expression `host.compute_end(rank, begin, nominal / speed)`.
    pub(crate) fn compute(
        &mut self,
        rank: usize,
        begin: f64,
        nominal: f64,
        host: &HostView<'_>,
    ) -> f64 {
        let n = self.load.len();
        for (r, slot) in self.alive.iter_mut().enumerate() {
            *slot = host.alive(r);
        }
        let proposals = if nominal > 0.0 && n > 1 {
            let view = LoadView {
                donor: rank,
                seed: self.plan.seed,
                load: &self.load,
                samples: &self.samples,
                windows: &self.windows,
                neighbors: &self.neighbors,
                alive: &self.alive,
                total_ops: self.total_ops,
            };
            self.plan.policy().decide(rank, nominal, &view)
        } else {
            Vec::new()
        };

        let o = host.config.overhead();
        let mut local = nominal;
        // Completion of already-accepted offloaded chunks (result
        // return included); the op ends at the max of this and the
        // local remainder.
        let mut results_due = f64::NEG_INFINITY;
        for m in proposals {
            let target = m.target;
            if target >= n || target == rank || !self.alive[target] {
                continue;
            }
            let seconds = m.seconds.min(local);
            if !seconds.is_finite() || seconds <= 0.0 {
                continue;
            }
            let current_end = host
                .compute_end(rank, begin, local / host.speed(rank))
                .max(results_due);
            let transfer = self.plan.payload_bytes_per_second * seconds
                / host.config.link_bandwidth(rank, target);
            let arrive = begin + o + host.config.link_latency(rank, target) + transfer;
            let start = arrive.max(self.aux_free[target]);
            let chunk_end = host.compute_end(target, start, seconds / host.speed(target));
            let returned = chunk_end + host.config.link_latency(target, rank);
            let candidate_end = host
                .compute_end(rank, begin, (local - seconds) / host.speed(rank))
                .max(results_due)
                .max(returned);
            if candidate_end < current_end {
                local -= seconds;
                self.aux_free[target] = chunk_end;
                results_due = results_due.max(returned);
                self.load[target] += seconds;
                self.report.migrations += 1;
                self.report.moved_seconds += seconds;
                self.report.donated_seconds[rank] += seconds;
                self.report.received_seconds[target] += seconds;
            } else {
                self.report.declined += 1;
            }
        }

        let end = host
            .compute_end(rank, begin, local / host.speed(rank))
            .max(results_due);

        self.load[rank] += local;
        self.report.local_seconds[rank] += local;
        self.samples[rank] += 1;
        self.total_ops += 1;
        // Record the rank's relative position for the trend detector.
        let alive_count = self.alive.iter().filter(|&&a| a).count();
        let mean = if alive_count == 0 {
            0.0
        } else {
            (0..n)
                .filter(|&r| self.alive[r])
                .map(|r| self.load[r])
                .sum::<f64>()
                / alive_count as f64
        };
        let window = &mut self.windows[rank];
        if window.len() == WINDOW_CAP {
            window.remove(0);
        }
        window.push(self.load[rank] - mean);

        end
    }

    /// The accumulated report.
    pub(crate) fn report(&self) -> BalanceReport {
        self.report.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MachineConfig, ProgramBuilder, Simulator};

    fn skewed_program(ranks: usize, steps: usize) -> crate::Program {
        let mut pb = ProgramBuilder::new(ranks);
        let r = pb.add_region("loop");
        for _ in 0..steps {
            pb.spmd(|rank, mut ops| {
                ops.enter(r)
                    .compute(0.01 * (1.0 + rank as f64))
                    .barrier()
                    .leave(r);
            });
        }
        pb.build().unwrap()
    }

    fn plans() -> Vec<BalancePlan> {
        vec![
            BalancePlan::stealing(7, 1.1),
            BalancePlan::diffusion(7, 0.5),
            BalancePlan::anticipatory(7, 4, 0.25),
        ]
    }

    #[test]
    fn toml_round_trips_exactly() {
        for plan in plans() {
            let plan = plan
                .with_max_fraction(0.4)
                .with_payload_bytes_per_second(2e6);
            let reparsed = BalancePlan::parse_toml(&plan.to_toml()).unwrap();
            assert_eq!(plan, reparsed, "to_toml drifted:\n{}", plan.to_toml());
            reparsed.validate().unwrap();
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for (text, needle) in [
            ("", "missing `policy"),
            ("policy = stealing\n", "quoted"),
            ("policy = \"hurricane\"\n", "unknown policy"),
            ("policy = \"stealing\"\nthreshold = abc\n", "not a number"),
            ("policy = \"stealing\"\nrate = 0.5\n", "unknown key"),
            ("just words\n", "key = value"),
        ] {
            let err = BalancePlan::parse_toml(text).unwrap_err().to_string();
            assert!(err.contains(needle), "{text:?} -> {err}");
        }
    }

    #[test]
    fn validate_rejects_out_of_range_parameters() {
        for plan in [
            BalancePlan::stealing(0, 0.5),
            BalancePlan::stealing(0, f64::NAN),
            BalancePlan::diffusion(0, 0.0),
            BalancePlan::diffusion(0, 1.5),
            BalancePlan::anticipatory(0, 1, 0.25),
            BalancePlan::anticipatory(0, 8, -1.0),
            BalancePlan::stealing(0, 1.2).with_max_fraction(0.0),
            BalancePlan::stealing(0, 1.2).with_payload_bytes_per_second(f64::INFINITY),
        ] {
            assert!(plan.validate().is_err(), "{plan:?} should be invalid");
        }
        for plan in plans() {
            plan.validate().unwrap();
        }
    }

    #[test]
    fn topology_defaults_to_a_ring_and_honors_overrides() {
        let uniform = MachineConfig::new(4);
        assert_eq!(
            topology_neighbors(&uniform, 4),
            vec![vec![1, 3], vec![0, 2], vec![1, 3], vec![0, 2]]
        );
        // Two ranks: one neighbor each, not a duplicated pair.
        assert_eq!(topology_neighbors(&uniform, 2), vec![vec![1], vec![0]]);
        let star = MachineConfig::new(4)
            .with_link(0, 1, 1e-5, 1e8)
            .with_link(0, 2, 1e-5, 1e8)
            .with_link(3, 0, 1e-5, 1e8);
        assert_eq!(
            topology_neighbors(&star, 4),
            vec![vec![1, 2, 3], vec![0], vec![0], vec![0]]
        );
    }

    #[test]
    fn every_policy_improves_a_skewed_run() {
        let ranks = 8;
        let program = skewed_program(ranks, 12);
        let sim = Simulator::new(MachineConfig::new(ranks));
        let base = sim.run(&program).unwrap();
        assert!(base.balance.is_inactive());
        for plan in plans() {
            let out = sim.run_with_balance(&program, &plan).unwrap();
            assert!(
                out.stats.makespan < base.stats.makespan,
                "{} did not improve: {} vs {}",
                plan.policy_name(),
                out.stats.makespan,
                base.stats.makespan
            );
            assert!(out.balance.migrations > 0, "{}", plan.policy_name());
            assert!(out.balance.moved_seconds > 0.0);
            assert_eq!(out.balance.policy.as_deref(), Some(plan.policy_name()));
        }
    }

    #[test]
    fn migration_accounting_conserves_work() {
        let ranks = 6;
        let program = skewed_program(ranks, 10);
        let sim = Simulator::new(MachineConfig::new(ranks));
        for plan in plans() {
            let out = sim.run_with_balance(&program, &plan).unwrap();
            let b = &out.balance;
            let donated: f64 = b.donated_seconds.iter().sum();
            let received: f64 = b.received_seconds.iter().sum();
            assert!((donated - b.moved_seconds).abs() < 1e-9);
            assert!((received - b.moved_seconds).abs() < 1e-9);
            // Per rank: local + donated = the rank's own program compute.
            for rank in 0..ranks {
                let spec: f64 = program
                    .ops(rank)
                    .iter()
                    .filter_map(|op| match op {
                        crate::Op::Compute { seconds } => Some(*seconds),
                        _ => None,
                    })
                    .sum();
                let executed = b.local_seconds[rank] + b.donated_seconds[rank];
                assert!(
                    (executed - spec).abs() < 1e-9,
                    "rank {rank}: {executed} vs {spec}"
                );
            }
        }
    }

    #[test]
    fn never_triggering_policy_is_bit_identical_to_no_policy() {
        let program = skewed_program(4, 6);
        let sim = Simulator::new(MachineConfig::new(4));
        let base = sim.run(&program).unwrap();
        // A threshold no skew of this program can reach.
        let inert = BalancePlan::stealing(3, 100.0);
        let out = sim.run_with_balance(&program, &inert).unwrap();
        assert_eq!(base.trace, out.trace);
        assert_eq!(base.stats, out.stats);
        assert_eq!(out.balance.migrations, 0);
        assert_eq!(out.balance.moved_seconds, 0.0);
        // Active report, but nothing moved.
        assert_eq!(out.balance.policy.as_deref(), Some("stealing"));
    }

    #[test]
    fn balanced_runs_are_engine_and_rerun_deterministic() {
        let program = skewed_program(5, 8);
        let sim = Simulator::new(MachineConfig::new(5));
        for plan in plans() {
            let a = sim.run_with_balance(&program, &plan).unwrap();
            let b = sim.run_with_balance(&program, &plan).unwrap();
            assert_eq!(a.trace, b.trace);
            assert_eq!(a.balance, b.balance);
            let polled = sim.run_polling_with_balance(&program, &plan).unwrap();
            assert_eq!(a.trace, polled.trace);
            assert_eq!(a.stats, polled.stats);
            assert_eq!(a.balance, polled.balance);
        }
    }

    #[test]
    fn crashed_ranks_are_never_chosen_as_targets() {
        use crate::FaultPlan;
        let ranks = 6;
        let program = skewed_program(ranks, 10);
        let sim = Simulator::new(MachineConfig::new(ranks));
        // Rank 0 (the least loaded, hence the steal magnet) crashes
        // before executing anything.
        let faults = FaultPlan::new(1).with_crash(0, 0.0);
        let plan = BalancePlan::stealing(7, 1.1);
        let out = sim
            .run_configured(&program, Some(&faults), Some(&plan), None)
            .unwrap();
        assert_eq!(out.balance.received_seconds[0], 0.0);
        assert_eq!(out.balance.local_seconds[0], 0.0);
        let polled = sim
            .run_polling_configured(&program, Some(&faults), Some(&plan), None)
            .unwrap();
        assert_eq!(out.trace, polled.trace);
        assert_eq!(out.balance, polled.balance);
    }

    #[test]
    fn work_donated_before_a_crash_stays_accounted() {
        use crate::FaultPlan;
        let ranks = 6;
        let program = skewed_program(ranks, 12);
        let sim = Simulator::new(MachineConfig::new(ranks));
        let horizon = sim.run(&program).unwrap().stats.makespan;
        // The heaviest rank donates for half the run, then fail-stops.
        let heavy = ranks - 1;
        let faults = FaultPlan::new(2).with_crash(heavy, horizon * 0.5);
        let plan = BalancePlan::stealing(7, 1.1);
        let out = sim
            .run_configured(&program, Some(&faults), Some(&plan), None)
            .unwrap();
        assert_eq!(out.faults.crashes.len(), 1);
        assert!(
            out.balance.donated_seconds[heavy] > 0.0,
            "donations before the crash are accounted: {:?}",
            out.balance
        );
        // Conservation holds even with the crash: everything donated
        // was received exactly once.
        let donated: f64 = out.balance.donated_seconds.iter().sum();
        let received: f64 = out.balance.received_seconds.iter().sum();
        assert!((donated - received).abs() < 1e-9);
        assert!((donated - out.balance.moved_seconds).abs() < 1e-9);
    }

    #[test]
    fn predicted_loads_conserve_total_and_reduce_spread() {
        let config = MachineConfig::new(4);
        let loads = [10.0, 2.0, 2.0, 2.0];
        let spread = |v: &[f64]| {
            let max = v.iter().cloned().fold(f64::MIN, f64::max);
            let min = v.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        for plan in plans() {
            let smoothed = plan.predicted_loads(&loads, &config);
            let before: f64 = loads.iter().sum();
            let after: f64 = smoothed.iter().sum();
            assert!((before - after).abs() < 1e-9, "{}", plan.policy_name());
            assert!(
                spread(&smoothed) < spread(&loads),
                "{}: {smoothed:?}",
                plan.policy_name()
            );
        }
        // Degenerate sizes pass through.
        assert_eq!(plans()[0].predicted_loads(&[5.0], &config), vec![5.0]);
    }

    #[test]
    fn summaries_and_signatures_name_the_policy() {
        for plan in plans() {
            assert!(plan.summary().contains(plan.policy_name()));
            assert!(plan.signature().starts_with(plan.policy_name()));
        }
        assert_eq!(plans()[0].clone().with_seed(9).seed(), 9);
    }
}
