//! A discrete-event simulator of a message-passing parallel machine.
//!
//! The paper's case study ran a message-passing CFD code on 16 processors
//! of an IBM SP2. This crate stands in for that machine: it executes
//! per-rank op programs (compute, send/recv, collectives, barriers) under
//! a LogP-flavoured timing model and records a
//! [`Trace`](limba_trace::Trace) of region and activity events, which
//! reduces to exactly the `t_ijp` matrices the analysis methodology
//! consumes.
//!
//! The simulated machine has:
//!
//! * per-rank relative CPU speeds (heterogeneity / slow nodes);
//! * a point-to-point network with per-message overhead `o`, wire latency
//!   `L`, and bandwidth `B`, plus per-directed-link overrides (slow
//!   cables, cross-switch hops); messages above an eager threshold use a
//!   rendezvous protocol that blocks the sender until the receiver posts;
//! * nonblocking `isend`/`irecv`/`wait` with genuine communication/
//!   computation overlap (buffered semantics);
//! * collective cost models for eight operations (binomial-tree
//!   reduce/broadcast, recursive-doubling allreduce and barrier, pairwise
//!   alltoall, scaled-binomial gather/scatter, ring allgather).
//!
//! # Example
//!
//! ```
//! use limba_mpisim::{MachineConfig, ProgramBuilder, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut pb = ProgramBuilder::new(4);
//! let step = pb.add_region("time step");
//! for rank in 0..4 {
//!     pb.rank(rank)
//!         .enter(step)
//!         .compute(1.0 + rank as f64 * 0.1) // imbalanced work
//!         .barrier()
//!         .leave(step);
//! }
//! let program = pb.build()?;
//! let output = Simulator::new(MachineConfig::default()).run(&program)?;
//! let reduced = output.reduce()?;
//! // The slowest rank arrives last, so it waits least in the barrier.
//! # let _ = reduced;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod arena;
pub mod balance;
mod collectives;
mod config;
mod engine;
mod error;
pub mod faults;
mod ops;
pub(crate) mod polling;
mod replicate;

pub use balance::{BalancePlan, BalancePolicy, BalanceReport};
pub use collectives::{collective_cost, CollectiveAlgorithm, CollectiveKind};
pub use config::MachineConfig;
pub use engine::{RunBudget, SimOutput, SimStats, Simulator, StreamOutput};
pub use error::SimError;
pub use faults::{Crash, FaultPlan, FaultReport, LinkFault, MessageLoss, SlowdownWindow};
pub use ops::{Op, Program, ProgramBuilder, RankOps};
pub use replicate::Replication;
